//! NUMA placement on a dual-socket PMEM server.
//!
//! ```sh
//! cargo run -p pmem-olap --example numa_placement
//! ```
//!
//! Demonstrates the paper's §3.4–§3.5 effects with the stateful simulation:
//! the first far read of a region is 5× slower than near reads (coherence
//! remapping), a single-thread pre-touch eliminates the warm-up, and the
//! only multi-socket placement that scales linearly is "every socket reads
//! its near PMEM".

use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::prelude::*;

fn main() {
    let mut sim = Simulation::paper_default();
    let far = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).placement(Placement::FAR);
    let near = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);

    println!("== the far-read warm-up (paper Figure 5) ==");
    let first = sim.evaluate(&far);
    let second = sim.evaluate(&far);
    let near_eval = sim.evaluate(&near);
    println!("first far read (cold mapping): {}", first.total_bandwidth);
    println!("second far read (warm):        {}", second.total_bandwidth);
    println!(
        "near read:                     {}",
        near_eval.total_bandwidth
    );
    println!(
        "remap events observed: first run {}, second run {}",
        first.stats.remap_events, second.stats.remap_events
    );

    println!("\n== pre-touching with one thread avoids the cold run ==");
    sim.reset_coherence();
    sim.prewarm(SocketId(0), SocketId(1));
    let warmed = sim.evaluate(&far);
    println!("far read after pre-touch:      {}", warmed.total_bandwidth);

    println!("\n== multi-socket placements (paper Figure 6a) ==");
    for (label, placement) in [
        ("1 socket near", Placement::NEAR),
        ("2 sockets near (stripe + near access)", Placement::BothNear),
        ("1 socket far", Placement::FAR),
        ("2 sockets far (UPI saturated)", Placement::BothFar),
        ("both sockets, same PMEM (contended)", Placement::Contended),
    ] {
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).placement(placement);
        let eval = sim.evaluate_steady(&spec);
        println!("{label:>40}: {}", eval.total_bandwidth);
    }

    println!("\n== the same decisions, made by the planner ==");
    let planner = pmem_olap::planner::AccessPlanner::paper_default();
    let plan = planner.plan(pmem_olap::planner::Intent::BulkRead);
    println!(
        "bulk-read plan: placement {:?}, pinning {:?} — Best Practice #4:\n\
         \"place data on all sockets but access it only from near NUMA regions\"",
        plan.placement, plan.pinning
    );
}

//! Multi-tenant query serving on the simulated PMEM box.
//!
//! Three tenants share one SSB store: two submit scan-heavy query batches,
//! one bulk-ingests new fact data. The example runs the same workload
//! twice — once through the bandwidth-aware scheduler (admission control,
//! NUMA pinning, shared scans) and once as an unscheduled free-for-all —
//! and prints both [`pmem_serve::ServeReport`]s.
//!
//! Run with: `cargo run --release --example query_server`

use pmem_olap::planner::AccessPlanner;
use pmem_serve::{JobSpec, QueryServer, ServeConfig};
use pmem_sim::topology::SocketId;
use pmem_ssb::{EngineMode, QueryId, SsbStore, StorageDevice};

const MIB: u64 = 1 << 20;

fn workload() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    // Tenant 0: the drill-down dashboards, fanned over both sockets.
    for (i, q) in [QueryId::Q1_1, QueryId::Q2_1, QueryId::Q3_1, QueryId::Q4_1]
        .into_iter()
        .enumerate()
    {
        jobs.push(
            JobSpec::query(q)
                .threads(6)
                .tenant(0)
                .socket(SocketId((i % 2) as u8))
                .arrival(i as f64 * 0.002),
        );
    }
    // Tenant 1: ad-hoc analysts, arriving in a burst.
    for (i, q) in [QueryId::Q2_2, QueryId::Q3_2, QueryId::Q4_2]
        .into_iter()
        .enumerate()
    {
        jobs.push(
            JobSpec::query(q)
                .threads(4)
                .tenant(1)
                .arrival(0.001 + i as f64 * 0.003),
        );
    }
    // Tenant 2: the nightly loader, trickling bulk ingest onto socket 0.
    for i in 0..8u64 {
        jobs.push(
            JobSpec::ingest(128 * MIB)
                .threads(1)
                .tenant(2)
                .socket(SocketId(0))
                .arrival(0.0005 * i as f64),
        );
    }
    jobs
}

fn main() -> pmem_store::Result<()> {
    println!("loading SSB store (SF 0.02)...");
    let store = SsbStore::generate_and_load(0.02, 7, EngineMode::Aware, StorageDevice::PmemFsdax)?;
    let planner = AccessPlanner::paper_default();

    println!("\n=== scheduled: admission control + pinning + shared scans ===");
    let mut server = QueryServer::new(&store, ServeConfig::scheduled(&planner));
    server.submit_all(workload());
    let scheduled = server.run()?;
    print!("{scheduled}");

    println!("\n=== unscheduled free-for-all: no caps, no pinning ===");
    let mut chaos = QueryServer::new(&store, ServeConfig::free_for_all());
    chaos.submit_all(workload());
    let unscheduled = chaos.run()?;
    print!("{unscheduled}");

    println!(
        "\nscan bandwidth: scheduled {:.2} GiB/s vs free-for-all {:.2} GiB/s ({:.1}x)",
        scheduled.read_bandwidth_gib_s(),
        unscheduled.read_bandwidth_gib_s(),
        scheduled.read_bandwidth_gib_s() / unscheduled.read_bandwidth_gib_s().max(1e-9),
    );
    println!(
        "queue discipline: scheduled queued {} of {} jobs (mean wait {:.3}s) to protect the scans",
        scheduled.queued_jobs(),
        scheduled.jobs.len(),
        scheduled.mean_queue_wait_seconds(),
    );
    Ok(())
}

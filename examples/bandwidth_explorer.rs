//! Interactive bandwidth explorer: query the calibrated model from the
//! command line.
//!
//! ```sh
//! cargo run -p pmem-olap --example bandwidth_explorer -- \
//!     --device pmem --op write --pattern individual \
//!     --access 4096 --threads 24 --placement near
//! ```
//!
//! Prints the predicted bandwidth for the requested configuration, the
//! simulated device counters, and — when the configuration violates a best
//! practice — what the planner would do instead.

use pmem_olap::planner::{AccessPlanner, Intent};
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::prelude::*;
use pmem_olap::sim::workload::AccessKind;

struct Args {
    device: DeviceClass,
    op: AccessKind,
    pattern: Pattern,
    access: u64,
    threads: u32,
    placement: Placement,
    pinning: Pinning,
}

fn parse() -> Args {
    let mut args = Args {
        device: DeviceClass::Pmem,
        op: AccessKind::Read,
        pattern: Pattern::SequentialIndividual,
        access: 4096,
        threads: 18,
        placement: Placement::NEAR,
        pinning: Pinning::Cores,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--device" => {
                args.device = match value(&mut it).as_str() {
                    "pmem" => DeviceClass::Pmem,
                    "dram" => DeviceClass::Dram,
                    "ssd" => DeviceClass::Ssd,
                    other => panic!("unknown device {other}"),
                }
            }
            "--op" => {
                args.op = match value(&mut it).as_str() {
                    "read" => AccessKind::Read,
                    "write" => AccessKind::Write,
                    other => panic!("unknown op {other}"),
                }
            }
            "--pattern" => {
                args.pattern = match value(&mut it).as_str() {
                    "grouped" => Pattern::SequentialGrouped,
                    "individual" => Pattern::SequentialIndividual,
                    "random" => Pattern::Random {
                        region_bytes: 2 << 30,
                    },
                    other => panic!("unknown pattern {other}"),
                }
            }
            "--access" => args.access = value(&mut it).parse().expect("access size"),
            "--threads" => args.threads = value(&mut it).parse().expect("threads"),
            "--placement" => {
                args.placement = match value(&mut it).as_str() {
                    "near" => Placement::NEAR,
                    "far" => Placement::FAR,
                    "both-near" => Placement::BothNear,
                    "both-far" => Placement::BothFar,
                    "contended" => Placement::Contended,
                    other => panic!("unknown placement {other}"),
                }
            }
            "--pinning" => {
                args.pinning = match value(&mut it).as_str() {
                    "none" => Pinning::None,
                    "numa" => Pinning::NumaRegion,
                    "cores" => Pinning::Cores,
                    other => panic!("unknown pinning {other}"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "bandwidth_explorer --device pmem|dram|ssd --op read|write \
                     --pattern grouped|individual|random --access <bytes> \
                     --threads <n> --placement near|far|both-near|both-far|contended \
                     --pinning none|numa|cores"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse();
    let spec = WorkloadSpec {
        device: args.device,
        kind: args.op,
        pattern: args.pattern,
        access_size: args.access,
        threads: args.threads,
        placement: args.placement,
        pinning: args.pinning,
        total_bytes: WorkloadSpec::PAPER_VOLUME,
    };

    let mut sim = Simulation::paper_default();
    let eval = sim.evaluate(&spec);
    println!(
        "{:?} {:?} {:?}, {} B x {} thread(s), {:?}/{:?}",
        args.device, args.op, args.pattern, args.access, args.threads, args.placement, args.pinning
    );
    println!("  predicted bandwidth : {}", eval.total_bandwidth);
    println!("  70 GB volume in     : {:.2} s", eval.elapsed_seconds);
    println!("  device counters     : {}", eval.stats);

    // Best-practice advice when the configuration is off the paper's map.
    let planner = AccessPlanner::paper_default();
    let better = match (args.op, args.pattern) {
        (AccessKind::Write, Pattern::Random { .. }) => Some(planner.plan(Intent::RandomWrite {
            access_bytes: args.access,
        })),
        (AccessKind::Write, _) => Some(planner.plan(Intent::BulkWrite)),
        (AccessKind::Read, Pattern::Random { .. }) => Some(planner.plan(Intent::RandomRead {
            access_bytes: args.access,
        })),
        (AccessKind::Read, _) => Some(planner.plan(Intent::BulkRead)),
    };
    if let Some(plan) = better {
        let planned_bw = planner.expected_bandwidth(&plan, args.op);
        if planned_bw.gib_s() > eval.total_bandwidth.gib_s() * 1.05 {
            println!(
                "\n  planner suggestion  : {} thread(s)/socket, {} B, {:?}, {:?} -> {}",
                plan.threads_per_socket, plan.access_size, plan.pattern, plan.pinning, planned_bw
            );
            for bp in &plan.applied {
                println!("    applies {bp}");
            }
        } else {
            println!("\n  configuration already follows the best practices");
        }
    }
}

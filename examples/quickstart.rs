//! Quickstart: the pmem-olap stack in five minutes.
//!
//! ```sh
//! cargo run -p pmem-olap --example quickstart
//! ```
//!
//! Walks through the layers bottom-up: ask the simulator what the paper's
//! server delivers, store durable data through the persistence primitives,
//! index it with Dash, and let the planner pick access parameters per the
//! 7 best practices.

use pmem_olap::dash::{DashTable, KvIndex};
use pmem_olap::planner::{AccessPlanner, Intent};
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::prelude::*;
use pmem_olap::sim::workload::AccessKind;
use pmem_olap::store::{AccessHint, Namespace};

fn main() {
    // 1. The simulated machine: the paper's dual-socket Optane server.
    let mut sim = Simulation::paper_default();
    let scan = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
    let eval = sim.evaluate(&scan);
    println!(
        "sequential PMEM read, 18 pinned threads: {} (paper: ~40 GB/s)",
        eval.total_bandwidth
    );
    let naive_write = WorkloadSpec::seq_write(DeviceClass::Pmem, 1 << 20, 36);
    let tuned_write = WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 6);
    println!(
        "writes, 36 threads x 1 MB: {}  |  6 threads x 4 KB: {} (paper: 12.6 GB/s peak)",
        sim.evaluate(&naive_write).total_bandwidth,
        sim.evaluate(&tuned_write).total_bandwidth,
    );

    // 2. Durable storage: App Direct namespace, ntstore + sfence semantics.
    let ns = Namespace::devdax(SocketId(0), 64 << 20);
    let mut region = ns.alloc_region(1 << 20).expect("allocate region");
    region.ntstore(0, b"durable OLAP tuple");
    region.sfence();
    assert!(region.is_persisted(0, 18));
    region.write(64, b"volatile until flushed");
    let lost = region.crash();
    println!(
        "after simulated power loss: {:?} survived, {lost} cache line(s) lost",
        std::str::from_utf8(region.read(0, 18, AccessHint::Sequential)).unwrap()
    );

    // 3. A PMEM-optimized index: Dash (256 B bucket probes).
    let table = DashTable::with_capacity(&ns, 10_000).expect("dash table");
    for key in 0..10_000u64 {
        table.insert(key, key * 2).expect("insert");
    }
    ns.tracker().reset();
    assert_eq!(table.get(4242), Some(8484));
    let probe = ns.tracker().snapshot();
    println!(
        "one Dash probe cost {} random byte(s) in {} access(es) — one XPLine",
        probe.rand_read_bytes, probe.read_ops
    );

    // 4. The paper's contribution as a library: plan access per the 7 best
    //    practices and predict the resulting bandwidth.
    let planner = AccessPlanner::paper_default();
    for intent in [
        Intent::BulkRead,
        Intent::BulkWrite,
        Intent::LogAppend { record_bytes: 48 },
        Intent::RandomRead { access_bytes: 64 },
    ] {
        let plan = planner.plan(intent);
        let kind = match intent {
            Intent::BulkRead | Intent::RandomRead { .. } => AccessKind::Read,
            _ => AccessKind::Write,
        };
        println!(
            "{intent:?}: {} thread(s)/socket, {} B {:?}, {:?} -> {}",
            plan.threads_per_socket,
            plan.access_size,
            plan.pattern,
            plan.pinning,
            planner.expected_bandwidth(&plan, kind)
        );
    }
}

//! Star Schema Benchmark analytics on simulated PMEM vs DRAM.
//!
//! ```sh
//! cargo run -p pmem-olap --example ssb_analytics --release [-- <sf>]
//! ```
//!
//! Loads an SSB database (default sf 0.02) into the PMEM-aware engine,
//! executes all 13 queries for real (answers are cross-checked against a
//! direct reference evaluation), and prices the traffic at the paper's
//! sf 100 for PMEM and DRAM — reproducing Figure 14b's 1.66× story.

use pmem_olap::sim::Simulation;
use pmem_olap::ssb::datagen;
use pmem_olap::ssb::queries::{run_query, QueryId};
use pmem_olap::ssb::reference::reference_query;
use pmem_olap::ssb::storage::{EngineMode, SsbStore};
use pmem_olap::ssb::timing::{estimate, TimingConfig, TimingParams};
use pmem_olap::ssb::StorageDevice;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let threads = 8;

    println!("generating SSB data at sf {sf}...");
    let data = datagen::generate(sf, 414);
    println!(
        "  {} lineorder rows, {} customers, {} suppliers, {} parts",
        data.lineorder.len(),
        data.customers.len(),
        data.suppliers.len(),
        data.parts.len()
    );

    let store =
        SsbStore::load(&data, sf, EngineMode::Aware, StorageDevice::PmemFsdax).expect("load store");
    println!(
        "loaded {} MiB of fact data striped across {} socket(s)\n",
        store.fact_bytes() >> 20,
        store.shards.len()
    );

    let sim = Simulation::paper_default();
    let params = TimingParams::default();
    let pmem_cfg = TimingConfig::paper_aware(StorageDevice::PmemFsdax).sf(sf, 100.0);
    let dram_cfg = TimingConfig::paper_aware(StorageDevice::Dram).sf(sf, 100.0);

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>7}  result",
        "query", "groups", "PMEM [s]", "DRAM [s]", "ratio"
    );
    let mut ratios = Vec::new();
    for q in QueryId::ALL {
        store.reset_trackers();
        let outcome = run_query(&store, q, threads).expect("query");
        // Answers must match the direct reference evaluation.
        assert_eq!(
            outcome.rows,
            reference_query(&data, q),
            "{} diverged from the reference",
            q.name()
        );
        let pmem = estimate(&outcome, EngineMode::Aware, &pmem_cfg, &sim, &params).total_seconds;
        let dram = estimate(&outcome, EngineMode::Aware, &dram_cfg, &sim, &params).total_seconds;
        ratios.push(pmem / dram);
        let headline = outcome
            .rows
            .first()
            .map(|(k, v)| format!("first group {k:#x} -> {v}"))
            .unwrap_or_else(|| "empty".into());
        println!(
            "{:>6} {:>10} {:>12.2} {:>12.2} {:>6.2}x  {headline}",
            q.name(),
            outcome.rows.len(),
            pmem,
            dram,
            pmem / dram
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\naverage PMEM/DRAM slowdown: {avg:.2}x (paper: 1.66x) — PMEM is a viable,\n\
         2.4x cheaper substrate for read-heavy OLAP (paper §7)."
    );
}

//! Data ingest tuning: why writers must not scale like readers.
//!
//! ```sh
//! cargo run -p pmem-olap --example data_ingest --release
//! ```
//!
//! OLAP systems ingest in bulk (paper §4). This example drives *real*
//! multi-threaded write traffic through the store (checksummed, persisted),
//! then prices the same configurations on the simulator to show the
//! paper's counterintuitive result: throwing 36 threads at large PMEM
//! writes is slower than 6 threads writing 4 KB chunks — the
//! write-combining buffer thrashes (Figure 8's "boomerang").

use pmem_olap::membench::traffic::{run_traffic, TrafficConfig};
use pmem_olap::planner::{AccessPlanner, Intent};
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::topology::SocketId;
use pmem_olap::sim::workload::{AccessKind, Pattern, WorkloadSpec};
use pmem_olap::sim::Simulation;
use pmem_olap::store::Namespace;

fn main() {
    let sim = Simulation::paper_default();
    println!("== simulated ingest bandwidth per configuration (one socket) ==");
    println!("{:>8} {:>10} {:>12}", "threads", "access", "bandwidth");
    for (threads, access) in [
        (36u32, 1u64 << 20),
        (36, 65536),
        (36, 4096),
        (36, 256),
        (18, 4096),
        (8, 4096),
        (6, 4096),
        (4, 4096),
        (1, 4096),
    ] {
        let spec = WorkloadSpec::seq_write(DeviceClass::Pmem, access, threads);
        let bw = sim.evaluate_steady(&spec).total_bandwidth;
        println!("{threads:>8} {access:>10} {:>12}", format!("{bw}"));
    }

    // The planner applies Insights #6/#7 automatically.
    let planner = AccessPlanner::paper_default();
    let plan = planner.plan(Intent::BulkWrite);
    println!(
        "\nplanner recommendation: {} writer(s)/socket, {} B chunks -> {}",
        plan.threads_per_socket,
        plan.access_size,
        planner.expected_bandwidth(&plan, AccessKind::Write)
    );
    for bp in &plan.applied {
        println!("  applies {bp}");
    }

    // Now ingest for real: 32 MiB through the store with the planned
    // configuration, all ntstore + sfence, tracked by the namespace.
    let ns = Namespace::devdax(SocketId(0), 256 << 20);
    let cfg = TrafficConfig::new(
        AccessKind::Write,
        Pattern::SequentialIndividual,
        plan.access_size,
        plan.threads_per_socket,
    );
    let report = run_traffic(&ns, &cfg).expect("ingest traffic");
    let simulated = sim
        .evaluate_steady(&plan.to_spec(AccessKind::Write))
        .total_bandwidth;
    println!(
        "\ningested {} MiB for real ({} sequential write ops, {} sfences);",
        report.bytes >> 20,
        report.delta.write_ops,
        report.delta.sfences
    );
    println!(
        "at the simulated {} that volume takes {:.1} ms on the paper's server",
        simulated,
        report.bytes as f64 / simulated.bytes_per_sec() * 1e3
    );

    // Logging workloads: many small appends — keep them per-worker and
    // XPLine-sized (Insight #6: "one log per worker").
    let log_plan = planner.plan(Intent::LogAppend { record_bytes: 100 });
    println!(
        "\nlog appends of 100 B records: planner rounds to {} B per append, {}",
        log_plan.access_size,
        planner.expected_bandwidth(&log_plan, AccessKind::Write)
    );
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of the `rand` API it actually uses: `Rng::gen_range` over
//! integer ranges, `SeedableRng::seed_from_u64`, and the `StdRng` /
//! `SmallRng` generator types. All generators are deterministic SplitMix64
//! streams — statistically far weaker than the real crate, but every
//! workspace use site seeds explicitly and only needs reproducible,
//! well-spread integers for workload generation.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (blanket-implemented for every
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive integer range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from an explicit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 high bits give a uniform draw in [0, 1), like the real
                // crate's `Standard` distribution for floats.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The generator types offered by the real crate.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng` (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x51c6_4f6d_7d5a_36d1,
            }
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                state: state ^ 0x9f0e_13cc_dd29_f2a3,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let s: usize = rng.gen_range(0..3);
            assert!(s < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}

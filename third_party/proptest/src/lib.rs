//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), integer-range
//! and tuple strategies, [`any`], `prop::collection::{vec, btree_set}`,
//! [`prop_oneof!`], `Strategy::prop_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic, no `PROPTEST_*` env handling) and
//! failing cases are reported but **not shrunk**.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 stream driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name (FNV-1a), so every test gets its own
    /// reproducible sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Error type carried by `prop_assert!` failures.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike the real crate there is no shrinking, so a
/// strategy is just "generate one value from the stream".
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed, type-erased strategy (used by [`prop_oneof!`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice between boxed strategies.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the arm list (non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(0, self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::*` in the real crate).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet<S::Value>` with size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of values from `element`, size in `size` (best effort when the
    /// element domain is smaller than the requested size).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.below(self.size.start, self.size.end);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(16) + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($arm) as $crate::BoxedStrategy<_>),+
        ])
    };
}

/// Assert inside a proptest body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// The proptest test-harness macro: each `fn name(arg in strategy, ..)`
/// item becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

// Re-export for macro hygiene users that name the type path directly.
pub use collection::{BTreeSetStrategy, VecStrategy};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Toy {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x), "x {}", x);
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u64..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 >= 2 && pair.0 < 20);
        }

        #[test]
        fn oneof_and_collections(
            ops in prop::collection::vec(
                prop_oneof![
                    (0u8..4).prop_map(Toy::A),
                    (0u8..1).prop_map(|_| Toy::B),
                ],
                1..8,
            ),
            keys in prop::collection::btree_set(0u64..100, 1..20),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 8);
            prop_assert!(!keys.is_empty() && keys.len() < 20);
            for op in &ops {
                match op {
                    Toy::A(v) => prop_assert!(*v < 4),
                    Toy::B => {}
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed at case 1/64")]
    fn failures_report_the_case() {
        // No inner `#[test]`: the macro tolerates attribute-free items, and
        // an inner test item would be untestable anyway.
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! facade: the scoped-thread and channel APIs this workspace uses, built on
//! `std::thread::scope` and `std::sync::mpsc`.

/// Scoped threads (crossbeam's pre-1.63 claim to fame, now std-backed).
pub mod thread {
    /// Wrapper over [`std::thread::Scope`] exposing crossbeam's
    /// closure-takes-scope spawn signature.
    pub struct Scope<'scope, 'env>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this scope. The closure receives the
        /// scope again so it can spawn siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Create a scope for spawning borrowing threads; joins all spawned
    /// threads before returning. Unlike crossbeam, a panicking child
    /// re-panics here instead of surfacing through the `Result` (std
    /// semantics); the `Result` wrapper is kept for signature parity.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

/// Multi-producer channels with crossbeam's constructor names.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, TryRecvError};

    /// Crossbeam-style sender: mpsc `SyncSender` (bounded) is not unified
    /// with `Sender` in std, so this stand-in only offers the unbounded
    /// flavor the workspace needs.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn unbounded_channel_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }
}

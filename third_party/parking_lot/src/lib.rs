//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: the `Mutex`/`RwLock` API this workspace uses, implemented over
//! `std::sync` with poisoning unwrapped (parking_lot locks don't poison, so
//! recovering the guard from a `PoisonError` reproduces its semantics).

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that hands out guards directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that hands out guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire a shared read guard without blocking; `None` if a writer
    /// holds (or is acquiring) the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn rwlock_try_read_yields_to_writers() {
        let l = RwLock::new(7);
        {
            let g = l.try_read().expect("uncontended try_read");
            assert_eq!(*g, 7);
            let g2 = l.try_read().expect("readers share");
            assert_eq!(*g2, 7);
        }
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its figure/stats
//! types but never serializes through serde (CSV and table rendering are
//! hand-rolled), so these derives only need to *accept* the syntax —
//! including `#[serde(...)]` helper attributes — and may emit no code.
//! If a future change actually calls serde, replace `third_party/serde`
//! with the real crates.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

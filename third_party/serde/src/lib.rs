//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! facade. The workspace only *derives* the traits (no serializer is ever
//! driven — figure/CSV output is hand-rolled), so marker traits plus no-op
//! derive macros are sufficient. Swap for the real crates if serialization
//! is ever actually performed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset this workspace's `harness = false` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, `Bencher::{iter, iter_batched}`, [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple fixed-sample wall-clock loop (median + min/max
//! per-iteration time printed to stdout) — no warm-up tuning, outlier
//! analysis, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; ignored by this stand-in beyond
/// signature parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` once per sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.timings.is_empty() {
            println!("{name:<48} no samples recorded");
            return;
        }
        self.timings.sort();
        let median = self.timings[self.timings.len() / 2];
        let min = self.timings[0];
        let max = self.timings[self.timings.len() - 1];
        println!(
            "{name:<48} median {}  (min {}, max {}, n={})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.timings.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_bench(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
    }

    fn grouped_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 128],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group!(stub_benches, square_bench, grouped_bench);

    #[test]
    fn harness_runs_and_reports() {
        stub_benches();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}

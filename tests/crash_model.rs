//! Acceptance suite for the crash-state model checker (`pmem-crashmc`).
//!
//! Covers the three instrumented clients — worker log, Dash segment, SSB
//! columnar checkpoint — and the checker's own guarantees: determinism
//! (identical traces enumerate identical state sets), loud coverage
//! accounting (no silent truncation), and the ability to catch the known
//! Dash displacement-window duplicate when the repair sweep is disabled.

use pmem_crashmc::clients;
use pmem_crashmc::{CheckerConfig, CrashChecker, PersistEvent, PersistenceTrace};

#[test]
fn worker_log_survives_every_reachable_crash_state() {
    let report = clients::check_worker_log(&CrashChecker::new(), 12);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(
        report.sampled_epochs().is_empty(),
        "log epochs are small; all must be exhaustive"
    );
    println!("worker log: {}", report.summary());
}

#[test]
fn dash_segment_with_repair_survives_every_reachable_crash_state() {
    let report = clients::check_dash_segment(&CrashChecker::new(), true);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    println!("dash segment (repair on): {}", report.summary());
}

#[test]
fn checker_catches_the_dash_duplicate_when_repair_is_disabled() {
    // The pre-fix bug, demonstrably caught: with the recovery-time
    // duplicate sweep disabled, the checker must flag the crash state the
    // displacement window leaves — a removed key that stays visible
    // through its stale copy.
    let report = clients::check_dash_segment(&CrashChecker::new(), false);
    assert!(
        !report.violations.is_empty(),
        "the displacement-window duplicate must be flagged without repair"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.detail.contains("resurrected after removal")),
        "the violation must be the removal-resurrection kind: {:#?}",
        report.violations
    );
    println!(
        "dash segment (repair off): {} violation(s), e.g. {}",
        report.violations.len(),
        report.violations[0].detail
    );
}

#[test]
fn ssb_checkpoint_survives_every_reachable_crash_state() {
    let report = clients::check_ssb_checkpoint(&CrashChecker::new(), 10);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    println!("ssb checkpoint: {}", report.summary());
}

#[test]
fn media_repair_preserves_committed_data_in_every_crash_state() {
    // The scrub/repair invariant on top of the crash model: from every
    // reachable crash state, poisoning the recovered data and repairing it
    // from a pristine mirror restores the committed bytes exactly — repair
    // never rewrites a checksum-valid block.
    let report = clients::check_media_repair(&CrashChecker::new(), 8);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    println!("media repair: {}", report.summary());
}

#[test]
fn the_three_clients_explore_at_least_five_hundred_distinct_states() {
    let checker = CrashChecker::new();
    let log = clients::check_worker_log(&checker, 30);
    let dash = clients::check_dash_segment(&checker, true);
    let ckpt = clients::check_ssb_checkpoint(&checker, 16);
    let total = log.states_explored + dash.states_explored + ckpt.states_explored;
    println!(
        "states explored: log {} + dash {} + checkpoint {} = {total}",
        log.states_explored, dash.states_explored, ckpt.states_explored
    );
    assert!(
        total >= 500,
        "need ≥500 distinct crash states across the clients, got {total}"
    );
}

#[test]
fn checker_is_deterministic_across_runs() {
    for (a, b) in [
        (
            clients::check_worker_log(&CrashChecker::new(), 8),
            clients::check_worker_log(&CrashChecker::new(), 8),
        ),
        (
            clients::check_dash_segment(&CrashChecker::new(), true),
            clients::check_dash_segment(&CrashChecker::new(), true),
        ),
        (
            clients::check_ssb_checkpoint(&CrashChecker::new(), 5),
            clients::check_ssb_checkpoint(&CrashChecker::new(), 5),
        ),
    ] {
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.duplicate_states, b.duplicate_states);
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ea.wpq_lines, eb.wpq_lines);
            assert_eq!(ea.states, eb.states);
            assert_eq!(ea.exhaustive, eb.exhaustive);
        }
    }
}

#[test]
fn oversized_epochs_are_sampled_loudly_never_silently() {
    // 24 pending lines in one epoch: 2^24 subsets is over any sane bound.
    // The checker must fall back to sampling AND say so in the report.
    let trace: Vec<PersistEvent> = (0..24u64)
        .map(|i| PersistEvent::NtStore {
            offset: i * 64,
            data: vec![i as u8 + 1],
        })
        .chain([PersistEvent::Sfence])
        .collect();
    let checker = CrashChecker::with_config(CheckerConfig {
        max_enum_lines: 10,
        sample_budget: 64,
        seed: 3,
    });
    let report = checker.check(&trace, 24 * 64, |_| Ok(()));
    assert_eq!(report.sampled_epochs(), vec![0]);
    assert!(!report.epochs[0].exhaustive);
    assert!(report.summary().contains("sampled"));
    // Sampling still covers the boundary states (nothing / everything
    // accepted) plus the seeded draws.
    assert!(report.states_explored >= 3);
    assert!(report.states_explored <= 65);
}

#[test]
fn truncated_traces_fail_closed() {
    let trace = PersistenceTrace::shared(2);
    trace.record(PersistEvent::NtStore {
        offset: 0,
        data: vec![1],
    });
    trace.record(PersistEvent::Sfence);
    trace.record(PersistEvent::Sfence); // overflows the capacity-2 buffer
    assert!(trace.truncated());
    let report = CrashChecker::new().check_trace(&trace, 64, |_| Ok(()));
    assert!(report.trace_truncated);
    assert!(!report.passed(), "truncated coverage must never pass");
    assert_eq!(report.states_explored, 0);
}

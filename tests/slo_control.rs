//! Acceptance tests for the closed-loop SLO tentpole: per-job service
//! classes (EDF-within-class admission bands, class-aware ingress
//! eviction, brownout shielding) and the deterministic AIMD controller
//! that tunes the overload knobs until the declared per-class
//! objectives hold.
//!
//! The gates mirror `overload_resilience.rs`: a 2× write surge, but
//! split across three class-tagged tenants — a latency tier that must
//! hold its deadline target, a standard tier, and a best-effort tier
//! that must absorb the shed load. The controller starts from
//! deliberately wrong knobs, tunes on its own seeds, and is graded on a
//! held-out seed against the hand-tuned shipped configuration.
//!
//! Like the overload suite, the workload is ingest-only so everything
//! prices in the virtual plane and the suite stays cheap for CI.

use std::sync::OnceLock;

use pmem_olap::planner::AccessPlanner;
use pmem_serve::control::violations;
use pmem_serve::{
    auto_tune, ClassTarget, ControllerConfig, JobOutcome, JobSpec, Knobs, OpenLoopPlan,
    OverloadPolicy, QueryServer, ServeConfig, ServeReport, ShedReason, SloClass, SloPolicy,
    TenantLoad,
};
use pmem_sim::des::arrivals::ArrivalProcess;
use pmem_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use pmem_sim::topology::SocketId;
use pmem_ssb::{EngineMode, SsbStore, StorageDevice};
use proptest::prelude::*;

/// Held-out evaluation seed — never seen by the controller, whose
/// training epochs derive from [`TUNE_SEED`].
const SEED: u64 = 7;
const TUNE_SEED: u64 = 11;
const UNIT_BYTES: u64 = 64 << 20;
const HORIZON: f64 = 0.3;
/// Aggregate offered load as a multiple of machine write capacity.
const OVERLOAD: f64 = 2.0;
/// The interactive deadline-met gate.
const MET_GATE: f64 = 0.95;
/// `ServeReport` windows the violation grader inspects.
const WINDOWS: usize = 4;

fn shared_store() -> &'static SsbStore {
    static STORE: OnceLock<SsbStore> = OnceLock::new();
    STORE.get_or_init(|| {
        SsbStore::generate_and_load(0.005, 99, EngineMode::Aware, StorageDevice::PmemFsdax)
            .expect("store loads")
    })
}

/// What the planner projects the whole machine sustains at the writer
/// admission caps — the capacity the surge is sized against.
fn machine_write_bw(planner: &AccessPlanner) -> f64 {
    let budget = planner.concurrency_budget();
    let (_, write) = planner.expected_mixed(0, budget.writer_threads);
    write.bytes_per_sec() * f64::from(planner.sockets().max(1))
}

/// Seconds one surge unit takes at a single socket's full write rate —
/// the natural latency yardstick every target is expressed in.
fn unit_drain(planner: &AccessPlanner) -> f64 {
    UNIT_BYTES as f64 / (machine_write_bw(planner) / f64::from(planner.sockets().max(1)))
}

/// The class targets the experiments defend, derived from the measured
/// drain time so they stay valid if the bandwidth model is recalibrated:
/// interactive promises a deadline ten active-set drains out, standard
/// gets twice that, and best-effort promises only that its *completed*
/// tail stays inside a bounded-queue drain — the objective the
/// controller can actually trade against the knobs.
fn slo_policy(planner: &AccessPlanner) -> SloPolicy {
    let d = unit_drain(planner);
    SloPolicy::default_on()
        .target(
            SloClass::Interactive,
            ClassTarget::new(10.0 * d, 10.0 * d, MET_GATE),
        )
        .target(
            SloClass::Standard,
            ClassTarget::new(20.0 * d, 20.0 * d, 0.5),
        )
        .target(
            SloClass::BestEffort,
            ClassTarget {
                deadline: None,
                p99_objective: Some(40.0 * d),
                met_fraction: 0.0,
            },
        )
}

/// The interactive relative deadline (explicit on the template so the
/// slo-disabled baseline carries and is graded on the same promise).
fn interactive_deadline(planner: &AccessPlanner) -> f64 {
    10.0 * unit_drain(planner)
}

/// Three class-tagged tenants summing to `OVERLOAD`× machine write
/// capacity: the latency and standard tiers together fit inside
/// capacity (0.4× + 0.3×), so every shed past their fair shares must
/// come out of the best-effort tier's 1.3×.
fn class_plan(planner: &AccessPlanner, horizon: f64, seed: u64) -> OpenLoopPlan {
    let total = OVERLOAD * machine_write_bw(planner) / UNIT_BYTES as f64;
    let rate = |x: f64| total * x / OVERLOAD;
    let template = JobSpec::ingest(UNIT_BYTES).threads(2);
    OpenLoopPlan::new(seed, horizon)
        .tenant(
            TenantLoad::new(
                1,
                ArrivalProcess::poisson(rate(0.4)),
                template
                    .slo(SloClass::Interactive)
                    .deadline(interactive_deadline(planner)),
            )
            .weight(2.0),
        )
        .tenant(
            TenantLoad::new(
                2,
                ArrivalProcess::poisson(rate(0.3)),
                template.slo(SloClass::Standard),
            )
            .weight(1.5),
        )
        .tenant(TenantLoad::new(
            3,
            ArrivalProcess::poisson(rate(1.3)),
            template.slo(SloClass::BestEffort),
        ))
}

/// The classed surge configuration under `knobs`.
fn classed(planner: &AccessPlanner, knobs: Knobs) -> ServeConfig {
    knobs.apply(ServeConfig::surge(planner).with_slo_classes(slo_policy(planner)))
}

fn run(config: ServeConfig) -> ServeReport {
    QueryServer::new(shared_store(), config)
        .run()
        .expect("run succeeds")
}

fn goodput(report: &ServeReport) -> f64 {
    report.goodput_bytes_per_sec()
}

/// Tentpole gate 1: with the shipped hand-tuned knobs and the SLO
/// policy on, a 2× surge leaves the latency tier whole — every declared
/// objective holds, the interactive deadline-met fraction clears the
/// gate, and ≥ 90% of the shed load lands on the best-effort tier.
#[test]
fn interactive_holds_its_target_while_best_effort_absorbs_the_sheds() {
    let planner = AccessPlanner::paper_default();
    let report =
        run(classed(&planner, Knobs::hand()).with_open_loop(class_plan(&planner, HORIZON, SEED)));
    println!("{report}");

    // The surge is real: the server sheds a substantial slice of the
    // offered 2× load rather than absorbing it.
    assert!(report.shed_jobs() > 0, "a 2x surge must shed");

    // Every per-class objective holds, windowed, under the hand knobs.
    assert_eq!(
        violations(&report, &slo_policy(&planner), WINDOWS),
        0,
        "hand-tuned knobs hold every class objective"
    );

    let interactive = report
        .class_report(SloClass::Interactive)
        .expect("interactive tier present");
    let met = interactive
        .met_fraction()
        .expect("interactive carries deadlines");
    assert!(
        met >= MET_GATE,
        "interactive met {met:.2} under the {MET_GATE} gate"
    );
    let p99 = interactive.end_to_end.expect("completions exist").p99;
    assert!(
        p99 <= interactive_deadline(&planner),
        "interactive p99 {p99:.4}s blows the {:.4}s objective",
        interactive_deadline(&planner)
    );
    // Protection is shedding-aware too: virtually none of the latency
    // tier is dropped while best-effort absorbs ≥ 90% of the sheds.
    assert!(
        report.shed_share(SloClass::BestEffort) >= 0.9,
        "best-effort absorbed only {:.2} of the sheds",
        report.shed_share(SloClass::BestEffort)
    );
    let standard = report
        .class_report(SloClass::Standard)
        .expect("standard tier present");
    assert!(standard.met_fraction().unwrap_or(1.0) >= 0.5);
}

/// Tentpole gate 2: the same workload graded on the same promises but
/// served by the static class-blind configuration (naive knobs, SLO
/// machinery off) demonstrably misses the interactive target — the
/// sheds land on the latency tier instead of the best-effort one.
#[test]
fn static_class_blind_knobs_miss_the_interactive_target() {
    let planner = AccessPlanner::paper_default();
    let report = run(Knobs::naive()
        .apply(ServeConfig::surge(&planner))
        .with_open_loop(class_plan(&planner, HORIZON, SEED)));

    assert!(
        violations(&report, &slo_policy(&planner), WINDOWS) > 0,
        "the static baseline must violate the class objectives"
    );
    let interactive = report
        .class_report(SloClass::Interactive)
        .expect("interactive tier present");
    let met = interactive.met_fraction().unwrap_or(0.0);
    assert!(
        met < MET_GATE,
        "class-blind serving accidentally held the target (met {met:.2})"
    );
    // Without class-aware eviction the FIFO bound sheds the latency
    // tier itself.
    assert!(
        interactive.shed > 0,
        "the miss must come from shed interactive work"
    );
}

/// Tentpole gate 3: the AIMD controller starts from deliberately wrong
/// knobs, observes violations on its own training seeds, walks the
/// knobs down, and its best epoch — evaluated on a held-out seed it
/// never trained on — matches the hand-tuned configuration: zero
/// violations and at least 95% of the hand-tuned goodput.
#[test]
fn controller_converges_from_wrong_knobs_on_a_held_out_seed() {
    let planner = AccessPlanner::paper_default();
    let base = ServeConfig::surge(&planner).with_slo_classes(slo_policy(&planner));
    let outcome = auto_tune(
        shared_store(),
        &base,
        |s| class_plan(&planner, HORIZON, s),
        ControllerConfig::paper(TUNE_SEED),
    )
    .expect("tuning runs");

    // The starting point is genuinely wrong: epoch 0 violates.
    let first = outcome.trajectory.first().expect("trajectory non-empty");
    assert_eq!(first.knobs, Knobs::naive());
    assert!(
        first.violations > 0,
        "naive knobs must violate so the controller has a signal"
    );
    // Multiplicative decrease bit: the winning knobs are tighter than
    // the naive start on the load-bearing axes.
    assert!(outcome.best.queue_cap < Knobs::naive().queue_cap);
    assert!(outcome.best.retry_fraction < Knobs::naive().retry_fraction);
    // And the controller found at least one clean epoch.
    assert!(
        outcome.trajectory.iter().any(|o| o.violations == 0),
        "no epoch converged"
    );

    // Grade the winner on the held-out seed against the hand knobs.
    let eval = |knobs: Knobs| {
        run(classed(&planner, knobs).with_open_loop(class_plan(&planner, HORIZON, SEED)))
    };
    let auto = eval(outcome.best);
    let hand = eval(Knobs::hand());
    assert_eq!(
        violations(&auto, &slo_policy(&planner), WINDOWS),
        0,
        "auto-tuned knobs must hold every objective on the held-out seed"
    );
    assert!(
        goodput(&auto) >= 0.95 * goodput(&hand),
        "auto-tuned goodput {:.3e} below 95% of hand-tuned {:.3e}",
        goodput(&auto),
        goodput(&hand)
    );
}

/// Tentpole gate 4: the whole loop is seeded and replayable — two
/// controller runs produce bitwise-identical trajectories, and two
/// identical classed serving runs produce identical per-class sections.
#[test]
fn controller_trajectories_and_class_sections_are_deterministic() {
    let planner = AccessPlanner::paper_default();
    let tune = || {
        let base = ServeConfig::surge(&planner).with_slo_classes(slo_policy(&planner));
        auto_tune(
            shared_store(),
            &base,
            |s| class_plan(&planner, HORIZON, s),
            ControllerConfig::paper(TUNE_SEED),
        )
        .expect("tuning runs")
    };
    let a = tune();
    let b = tune();
    assert_eq!(a.trajectory, b.trajectory, "controller replay diverged");
    assert_eq!(a.best, b.best);
    assert_eq!(a.last, b.last);

    let serve = || {
        run(classed(&planner, Knobs::hand()).with_open_loop(class_plan(&planner, HORIZON, SEED)))
    };
    let x = serve();
    let y = serve();
    assert_eq!(x.classes, y.classes, "per-class sections diverged");
    assert_eq!(x.jobs.len(), y.jobs.len());
    assert_eq!(goodput(&x).to_bits(), goodput(&y).to_bits());
}

/// The waiting queue is EDF within class bands, not FIFO: with one
/// full-width unit occupying the socket, four queued contenders are
/// admitted class band first, then earliest absolute deadline — an
/// interactive job with a *late* deadline still beats every standard
/// job, and a best-effort job with the *earliest* deadline goes last.
#[test]
fn admission_is_edf_within_class_bands_not_fifo() {
    let planner = AccessPlanner::paper_default();
    let width = planner.concurrency_budget().writer_threads;
    let config = ServeConfig::scheduled(&planner).with_slo_classes(SloPolicy::default_on());
    let mut server = QueryServer::new(shared_store(), config);
    let unit = JobSpec::ingest(UNIT_BYTES)
        .threads(width)
        .socket(SocketId(0))
        .tenant(1);

    let filler = server.submit(unit.slo(SloClass::BestEffort).arrival(0.0));
    // Submission order is deliberately the reverse of the expected
    // admission order; every contender arrives while the filler runs.
    let best_early = server.submit(unit.slo(SloClass::BestEffort).deadline(0.1).arrival(0.0001));
    let std_late = server.submit(unit.slo(SloClass::Standard).deadline(0.8).arrival(0.0002));
    let std_early = server.submit(unit.slo(SloClass::Standard).deadline(0.2).arrival(0.0003));
    let inter_late = server.submit(
        unit.slo(SloClass::Interactive)
            .deadline(0.9)
            .arrival(0.0004),
    );
    let report = server.run().expect("run succeeds");

    let admitted = |id| {
        let job = report
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job reported");
        assert!(job.outcome.is_completed(), "{} completes", job.id);
        job.admitted_at
    };
    let order = [
        admitted(filler),
        admitted(inter_late),
        admitted(std_early),
        admitted(std_late),
        admitted(best_early),
    ];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "admission order must be class band then deadline, got {order:?}"
    );
}

/// Class-aware ingress eviction: when the bounded queue is full and a
/// higher-class job arrives, the server evicts the worst queued
/// lower-class unit of the same tenant instead of refusing the
/// arrival — and with the SLO machinery off, the same situation sheds
/// the high-class arrival itself (the PR-5 FIFO bound, unchanged).
#[test]
fn full_queue_evicts_best_effort_to_admit_interactive() {
    let planner = AccessPlanner::paper_default();
    let width = planner.concurrency_budget().writer_threads;
    let mut overload = OverloadPolicy::surge();
    overload.queue_cap = 2;
    overload.retry_fraction = 0.0;
    let unit = JobSpec::ingest(UNIT_BYTES)
        .threads(width)
        .socket(SocketId(0))
        .tenant(1);
    let submit_all = |server: &mut QueryServer| {
        let filler = server.submit(unit.slo(SloClass::BestEffort).arrival(0.0));
        let q1 = server.submit(unit.slo(SloClass::BestEffort).arrival(0.0001));
        let q2 = server.submit(unit.slo(SloClass::BestEffort).arrival(0.0002));
        let hero = server.submit(
            unit.slo(SloClass::Interactive)
                .deadline(0.5)
                .arrival(0.0003),
        );
        (filler, q1, q2, hero)
    };

    // SLO on: the interactive arrival displaces a queued best-effort.
    let config = ServeConfig::scheduled(&planner)
        .with_overload(overload)
        .with_slo_classes(SloPolicy::default_on());
    let mut server = QueryServer::new(shared_store(), config);
    let (_, q1, q2, hero) = submit_all(&mut server);
    let report = server.run().expect("run succeeds");
    let job = |id| {
        report
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job reported")
    };
    assert!(
        job(hero).outcome.is_completed(),
        "the interactive arrival must be admitted and complete"
    );
    let evicted: Vec<_> = [q1, q2]
        .into_iter()
        .map(job)
        .filter(|j| j.outcome == JobOutcome::Shed(ShedReason::QueueFull))
        .collect();
    assert_eq!(evicted.len(), 1, "exactly one queued best-effort evicted");
    let victim = evicted[0];
    assert_eq!(victim.class, SloClass::BestEffort);
    assert_eq!(
        victim.finished_at,
        job(hero).arrival,
        "the eviction happens at the moment the higher-class job arrives"
    );
    assert_eq!(victim.exec_seconds, 0.0, "the victim never ran");

    // SLO off: byte-identical PR-5 behavior — the arrival is refused,
    // both queued best-effort units survive and complete.
    let config = ServeConfig::scheduled(&planner).with_overload(overload);
    let mut server = QueryServer::new(shared_store(), config);
    let (_, q1, q2, hero) = submit_all(&mut server);
    let report = server.run().expect("run succeeds");
    let job = |id| {
        report
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job reported")
    };
    assert_eq!(
        job(hero).outcome,
        JobOutcome::Shed(ShedReason::QueueFull),
        "without classes the FIFO bound sheds the arrival itself"
    );
    assert!(job(q1).outcome.is_completed());
    assert!(job(q2).outcome.is_completed());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: the retry ledger's acquisitions are released on every
    /// terminal path — completion, deadline blow, hopeless shed,
    /// queue-full refusal, class-aware eviction, power-loss retry and
    /// final failure — across random seeds, knobs and fault times. The
    /// scheduler itself asserts `ledger.outstanding() == 0` at loop
    /// exit (a debug assertion, armed in this build), so any leaked
    /// acquisition aborts the run; on top of that every job must leave
    /// the server through a terminal outcome at a finite time.
    #[test]
    fn retry_ledger_releases_on_every_terminal_path(
        seed in 0u64..1_000_000,
        queue_cap in 2u32..32,
        retry_milli in 0u32..1500,
        fault_milli in 10u32..100,
        fault_socket in 0u8..2,
    ) {
        let planner = AccessPlanner::paper_default();
        let knobs = Knobs {
            queue_cap,
            retry_fraction: f64::from(retry_milli) / 1000.0,
            ..Knobs::hand()
        };
        let fault_at = f64::from(fault_milli) / 1000.0;
        let faults = FaultPlan::from_events(vec![FaultEvent {
            start: fault_at,
            end: fault_at,
            kind: FaultKind::PowerLoss {
                socket: SocketId(fault_socket),
            },
        }]);
        let report = run(
            classed(&planner, knobs)
                .with_faults(faults)
                .with_open_loop(class_plan(&planner, 0.12, seed)),
        );
        let mut terminal = 0usize;
        for job in &report.jobs {
            prop_assert!(job.finished_at.is_finite(), "{} terminates", job.id);
            match job.outcome {
                JobOutcome::Completed | JobOutcome::Shed(_) | JobOutcome::Failed => {
                    terminal += 1;
                }
            }
        }
        prop_assert_eq!(terminal, report.jobs.len());
    }
}

//! Acceptance tests for the compositional chaos fuzzer: seeded
//! multi-fault schedules over the full serve/cluster stack, standing
//! invariants checked on every run, failures shrunk to minimal
//! reproducers.
//!
//! The planted regression the fuzzer must rediscover: anti-entropy
//! catch-up with verification disabled claims `clean` without evidence,
//! so a blackout victim whose media was damaged *mid catch-up* is handed
//! its key range back while still serving unverifiable blocks.

#![allow(clippy::unwrap_used)]

use pmem_crashmc::chaos::{fuzz_cluster, run_one, shrink_failure, ChaosFuzzConfig};
use pmem_sim::chaos::ChaosFault;

#[test]
fn clean_campaign_upholds_every_invariant() {
    // ≥ 100 seeded multi-fault schedules with verification on: zero
    // invariant violations.
    let cfg = ChaosFuzzConfig::smoke(11, 100);
    let outcome = fuzz_cluster(&cfg).expect("campaign runs");
    println!(
        "{} schedules, {} events, {} rejoin arcs, healthy p99 {:.4}s",
        outcome.schedules_run, outcome.events_run, outcome.rejoin_arcs, outcome.healthy_p99
    );
    for f in &outcome.failures {
        println!("iteration {} violated: {:?}", f.iteration, f.violations);
    }
    assert_eq!(outcome.schedules_run, 100);
    assert!(
        outcome.events_run >= 100,
        "schedules carry at least one event each"
    );
    assert!(
        outcome.rejoin_arcs > 0,
        "the campaign exercised blackout/rejoin arcs"
    );
    assert!(
        outcome.clean(),
        "verified stack must uphold every invariant: {:?}",
        outcome.failures
    );
}

#[test]
fn fuzzer_rediscovers_the_planted_regression_and_shrinks_it() {
    // Identical campaign with anti-entropy verification disabled: the
    // fuzzer must find schedules where an unverified catch-up hands
    // damaged blocks back.
    let cfg = ChaosFuzzConfig::smoke(11, 100).without_verification();
    let outcome = fuzz_cluster(&cfg).expect("campaign runs");
    assert!(
        !outcome.clean(),
        "the planted regression must be rediscovered within 100 schedules"
    );
    let failure = &outcome.failures[0];
    println!(
        "first failure: iteration {}, {} events, violations {:?}",
        failure.iteration,
        failure.schedule.len(),
        failure.violations
    );
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.contains("unverified") || v.contains("committed-data")),
        "the failure is the hand-back/data invariant, got {:?}",
        failure.violations
    );

    // Delta-debug the failing schedule to a minimal reproducer.
    let (minimal, violations) = shrink_failure(&cfg, failure).expect("shrink runs");
    println!(
        "shrunk {} events → {}: {:?} (violations {:?})",
        failure.schedule.len(),
        minimal.len(),
        minimal.events(),
        violations
    );
    assert!(
        !violations.is_empty(),
        "the shrunk schedule still reproduces the failure"
    );
    assert!(
        minimal.len() <= 3,
        "minimal reproducer has ≤ 3 fault events, got {}",
        minimal.len()
    );
    // The regression's shape: a blackout/rejoin arc plus media damage on
    // the same machine (poison landing mid catch-up is exactly the
    // window the disabled verification pass was for).
    let blackout_machine = minimal.events().iter().find_map(|e| match e.fault {
        ChaosFault::BlackoutRejoin { .. } => Some(e.machine % cfg.shards as usize),
        _ => None,
    });
    let poison_machines: Vec<usize> = minimal
        .events()
        .iter()
        .filter_map(|e| match e.fault {
            ChaosFault::MediaPoison { .. } => Some(e.machine % cfg.shards as usize),
            _ => None,
        })
        .collect();
    let blackout_machine = blackout_machine.expect("reproducer keeps the blackout/rejoin");
    assert!(
        poison_machines.contains(&blackout_machine),
        "reproducer pairs media poison with the blackout victim"
    );

    // With verification restored, the exact same minimal schedule is
    // harmless: the catch-all scrub re-fetches the damaged blocks.
    let fixed = ChaosFuzzConfig {
        verify_catch_up: true,
        ..cfg
    };
    let report = run_one(&fixed, &minimal).expect("fixed run");
    assert!(
        report.violations(outcome.healthy_p99).is_empty(),
        "verification closes the reproducer: {report}"
    );
}

#[test]
fn campaigns_are_seed_deterministic() {
    let cfg = ChaosFuzzConfig::smoke(23, 25).without_verification();
    let a = fuzz_cluster(&cfg).expect("campaign runs");
    let b = fuzz_cluster(&cfg).expect("campaign runs");
    assert_eq!(a.healthy_p99.to_bits(), b.healthy_p99.to_bits());
    assert_eq!(a.events_run, b.events_run);
    assert_eq!(a.rejoin_arcs, b.rejoin_arcs);
    assert_eq!(a.failures.len(), b.failures.len());
    for (fa, fb) in a.failures.iter().zip(&b.failures) {
        assert_eq!(fa.iteration, fb.iteration);
        assert_eq!(fa.schedule, fb.schedule);
        assert_eq!(fa.violations, fb.violations);
    }
    // The shrink replays bit for bit too.
    if let Some(f) = a.failures.first() {
        let (ma, va) = shrink_failure(&cfg, f).expect("shrink");
        let (mb, vb) = shrink_failure(&cfg, f).expect("shrink");
        assert_eq!(ma, mb);
        assert_eq!(va, vb);
    }
}

mod poison_during_catch_up {
    //! Satellite property: media poison injected *during* anti-entropy
    //! catch-up — after the hash exchange, before the blocks land —
    //! never lets an unverified block be handed back. The verified
    //! protocol either repairs it (re-fetch) or refuses
    //! (`is_fully_caught_up() == false`); it never claims success while
    //! the shard is dirty.

    use pmem_sim::topology::SocketId;
    use pmem_ssb::columnar::{Column, ColumnarFact};
    use pmem_ssb::datagen::generate;
    use pmem_store::Namespace;
    use proptest::prelude::*;

    fn fact_pair() -> (ColumnarFact, ColumnarFact) {
        let data = generate(0.001, 47);
        let ns = Namespace::devdax(SocketId(0), (data.lineorder.len() as u64) * 64 + (4 << 20));
        let fact = ColumnarFact::load(&ns, &data).expect("columnar load");
        let replica_ns =
            Namespace::devdax(SocketId(1), (data.lineorder.len() as u64) * 64 + (8 << 20));
        let replica = fact.replicate_to(&replica_ns).expect("replicate");
        (fact, replica)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn verified_catch_up_never_claims_clean_while_dirty(
            column in 0usize..9,
            offset_step in 0u64..64,
            len in 1u64..256,
        ) {
            let (mut fact, replica) = fact_pair();
            let column = Column::ALL[column];
            let bytes = fact.column_bytes(column).max(1);
            let offset = (offset_step * (bytes / 64).max(1)).min(bytes - 1);

            // The mid-catch-up window: hashes exchanged first, poison
            // lands second, blocks applied third.
            let diff = fact.diff_blocks(&replica).expect("diff");
            fact.inject_poison(column, offset, len);
            let report = fact.apply_diff(&replica, &diff, true).expect("apply");

            let actually_clean = fact.scrub().iter().all(|(_, r)| r.is_clean());
            if report.is_fully_caught_up() {
                // Claimed success ⇒ the shard really is clean and the
                // damage was re-fetched.
                prop_assert!(actually_clean, "claimed clean while dirty");
                prop_assert!(
                    report.refetched_blocks > 0,
                    "mid-catch-up damage must have been re-fetched"
                );
            } else {
                // Refusal ⇒ the report says so honestly.
                prop_assert!(!report.clean || report.unrepairable > 0);
            }
            // Either way: never `clean` claimed while the media is dirty.
            prop_assert!(!report.clean || actually_clean);
        }
    }
}

//! Acceptance tests for the overload-resilience tentpole: seeded
//! open-loop arrival processes drive the server at twice its sustained
//! write capacity, and the controlled configuration — bounded ingress
//! queues, weighted-fair tenant buckets, retry budget, circuit breakers,
//! brownout — keeps tail latency bounded and goodput at saturation while
//! the no-backpressure baseline's queues grow without bound.
//!
//! The workload is ingest-only on purpose: ingest jobs do no real-plane
//! work, so the surge (hundreds of generated arrivals) prices entirely in
//! the virtual plane and the suite stays cheap enough for CI.

use pmem_olap::planner::AccessPlanner;
use pmem_serve::{
    JobOutcome, JobSpec, OpenLoopPlan, OverloadPolicy, QueryServer, QueueReason, ResiliencePolicy,
    ServeConfig, ServeHealth, ServeReport, ShedReason, TenantLoad, Verdict,
};
use pmem_sim::des::arrivals::ArrivalProcess;
use pmem_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use pmem_sim::topology::SocketId;
use pmem_ssb::{EngineMode, SsbStore, StorageDevice};

/// The master seed: identical seeds must reproduce identical reports.
const SEED: u64 = 7;
const UNIT_BYTES: u64 = 64 << 20;
const HORIZON: f64 = 0.3;
/// Aggregate offered load as a multiple of machine write capacity.
const OVERLOAD: f64 = 2.0;

fn store() -> SsbStore {
    SsbStore::generate_and_load(0.005, 99, EngineMode::Aware, StorageDevice::PmemFsdax)
        .expect("store loads")
}

/// What the planner projects the whole machine sustains at the writer
/// admission caps — the capacity the surge is sized against.
fn machine_write_bw(planner: &AccessPlanner) -> f64 {
    let budget = planner.concurrency_budget();
    let (_, write) = planner.expected_mixed(0, budget.writer_threads);
    write.bytes_per_sec() * f64::from(planner.sockets().max(1))
}

/// Three tenants at weights 3/1/1, each offering one third of `OVERLOAD`×
/// capacity, one of them bursty — every tenant individually exceeds even
/// the largest weighted fair share, so fairness is genuinely contested.
fn surge_plan(planner: &AccessPlanner, horizon: f64) -> OpenLoopPlan {
    let total_rate = OVERLOAD * machine_write_bw(planner) / UNIT_BYTES as f64;
    let per_tenant = total_rate / 3.0;
    let template = JobSpec::ingest(UNIT_BYTES).threads(2);
    OpenLoopPlan::new(SEED, horizon)
        .tenant(TenantLoad::new(1, ArrivalProcess::poisson(per_tenant), template).weight(3.0))
        .tenant(TenantLoad::new(
            2,
            ArrivalProcess::poisson(per_tenant),
            template,
        ))
        .tenant(TenantLoad::new(
            3,
            ArrivalProcess::bursty(per_tenant * 2.0, 0.05, 0.05),
            template,
        ))
}

fn run(store: &SsbStore, config: ServeConfig) -> ServeReport {
    QueryServer::new(store, config).run().expect("run succeeds")
}

fn goodput(report: &ServeReport) -> f64 {
    let bytes: u64 = report
        .jobs
        .iter()
        .filter(|j| j.outcome.is_completed())
        .map(|j| j.bytes)
        .sum();
    bytes as f64 / report.makespan.max(1e-9)
}

#[test]
fn controlled_server_survives_twice_capacity_surge() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let plan = surge_plan(&planner, HORIZON);
    let report = run(
        &store,
        ServeConfig::surge(&planner).with_open_loop(plan.clone()),
    );
    assert!(report.jobs.len() > 50, "the surge actually surged");

    // Overload is refused at ingress, before work is wasted.
    assert!(
        report.shed_by(ShedReason::QueueFull) > 0,
        "2× overload must hit the ingress queue bound"
    );
    assert_eq!(report.health, ServeHealth::Overloaded);

    // Goodput stays within 10% of the single-socket saturation bandwidth
    // (in practice it lands near the full machine's: both sockets serve).
    let single_socket = machine_write_bw(&planner) / f64::from(planner.sockets().max(1));
    assert!(
        goodput(&report) >= 0.9 * single_socket,
        "goodput {:.2} GiB/s under 90% of single-socket {:.2} GiB/s",
        goodput(&report) / (1u64 << 30) as f64,
        single_socket / (1u64 << 30) as f64
    );

    // Bounded tails: the deepest a tenant's line can get is its queue cap,
    // and the slowest drain is the smallest weighted share of machine
    // bandwidth — so p99 end-to-end is bounded by draining a full queue at
    // that share (with 2× slack for burst alignment and float drift).
    let min_share = 1.0 / 5.0; // weights 3/1/1
    let drain = (report.jobs.len().min(8) as f64).max(1.0) * UNIT_BYTES as f64
        / (min_share * machine_write_bw(&planner));
    let bound = 2.0 * (drain + 0.050);
    for tenant in &report.tenants {
        if tenant.completed == 0 {
            continue;
        }
        assert!(
            tenant.end_to_end.p99 < bound,
            "tenant {} p99 e2e {:.3}s exceeds bound {:.3}s",
            tenant.tenant,
            tenant.end_to_end.p99,
            bound
        );
        assert!(tenant.queue_wait.p50 <= tenant.queue_wait.p99);
    }

    // Weighted fairness: every tenant's completed bytes reach at least
    // 80% of its weighted fair share of the total goodput.
    let total_completed: u64 = report.tenants.iter().map(|t| t.bytes_completed).sum();
    for (tenant, weight) in [(1u32, 3.0f64), (2, 1.0), (3, 1.0)] {
        let share = weight / 5.0;
        let got = report
            .tenant(tenant)
            .expect("tenant served")
            .bytes_completed;
        assert!(
            got as f64 >= 0.8 * share * total_completed as f64,
            "tenant {tenant} got {got} bytes, under 80% of fair share {:.0}",
            share * total_completed as f64
        );
    }

    // Brownout engaged while the waiting line was deep.
    assert!(
        report.brownout_seconds > 0.0,
        "a 2× surge must cross the brownout queue-depth threshold"
    );
}

#[test]
fn baseline_without_backpressure_collapses() {
    let store = store();
    let planner = AccessPlanner::paper_default();

    // Same offered load, no overload control: nothing is shed, the queue
    // absorbs everything, and waits grow with the horizon — the signature
    // of an open-loop system past capacity.
    let short = run(
        &store,
        ServeConfig::scheduled(&planner).with_open_loop(surge_plan(&planner, HORIZON)),
    );
    let long = run(
        &store,
        ServeConfig::scheduled(&planner).with_open_loop(surge_plan(&planner, 2.0 * HORIZON)),
    );
    assert_eq!(short.shed_jobs(), 0, "the baseline never sheds");
    assert!(
        long.mean_queue_wait_seconds() > 1.6 * short.mean_queue_wait_seconds(),
        "baseline waits must grow with the horizon: {:.4}s -> {:.4}s",
        short.mean_queue_wait_seconds(),
        long.mean_queue_wait_seconds()
    );

    // The tails tell the same story: the baseline's p99 tracks the
    // horizon (the longer the surge runs, the worse the tail — unbounded),
    // while the controlled server's p99 is set by its bounded queues and
    // stays flat no matter how long the surge lasts.
    let worst = |r: &ServeReport| {
        r.tenants
            .iter()
            .map(|t| t.end_to_end.p99)
            .fold(0.0f64, f64::max)
    };
    let controlled_short = run(
        &store,
        ServeConfig::surge(&planner).with_open_loop(surge_plan(&planner, HORIZON)),
    );
    let controlled_long = run(
        &store,
        ServeConfig::surge(&planner).with_open_loop(surge_plan(&planner, 2.0 * HORIZON)),
    );
    assert!(
        worst(&long) > 1.7 * worst(&short),
        "baseline p99 must grow with the horizon: {:.3}s -> {:.3}s",
        worst(&short),
        worst(&long)
    );
    assert!(
        worst(&controlled_long) < 1.3 * worst(&controlled_short),
        "controlled p99 must stay flat: {:.3}s -> {:.3}s",
        worst(&controlled_short),
        worst(&controlled_long)
    );
    assert!(
        worst(&long) > 2.5 * worst(&controlled_long),
        "baseline p99 {:.3}s must dwarf controlled p99 {:.3}s",
        worst(&long),
        worst(&controlled_long)
    );
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let config = || ServeConfig::surge(&planner).with_open_loop(surge_plan(&planner, HORIZON));
    let a = run(&store, config());
    let b = run(&store, config());
    assert_eq!(a.jobs.len(), b.jobs.len());
    assert_eq!(a.makespan, b.makespan, "bit-identical virtual timelines");
    assert_eq!(a.tenants, b.tenants, "per-tenant counters and percentiles");
    assert_eq!(a.shed_jobs(), b.shed_jobs());
    assert_eq!(a.breaker_trips, b.breaker_trips);
    assert_eq!(a.retry_budget_denied, b.retry_budget_denied);
    assert_eq!(a.brownout_seconds, b.brownout_seconds);
    assert_eq!(a.batch_window_used, b.batch_window_used);
    assert_eq!(a.read_bytes_moved, b.read_bytes_moved);
    assert_eq!(a.write_bytes_moved, b.write_bytes_moved);
}

#[test]
fn per_tenant_attribution_sums_to_report_totals() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let report = run(
        &store,
        ServeConfig::surge(&planner).with_open_loop(surge_plan(&planner, HORIZON)),
    );
    assert!(report.tenants.len() >= 3);

    let jobs: usize = report.tenants.iter().map(|t| t.jobs).sum();
    let completed: usize = report.tenants.iter().map(|t| t.completed).sum();
    let shed: usize = report.tenants.iter().map(|t| t.shed).sum();
    let failed: usize = report.tenants.iter().map(|t| t.failed).sum();
    assert_eq!(jobs, report.jobs.len());
    assert_eq!(
        completed,
        report
            .jobs
            .iter()
            .filter(|j| j.outcome.is_completed())
            .count()
    );
    assert_eq!(shed, report.shed_jobs());
    assert_eq!(failed, report.failed_jobs());

    let bytes: u64 = report.tenants.iter().map(|t| t.bytes_completed).sum();
    let expect_bytes: u64 = report
        .jobs
        .iter()
        .filter(|j| j.outcome.is_completed())
        .map(|j| j.bytes)
        .sum();
    assert_eq!(bytes, expect_bytes);

    let wait: f64 = report.tenants.iter().map(|t| t.queue_wait_total).sum();
    let expect_wait: f64 = report.jobs.iter().map(|j| j.queue_wait_seconds).sum();
    assert!((wait - expect_wait).abs() < 1e-6, "{wait} != {expect_wait}");
    let exec: f64 = report.tenants.iter().map(|t| t.exec_total).sum();
    let expect_exec: f64 = report.jobs.iter().map(|j| j.exec_seconds).sum();
    assert!((exec - expect_exec).abs() < 1e-6, "{exec} != {expect_exec}");
}

#[test]
fn retry_budget_stops_a_retry_storm() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    // A power loss while several ingests hold socket 0. With the retry
    // budget zeroed out, every victim's first retry is refused and shed
    // with the typed reason instead of re-queueing into the surge.
    let faults = FaultPlan::from_events(vec![FaultEvent {
        start: 0.010,
        end: 0.010,
        kind: FaultKind::PowerLoss {
            socket: SocketId(0),
        },
    }]);
    let mut overload = OverloadPolicy::surge();
    overload.retry_fraction = 0.0;
    overload.retry_floor = 0;
    let config = ServeConfig::scheduled(&planner)
        .with_faults(faults)
        .with_resilience(ResiliencePolicy::paper())
        .with_overload(overload);
    let mut server = QueryServer::new(&store, config);
    server.submit_all((0..4).map(|i| {
        JobSpec::ingest(256 << 20)
            .threads(2)
            .socket(SocketId(0))
            .arrival(0.001 * f64::from(i))
    }));
    let report = server.run().expect("run");
    assert!(report.retry_budget_denied > 0, "denials are counted");
    let shed = report.shed_by(ShedReason::RetryBudget);
    assert!(shed > 0, "budget-refused retries are shed, not queued");
    assert!(report
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::Shed(ShedReason::RetryBudget))
        .all(|j| j.retries == 0 && j.outcome.label() == "shed/retry"));
    assert_eq!(report.health, ServeHealth::Overloaded);
}

#[test]
fn circuit_breaker_trips_on_sustained_deadline_misses() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    // Socket 0 write-throttled to 5% for the whole run: ingests pinned
    // there with deadlines sized for a healthy socket blow them, and the
    // sustained misses trip the socket's breaker.
    let faults = FaultPlan::from_events(vec![FaultEvent {
        start: 0.0,
        end: 10.0,
        kind: FaultKind::WriteThrottle {
            socket: SocketId(0),
            factor: 0.05,
        },
    }]);
    let mut overload = OverloadPolicy::surge();
    overload.breaker.window = 4;
    overload.breaker.min_samples = 2;
    let mut resilience = ResiliencePolicy::paper();
    resilience.shed_hopeless = false; // let them run and miss
    let config = ServeConfig::scheduled(&planner)
        .with_faults(faults)
        .with_resilience(resilience)
        .with_overload(overload);
    let mut server = QueryServer::new(&store, config);
    server.submit_all((0..6).map(|i| {
        JobSpec::ingest(64 << 20)
            .threads(2)
            .socket(SocketId(0))
            .arrival(0.002 * f64::from(i))
            .deadline(0.060)
    }));
    let report = server.run().expect("run");
    assert!(
        report.breaker_trips >= 1,
        "sustained misses must trip the breaker (trips={})",
        report.breaker_trips
    );
    // While the breaker is open, pinned work queues with the typed reason.
    let circuit_queued = report.jobs.iter().any(|j| {
        j.verdicts.iter().any(|(_, v)| {
            matches!(
                v,
                Verdict::Queued {
                    reason: QueueReason::CircuitOpen
                }
            )
        })
    });
    assert!(circuit_queued, "an open breaker queues pinned arrivals");
    // Everything still terminates — no unit is lost in the breaker.
    for job in &report.jobs {
        assert!(job.finished_at.is_finite(), "{} terminates", job.id);
    }
}

#[test]
fn queue_full_sheds_happen_at_ingress_before_any_execution() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let mut overload = OverloadPolicy::surge();
    overload.queue_cap = 2;
    let config = ServeConfig::scheduled(&planner).with_overload(overload);
    let mut server = QueryServer::new(&store, config);
    // Ten simultaneous single-tenant ingests against a cap of 2: the
    // writer cap admits a couple, two wait, the rest are refused at the
    // door with zero queue wait and zero execution time.
    server.submit_all((0..10).map(|_| JobSpec::ingest(64 << 20).threads(2)));
    let report = server.run().expect("run");
    let shed: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::Shed(ShedReason::QueueFull))
        .collect();
    assert!(!shed.is_empty(), "the ingress bound must refuse arrivals");
    for job in &shed {
        assert_eq!(job.queue_wait_seconds, 0.0, "{} shed at ingress", job.id);
        assert_eq!(job.exec_seconds, 0.0);
        assert_eq!(job.outcome.label(), "shed/queue");
        assert!(job.stats.app_write_bytes == 0, "no device traffic priced");
    }
    // The bytes the shed jobs never moved are absent from the totals.
    let completed_bytes: u64 = report
        .jobs
        .iter()
        .filter(|j| j.outcome.is_completed())
        .map(|j| j.bytes)
        .sum();
    assert_eq!(report.write_bytes_moved, completed_bytes);
}

//! Acceptance test for the fault-injection tentpole: under a seeded
//! [`FaultPlan`], the resilient scheduler keeps meeting deadlines by
//! routing around the degraded socket, re-planning admission budgets, and
//! retrying power-loss victims — while the same schedule with resilience
//! disabled demonstrably misses.

use pmem_serve::{
    JobOutcome, JobSpec, QueryServer, ResiliencePolicy, ServeConfig, ServeHealth, ShedReason,
};
use pmem_sim::faults::{FaultEvent, FaultKind, FaultPlan, FaultScheduleConfig};
use pmem_sim::topology::SocketId;
use pmem_ssb::{EngineMode, SsbStore, StorageDevice};

/// The seed every run of this test uses: the whole point of the fault
/// subsystem is that this number fully determines the fault timeline.
/// Chosen so the generated throttle windows bury the whole arrival span
/// (see `assert_schedule_is_hostile`).
const FAULT_SEED: u64 = 13;

/// Concentrated hostility: socket 0 spends most of the horizon write-
/// throttled to 5–15 % of its WPQ drain rate, takes stall bursts, and
/// loses power once. Socket 1 stays healthy.
fn fault_config() -> FaultScheduleConfig {
    FaultScheduleConfig {
        victim: Some(SocketId(0)),
        write_throttles: 4,
        throttle_factor: (0.05, 0.15),
        stall_bursts: 2,
        power_losses: 1,
        ..FaultScheduleConfig::over(1.0)
    }
}

/// The chosen seed must bury the arrival window under throttle: every
/// deadline-carrying job that arrives while socket 0 looks healthy gets
/// round-robined onto it and the contrast the test asserts evaporates.
fn assert_schedule_is_hostile(plan: &FaultPlan) {
    let machine = pmem_sim::topology::Machine::paper_default();
    for step in 0..=40 {
        let t = ARRIVAL_START + (ARRIVAL_SPAN * step as f64) / 40.0;
        let s0 = plan.state_at(&machine, t).socket(SocketId(0));
        assert!(
            s0.write_scale < 0.5,
            "seed {FAULT_SEED:#x} leaves socket 0 healthy at t={t:.3}; pick another seed"
        );
    }
}

const JOBS: usize = 20;
const JOB_BYTES: u64 = 256 << 20;
const ARRIVAL_START: f64 = 0.10;
const ARRIVAL_SPAN: f64 = 0.30;
const DEADLINE: f64 = 0.40;

fn store() -> SsbStore {
    SsbStore::generate_and_load(0.005, 99, EngineMode::Aware, StorageDevice::PmemFsdax)
        .expect("store loads")
}

fn submit_fleet(server: &mut QueryServer<'_>) {
    for i in 0..JOBS {
        let arrival = ARRIVAL_START + ARRIVAL_SPAN * i as f64 / JOBS as f64;
        server.submit(
            JobSpec::ingest(JOB_BYTES)
                .threads(2)
                .arrival(arrival)
                .deadline(DEADLINE),
        );
    }
}

#[test]
fn identical_seeds_reproduce_identical_fault_timelines() {
    let cfg = fault_config();
    let a = FaultPlan::generate(FAULT_SEED, &cfg);
    let b = FaultPlan::generate(FAULT_SEED, &cfg);
    assert_eq!(a, b);
    assert!(!a.is_empty());
    assert_ne!(a, FaultPlan::generate(FAULT_SEED + 1, &cfg));
}

#[test]
fn resilient_scheduler_meets_deadlines_the_baseline_misses() {
    let plan = FaultPlan::generate(FAULT_SEED, &fault_config());
    assert_schedule_is_hostile(&plan);
    let store = store();

    // Baseline: same fault schedule, resilience off. Round-robin routing
    // lands half the writers on the throttled socket, nothing cancels or
    // re-plans, and power loss silently restarts whatever it hits.
    let mut baseline = QueryServer::new(
        &store,
        ServeConfig::scheduled(&pmem_olap::planner::AccessPlanner::paper_default())
            .with_faults(plan.clone()),
    );
    submit_fleet(&mut baseline);
    let base = baseline.run().expect("baseline run");

    // Resilient: deadlines enforced, degraded sockets avoided and
    // re-planned, hopeless jobs shed, power-loss victims retried.
    let mut resilient = QueryServer::new(
        &store,
        ServeConfig::scheduled(&pmem_olap::planner::AccessPlanner::paper_default())
            .with_faults(plan.clone())
            .with_resilience(ResiliencePolicy::paper()),
    );
    submit_fleet(&mut resilient);
    let good = resilient.run().expect("resilient run");

    eprintln!(
        "baseline: met {:.2} misses {} | resilient: met {:.2} misses {} shed {} failed {} \
         retried {} replans {} losses {} degraded {:.3}s health {}",
        base.deadline_met_fraction(),
        base.deadline_misses(),
        good.deadline_met_fraction(),
        good.deadline_misses(),
        good.shed_jobs(),
        good.failed_jobs(),
        good.retried_jobs(),
        good.replan_events,
        good.power_loss_events,
        good.degraded_seconds,
        good.health.label(),
    );

    assert!(
        good.deadline_met_fraction() >= 0.95,
        "resilient scheduler must complete >=95% of jobs within deadline, got {:.3}",
        good.deadline_met_fraction()
    );
    assert!(
        base.deadline_met_fraction() <= 0.75,
        "the unprotected baseline should demonstrably miss under the same faults, got {:.3}",
        base.deadline_met_fraction()
    );

    // The resilient report must surface what happened, not hide it.
    assert_ne!(good.health, ServeHealth::Healthy);
    assert!(good.replan_events > 0, "drifted socket budgets re-plan");
    assert_eq!(good.power_loss_events, 1, "the scheduled loss is counted");
    assert!(
        good.degraded_seconds > 0.0 || base.degraded_seconds > 0.0,
        "degraded wall time is accounted"
    );

    // Resilient routing concentrates the fleet on the healthy socket.
    let on_healthy = good.jobs.iter().filter(|j| j.socket == SocketId(1)).count();
    assert!(
        on_healthy > JOBS / 2,
        "resilient routing prefers the healthy socket ({on_healthy}/{JOBS})"
    );
}

#[test]
fn pinned_jobs_retry_with_backoff_and_hopeless_jobs_shed() {
    // Hand-built plan: socket 0 is write-throttled to 2% for 0.3 s. Jobs
    // pinned there cannot be routed to safety, so the deadline machinery
    // has to do the work: cancel, back off, retry, and eventually finish
    // once the throttle lifts.
    let plan = FaultPlan::from_events(vec![FaultEvent {
        start: 0.0,
        end: 0.3,
        kind: FaultKind::WriteThrottle {
            socket: SocketId(0),
            factor: 0.02,
        },
    }]);
    let store = store();
    let mut server = QueryServer::new(
        &store,
        ServeConfig::scheduled(&pmem_olap::planner::AccessPlanner::paper_default())
            .with_faults(plan)
            .with_resilience(ResiliencePolicy::paper()),
    );
    // Pinned to the sick socket with a deadline the throttle makes
    // unmeetable: first attempts blow, retries land after the window.
    let retrying = server.submit(
        JobSpec::ingest(256 << 20)
            .threads(2)
            .socket(SocketId(0))
            .deadline(0.15),
    );
    // A deadline no machine state could meet (solo healthy run needs
    // ~0.15 s): shed on arrival. Pinned to the healthy socket so the
    // verdict is Overloaded, not Degraded.
    let hopeless = server.submit(
        JobSpec::ingest(1 << 30)
            .threads(2)
            .socket(SocketId(1))
            .deadline(0.05),
    );
    let report = server.run().expect("run");

    let find = |id| {
        report
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job is reported")
    };
    let r = find(retrying);
    assert_eq!(r.outcome, JobOutcome::Completed, "retries rescue the job");
    assert!(r.retries >= 1, "the throttled attempt was cancelled");
    assert!(!r.met_deadline(), "but the original deadline is gone");
    let h = find(hopeless);
    assert_eq!(h.outcome, JobOutcome::Shed(ShedReason::Overloaded));
    assert_eq!(h.retries, 0, "shed jobs never run");

    assert_eq!(report.retried_jobs(), 1);
    assert_eq!(report.shed_jobs(), 1);
    assert_eq!(report.deadline_misses(), 2);
    assert_eq!(report.health, ServeHealth::Overloaded);
}

#[test]
fn power_loss_restarts_baseline_but_retries_resilient() {
    // One instantaneous power loss on socket 0 mid-run, otherwise healthy.
    let plan = FaultPlan::from_events(vec![FaultEvent {
        start: 0.02,
        end: 0.02,
        kind: FaultKind::PowerLoss {
            socket: SocketId(0),
        },
    }]);
    let store = store();
    let run = |resilience: ResiliencePolicy| {
        let mut server = QueryServer::new(
            &store,
            ServeConfig::scheduled(&pmem_olap::planner::AccessPlanner::paper_default())
                .with_faults(plan.clone())
                .with_resilience(resilience),
        );
        let id = server.submit(JobSpec::ingest(256 << 20).threads(2).socket(SocketId(0)));
        let report = server.run().expect("run");
        let job = report
            .jobs
            .iter()
            .find(|j| j.id == id)
            .cloned()
            .expect("job is reported");
        (report, job)
    };

    let (base_report, base_job) = run(ResiliencePolicy::disabled());
    let (res_report, res_job) = run(ResiliencePolicy::paper());

    assert_eq!(base_report.power_loss_events, 1);
    assert_eq!(res_report.power_loss_events, 1);
    assert_eq!(base_job.outcome, JobOutcome::Completed);
    assert_eq!(base_job.retries, 0, "the baseline only grinds");
    assert!(
        base_job.finished_at > 0.02,
        "progress was reset at the loss"
    );
    assert_eq!(res_job.outcome, JobOutcome::Completed);
    assert_eq!(res_job.retries, 1, "the resilient path retried the victim");
    assert_eq!(res_job.socket, SocketId(0), "pins survive the retry");
}

#[test]
fn identical_runs_produce_identical_virtual_outcomes() {
    let plan = FaultPlan::generate(FAULT_SEED, &fault_config());
    let store = store();
    let run = |store: &SsbStore| {
        let mut server = QueryServer::new(
            store,
            ServeConfig::scheduled(&pmem_olap::planner::AccessPlanner::paper_default())
                .with_faults(plan.clone())
                .with_resilience(ResiliencePolicy::paper()),
        );
        submit_fleet(&mut server);
        server.run().expect("run")
    };
    let a = run(&store);
    let b = run(&store);
    assert_eq!(a.makespan, b.makespan, "virtual time is deterministic");
    assert_eq!(a.replan_events, b.replan_events);
    assert_eq!(a.power_loss_events, b.power_loss_events);
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.socket, y.socket, "{} routed identically", x.id);
        assert_eq!(x.outcome, y.outcome, "{} same outcome", x.id);
        assert_eq!(x.retries, y.retries, "{} same retries", x.id);
        assert_eq!(x.finished_at, y.finished_at, "{} same finish", x.id);
    }
}

//! Property-based tests over the core data structures and models.

use std::collections::HashMap;

use proptest::prelude::*;

use pmem_olap::dash::{ChainedTable, DashTable, KvIndex};
use pmem_olap::sim::analytic::{BandwidthModel, CoherenceView};
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::topology::SocketId;
use pmem_olap::sim::workload::{AccessKind, Pattern, WorkloadSpec};
use pmem_olap::store::alloc::Arena;
use pmem_olap::store::{AccessHint, Namespace};

/// One operation against a key-value index.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Get),
    ]
}

fn check_index_against_model(index: &dyn KvIndex, ops: &[Op]) {
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                index.insert(*k, *v).expect("insert");
                model.insert(*k, *v);
            }
            Op::Remove(k) => {
                assert_eq!(index.remove(*k), model.remove(k), "remove({k})");
            }
            Op::Get(k) => {
                assert_eq!(index.get(*k), model.get(k).copied(), "get({k})");
            }
        }
        assert_eq!(index.len(), model.len());
    }
    for (k, v) in &model {
        assert_eq!(index.get(*k), Some(*v), "final get({k})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dash behaves exactly like a hash map under arbitrary op sequences.
    #[test]
    fn dash_matches_hashmap_model(ops in prop::collection::vec(op_strategy(512), 1..300)) {
        let ns = Namespace::devdax(SocketId(0), 64 << 20);
        let table = DashTable::new(&ns).expect("table");
        check_index_against_model(&table, &ops);
    }

    /// The chained table, despite its hostile layout, is also correct.
    #[test]
    fn chained_matches_hashmap_model(ops in prop::collection::vec(op_strategy(512), 1..300)) {
        let ns = Namespace::devdax(SocketId(0), 64 << 20);
        let table = ChainedTable::with_capacity(&ns, 64).expect("table");
        check_index_against_model(&table, &ops);
    }

    /// Dash survives a crash at any point: all published records intact.
    #[test]
    fn dash_crash_preserves_published_records(
        keys in prop::collection::btree_set(0u64..10_000, 1..500),
        crash_after in 0usize..500,
    ) {
        let ns = Namespace::devdax(SocketId(0), 128 << 20);
        let table = DashTable::new(&ns).expect("table");
        let keys: Vec<u64> = keys.into_iter().collect();
        let crash_at = crash_after.min(keys.len());
        for k in &keys[..crash_at] {
            table.insert(*k, k ^ 0xFF).expect("insert");
        }
        table.simulate_crash();
        prop_assert_eq!(table.recount(), crash_at);
        for k in &keys[..crash_at] {
            prop_assert_eq!(table.get(*k), Some(k ^ 0xFF));
        }
    }

    /// Arena allocations never overlap, stay in bounds, and respect
    /// alignment; freed extents are reusable.
    #[test]
    fn arena_allocations_are_disjoint(
        requests in prop::collection::vec((1u64..4096, 0u32..4), 1..60),
    ) {
        let mut arena = Arena::new(1 << 20);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (len, align_pow) in requests {
            let align = 1u64 << (align_pow * 2); // 1, 4, 16, 64
            match arena.alloc(len, align) {
                Ok(off) => {
                    prop_assert_eq!(off % align, 0, "alignment violated");
                    prop_assert!(off + len <= 1 << 20, "out of bounds");
                    for (o, l) in &live {
                        prop_assert!(
                            off + len <= *o || *o + *l <= off,
                            "overlap: [{}, {}) vs [{}, {})", off, off + len, o, o + l
                        );
                    }
                    live.push((off, len));
                }
                Err(_) => {
                    // Free everything and ensure a retry of a small request
                    // succeeds: nothing leaked.
                    for (o, l) in live.drain(..) {
                        arena.free(o, l);
                    }
                    prop_assert!(arena.alloc(1, 1).is_ok());
                    let a = arena.allocated();
                    prop_assert_eq!(a, 1);
                    arena.reset();
                }
            }
        }
    }

    /// Region persistence model: after arbitrary store/flush interleavings
    /// and a crash, exactly the fenced bytes survive.
    #[test]
    fn region_crash_semantics_match_a_shadow_model(
        ops in prop::collection::vec(
            (0u64..8, any::<u8>(), 0u8..4),
            1..80,
        ),
    ) {
        const LINES: u64 = 8;
        let ns = Namespace::devdax(SocketId(0), 1 << 20);
        let mut region = ns.alloc_region(LINES * 64).expect("region");
        // Model: current visible bytes + persisted bytes per line.
        let mut visible = vec![0u8; (LINES * 64) as usize];
        let mut persisted = vec![0u8; (LINES * 64) as usize];
        let mut dirty = vec![false; LINES as usize]; // cached, unflushed
        let mut pending = vec![false; LINES as usize]; // awaiting sfence

        for (line, byte, action) in ops {
            let off = line * 64;
            match action {
                0 => {
                    // cached store of a full line
                    region.write(off, &[byte; 64]);
                    visible[off as usize..(off + 64) as usize].fill(byte);
                    dirty[line as usize] = true;
                    pending[line as usize] = false;
                }
                1 => {
                    // ntstore of a full line
                    region.ntstore(off, &[byte; 64]);
                    visible[off as usize..(off + 64) as usize].fill(byte);
                    dirty[line as usize] = false;
                    pending[line as usize] = true;
                }
                2 => {
                    // clwb the line
                    region.clwb(off, 64);
                    if dirty[line as usize] {
                        dirty[line as usize] = false;
                        pending[line as usize] = true;
                    }
                }
                _ => {
                    region.sfence();
                    for l in 0..LINES as usize {
                        if pending[l] {
                            pending[l] = false;
                            persisted[l * 64..(l + 1) * 64]
                                .copy_from_slice(&visible[l * 64..(l + 1) * 64]);
                        }
                    }
                }
            }
        }
        region.crash();
        for l in 0..LINES as usize {
            let expect = if dirty[l] || pending[l] {
                &persisted[l * 64..(l + 1) * 64]
            } else {
                // Neither dirty nor pending: visible == persisted.
                &visible[l * 64..(l + 1) * 64]
            };
            let got = region.read(l as u64 * 64, 64, AccessHint::Sequential);
            prop_assert_eq!(got, expect, "line {} after crash", l);
        }
    }

    /// Sub-cache-line stores, partial flushes, fences, and crashes at
    /// arbitrary interleavings: [`is_persisted`] must agree, line by
    /// line, with what a crash actually leaves on media — including the
    /// sub-64 B case where a small store taints its whole cache line and
    /// neighbouring never-written bytes report unpersisted with it.
    #[test]
    fn is_persisted_agrees_with_post_crash_contents(
        ops in prop::collection::vec(
            (0u64..512, 1u64..96, any::<u8>(), 0u8..5),
            1..120,
        ),
    ) {
        const LINES: usize = 8;
        const BYTES: u64 = LINES as u64 * 64;
        let ns = Namespace::devdax(SocketId(0), 1 << 20);
        let mut region = ns.alloc_region(BYTES).expect("region");
        let mut visible = vec![0u8; BYTES as usize];
        let mut persisted = vec![0u8; BYTES as usize];
        let mut dirty = [false; LINES];
        let mut pending = [false; LINES];

        for (raw_off, raw_len, byte, action) in ops {
            let off = raw_off % BYTES;
            let len = raw_len.min(BYTES - off);
            let first = (off / 64) as usize;
            let last = ((off + len - 1) / 64) as usize;
            match action {
                0 => {
                    // Cached store, usually smaller than a line.
                    region.write(off, &vec![byte; len as usize]);
                    visible[off as usize..(off + len) as usize].fill(byte);
                    for l in first..=last {
                        pending[l] = false;
                        dirty[l] = true;
                    }
                }
                1 => {
                    region.ntstore(off, &vec![byte; len as usize]);
                    visible[off as usize..(off + len) as usize].fill(byte);
                    for l in first..=last {
                        dirty[l] = false;
                        pending[l] = true;
                    }
                }
                2 => {
                    region.clwb(off, len);
                    for l in first..=last {
                        if dirty[l] {
                            dirty[l] = false;
                            pending[l] = true;
                        }
                    }
                }
                3 => {
                    region.sfence();
                    for l in 0..LINES {
                        if pending[l] {
                            pending[l] = false;
                            persisted[l * 64..(l + 1) * 64]
                                .copy_from_slice(&visible[l * 64..(l + 1) * 64]);
                        }
                    }
                }
                _ => {
                    // Mid-sequence power loss; the run then continues on
                    // whatever survived.
                    region.crash();
                    for l in 0..LINES {
                        if dirty[l] || pending[l] {
                            dirty[l] = false;
                            pending[l] = false;
                            visible[l * 64..(l + 1) * 64]
                                .copy_from_slice(&persisted[l * 64..(l + 1) * 64]);
                        }
                    }
                }
            }
            // The predicate agrees with the model per line…
            for l in 0..LINES {
                prop_assert_eq!(
                    region.is_persisted(l as u64 * 64, 64),
                    !dirty[l] && !pending[l],
                    "line {} disagrees after action {}", l, action
                );
            }
            // …and for the exact (possibly sub-line) range just touched.
            let range_clean = (first..=last).all(|l| !dirty[l] && !pending[l]);
            prop_assert_eq!(region.is_persisted(off, len), range_clean);
            // Visible contents always track the model.
            prop_assert_eq!(
                region.read(0, BYTES, AccessHint::Sequential),
                &visible[..]
            );
        }
        // Final crash: tainted lines revert to their persisted image,
        // clean lines keep their visible (== persisted) contents.
        region.crash();
        for l in 0..LINES {
            let expect = if dirty[l] || pending[l] {
                &persisted[l * 64..(l + 1) * 64]
            } else {
                &visible[l * 64..(l + 1) * 64]
            };
            let got = region.read(l as u64 * 64, 64, AccessHint::Sequential);
            prop_assert_eq!(got, expect, "line {} after the final crash", l);
        }
    }

    /// The bandwidth model is total, finite, and physically bounded over
    /// the whole configuration space.
    #[test]
    fn bandwidth_model_is_bounded(
        access_pow in 6u32..22,
        threads in 1u32..40,
        write in any::<bool>(),
        grouped in any::<bool>(),
        device_pick in 0u8..3,
    ) {
        let device = match device_pick {
            0 => DeviceClass::Pmem,
            1 => DeviceClass::Dram,
            _ => DeviceClass::Ssd,
        };
        let access = 1u64 << access_pow;
        let mut spec = if write {
            WorkloadSpec::seq_write(device, access, threads)
        } else {
            WorkloadSpec::seq_read(device, access, threads)
        };
        if grouped {
            spec = spec.pattern(Pattern::SequentialGrouped);
        }
        let bw = BandwidthModel::paper_default()
            .bandwidth(&spec, CoherenceView::WARM)
            .gib_s();
        prop_assert!(bw.is_finite() && bw > 0.0, "bw {bw}");
        let cap = match device {
            DeviceClass::Dram => 110.0,
            DeviceClass::Pmem => 45.0,
            DeviceClass::Ssd => 3.5,
        };
        prop_assert!(bw <= cap, "{device:?} {bw} exceeds physical cap");
    }

    /// Random access never beats sequential access at the same geometry.
    #[test]
    fn random_never_beats_sequential(
        access_pow in 6u32..13,
        threads in 1u32..37,
        write in any::<bool>(),
    ) {
        let device = DeviceClass::Pmem;
        let access = 1u64 << access_pow;
        let make = |pattern| {
            let mut s = if write {
                WorkloadSpec::seq_write(device, access, threads)
            } else {
                WorkloadSpec::seq_read(device, access, threads)
            };
            s = s.pattern(pattern);
            BandwidthModel::paper_default()
                .bandwidth(&s, CoherenceView::WARM)
                .gib_s()
        };
        let seq = make(Pattern::SequentialIndividual);
        let rand = make(Pattern::Random { region_bytes: 2 << 30 });
        prop_assert!(rand <= seq * 1.02, "random {rand} beats sequential {seq}");
    }

    /// Mixed workloads never exceed the read-only maximum (§5.1).
    #[test]
    fn mixed_total_bounded_by_read_peak(writers in 1u32..8, readers in 1u32..31) {
        let model = BandwidthModel::paper_default();
        let mixed = model.mixed(&pmem_olap::sim::workload::MixedSpec::paper(
            DeviceClass::Pmem,
            writers,
            readers,
        ));
        let total = mixed.total().gib_s();
        prop_assert!(total <= 41.0, "mixed total {total}");
    }

    /// The per-worker log is prefix-durable: after appends and a crash at
    /// an arbitrary point, recovery returns exactly the fenced prefix with
    /// intact payloads.
    #[test]
    fn worker_log_is_prefix_durable(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 1..64),
    ) {
        let ns = Namespace::devdax(SocketId(0), 16 << 20);
        let mut log = pmem_olap::store::WorkerLog::create(&ns, 64).expect("log");
        for p in &payloads {
            log.append(p).expect("append");
        }
        let survivors = log.crash_and_recover();
        prop_assert_eq!(survivors, payloads.len() as u64);
        for (i, p) in payloads.iter().enumerate() {
            let record = log.read(i as u64);
            prop_assert_eq!(record.as_deref(), Some(p.as_slice()));
        }
        // Records appended after recovery chain on correctly.
        log.append(b"tail").expect("append");
        let tail = log.read(survivors);
        prop_assert_eq!(tail.as_deref(), Some(&b"tail"[..]));
    }

    /// Partitioning schemes conserve rows and bound imbalance by the hot
    /// fraction they were fed.
    #[test]
    fn partitioning_conserves_rows(hot_pct in 0u32..60, sockets in 2u32..5) {
        use pmem_olap::ssb::partition::{evaluate_scheme, inject_customer_skew, Scheme};
        let mut rows = pmem_olap::ssb::datagen::generate(0.003, 9).lineorder;
        if hot_pct > 0 {
            inject_customer_skew(&mut rows, hot_pct as f64 / 100.0);
        }
        let sim = pmem_olap::sim::Simulation::paper_default();
        for scheme in Scheme::ALL {
            let report = evaluate_scheme(&sim, &rows, scheme, sockets, 18);
            prop_assert_eq!(report.rows.iter().sum::<u64>(), rows.len() as u64);
            prop_assert!(report.imbalance >= 1.0 - 1e-9);
            prop_assert!(report.imbalance <= sockets as f64 + 1e-9);
            prop_assert!(report.skew_penalty() >= 1.0 - 1e-9);
        }
    }

    /// Traffic patterns conserve volume for any thread/size combination.
    #[test]
    fn traffic_conserves_volume(
        threads in 1u32..9,
        access_pow in 6u32..13,
    ) {
        let ns = Namespace::devdax(SocketId(0), 64 << 20);
        let access = 1u64 << access_pow;
        let cfg = {
            let mut c = pmem_olap::membench::traffic::TrafficConfig::new(
                AccessKind::Read,
                Pattern::SequentialGrouped,
                access,
                threads,
            );
            c.volume = 1 << 20;
            c
        };
        let report = pmem_olap::membench::traffic::run_traffic(&ns, &cfg).expect("traffic");
        prop_assert_eq!(report.bytes, 1 << 20);
        prop_assert_eq!(
            report.checksum,
            pmem_olap::membench::traffic::expected_checksum(1 << 20)
        );
    }
}

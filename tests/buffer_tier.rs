//! Acceptance tests for the DRAM hot-tier buffer manager (`pmem-buffer`)
//! and its wiring through the stack: optimistic lock coupling never
//! exposes a torn frame, buffered scans agree with plain scans while
//! splitting traffic between DRAM and PMEM, and a seeded Zipfian
//! multi-tenant serving run beats pure PMEM at the same bandwidth budget
//! with a flat p99 — with the hit-rate-vs-latency curve in the report.

use proptest::prelude::*;

use pmem_buffer::{BufferPool, FrameState, ZipfSampler, FRAME_BYTES};
use pmem_olap::planner::AccessPlanner;
use pmem_serve::{HotTierPolicy, JobSpec, OverloadPolicy, QueryServer, ServeConfig, ServeReport};
use pmem_sim::topology::SocketId;
use pmem_ssb::columnar::{Column, ColumnarFact};
use pmem_ssb::timing::{tiered_scan_seconds, TimingConfig};
use pmem_ssb::{datagen, EngineMode, QueryId, SsbStore, StorageDevice};
use pmem_store::Namespace;

/// The master seed: identical seeds must reproduce identical reports.
const SEED: u64 = 0x0b0f_fe12;

fn store() -> SsbStore {
    SsbStore::generate_and_load(0.01, 4242, EngineMode::Aware, StorageDevice::PmemFsdax)
        .expect("store generates and loads")
}

fn columnar() -> (ColumnarFact, Namespace) {
    let data = datagen::generate(0.003, 11);
    let ns = Namespace::devdax(SocketId(0), 64 << 20);
    let fact = ColumnarFact::load(&ns, &data).expect("columnar load");
    (fact, ns)
}

fn scan_sum(fact: &ColumnarFact, projection: &[Column], threads: u32) -> u64 {
    fact.scan(
        projection,
        threads,
        || 0u64,
        |acc, t| *acc += t.revenue as u64 + t.quantity as u64,
    )
    .into_iter()
    .sum()
}

fn scan_buffered_sum(
    fact: &ColumnarFact,
    pool: &BufferPool,
    projection: &[Column],
    threads: u32,
) -> u64 {
    fact.scan_buffered(
        pool,
        projection,
        threads,
        || 0u64,
        |acc, t| *acc += t.revenue as u64 + t.quantity as u64,
    )
    .expect("buffered scan")
    .into_iter()
    .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// OLC torn-frame safety over interleaved schedules: replay any
    /// interleaving of optimistic readers, shared lockers, an exclusive
    /// writer (whose in-progress write leaves an odd "torn" payload), and
    /// clock marks against one frame word. A validated optimistic read
    /// must never have overlapped a write — neither a torn intermediate
    /// nor a committed version change slips through validation.
    #[test]
    fn olc_validation_rejects_every_interleaved_write(
        ops in prop::collection::vec((0u32..8, 0u32..4), 1..96)
    ) {
        let state = FrameState::new();
        // Frames are born evicted; publish version 0 once.
        prop_assert!(state.try_lock_x());
        state.unlock_x();

        let mut payload: u64 = 0; // even = consistent, odd = torn
        let mut writer_locked = false;
        let mut optimistic: [Option<(u64, u64)>; 4] = [None; 4];
        let mut shared: [bool; 4] = [false; 4];
        for (op, who) in ops {
            let who = who as usize;
            match op {
                // Optimistic read begins: snapshot word + payload.
                0 => optimistic[who] = state.optimistic_pre().map(|w| (w, payload)),
                // Optimistic read ends: validation must imply consistency.
                1 => {
                    if let Some((pre, snap)) = optimistic[who].take() {
                        if state.optimistic_validate(pre) {
                            prop_assert_eq!(payload % 2, 0, "validated a torn frame");
                            prop_assert_eq!(payload, snap, "validated a stale snapshot");
                        }
                    }
                }
                // Writer locks and starts a (torn) write.
                2 => {
                    if !writer_locked && state.try_lock_x() {
                        writer_locked = true;
                        payload += 1;
                    }
                }
                // Writer completes and publishes.
                3 => {
                    if writer_locked {
                        payload += 1;
                        state.unlock_x();
                        writer_locked = false;
                    }
                }
                // Pessimistic shared readers always see consistent data.
                4 => {
                    if !shared[who] && state.try_lock_s() {
                        shared[who] = true;
                        prop_assert_eq!(payload % 2, 0, "s-lock admitted mid-write");
                    }
                }
                5 => {
                    if shared[who] {
                        state.unlock_s();
                        shared[who] = false;
                    }
                }
                // Clock hand marks/unmarks; neither invalidates readers.
                6 => {
                    let _ = state.try_mark();
                }
                7 => {
                    let _ = state.clear_mark();
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn buffered_scan_matches_plain_scan_and_splits_traffic() {
    let (fact, _ns) = columnar();
    let projection = [Column::Revenue, Column::Quantity];
    let plain = scan_sum(&fact, &projection, 2);

    // Budget holds the whole projection: both columns are admitted.
    let budget: u64 = projection
        .iter()
        .map(|&c| fact.column_bytes(c).div_ceil(FRAME_BYTES) * FRAME_BYTES)
        .sum();
    let pool = BufferPool::new(SocketId(0), budget).expect("pool");

    let cold = scan_buffered_sum(&fact, &pool, &projection, 2);
    assert_eq!(cold, plain, "cold buffered scan result");
    let after_cold = pool.stats();
    assert!(after_cold.fills > 0, "cold scan fills frames");
    assert!(after_cold.miss_bytes > 0, "cold scan misses charge PMEM");

    let warm = scan_buffered_sum(&fact, &pool, &projection, 2);
    assert_eq!(warm, plain, "warm buffered scan result");
    let after_warm = pool.stats();
    let hit_delta = after_warm.hit_bytes - after_cold.hit_bytes;
    let miss_delta = after_warm.miss_bytes - after_cold.miss_bytes;
    assert!(hit_delta > 0, "warm scan hits DRAM");
    assert_eq!(miss_delta, 0, "fully admitted projection re-reads nothing");

    // The frames live in a tracked DRAM namespace: hits are charged there.
    let dram = pool.dram_traffic();
    assert!(dram.read_bytes() >= hit_delta, "DRAM lane carries the hits");

    // And the cost model prices the split cheaper than pure PMEM.
    let planner = AccessPlanner::paper_default();
    let cfg = TimingConfig::paper_aware(StorageDevice::PmemFsdax);
    let total = hit_delta + miss_delta;
    let pure = tiered_scan_seconds(planner.simulation(), &cfg, total, 0);
    let split = tiered_scan_seconds(planner.simulation(), &cfg, miss_delta, hit_delta);
    assert!(
        split < pure,
        "tiered pricing must beat pure PMEM: {split} vs {pure}"
    );
}

#[test]
fn concurrent_scans_survive_memory_pressure_and_eviction() {
    let (fact, _ns) = columnar();
    let projection = [Column::Revenue, Column::ExtendedPrice, Column::Discount];
    let plain = scan_sum(&fact, &projection, 4);

    let budget: u64 = projection
        .iter()
        .map(|&c| fact.column_bytes(c).div_ceil(FRAME_BYTES) * FRAME_BYTES)
        .sum();
    let pool = BufferPool::new(SocketId(0), budget).expect("pool");
    assert_eq!(scan_buffered_sum(&fact, &pool, &projection, 4), plain);
    assert_eq!(scan_buffered_sum(&fact, &pool, &projection, 4), plain);
    let occupied_before = pool.occupied();
    assert!(occupied_before > 0, "warm pool holds frames");

    // Brownout signal: the tier shrinks, clock eviction trims residency,
    // and concurrent scans stay correct against the smaller pool.
    pool.set_pressure(0.3);
    assert!(
        pool.effective_budget() < budget,
        "pressure shrinks the tier"
    );
    assert!(pool.occupied() < occupied_before, "eviction trimmed frames");
    assert!(
        pool.stats().evictions > 0,
        "clock hand evicted under pressure"
    );
    assert_eq!(scan_buffered_sum(&fact, &pool, &projection, 4), plain);

    // Pressure lifts: the tier re-grows and warms back up.
    pool.set_pressure(1.0);
    assert_eq!(pool.effective_budget(), pool.budget());
    assert_eq!(scan_buffered_sum(&fact, &pool, &projection, 4), plain);
    assert!(pool.stats().hit_rate() > 0.0);
}

/// Seeded Zipfian multi-tenant query mix: 3 tenants, queries drawn from a
/// Zipf(0.99) popularity ranking, staggered arrivals, pinned to socket 0
/// so the working set concentrates where the DRAM budget lands.
fn zipfian_jobs() -> Vec<JobSpec> {
    let queries = [
        QueryId::Q1_1,
        QueryId::Q1_2,
        QueryId::Q1_3,
        QueryId::Q2_1,
        QueryId::Q3_1,
        QueryId::Q4_1,
    ];
    let sampler = ZipfSampler::new(queries.len() as u64, 0.99);
    let mut rng = SEED;
    (0..24)
        .map(|i| {
            let q = queries[sampler.sample(&mut rng) as usize];
            JobSpec::query(q)
                .threads(4)
                .tenant(1 + (i % 3) as u32)
                .socket(SocketId(0))
                .arrival(i as f64 * 0.0005)
        })
        .collect()
}

fn run_with(store: &SsbStore, planner: &AccessPlanner, tier: HotTierPolicy) -> ServeReport {
    let mut server = QueryServer::new(store, ServeConfig::scheduled(planner).with_hot_tier(tier));
    server.submit_all(zipfian_jobs());
    server.run().expect("serve run")
}

fn goodput(report: &ServeReport) -> f64 {
    let bytes: u64 = report
        .jobs
        .iter()
        .filter(|j| j.outcome.is_completed())
        .map(|j| j.bytes)
        .sum();
    bytes as f64 / report.makespan.max(1e-9)
}

fn e2e_p99(report: &ServeReport) -> f64 {
    let e2e: Vec<f64> = report
        .jobs
        .iter()
        .filter(|j| j.outcome.is_completed())
        .map(|j| (j.finished_at - j.arrival).max(0.0))
        .collect();
    pmem_serve::Percentiles::of(&e2e).p99
}

#[test]
fn zipfian_hot_tier_beats_pure_pmem_with_flat_p99() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    // The workload's footprint (both fact partitions plus auxiliaries)
    // exceeds this budget, so admission and partial caching are exercised.
    let budget = store.fact_bytes() / 2;

    let pure = run_with(&store, &planner, HotTierPolicy::disabled());
    assert!(pure.hot_tier.is_none(), "disabled tier reports nothing");
    let tiered = run_with(&store, &planner, HotTierPolicy::with_budget(budget));
    let tier = tiered.hot_tier.as_ref().expect("tier report present");

    // Everything completes in both runs; the buffered run is faster.
    assert_eq!(pure.shed_jobs() + pure.failed_jobs(), 0);
    assert_eq!(tiered.shed_jobs() + tiered.failed_jobs(), 0);
    assert!(tier.hit_rate > 0.05, "hit rate {}", tier.hit_rate);
    assert!(tier.hit_bytes > 0);
    assert!(tier.admitted_bytes <= budget, "plan respects the budget");
    assert!(
        goodput(&tiered) > goodput(&pure) * 1.02,
        "buffered goodput {} must beat pure PMEM {}",
        goodput(&tiered),
        goodput(&pure)
    );
    assert!(
        e2e_p99(&tiered) <= e2e_p99(&pure) * 1.01 + 1e-9,
        "p99 stays flat: {} vs {}",
        e2e_p99(&tiered),
        e2e_p99(&pure)
    );

    // Per-tenant hit rates are exposed, and reads actually hit.
    assert!(tiered.tenants.iter().any(|t| t.hit_rate > 0.0));
    assert!(tiered.jobs.iter().any(|j| j.hit_rate > 0.0));

    // The hit-rate-vs-latency curve: 5 ascending budget points, the first
    // being the pure-PMEM baseline; hit rate grows with budget and
    // latency never worsens as the tier grows.
    assert_eq!(tier.curve.len(), 5);
    assert_eq!(tier.curve[0].budget_bytes, 0);
    assert_eq!(tier.curve[0].hit_rate, 0.0, "zero budget = pure PMEM");
    for pair in tier.curve.windows(2) {
        assert!(pair[0].budget_scale < pair[1].budget_scale);
        assert!(
            pair[1].hit_rate >= pair[0].hit_rate - 1e-12,
            "hit rate monotone in budget"
        );
        assert!(
            pair[1].e2e_p99 <= pair[0].e2e_p99 * 1.01 + 1e-9,
            "p99 must not grow with the tier: {} -> {}",
            pair[0].e2e_p99,
            pair[1].e2e_p99
        );
    }
    let first = tier.curve.first().expect("baseline point");
    let last = tier.curve.last().expect("full-budget point");
    assert!(last.hit_rate > first.hit_rate, "budget buys hits");
    assert!(last.goodput_gib_s > first.goodput_gib_s, "and goodput");

    // Determinism: the same seed reproduces the same report.
    let again = run_with(&store, &planner, HotTierPolicy::with_budget(budget));
    assert_eq!(tiered.makespan, again.makespan);
    let tier_again = again.hot_tier.as_ref().expect("tier report");
    assert_eq!(tier.hit_bytes, tier_again.hit_bytes);
    assert_eq!(tier.curve, tier_again.curve);
}

#[test]
fn brownout_shrinks_the_hot_tier_before_shedding() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let mut overload = OverloadPolicy::surge();
    // Shallow brownout threshold so a burst of ten queries trips it.
    overload.brownout.queue_high = 2;
    let mut config = ServeConfig::scheduled(&planner)
        .with_overload(overload)
        .with_hot_tier(HotTierPolicy::with_budget(store.fact_bytes() / 2).shrink(0.25));
    // No coalescing: each query stays its own unit so the line runs deep.
    config.batch_window = 0.0;

    let mut server = QueryServer::new(&store, config);
    let queries = [
        QueryId::Q1_1,
        QueryId::Q1_2,
        QueryId::Q1_3,
        QueryId::Q2_1,
        QueryId::Q3_1,
    ];
    for i in 0..10u32 {
        server.submit(
            JobSpec::query(queries[(i % 5) as usize])
                .threads(6)
                .socket(SocketId(0))
                .tenant(1 + i % 2),
        );
    }
    let report = server.run().expect("serve run");

    assert!(report.brownout_seconds > 0.0, "the burst browned out");
    let tier = report.hot_tier.as_ref().expect("tier report");
    assert!(
        tier.shrunk_seconds > 0.0,
        "memory pressure shrank the tier before shedding"
    );
    assert!(tier.shrunk_seconds <= report.brownout_seconds + 1e-9);
    assert!(tier.hit_bytes > 0, "the shrunken tier still serves hits");
    assert_eq!(report.shed_jobs(), 0, "shrinking came before shedding");
    assert_eq!(report.failed_jobs(), 0);
}

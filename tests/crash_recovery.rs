//! Crash/recovery integration: the persistence guarantees the storage layer
//! sells must hold through the structures built on top of it.

use proptest::prelude::*;

use pmem_olap::dash::{ChainedTable, DashTable, KvIndex};
use pmem_olap::sim::topology::SocketId;
use pmem_olap::ssb::checkpoint::{CheckpointStore, DATA_OFF, TUPLE_BYTES};
use pmem_olap::ssb::columnar::ColTuple;
use pmem_olap::ssb::storage::{EngineMode, SsbStore, StorageDevice};
use pmem_olap::store::log::{LOG_SLOT, MAX_PAYLOAD};
use pmem_olap::store::{AccessHint, Namespace, WorkerLog};

#[test]
fn dash_never_exposes_half_written_records_after_a_crash() {
    let ns = Namespace::devdax(SocketId(0), 256 << 20);
    let table = DashTable::new(&ns).expect("table");
    for k in 0..20_000u64 {
        table.insert(k, k * 31).expect("insert");
    }
    table.simulate_crash();
    let survivors = table.recount();
    // Every published record was fenced, so nothing is lost…
    assert_eq!(survivors, 20_000);
    // …and every surviving record is intact (no torn values).
    for (k, v) in table.iter_records() {
        assert_eq!(v, k * 31, "torn record for key {k}");
    }
    for k in 0..20_000u64 {
        assert_eq!(table.get(k), Some(k * 31));
    }
}

#[test]
fn chained_table_loses_everything_the_paper_contrast() {
    let ns = Namespace::devdax(SocketId(0), 64 << 20);
    let table = ChainedTable::new(&ns).expect("table");
    for k in 0..5_000u64 {
        table.insert(k, k).expect("insert");
    }
    let lost = table.simulate_crash();
    assert!(lost > 0, "unflushed lines must be lost");
    assert_eq!(table.get(42), None, "PMEM-unaware structure cannot recover");
    assert_eq!(table.len(), 0);
}

#[test]
fn ingested_fact_table_survives_power_loss() {
    let store = SsbStore::generate_and_load(0.002, 7, EngineMode::Aware, StorageDevice::PmemDevdax)
        .expect("store");
    for shard in &store.shards {
        assert!(
            shard.fact.is_persisted(0, shard.fact.len()),
            "ingest must fence its writes"
        );
    }
}

#[test]
fn dram_backed_database_does_not_survive() {
    let store = SsbStore::generate_and_load(0.002, 7, EngineMode::Aware, StorageDevice::Dram)
        .expect("store");
    assert!(!store.shards[0].fact.is_persisted(0, 128));
}

#[test]
fn torn_multi_line_write_recovers_to_a_prefix_consistent_state() {
    // A 3-line record written with ntstore but only partially fenced: after
    // the crash each 64 B line is either old or new — never shredded within
    // a line — matching the ADR guarantee the paper's kernels rely on.
    let ns = Namespace::devdax(SocketId(0), 1 << 20);
    let mut region = ns.alloc_region(4096).expect("region");

    let old = vec![0xAAu8; 192];
    region.ntstore(0, &old);
    region.sfence();

    let new = [0xBBu8; 192];
    region.ntstore(0, &new[..64]);
    region.sfence(); // first line persisted
    region.ntstore(64, &new[64..]); // lines 2–3 unfenced
    region.crash();

    let after = region.read(0, 192, AccessHint::Sequential);
    assert!(after[..64].iter().all(|b| *b == 0xBB), "fenced line is new");
    assert!(
        after[64..].iter().all(|b| *b == 0xAA),
        "unfenced lines are old"
    );
}

#[test]
fn log_recovery_is_idempotent() {
    let ns = Namespace::devdax(SocketId(0), 1 << 20);
    let mut log = WorkerLog::create(&ns, 16).expect("log");
    for i in 0..5u32 {
        log.append(format!("rec-{i}").as_bytes()).expect("append");
    }
    let first = log.crash_and_recover();
    assert_eq!(first, 5, "fenced appends all survive");
    let contents: Vec<Vec<u8>> = log.iter().collect();
    // Recovery is a fixpoint: running it again (a crash during or right
    // after recovery) yields the exact same log.
    assert_eq!(log.crash_and_recover(), first);
    assert_eq!(log.iter().collect::<Vec<Vec<u8>>>(), contents);
    assert_eq!(log.crash_and_recover(), first);
}

#[test]
fn stale_record_beyond_a_torn_slot_never_replays() {
    let ns = Namespace::devdax(SocketId(0), 1 << 20);
    let mut log = WorkerLog::create(&ns, 16).expect("log");
    log.append(b"first").expect("append");
    log.append(b"casualty").expect("append");
    log.append(b"ghost").expect("append");
    // Model the dangerous crash residue: slot 1's header never became
    // durable (zero on media), while slot 2 still holds a checksum-valid
    // record from before the cut — a stale survivor.
    let header_len = LOG_SLOT as usize - MAX_PAYLOAD;
    log.raw_region_mut()
        .ntstore(LOG_SLOT, &vec![0u8; header_len]);
    log.raw_region_mut().sfence();

    assert_eq!(log.crash_and_recover(), 1, "tail is cut at the torn slot");

    // Refill the gap. Without recovery's frontier sealing, "ghost" would
    // now sit behind a valid slot 1 and the next recovery would replay a
    // record the log already cut — the torn-record double-replay.
    log.append(b"second").expect("append");
    assert_eq!(
        log.crash_and_recover(),
        2,
        "stale survivor must not resurrect"
    );
    assert_eq!(log.read(0).expect("slot 0"), b"first");
    assert_eq!(log.read(1).expect("slot 1"), b"second");
    assert_eq!(log.read(2), None, "no ghost record");
}

fn ckpt_tuple(i: u64) -> ColTuple {
    ColTuple {
        orderdate: 19920101 + i as u32,
        partkey: i as u32 + 1,
        suppkey: i as u32 * 2 + 1,
        custkey: i as u32 * 3 + 1,
        quantity: (i % 50) as u8,
        discount: (i % 11) as u8,
        extendedprice: i as u32 * 5 + 1,
        revenue: i as u32 * 7 + 1,
        supplycost: i as u32 * 9 + 1,
    }
}

#[test]
fn checkpoint_recovery_is_idempotent() {
    let ns = Namespace::devdax(SocketId(0), 16 << 20);
    let mut store = CheckpointStore::create(&ns, 64).expect("store");
    store
        .append(&(0..10).map(ckpt_tuple).collect::<Vec<_>>())
        .expect("append");
    store
        .append(&(10..17).map(ckpt_tuple).collect::<Vec<_>>())
        .expect("append");
    // Recovering twice must equal recovering once — through both the
    // in-place path and a full reopen.
    let first = store.crash_and_recover();
    assert_eq!(first.rows, 17);
    let contents = store.read_all();
    let second = store.crash_and_recover();
    assert_eq!(second.rows, first.rows);
    assert_eq!(second.torn_bytes_zeroed, 0);
    assert_eq!(second.invalid_manifests_sealed, 0);
    assert_eq!(store.read_all(), contents);
    let (reopened, report) = CheckpointStore::open(store.into_region()).expect("reopen");
    assert_eq!(report.rows, 17);
    assert_eq!(reopened.read_all(), contents);
}

#[test]
fn checkpoint_truncates_torn_tails_durably() {
    let ns = Namespace::devdax(SocketId(0), 16 << 20);
    let mut store = CheckpointStore::create(&ns, 64).expect("store");
    store
        .append(&(0..6).map(ckpt_tuple).collect::<Vec<_>>())
        .expect("append");
    // A crash mid-append: the batch's data was fenced but its manifest
    // never published. On media that is a torn tail beyond row 6.
    let mut region = store.into_region();
    let stray: Vec<u8> = vec![0xEE; 3 * TUPLE_BYTES as usize];
    region.ntstore(DATA_OFF + 6 * TUPLE_BYTES, &stray);
    region.sfence();
    region.crash();
    let (store, report) = CheckpointStore::open(region).expect("recover");
    assert_eq!(report.rows, 6, "unpublished rows must not surface");
    assert!(report.torn_bytes_zeroed > 0, "tail must be truncated");
    assert_eq!(store.read_all().len(), 6);
    // The truncation was fenced: crash again, nothing left to repair.
    let mut store = store;
    let again = store.crash_and_recover();
    assert_eq!(again.rows, 6);
    assert_eq!(again.torn_bytes_zeroed, 0, "recovery is a fixpoint");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleave checkpoint appends with crashes — clean crashes between
    /// appends and torn crashes mid-append (data landed, manifest did
    /// not). Recovery must always surface exactly the published rows.
    #[test]
    fn checkpoint_survives_interleaved_crashes(
        plan in prop::collection::vec((1u64..6, 0u8..3), 1..10)
    ) {
        let ns = Namespace::devdax(SocketId(0), 16 << 20);
        let mut store = CheckpointStore::create(&ns, 256).expect("store");
        let mut next = 0u64;
        for (rows, action) in plan {
            let batch: Vec<ColTuple> = (next..next + rows).map(ckpt_tuple).collect();
            store.append(&batch).expect("append");
            next += rows;
            match action {
                // Keep appending.
                0 => {}
                // Clean power loss between appends.
                1 => {
                    let report = store.crash_and_recover();
                    prop_assert_eq!(report.rows, next, "fenced appends survive");
                }
                // Crash mid-append: the next batch's data is fenced but
                // its manifest never gets out.
                _ => {
                    let mut region = store.into_region();
                    let stray: Vec<u8> = (next..next + 2)
                        .flat_map(|i| {
                            pmem_olap::ssb::checkpoint::encode_tuple(&ckpt_tuple(i))
                        })
                        .collect();
                    region.ntstore(DATA_OFF + next * TUPLE_BYTES, &stray);
                    region.sfence();
                    region.crash();
                    let (recovered, report) =
                        CheckpointStore::open(region).expect("recover");
                    prop_assert_eq!(report.rows, next, "torn batch must not surface");
                    store = recovered;
                }
            }
        }
        // Final verdict: recovery lands on the published prefix, contents
        // byte-exact, and a second recovery changes nothing.
        let r1 = store.crash_and_recover();
        prop_assert_eq!(r1.rows, next);
        let tuples = store.read_all();
        prop_assert_eq!(tuples.len() as u64, next);
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(*t, ckpt_tuple(i as u64));
        }
        let r2 = store.crash_and_recover();
        prop_assert_eq!(r2.rows, r1.rows);
        prop_assert_eq!(r2.torn_bytes_zeroed, 0);
        prop_assert_eq!(r2.invalid_manifests_sealed, 0);
    }
}

#[test]
fn dash_crash_recovery_sweeps_and_recounts_across_segments() {
    let ns = Namespace::devdax(SocketId(0), 256 << 20);
    let table = DashTable::new(&ns).expect("table");
    for k in 0..20_000u64 {
        table.insert(k, k * 3).expect("insert");
    }
    table.simulate_crash();
    let report = table.crash_recover();
    assert_eq!(report.records, 20_000, "fenced inserts all survive");
    assert_eq!(
        report.duplicates_repaired, 0,
        "in-process displacements complete atomically"
    );
    assert!(report.segments > 1);
    // Removals stay final after recovery.
    for k in (0..20_000u64).step_by(97) {
        assert_eq!(table.remove(k), Some(k * 3));
        assert_eq!(table.get(k), None, "removed key {k} must stay gone");
    }
}

#[test]
fn repeated_crashes_are_idempotent() {
    let ns = Namespace::devdax(SocketId(0), 1 << 20);
    let mut region = ns.alloc_region(4096).expect("region");
    region.ntstore(0, b"stable");
    region.sfence();
    region.write(512, b"doomed");
    assert!(region.crash() > 0);
    assert_eq!(region.crash(), 0, "second crash has nothing to lose");
    assert_eq!(region.read(0, 6, AccessHint::Sequential), b"stable");
}

//! Integration tests for the extension features built beyond the paper's
//! core evaluation: the per-worker log, the columnar layout, Memory Mode,
//! and the hybrid placement advisor.

use pmem_olap::hybrid::{AccessProfile, DataObject, HybridAdvisor, Tier};
use pmem_olap::sim::analytic::{memory_mode_bandwidth, BandwidthModel};
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::topology::SocketId;
use pmem_olap::sim::workload::WorkloadSpec;
use pmem_olap::ssb::columnar::{scan_comparisons, Column, ColumnarFact};
use pmem_olap::ssb::datagen;
use pmem_olap::ssb::queries::QueryId;
use pmem_olap::ssb::report::columnar_scan_report;
use pmem_olap::store::{Namespace, WorkerLog};

#[test]
fn one_log_per_worker_scales_and_recovers() {
    // Best Practice #1/#2 applied to logging: each worker appends to its
    // own log; all records survive a crash.
    let ns = Namespace::devdax(SocketId(0), 64 << 20);
    let mut logs: Vec<WorkerLog> = (0..8)
        .map(|_| WorkerLog::create(&ns, 256).expect("log"))
        .collect();
    std::thread::scope(|scope| {
        for (worker, log) in logs.iter_mut().enumerate() {
            scope.spawn(move || {
                for i in 0..100u64 {
                    log.append(format!("w{worker}:{i}").as_bytes())
                        .expect("append");
                }
            });
        }
    });
    for (worker, log) in logs.iter_mut().enumerate() {
        assert_eq!(log.crash_and_recover(), 100, "worker {worker}");
        assert_eq!(log.read(99).unwrap(), format!("w{worker}:99").as_bytes());
    }
    // The aggregate traffic signature is the recommended one.
    let snap = ns.tracker().snapshot();
    assert_eq!(snap.rand_write_bytes, 0);
}

#[test]
fn columnar_layout_closes_the_device_gap_for_scans() {
    // Execute a real projected scan and check the answer, then confirm the
    // priced claim: columnar PMEM out-scans row DRAM for every query.
    let data = datagen::generate(0.003, 5);
    let ns = Namespace::devdax(SocketId(0), 64 << 20);
    let fact = ColumnarFact::load(&ns, &data).expect("columnar load");
    let partials = fact.scan(
        Column::for_query(QueryId::Q1_2),
        4,
        || 0i64,
        |acc, t| {
            if t.orderdate / 100 == 199401
                && (4..=6).contains(&t.discount)
                && (26..=35).contains(&t.quantity)
            {
                *acc += t.extendedprice as i64 * t.discount as i64;
            }
        },
    );
    let total: i64 = partials.iter().sum();
    let reference = pmem_olap::ssb::reference::reference_query(&data, QueryId::Q1_2);
    assert_eq!(total, reference[0].1, "columnar Q1.2 result");

    for row in columnar_scan_report(100.0) {
        assert!(row.col_pmem < row.row_dram, "{}", row.query.name());
    }
    assert!(scan_comparisons().iter().all(|c| c.reduction() >= 5.0));
}

#[test]
fn memory_mode_is_a_middle_ground_not_a_free_lunch() {
    let model = BandwidthModel::paper_default();
    let scan = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
    // The paper's sf-100 SSB (≈70 GB hot set) against one socket's 96 GB
    // DRAM cache: Memory Mode hides PMEM for reads…
    let mm = memory_mode_bandwidth(&model, &scan, 70 << 30).gib_s();
    assert!(mm > 90.0, "cached Memory Mode read {mm}");
    // …but a 500 GB warehouse spills and lands between the two devices.
    let spill = memory_mode_bandwidth(&model, &scan, 500 << 30).gib_s();
    assert!((40.0..95.0).contains(&spill), "spilled {spill}");
    // And it never persists (store-level semantics).
    let ns = Namespace::memory_mode(SocketId(0), 1 << 20);
    let mut region = ns.alloc_region(4096).unwrap();
    region.ntstore(0, b"gone");
    region.sfence();
    region.crash();
    assert_ne!(
        region.read(0, 4, pmem_olap::store::AccessHint::Sequential),
        b"gone"
    );
}

#[test]
fn hybrid_advisor_budget_sweep_is_monotone() {
    let advisor = HybridAdvisor::paper_default();
    let objects = [
        DataObject::new(
            "fact",
            8 << 30,
            AccessProfile::SequentialScan {
                scans_per_query: 1.0,
            },
        ),
        DataObject::new(
            "hot index",
            64 << 20,
            AccessProfile::RandomProbe {
                probes_per_query: 200e6,
                access_bytes: 256,
            },
        ),
        DataObject::new(
            "cold index",
            64 << 20,
            AccessProfile::RandomProbe {
                probes_per_query: 1e6,
                access_bytes: 256,
            },
        ),
        DataObject::new(
            "spill",
            1 << 30,
            AccessProfile::SequentialWrite {
                bytes_per_query: 1 << 30,
            },
        ),
    ];
    let mut last = 1.0;
    for budget in [0u64, 64 << 20, 2 << 30, 16 << 30] {
        let plan = advisor.place(&objects, budget);
        assert!(plan.dram_used <= budget);
        assert!(
            plan.speedup() >= last - 1e-9,
            "budget {budget}: speedup {} below {last}",
            plan.speedup()
        );
        last = plan.speedup();
    }
    // With exactly one index slot of budget, the hot index wins it.
    let plan = advisor.place(&objects, 64 << 20);
    assert_eq!(plan.tier_of("hot index"), Some(Tier::Dram));
    assert_eq!(plan.tier_of("cold index"), Some(Tier::Pmem));
}

#[test]
fn recorded_dash_probe_trace_replays_through_the_des() {
    use pmem_olap::dash::{DashTable, KvIndex};
    use pmem_olap::sim::des::{self, DesConfig, ReplayOp};
    use pmem_olap::sim::params::SystemParams;
    use pmem_olap::store::TraceBuffer;

    // Build an index, then record the probe-phase accesses of one segment's
    // region… tracing is attached at the namespace-region level, so trace
    // through a standalone region instead: record bucket loads by probing.
    let ns = Namespace::devdax(SocketId(0), 64 << 20);
    let table = DashTable::with_capacity(&ns, 4096).expect("table");
    for k in 0..4096u64 {
        table.insert(k, k).expect("insert");
    }
    // Attach tracing to a fresh region and replay a synthetic copy of the
    // probe signature instead (Dash owns its regions): mirror the observed
    // tracker signature into ReplayOps.
    ns.tracker().reset();
    for k in 0..2000u64 {
        table.get((k * 2654435761) % 4096);
    }
    let snap = ns.tracker().snapshot();
    let probe_ops = snap.read_ops;
    let granule = snap.rand_read_bytes / probe_ops.max(1);
    assert_eq!(granule, 256, "Dash probes are XPLine-sized");

    // Replay the same op stream (offsets drawn from the recorded index
    // footprint) through the DES at 18 threads.
    let footprint = ns.used();
    let ops: Vec<ReplayOp> = (0..probe_ops)
        .map(|i| ReplayOp {
            offset: (i.wrapping_mul(0x9E37_79B9) % (footprint / 256)) * 256,
            len: granule,
            write: false,
        })
        .collect();
    let result = des::run(&DesConfig::replay(SystemParams::paper_default(), ops, 18));
    let bw = result.bandwidth.gib_s();
    // The DES prices the stream from queue/media mechanics alone (it does
    // not carry the analytic model's random-efficiency factors), so the
    // replay lands between the analytic random estimate (~14 GB/s) and the
    // media-bound ceiling (~40 GB/s).
    assert!((6.0..40.0).contains(&bw), "replayed probe bandwidth {bw}");
    assert!(result.read_latency.mean() > 100e-9);

    // And the direct Region tracing path captures entries too.
    let region = ns.alloc_region(1 << 20).expect("region");
    let buffer = TraceBuffer::shared(64);
    region.attach_trace(std::sync::Arc::clone(&buffer));
    region.read(0, 256, pmem_olap::store::AccessHint::Random);
    region.read(512, 64, pmem_olap::store::AccessHint::Random);
    region.detach_trace();
    region.read(1024, 64, pmem_olap::store::AccessHint::Random);
    let entries = buffer.take();
    assert_eq!(entries.len(), 2, "detach stops recording");
    assert_eq!(entries[0].offset, 0);
    assert_eq!(entries[0].len, 256);
    assert!(!entries[1].write);
}

#[test]
fn explain_matches_measured_traffic() {
    use pmem_olap::ssb::queries::{explain, run_query};
    use pmem_olap::ssb::storage::{EngineMode, SsbStore, StorageDevice};

    let store = SsbStore::generate_and_load(0.003, 5, EngineMode::Aware, StorageDevice::PmemDevdax)
        .unwrap();
    let text = explain(QueryId::Q3_1, EngineMode::Aware);
    assert!(text.contains("customer") && text.contains("supplier") && !text.contains("part,"));
    // A query whose plan names no part index must not read the part table.
    let before = store.shards[0].dim_ns.tracker().snapshot();
    let _ = run_query(&store, QueryId::Q3_1, 2).unwrap();
    let delta = store.shards[0].dim_ns.tracker().snapshot().since(&before);
    let part_bytes = store.shards[0].parts.len();
    let others: u64 = store.shards[0].dates.len()
        + store.shards[0].customers.len()
        + store.shards[0].suppliers.len();
    assert!(
        delta.read_bytes() <= others,
        "Q3.1 must not scan the part table ({part_bytes} B): read {}",
        delta.read_bytes()
    );
}

//! Integration across the whole stack: planner → store traffic → tracker →
//! simulator pricing, and membench figures driven end to end.

use pmem_olap::membench::experiments;
use pmem_olap::membench::traffic::{expected_checksum, run_traffic, TrafficConfig};
use pmem_olap::planner::{AccessPlanner, Intent};
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::topology::SocketId;
use pmem_olap::sim::workload::{AccessKind, Pattern};
use pmem_olap::sim::Simulation;
use pmem_olap::store::Namespace;

#[test]
fn planned_bulk_read_flows_through_store_and_prices_correctly() {
    let planner = AccessPlanner::paper_default();
    let plan = planner.plan(Intent::BulkRead);

    // Execute the planned pattern for real against a region.
    let ns = Namespace::devdax(SocketId(0), 128 << 20);
    let cfg = TrafficConfig::new(
        AccessKind::Read,
        plan.pattern,
        plan.access_size,
        plan.threads_per_socket,
    );
    let report = run_traffic(&ns, &cfg).expect("traffic");
    // Individual streams split the volume per thread; up to threads−1
    // trailing chunks stay unassigned.
    let assigned = cfg.volume / cfg.access_size / plan.threads_per_socket as u64
        * plan.threads_per_socket as u64
        * cfg.access_size;
    assert_eq!(report.bytes, assigned, "planned scan must cover its chunks");
    assert!(cfg.volume - assigned < plan.threads_per_socket as u64 * cfg.access_size);
    assert_eq!(
        report.delta.rand_read_bytes, 0,
        "bulk read must stay sequential"
    );
    assert!(report.checksum > 0, "data flowed");
    let _ = expected_checksum(0);

    // The simulator prices the plan at the paper's dual-socket peak.
    let bw = planner.expected_bandwidth(&plan, AccessKind::Read);
    assert!(bw.gib_s() > 75.0, "planned bandwidth {bw}");
    // Moving the paper's 70 GB takes about a second at that rate.
    let secs = bw.time_for_bytes(70 << 30);
    assert!((0.6..1.2).contains(&secs), "70 GB in {secs} s");
}

#[test]
fn planner_beats_naive_configurations_for_every_intent() {
    let planner = AccessPlanner::paper_default();
    let sim = Simulation::paper_default();

    // Naive ingest: all cores, huge blocks.
    let naive_write =
        pmem_olap::sim::workload::WorkloadSpec::seq_write(DeviceClass::Pmem, 1 << 20, 36);
    let naive = sim.evaluate_steady(&naive_write).total_bandwidth;
    let planned = planner.expected_bandwidth(&planner.plan(Intent::BulkWrite), AccessKind::Write);
    assert!(planned.gib_s() > 1.5 * naive.gib_s());

    // Naive random read: 64 B probes.
    let naive_probe = pmem_olap::sim::workload::WorkloadSpec::random(
        DeviceClass::Pmem,
        AccessKind::Read,
        64,
        18,
        2 << 30,
    );
    let naive = sim.evaluate_steady(&naive_probe).total_bandwidth;
    let planned = planner.expected_bandwidth(
        &planner.plan(Intent::RandomRead { access_bytes: 64 }),
        AccessKind::Read,
    );
    assert!(planned.gib_s() > 1.3 * naive.gib_s());
}

#[test]
fn fsdax_page_faults_show_up_in_real_traffic_and_in_the_model() {
    // Real traffic through an fsdax region counts first-touch faults…
    let ns = Namespace::fsdax(SocketId(0), 64 << 20);
    let mut cfg = TrafficConfig::new(AccessKind::Read, Pattern::SequentialIndividual, 4096, 4);
    cfg.volume = 16 << 20;
    let _ = run_traffic(&ns, &cfg).expect("traffic");
    // traffic resets the tracker after the fill phase, so only measured
    // faults remain; the fill already touched every page, so none are left.
    let devdax_ns = Namespace::devdax(SocketId(0), 64 << 20);
    let region = devdax_ns.alloc_region(8 << 20).expect("region");
    region.prefault();
    assert_eq!(
        devdax_ns.tracker().snapshot().page_faults,
        0,
        "devdax never faults"
    );

    let fs_region = ns.alloc_region(8 << 20).expect("region");
    fs_region.prefault();
    assert_eq!(
        ns.tracker().snapshot().page_faults,
        4,
        "8 MiB = 4 × 2 MiB pages"
    );

    // …and the figure-level experiment shows the paper's 5–10 % gap.
    let sim = Simulation::paper_default();
    let fig = experiments::devdax_vs_fsdax(&sim);
    let dev = fig.series("devdax").unwrap().at(18.0).unwrap();
    let fsd = fig.series("fsdax").unwrap().at(18.0).unwrap();
    assert!((0.04..0.12).contains(&(dev / fsd - 1.0)));
}

#[test]
fn all_figures_generate_with_consistent_axes() {
    let mut sim = Simulation::paper_default();
    let figures = experiments::all_figures(&mut sim);
    assert_eq!(figures.len(), 18);
    for fig in &figures {
        for series in &fig.series {
            assert!(
                !series.points.is_empty(),
                "{}::{} empty",
                fig.id,
                series.label
            );
            for (x, y) in &series.points {
                assert!(x.is_finite() && y.is_finite(), "{} has NaN", fig.id);
                assert!(*y >= 0.0, "{} negative bandwidth", fig.id);
                assert!(*y < 250.0, "{} implausible bandwidth {y}", fig.id);
            }
        }
        let csv = fig.to_csv();
        assert_eq!(
            csv.lines().next().unwrap().split(',').count(),
            fig.series.len() + 1,
            "{} csv header",
            fig.id
        );
    }
}

#[test]
fn mixed_workload_advisor_agrees_with_the_simulator() {
    let planner = AccessPlanner::paper_default();
    let (read_bw, write_bw) = planner.expected_mixed(30, 1);
    // §5.1 anchor: 30 readers + 1 writer ≈ 26 GB/s read.
    assert!((23.0..28.5).contains(&read_bw.gib_s()), "read {read_bw}");
    assert!(write_bw.gib_s() > 1.0);
    assert!(planner.should_serialize(18, 6, 40 << 30, 40 << 30));
}

//! End-to-end verification of the paper's headline claims through the
//! public facade — each test names the claim it checks.

use pmem_olap::best_practices::{BestPractice, Insight};
use pmem_olap::cost::PriceModel;
use pmem_olap::sim::analytic::CoherenceView;
use pmem_olap::sim::params::DeviceClass;
use pmem_olap::sim::prelude::*;
use pmem_olap::sim::workload::Pattern;
use pmem_olap::ssb::report::{fig14a_unaware, fig14b_aware, table1_ladder};

const RUN_SF: f64 = 0.01;

/// Abstract: "PMEM is suitable for large, read-heavy OLAP workloads with an
/// average query runtime slowdown of 1.66x compared to DRAM."
#[test]
fn claim_average_ssb_slowdown_is_moderate() {
    let fig = fig14b_aware(RUN_SF, 8).expect("fig14b");
    let avg = fig.average_ratio();
    assert!(
        (1.2..2.6).contains(&avg),
        "aware avg ratio {avg} (paper: 1.66x)"
    );
    for row in &fig.rows {
        assert!(
            row.ratio() >= 1.0 && row.ratio() < 4.5,
            "{} ratio {} outside the paper's 1.4x–3x band (with slack)",
            row.query.name(),
            row.ratio()
        );
    }
}

/// §6.1: "On average, PMEM-Hyrise is 5.3x slower than on DRAM, with a
/// maximum difference of 7.7x … and a minimum of 2.5x."
#[test]
fn claim_unaware_engines_suffer_multiples_more() {
    let unaware = fig14a_unaware(RUN_SF, 8).expect("fig14a");
    let aware = fig14b_aware(RUN_SF, 8).expect("fig14b");
    assert!(
        unaware.average_ratio() > 1.4 * aware.average_ratio(),
        "unaware {} vs aware {}",
        unaware.average_ratio(),
        aware.average_ratio()
    );
    assert!(
        unaware.average_ratio() > 2.2,
        "unaware avg {} (paper: 5.3x)",
        unaware.average_ratio()
    );
}

/// Table 1: staged optimizations take Q2.1 from 306.7 s to 8.6 s on PMEM,
/// and the SSD configuration is ~2.6x slower than optimized PMEM.
#[test]
fn claim_optimization_ladder_and_ssd_gap() {
    let (ladder, ssd) = table1_ladder(RUN_SF, 8).expect("ladder");
    // Strictly improving (small tolerance for the NUMA→Pinning step).
    for pair in ladder.windows(2) {
        assert!(pair[1].pmem_seconds <= pair[0].pmem_seconds * 1.02);
    }
    let speedup = ladder[0].pmem_seconds / ladder[4].pmem_seconds;
    assert!(
        speedup > 20.0,
        "full ladder speedup {speedup} (paper: 306.7/8.6 ≈ 36x)"
    );
    // PMEM beats the SSD configuration (paper: 2.6x).
    let ssd_gap = ssd / ladder[4].pmem_seconds;
    assert!((1.5..7.0).contains(&ssd_gap), "SSD gap {ssd_gap}");
    // DRAM stays ahead of PMEM at every step.
    for step in &ladder {
        assert!(step.dram_seconds < step.pmem_seconds, "{}", step.label);
    }
}

/// §2.1: "Reading from PMEM yields approx. a third and writing a seventh of
/// the bandwidth of DRAM, but is still at least an order of magnitude
/// higher than on SSD."
#[test]
fn claim_device_hierarchy() {
    let sim = Simulation::paper_default();
    let pmem_read = sim
        .evaluate_steady(&WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18))
        .total_bandwidth;
    let dram_read = sim
        .evaluate_steady(&WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18))
        .total_bandwidth;
    let pmem_write = sim
        .evaluate_steady(&WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 6))
        .total_bandwidth;
    let ssd_read = sim
        .evaluate_steady(&WorkloadSpec::seq_read(DeviceClass::Ssd, 4096, 18))
        .total_bandwidth;
    let read_frac = pmem_read.gib_s() / dram_read.gib_s();
    assert!(
        (0.28..0.48).contains(&read_frac),
        "read fraction {read_frac}"
    );
    let write_frac = pmem_write.gib_s() / dram_read.gib_s();
    assert!(
        (0.1..0.2).contains(&write_frac),
        "write fraction {write_frac}"
    );
    assert!(pmem_read.gib_s() / ssd_read.gib_s() > 10.0);
}

/// §7: "PMEM can be treated like DRAM for most read access but must be used
/// differently when writing."
#[test]
fn claim_reads_scale_like_dram_writes_do_not() {
    let model = pmem_olap::sim::analytic::BandwidthModel::paper_default();
    let read = |device, threads| {
        model
            .bandwidth(
                &WorkloadSpec::seq_read(device, 4096, threads),
                CoherenceView::WARM,
            )
            .gib_s()
    };
    let write = |device, threads| {
        model
            .bandwidth(
                &WorkloadSpec::seq_write(device, 65536, threads),
                CoherenceView::WARM,
            )
            .gib_s()
    };
    // Reads: more threads help on both devices.
    assert!(read(DeviceClass::Pmem, 18) > read(DeviceClass::Pmem, 4));
    assert!(read(DeviceClass::Dram, 18) > read(DeviceClass::Dram, 4));
    // Writes: more threads help DRAM but *hurt* PMEM at large accesses.
    assert!(write(DeviceClass::Dram, 18) >= write(DeviceClass::Dram, 6));
    assert!(write(DeviceClass::Pmem, 18) < write(DeviceClass::Pmem, 6));
}

/// §7: the price/performance argument — 2.4x cheaper for 1.66x slower.
#[test]
fn claim_price_performance() {
    let prices = PriceModel::default();
    let measured = fig14b_aware(RUN_SF, 8).expect("fig").average_ratio();
    assert!(prices.pmem_wins(1536.0, measured));
}

/// The paper's structure: 12 insights condensed into 7 best practices.
#[test]
fn claim_catalogue_is_complete() {
    assert_eq!(Insight::ALL.len(), 12);
    assert_eq!(BestPractice::ALL.len(), 7);
    let covered: usize = BestPractice::ALL.iter().map(|bp| bp.insights().len()).sum();
    assert_eq!(covered, 12, "every insight belongs to one practice");
}

/// §5.2: PMEM should be treated as sequential-access memory — random access
/// tops out at ~2/3 of sequential even at large sizes.
#[test]
fn claim_random_access_penalty() {
    let sim = Simulation::paper_default();
    let seq = sim
        .evaluate_steady(&WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 36))
        .total_bandwidth
        .gib_s();
    let rand = sim
        .evaluate_steady(
            &WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 36).pattern(Pattern::Random {
                region_bytes: 2 << 30,
            }),
        )
        .total_bandwidth
        .gib_s();
    let frac = rand / seq;
    assert!((0.55..0.75).contains(&frac), "random/sequential {frac}");
}

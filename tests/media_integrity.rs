//! Acceptance suite for the media-error tentpole (`pmem-scrub`): seeded
//! media-error injection, checksummed reads, and self-healing repair
//! across the storage stack.
//!
//! The contrast this suite pins down: with real poisoned XPLines landed in
//! the fact shards, an **unprotected** engine either fails its queries
//! with a typed [`StoreError::Poisoned`] or would silently return corrupt
//! results — while the **protected** path (sealed checksums + durable
//! mirror + scrub/repair) completes ≥ 95 % of the same workload with
//! byte-exact results. Determinism rides along: one seed fully determines
//! the poison timeline, the scrub reports, and the serve counters.

use pmem_serve::{JobOutcome, JobSpec, QueryServer, ResiliencePolicy, ServeConfig, ServeHealth};
use pmem_sim::faults::{FaultEvent, FaultKind, FaultPlan, FaultScheduleConfig, XPLINE_BYTES};
use pmem_sim::topology::SocketId;
use pmem_ssb::datagen::{generate, SsbData};
use pmem_ssb::integrity::{apply_media_plan, repair_region, StoreIntegrity};
use pmem_ssb::reference::reference_query;
use pmem_ssb::{run_query, EngineMode, QueryId, SsbStore, StorageDevice};
use pmem_store::scrub::{BlockChecksums, SCRUB_BLOCK};
use pmem_store::{AccessHint, Namespace, StoreError};

/// One seed determines everything: data, poison timeline, repair outcome.
const MEDIA_SEED: u64 = 0x5eed;
const SF: f64 = 0.003;
const HORIZON: f64 = 1.0;

fn dataset() -> SsbData {
    generate(SF, 21)
}

fn load(data: &SsbData) -> SsbStore {
    SsbStore::load(data, SF, EngineMode::Aware, StorageDevice::PmemDevdax).expect("store loads")
}

fn media_plan() -> FaultPlan {
    FaultPlan::generate(
        MEDIA_SEED,
        &FaultScheduleConfig::with_media_errors(HORIZON, 6),
    )
}

#[test]
fn unprotected_queries_fail_on_poisoned_media_with_a_typed_error() {
    let data = dataset();
    let mut store = load(&data);
    let landed = apply_media_plan(&mut store, &media_plan(), 0.0, HORIZON);
    assert!(!landed.is_empty(), "the seeded plan must land real poison");

    let mut failures = 0usize;
    for &query in &QueryId::ALL {
        match run_query(&store, query, 4) {
            Err(StoreError::Poisoned { .. }) => failures += 1,
            Err(other) => panic!("{}: wrong error kind {other}", query.name()),
            Ok(outcome) => {
                // A query that slipped past the poison must still be right
                // — silent corruption is the one unacceptable outcome.
                assert_eq!(
                    outcome.rows,
                    reference_query(&data, query),
                    "{}: corrupt result returned without an error",
                    query.name()
                );
            }
        }
    }
    assert!(
        failures > 0,
        "poison inside the fact shards must fail at least one unprotected scan"
    );
}

#[test]
fn protected_path_repairs_and_completes_at_least_95_percent_correctly() {
    let data = dataset();
    let mut store = load(&data);
    // Seal while known-good: per-block checksums + durable mirror.
    let integ = StoreIntegrity::seal(&store).expect("seal");
    let landed = apply_media_plan(&mut store, &media_plan(), 0.0, HORIZON);
    assert!(!landed.is_empty());
    assert!(!integ.is_clean(&store), "scrub must see the poison");

    let total = QueryId::ALL.len();
    let mut correct = 0usize;
    for &query in &QueryId::ALL {
        let outcome = match run_query(&store, query, 4) {
            Ok(o) => Some(o),
            Err(StoreError::Poisoned { .. }) => {
                // The serve path on a poisoned read: quarantine, repair
                // from the mirror, retry the query.
                let repair = integ.repair(&mut store).expect("mirror is clean");
                assert!(repair.is_fully_repaired());
                run_query(&store, query, 4).ok()
            }
            Err(other) => panic!("{}: unexpected error {other}", query.name()),
        };
        if outcome.is_some_and(|o| o.rows == reference_query(&data, query)) {
            correct += 1;
        }
    }
    assert!(
        correct as f64 >= 0.95 * total as f64,
        "protected path must complete >=95% correctly, got {correct}/{total}"
    );
    assert_eq!(correct, total, "repair restores byte-exact data: all pass");
    assert!(integ.is_clean(&store), "nothing left poisoned after repair");
}

#[test]
fn one_seed_determines_poison_timeline_scrub_reports_and_lines() {
    let config = FaultScheduleConfig::with_media_errors(HORIZON, 6);
    let plan_a = FaultPlan::generate(MEDIA_SEED, &config);
    let plan_b = FaultPlan::generate(MEDIA_SEED, &config);
    assert_eq!(plan_a, plan_b, "same seed, same fault plan");
    assert_eq!(
        plan_a.media_errors_in(0.0, HORIZON),
        plan_b.media_errors_in(0.0, HORIZON)
    );

    let data = dataset();
    let mut store_a = load(&data);
    let mut store_b = load(&data);
    let integ_a = StoreIntegrity::seal(&store_a).expect("seal");
    let integ_b = StoreIntegrity::seal(&store_b).expect("seal");
    assert_eq!(
        apply_media_plan(&mut store_a, &plan_a, 0.0, HORIZON),
        apply_media_plan(&mut store_b, &plan_b, 0.0, HORIZON),
        "identical poison placement"
    );
    for (sa, sb) in store_a.shards.iter().zip(store_b.shards.iter()) {
        assert_eq!(sa.fact.poisoned_lines(), sb.fact.poisoned_lines());
    }
    let scrub_a = integ_a.scrub(&store_a);
    let scrub_b = integ_b.scrub(&store_b);
    assert_eq!(scrub_a.len(), scrub_b.len());
    for ((socket_a, ra), (socket_b, rb)) in scrub_a.iter().zip(scrub_b.iter()) {
        assert_eq!(socket_a, socket_b);
        assert_eq!(ra, rb, "scrub reports are seed-deterministic");
    }
}

/// One media error while a pinned write and a query hold socket 0.
fn serve_jobs() -> [JobSpec; 3] {
    [
        JobSpec::ingest(64 << 20).threads(2).socket(SocketId(0)),
        JobSpec::query(QueryId::Q1_1).threads(4).socket(SocketId(0)),
        JobSpec::query(QueryId::Q2_1).threads(4).socket(SocketId(1)),
    ]
}

fn serve_media_plan() -> FaultPlan {
    FaultPlan::from_events(vec![FaultEvent {
        start: 0.0005,
        end: 0.0005,
        kind: FaultKind::MediaError {
            socket: SocketId(0),
            offset: 64 * XPLINE_BYTES,
            lines: 4,
        },
    }])
}

#[test]
fn serve_counters_are_deterministic_and_protection_beats_the_baseline() {
    let store = SsbStore::generate_and_load(0.005, 99, EngineMode::Aware, StorageDevice::PmemFsdax)
        .expect("store loads");
    let planner = pmem_olap::planner::AccessPlanner::paper_default();

    let run_with = |resilience: ResiliencePolicy| {
        let config = ServeConfig::scheduled(&planner)
            .with_faults(serve_media_plan())
            .with_resilience(resilience);
        let mut server = QueryServer::new(&store, config);
        server.submit_all(serve_jobs());
        server.run().expect("run")
    };

    // Baseline: the media error kills what was running on socket 0.
    let baseline = run_with(ResiliencePolicy::disabled());
    assert!(baseline
        .jobs
        .iter()
        .any(|j| j.outcome == JobOutcome::Failed));
    assert_eq!(baseline.quarantined, 0);
    assert_eq!(baseline.repaired, 0);

    // Protected: quarantine + repair + retry; everything completes.
    let protected = run_with(ResiliencePolicy::paper());
    assert!(protected.jobs.iter().all(|j| j.outcome.is_completed()));
    assert_eq!(protected.repaired, 1);
    assert!(protected.quarantined >= 1);
    assert_eq!(protected.health, ServeHealth::Degraded);

    // Determinism: the same configuration replays to the same counters.
    let replay = run_with(ResiliencePolicy::paper());
    assert_eq!(replay.quarantined, protected.quarantined);
    assert_eq!(replay.repaired, protected.repaired);
    assert_eq!(replay.power_loss_events, protected.power_loss_events);
    assert_eq!(
        replay
            .jobs
            .iter()
            .map(|j| (j.socket, j.retries, j.outcome.label()))
            .collect::<Vec<_>>(),
        protected
            .jobs
            .iter()
            .map(|j| (j.socket, j.retries, j.outcome.label()))
            .collect::<Vec<_>>()
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    const REGION_BYTES: u64 = 64 * 1024;

    /// A deterministic pattern region plus a pristine mirror copy.
    fn build_pair() -> (pmem_store::Region, pmem_store::Region, Vec<u8>) {
        let ns = Namespace::devdax(SocketId(0), 4 << 20);
        let bytes: Vec<u8> = (0..REGION_BYTES)
            .map(|i| (i.wrapping_mul(131).wrapping_add(i >> 8) & 0xFF) as u8)
            .collect();
        let mut region = ns.alloc_region(REGION_BYTES).expect("alloc");
        let mut mirror = ns.alloc_region(REGION_BYTES).expect("alloc");
        region
            .try_ntstore(0, &bytes, AccessHint::Sequential)
            .expect("fill");
        mirror
            .try_ntstore(0, &bytes, AccessHint::Sequential)
            .expect("fill");
        region.sfence();
        mirror.sfence();
        (region, mirror, bytes)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Scrub→repair round-trips any poison placement back to the
        /// original bytes, touches only bad blocks, and is idempotent.
        #[test]
        fn scrub_repair_roundtrip_is_exact_and_idempotent(
            poisons in prop::collection::vec(
                (0u64..REGION_BYTES, 1u64..2048),
                1..6,
            )
        ) {
            let (mut region, mirror, original) = build_pair();
            let checks = BlockChecksums::seal_bytes(&original, SCRUB_BLOCK);

            let mut landed = 0u64;
            for &(offset, len) in &poisons {
                landed += region.inject_poison(offset, len);
            }
            prop_assert!(landed > 0);

            let bad = checks.scrub(&region).bad_blocks();
            prop_assert!(!bad.is_empty(), "scrub must find every poison");

            let repair = repair_region(&mut region, &checks, &mirror, &bad)
                .expect("mirror is clean");
            prop_assert!(repair.is_fully_repaired());
            prop_assert_eq!(repair.blocks_repaired, bad.len() as u64);

            // Never modifies checksum-valid data: the whole region is
            // byte-identical to the pre-poison original, and only the bad
            // blocks were rewritten.
            prop_assert_eq!(region.untracked_slice(), &original[..]);
            let rewritten: u64 = bad
                .iter()
                .map(|&b| checks.block_range(b).1)
                .sum();
            prop_assert_eq!(repair.bytes_rewritten, rewritten);
            prop_assert!(checks.scrub(&region).is_clean());

            // Idempotent: a second pass has nothing to do.
            let again = checks.scrub(&region).bad_blocks();
            prop_assert!(again.is_empty());
            let noop = repair_region(&mut region, &checks, &mirror, &again)
                .expect("empty repair");
            prop_assert_eq!(noop.blocks_repaired, 0);
            prop_assert_eq!(noop.bytes_rewritten, 0);
        }

        /// Repair from a poisoned mirror refuses with the typed error and
        /// leaves the live region untouched.
        #[test]
        fn poisoned_mirror_is_refused(
            offset in 0u64..REGION_BYTES,
            len in 1u64..1024,
        ) {
            let (mut region, mut mirror, _) = build_pair();
            let checks = BlockChecksums::seal_bytes(region.untracked_slice(), SCRUB_BLOCK);
            region.inject_poison(offset, len);
            mirror.inject_poison(offset, len);
            let before = region.poisoned_lines();
            let bad = checks.scrub(&region).bad_blocks();
            let result = repair_region(&mut region, &checks, &mirror, &bad);
            prop_assert!(matches!(result, Err(StoreError::Poisoned { .. })));
            prop_assert_eq!(region.poisoned_lines(), before);
        }
    }
}

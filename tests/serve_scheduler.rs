//! Acceptance tests for the `pmem-serve` scheduler (the serving-layer
//! tentpole): admission caps match the saturation points, scheduling
//! protects scan bandwidth where a free-for-all forfeits it, and every
//! submitted job completes with real accounting.

use pmem_olap::planner::AccessPlanner;
use pmem_serve::{AdmissionPolicy, JobSpec, QueryServer, QueueReason, ServeConfig, Side, Verdict};
use pmem_sim::topology::SocketId;
use pmem_ssb::{EngineMode, QueryId, SsbStore, StorageDevice};

const MIB: u64 = 1 << 20;

fn store() -> SsbStore {
    SsbStore::generate_and_load(0.01, 4242, EngineMode::Aware, StorageDevice::PmemFsdax)
        .expect("store generates and loads")
}

/// Scheduled config with batching off so each query stays its own reader
/// unit — the concurrency assertions below count threads exactly.
fn scheduled_unbatched(planner: &AccessPlanner) -> ServeConfig {
    ServeConfig {
        batch_window: 0.0,
        ..ServeConfig::scheduled(planner)
    }
}

/// Thirty reader threads on one socket, then seven writers: the writers
/// defer while the readers run (serialize-mixed), at most the saturation
/// cap of them run together afterwards, and the seventh queues behind the
/// cap — exactly what `should_serialize` and the concurrency budget say.
#[test]
fn writer_admission_matches_the_planner() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let policy = AdmissionPolicy::paper(&planner);
    assert!((4..=6).contains(&policy.writer_cap), "Best Practice #2 cap");
    assert_eq!(policy.reader_cap, 30, "core budget minus writer threads");

    let mut server = QueryServer::new(&store, scheduled_unbatched(&planner));
    // 5 queries x 6 threads = the full 30-thread reader budget of socket 0.
    let queries = [
        QueryId::Q1_1,
        QueryId::Q2_1,
        QueryId::Q3_1,
        QueryId::Q4_1,
        QueryId::Q4_2,
    ];
    for q in queries {
        server.submit(JobSpec::query(q).threads(6).socket(SocketId(0)));
    }
    // Seven writers show up just after the readers start.
    let writer_ids: Vec<_> = (0..7)
        .map(|i| {
            server.submit(
                JobSpec::ingest(256 * MIB)
                    .threads(1)
                    .socket(SocketId(0))
                    .arrival(1e-4)
                    .tenant(1 + i),
            )
        })
        .collect();
    let report = server.run().expect("run succeeds");

    assert_eq!(
        report.peak_concurrent_readers, 30,
        "the full reader budget is admitted"
    );
    assert!(
        report.peak_concurrent_writers <= policy.writer_cap,
        "never more than the saturation cap of writers: {} > {}",
        report.peak_concurrent_writers,
        policy.writer_cap
    );
    assert!(
        report.peak_concurrent_writers >= 4,
        "the cap itself is reached once reads drain"
    );

    let writers: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| writer_ids.contains(&j.id))
        .collect();
    assert_eq!(writers.len(), 7);
    // Every writer was first told to wait for the read phase to drain.
    for w in &writers {
        assert!(
            w.verdicts.iter().any(|(_, v)| matches!(
                v,
                Verdict::Queued {
                    reason: QueueReason::SerializeMixed
                }
            )),
            "{} deferred behind the read phase",
            w.id
        );
        assert!(w.queue_wait_seconds > 0.0);
    }
    // At least one writer (the 7th) also hit the writer cap once the first
    // six occupied the socket.
    assert!(
        writers
            .iter()
            .any(|w| w.verdicts.iter().any(|(_, v)| matches!(
                v,
                Verdict::Queued {
                    reason: QueueReason::WriterCap
                }
            ))),
        "the excess writer queues behind the cap"
    );

    // The deferral agrees with the planner's projection for this mix.
    let read_total: u64 = report
        .jobs
        .iter()
        .filter(|j| j.side == Side::Read)
        .map(|j| j.bytes)
        .sum();
    assert!(
        planner.should_serialize(30, 7, read_total, 7 * 256 * MIB),
        "planner projects serializing beats mixing for this workload"
    );
}

/// Queue-wait accounting under deferred admission: a writer deferred by
/// serialize-mixed waits exactly from arrival to admission, admission
/// happens only once the read phase drains, and the identities
/// `queue_wait = admitted - arrival` and `exec = finished - admitted`
/// hold for every job in the report.
#[test]
fn deferred_writers_account_their_queue_wait() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let mut server = QueryServer::new(&store, scheduled_unbatched(&planner));
    let queries = [
        QueryId::Q1_1,
        QueryId::Q2_1,
        QueryId::Q3_1,
        QueryId::Q4_1,
        QueryId::Q4_2,
    ];
    for q in queries {
        server.submit(JobSpec::query(q).threads(6).socket(SocketId(0)));
    }
    let writer = server.submit(
        JobSpec::ingest(256 * MIB)
            .threads(2)
            .socket(SocketId(0))
            .arrival(1e-4),
    );
    let report = server.run().expect("run succeeds");

    for job in &report.jobs {
        assert!(
            job.admitted_at + 1e-9 >= job.arrival,
            "{} admitted before it arrived",
            job.id
        );
        assert!(
            (job.queue_wait_seconds - (job.admitted_at - job.arrival)).abs() < 1e-6,
            "{} queue wait {} != admitted {} - arrival {}",
            job.id,
            job.queue_wait_seconds,
            job.admitted_at,
            job.arrival
        );
        assert!(
            (job.exec_seconds - (job.finished_at - job.admitted_at)).abs() < 1e-6,
            "{} exec time disagrees with its admission window",
            job.id
        );
    }

    // The full reader budget is free at t=0: readers never wait.
    for j in report.jobs.iter().filter(|j| j.side == Side::Read) {
        assert_eq!(j.queue_wait_seconds, 0.0, "{} admitted on arrival", j.id);
    }

    // The writer was deferred behind the read phase, and the entire
    // deferral — not just part of it — shows up as queue wait.
    let w = report
        .jobs
        .iter()
        .find(|j| j.id == writer)
        .expect("writer is reported");
    assert!(
        w.verdicts.iter().any(|(_, v)| matches!(
            v,
            Verdict::Queued {
                reason: QueueReason::SerializeMixed
            }
        )),
        "writer deferred by serialize-mixed"
    );
    let read_drain = report
        .jobs
        .iter()
        .filter(|j| j.side == Side::Read)
        .map(|j| j.finished_at)
        .fold(0.0, f64::max);
    assert!(read_drain > 0.0);
    assert!(
        w.admitted_at + 1e-6 >= read_drain,
        "writer admitted at {} before the reads drained at {}",
        w.admitted_at,
        read_drain
    );
    assert!(
        w.queue_wait_seconds >= read_drain - w.arrival - 1e-6,
        "deferral under-accounted: waited {} of {}",
        w.queue_wait_seconds,
        read_drain - w.arrival
    );
}

/// Scheduled mixed execution sustains the read-only scan rate (>=80%);
/// the unscheduled free-for-all measurably forfeits it.
#[test]
fn scheduling_protects_scan_bandwidth() {
    let store = store();
    let planner = AccessPlanner::paper_default();

    let queries = [
        QueryId::Q1_1,
        QueryId::Q2_1,
        QueryId::Q3_1,
        QueryId::Q4_1,
        QueryId::Q4_2,
    ];
    let readers =
        |socket: u8| queries.map(|q| JobSpec::query(q).threads(6).socket(SocketId(socket)));
    let writers = |socket: u8| {
        (0..7).map(move |_| {
            JobSpec::ingest(256 * MIB)
                .threads(1)
                .socket(SocketId(socket))
                .arrival(1e-4)
        })
    };

    // Read-only baseline under the scheduled config.
    let mut server = QueryServer::new(&store, scheduled_unbatched(&planner));
    server.submit_all(readers(0));
    let baseline = server.run().expect("read-only run");
    let baseline_bw = baseline.read_bandwidth_gib_s();
    assert!(
        baseline_bw > 20.0,
        "pinned scan rate is high: {baseline_bw}"
    );

    // Same reads plus writers, scheduled: reads keep their bandwidth.
    let mut server = QueryServer::new(&store, scheduled_unbatched(&planner));
    server.submit_all(readers(0));
    server.submit_all(writers(0));
    let scheduled = server.run().expect("scheduled mixed run");
    let scheduled_bw = scheduled.read_bandwidth_gib_s();
    assert!(
        scheduled_bw >= 0.80 * baseline_bw,
        "scheduled mixed read bandwidth {scheduled_bw:.2} fell below 80% of read-only {baseline_bw:.2}"
    );

    // Same mix with no admission control and no pinning: the mixed phase
    // plus NUMA-oblivious placement crush the scan rate.
    let mut server = QueryServer::new(&store, ServeConfig::free_for_all());
    server.submit_all(readers(0));
    server.submit_all(writers(0));
    let chaos = server.run().expect("free-for-all run");
    let chaos_bw = chaos.read_bandwidth_gib_s();
    assert!(
        chaos_bw < 0.60 * baseline_bw,
        "free-for-all read bandwidth {chaos_bw:.2} should fall measurably below read-only {baseline_bw:.2}"
    );
    assert!(
        chaos_bw < scheduled_bw,
        "scheduling must beat the free-for-all"
    );
}

/// Every submitted job — reader or writer, admitted straight away or
/// queued — completes with non-zero simulated device stats.
#[test]
fn every_job_completes_with_stats() {
    let store = store();
    let planner = AccessPlanner::paper_default();
    let mut server = QueryServer::new(&store, ServeConfig::scheduled(&planner));

    let all: [QueryId; 13] = [
        QueryId::Q1_1,
        QueryId::Q1_2,
        QueryId::Q1_3,
        QueryId::Q2_1,
        QueryId::Q2_2,
        QueryId::Q2_3,
        QueryId::Q3_1,
        QueryId::Q3_2,
        QueryId::Q3_3,
        QueryId::Q3_4,
        QueryId::Q4_1,
        QueryId::Q4_2,
        QueryId::Q4_3,
    ];
    for (i, q) in all.into_iter().enumerate() {
        server.submit(
            JobSpec::query(q)
                .threads(1 + (i as u32 % 4))
                .arrival(i as f64 * 0.002)
                .tenant(i as u32 % 3),
        );
    }
    for i in 0..4u64 {
        server.submit(
            JobSpec::ingest(64 * MIB)
                .threads(2)
                .arrival(0.001 * i as f64),
        );
    }
    let submitted = server.pending_jobs();
    let report = server.run().expect("run succeeds");

    assert_eq!(report.jobs.len(), submitted, "no job is lost");
    for job in &report.jobs {
        assert!(job.finished_at.is_finite(), "{} completed", job.id);
        assert!(job.exec_seconds > 0.0, "{} spent device time", job.id);
        assert!(job.bytes > 0, "{} moved bytes", job.id);
        let stats = &job.stats;
        assert!(
            stats.app_read_bytes + stats.app_write_bytes > 0,
            "{} has non-zero simulated stats",
            job.id
        );
        assert!(
            stats.media_read_bytes + stats.media_write_bytes > 0,
            "{} touched the media",
            job.id
        );
        if job.side == Side::Read {
            let counters = job.counters.expect("queries carry operator counters");
            assert!(counters.tuples_scanned > 0);
        }
    }
    // The merged stats fold every job's traffic.
    assert_eq!(
        report.stats.app_read_bytes,
        report
            .jobs
            .iter()
            .map(|j| j.stats.app_read_bytes)
            .sum::<u64>()
    );
    // Shared scans actually formed under the default window (13 queries
    // arriving 2 ms apart on two sockets, 10 ms window).
    assert!(report.batches < 13, "some scans coalesced");
    assert!(report.shared_scan_bytes_saved > 0);

    // The unscheduled config completes everything too (no lost jobs without
    // admission control either), pinning differences notwithstanding.
    let mut chaos = QueryServer::new(&store, ServeConfig::free_for_all());
    chaos.submit_all([
        JobSpec::query(QueryId::Q2_2).threads(40), // over-subscribed on purpose
        JobSpec::ingest(8 * MIB).threads(12),
    ]);
    let chaos_report = chaos.run().expect("free-for-all run succeeds");
    assert!(
        chaos_report
            .jobs
            .iter()
            .all(|j| j.finished_at.is_finite()
                && j.stats.app_read_bytes + j.stats.app_write_bytes > 0)
    );
}

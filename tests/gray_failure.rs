//! Acceptance tests for the gray-failure tentpole: one of eight
//! machines keeps answering at a tenth of its service rate — alive
//! enough that no binary breaker ever trips — while the scatter-gather
//! query plane fans Q1.1 out across the fleet at its surge cadence.
//! The accrual detector must suspect (never kill) the victim, demote it
//! to a graded router weight, hedge its partials to the ring replica,
//! and hand the weight back when the fault clears; with that plane
//! armed the fleet must hold ≥ 85% of healthy query goodput and a p99
//! within 1.5× of healthy, with zero data loss and zero double-counted
//! partials — while the oracle/no-hedge baseline demonstrably misses
//! both gates. Every run must replay bit for bit from its seed.

use pmem_cluster::{Cluster, ClusterConfig, DetectorConfig, DetectorMode, GrayConfig};
use pmem_serve::ShardRole;
use proptest::prelude::*;

/// The master seed: identical seeds must reproduce identical reports.
const SEED: u64 = 7;
/// The victim machine of the acceptance fault.
const VICTIM: u32 = 3;
/// Fail-slow window: [40 ms, 160 ms) of the 200 ms horizon — 60% of the
/// offered window served at `FACTOR` of the victim's rate.
const FAULT_AT: f64 = 0.04;
const FAULT_UNTIL: f64 = 0.16;
/// 10× service-time inflation: slow enough to drag every fan-out, fast
/// enough that the machine is unmistakably alive.
const FACTOR: f64 = 0.1;

fn accrual_fleet(shards: u32) -> Cluster {
    Cluster::build(ClusterConfig::demo(shards, SEED).with_detector(DetectorConfig::accrual()))
        .expect("cluster builds")
}

fn fault() -> GrayConfig {
    GrayConfig::demo().with_fail_slow(VICTIM, FAULT_AT, FAULT_UNTIL, FACTOR)
}

#[test]
fn hedged_accrual_plane_holds_goodput_and_tail_where_the_oracle_baseline_collapses() {
    let mut cluster = accrual_fleet(8);
    let healthy = cluster.run_gray(&fault().healthy()).expect("healthy run");
    let hedged = cluster.run_gray(&fault()).expect("hedged run");
    println!("healthy:\n{healthy}");
    println!("hedged accrual:\n{hedged}");

    // The gray gate: detector + hedging hold the query plane.
    assert!(healthy.query_goodput_bytes_per_sec > 0.0);
    assert!(
        hedged.goodput_vs(&healthy) >= 0.85,
        "hedged goodput fell to {:.1}% of healthy",
        100.0 * hedged.goodput_vs(&healthy)
    );
    assert!(
        hedged.p99_vs(&healthy) <= 1.5,
        "hedged p99 stretched to {:.2}x healthy",
        hedged.p99_vs(&healthy)
    );

    // Zero committed-data loss, zero double counting: every query's
    // aggregate matched the ground truth, and exactly one partial per
    // key range was summed even across hedge races.
    assert!(hedged.data_intact());
    assert_eq!(hedged.mismatched_queries, 0);
    assert_eq!(hedged.double_counted, 0);

    // The detector worked the fault, not the machine's obituary: it
    // suspected the victim shortly after onset, never declared a merely
    // slow machine dead, and hedges actually carried the demoted range.
    let suspected = hedged.suspected_at.expect("victim suspected");
    assert!(
        suspected > FAULT_AT && suspected < FAULT_AT + 0.005,
        "suspected at {suspected:.3}s"
    );
    assert_eq!(hedged.dead_at, None, "fail-slow must never read as dead");
    assert!(hedged.hedges_fired > 0);
    assert!(hedged.hedges_tied > 0, "demoted shard gets tied hedges");
    assert!(hedged.hedge_wins > 0, "backups beat the slow primary");
    assert!(hedged.replica_partials > 0);
    assert_eq!(
        hedged.hedges_cancelled, hedged.hedges_fired,
        "every race has exactly one loser, cancelled — never also counted"
    );

    // The baseline the detector replaces: blackout oracle (blind to
    // fail-slow) and no hedging. It must demonstrably miss BOTH gates.
    cluster.set_detector(DetectorConfig::oracle());
    let baseline = cluster
        .run_gray(&fault().without_hedging())
        .expect("baseline run");
    println!("oracle no-hedge baseline:\n{baseline}");
    assert_eq!(baseline.suspected_at, None, "the oracle never sees it");
    assert_eq!(baseline.hedges_fired, 0);
    assert!(
        baseline.goodput_vs(&healthy) < 0.85,
        "baseline goodput held {:.1}% — the contrast must bite",
        100.0 * baseline.goodput_vs(&healthy)
    );
    assert!(
        baseline.p99_vs(&healthy) > 1.5,
        "baseline p99 only {:.2}x healthy",
        baseline.p99_vs(&healthy)
    );
    // Slow, not lossy: the baseline still answers correctly — the gray
    // failure is a latency/goodput catastrophe, not a data one.
    assert!(baseline.data_intact());
}

#[test]
fn suspected_machine_is_demoted_gradedly_and_reearns_full_weight() {
    let mut cluster = accrual_fleet(8);
    let hedged = cluster.run_gray(&fault()).expect("hedged run");

    // Graded demotion: the victim kept serving at the demoted weight —
    // never zero — and new ingest arrivals rebalanced to the ring peer,
    // paying the interconnect.
    let det = DetectorConfig::accrual();
    assert!(hedged.victim_weight_min > 0.0, "demotion is not exile");
    assert!((hedged.victim_weight_min - det.demoted_weight).abs() < 1e-12);
    assert!(hedged.rebalanced_jobs > 0, "ingest moved off the victim");
    let victim_fanout = hedged.per_shard[VICTIM as usize]
        .fanout
        .as_ref()
        .expect("victim fan-out attached");
    assert_eq!(victim_fanout.role, ShardRole::Demoted);
    assert!(
        victim_fanout.routed_jobs > victim_fanout.rebalanced_jobs,
        "the demoted shard kept part of its load"
    );
    let peer = cluster.map().replica_of(VICTIM).expect("ring peer") as usize;
    let peer_fanout = hedged.per_shard[peer]
        .fanout
        .as_ref()
        .expect("peer fan-out");
    assert_eq!(peer_fanout.role, ShardRole::Failover);
    assert_eq!(peer_fanout.rerouted_jobs, hedged.rebalanced_jobs);
    assert!(
        peer_fanout.transfer_seconds > 0.0,
        "rebalances price the wire"
    );

    // Recovery: once the window closes the probes clear the score and
    // the victim finishes the run at full router weight.
    let cleared = hedged.cleared_at.expect("victim re-earned its weight");
    assert!(
        cleared > FAULT_UNTIL && cleared < hedged.horizon,
        "cleared at {cleared:.3}s"
    );
    assert_eq!(
        hedged.victim_weight_end.to_bits(),
        1.0f64.to_bits(),
        "full weight restored by end of run"
    );
}

#[test]
fn reactive_hedges_cover_the_detector_blind_window() {
    let mut cluster = accrual_fleet(8);
    let hedged = cluster.run_gray(&fault()).expect("hedged run");
    // Queries issued between fault onset and first suspicion see a
    // healthy-looking timeline; their straggling primaries must still be
    // hedged reactively at the observed latency quantile.
    assert!(
        hedged.hedges_fired > hedged.hedges_tied,
        "at least one reactive hedge fired in the blind window"
    );
    // And the healthy fleet fires none at all: the quantile trigger must
    // not hedge ordinary latency noise.
    let healthy = cluster.run_gray(&fault().healthy()).expect("healthy run");
    assert_eq!(healthy.hedges_fired, 0, "no hedging tax when healthy");
    assert_eq!(healthy.queries_met, healthy.queries);
}

#[test]
fn accrual_detector_beats_the_oracle_on_a_true_blackout() {
    // The detector also subsumes the blackout path: with the accrual
    // mode on, `run_with_lost_shard` fails over when the health score
    // hits the dead threshold — with no oracle whisper — and it must be
    // at least as fast as the old fixed 5 ms DETECT_DELAY was.
    let at = 0.05;
    let mut cluster = accrual_fleet(4);
    let lost = cluster.run_with_lost_shard(1, at).expect("failover run");
    let detected = lost.failover_at.expect("failover timestamped");
    assert!(detected > at, "no clairvoyance");
    assert!(
        detected < at + DetectorConfig::accrual().oracle_delay,
        "accrual detection at {detected:.4}s is no faster than the oracle"
    );
    assert!(lost.rerouted_jobs > 0);
    assert!(lost.data_intact());

    // Same fault under the oracle: detection pinned at exactly the
    // configured delay (the old DETECT_DELAY constant, now owned by
    // DetectorConfig).
    let mut oracle = Cluster::build(ClusterConfig::demo(4, SEED)).expect("cluster builds");
    assert_eq!(oracle.config().detector.mode, DetectorMode::Oracle);
    assert_eq!(oracle.config().detector.oracle_delay, 0.005);
    let lost = oracle.run_with_lost_shard(1, at).expect("failover run");
    assert_eq!(
        lost.failover_at.expect("failover timestamped").to_bits(),
        (at + 0.005).to_bits()
    );
}

#[test]
fn slower_oracles_reroute_no_more_jobs() {
    // The config-owned delay actually steers the router: the longer the
    // oracle sleeps, the fewer post-detection arrivals can move.
    let mut rerouted = Vec::new();
    for delay in [0.005, 0.02, 0.08] {
        let det = DetectorConfig {
            oracle_delay: delay,
            ..DetectorConfig::oracle()
        };
        let mut cluster =
            Cluster::build(ClusterConfig::demo(4, SEED).with_detector(det)).expect("builds");
        let lost = cluster.run_with_lost_shard(1, 0.05).expect("failover run");
        assert_eq!(
            lost.failover_at.expect("timestamped").to_bits(),
            (0.05 + delay).to_bits()
        );
        rerouted.push(lost.rerouted_jobs);
    }
    assert!(
        rerouted.windows(2).all(|w| w[0] >= w[1]),
        "rerouted jobs must be non-increasing in detection delay: {rerouted:?}"
    );
    assert!(
        rerouted[0] > rerouted[2],
        "the sweep actually moved routing"
    );
}

#[test]
fn gray_runs_are_seed_deterministic() {
    let run = || {
        let mut cluster = accrual_fleet(8);
        cluster.run_gray(&fault()).expect("hedged run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.queries_met, b.queries_met);
    assert_eq!(a.hedges_fired, b.hedges_fired);
    assert_eq!(a.hedges_tied, b.hedges_tied);
    assert_eq!(a.hedge_wins, b.hedge_wins);
    assert_eq!(a.hedges_cancelled, b.hedges_cancelled);
    assert_eq!(a.replica_partials, b.replica_partials);
    assert_eq!(a.rebalanced_jobs, b.rebalanced_jobs);
    assert_eq!(a.suspected_at, b.suspected_at);
    assert_eq!(a.cleared_at, b.cleared_at);
    assert_eq!(a.reference, b.reference);
    assert_eq!(
        a.query_goodput_bytes_per_sec.to_bits(),
        b.query_goodput_bytes_per_sec.to_bits()
    );
    assert_eq!(a.query_latency.p99.to_bits(), b.query_latency.p99.to_bits());
    assert_eq!(a.query_latency_max.to_bits(), b.query_latency_max.to_bits());
    assert_eq!(
        a.ingest_goodput_bytes_per_sec.to_bits(),
        b.ingest_goodput_bytes_per_sec.to_bits()
    );
    assert_eq!(
        a.query_transfer_seconds.to_bits(),
        b.query_transfer_seconds.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: across random victims, fault windows, severities and
    /// query phases, hedged scatter-gather answers are byte-identical
    /// to the unhedged healthy run's — the same committed ground truth,
    /// on every query, with every race resolving to exactly one counted
    /// partial and exactly one cancelled loser.
    #[test]
    fn hedged_answers_are_byte_identical_to_the_healthy_run(
        seed in 0u64..1_000,
        victim in 0u32..4,
        at_milli in 10u32..120,
        len_milli in 10u32..80,
        factor_milli in 50u32..600,
        offset_micro in 0u32..900,
    ) {
        let cfg = ClusterConfig::demo(4, seed).with_detector(DetectorConfig::accrual());
        let mut cluster = Cluster::build(cfg).expect("cluster builds");
        let at = f64::from(at_milli) / 1000.0;
        let gray = GrayConfig {
            query_offset: f64::from(offset_micro) / 1e6,
            ..GrayConfig::demo()
        }
        .with_fail_slow(
            victim,
            at,
            at + f64::from(len_milli) / 1000.0,
            f64::from(factor_milli) / 1000.0,
        );
        let healthy = cluster
            .run_gray(&gray.healthy().without_hedging())
            .expect("healthy run");
        let hedged = cluster.run_gray(&gray).expect("hedged run");

        // Same ground truth, zero mismatches on either side: every
        // hedged aggregate is byte-identical to the unhedged one.
        prop_assert_eq!(hedged.reference, healthy.reference);
        prop_assert_eq!(healthy.mismatched_queries, 0);
        prop_assert_eq!(hedged.mismatched_queries, 0);
        prop_assert_eq!(hedged.double_counted, 0);
        prop_assert!(hedged.data_intact());
        // Race bookkeeping: one loser per hedge, no orphans.
        prop_assert_eq!(hedged.hedges_cancelled, hedged.hedges_fired);
        prop_assert!(hedged.hedge_wins <= hedged.hedges_fired);
        prop_assert!(hedged.replica_partials == hedged.hedge_wins);
        // A fail-slow machine is never declared dead, whatever the dose.
        prop_assert_eq!(hedged.dead_at, None);
    }
}

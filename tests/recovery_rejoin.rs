//! Acceptance tests for the recovery-plane tentpole: a machine that
//! blacks out mid-run *comes back* — it scrubs its shard against the
//! sealed checksums, catches up divergence from the ring replica via
//! incremental anti-entropy (hash exchange + divergent blocks only,
//! shipped bytes ≪ shard bytes), re-earns traffic through the accrual
//! detector's probe path, takes its key range back, and the extra
//! replica re-replication made is garbage-collected. Fleet goodput over
//! the post-recovery tail must return to ≥ 95% of healthy while the
//! no-rejoin baseline demonstrably stays pinned at the degraded level,
//! with zero committed-data loss and bit-for-bit seed determinism.

use pmem_cluster::{Cluster, ClusterConfig, DetectorConfig, RecoveryConfig};
use pmem_serve::ShardRole;

/// The master seed: identical seeds must reproduce identical reports.
const SEED: u64 = 7;

fn fleet(shards: u32) -> Cluster {
    Cluster::build(ClusterConfig::demo(shards, SEED)).expect("cluster builds")
}

#[test]
fn rejoined_machine_catches_up_and_restores_fleet_goodput() {
    let mut cluster = fleet(8);
    cluster.set_detector(DetectorConfig::accrual());
    let victim = 3u32;
    let rcfg = RecoveryConfig::demo(victim);

    let healthy = cluster.run_healthy().expect("healthy run");
    // The no-rejoin baseline: same blackout instant, but the window
    // never closes — the victim is written off for good. (Run before
    // the rejoin so the final cluster state below is the rejoin's.)
    let pinned = cluster
        .run_with_lost_shard(victim, rcfg.blackout_at)
        .expect("no-rejoin baseline");
    let rejoin = cluster.run_rejoin(&rcfg).expect("rejoin run");
    println!("healthy goodput {:.2} GiB/s", healthy.goodput_gib_s());
    println!("rejoin:\n{rejoin}");
    println!("pinned:\n{pinned}");

    // The arc ran end to end: detection, damage, scrub, catch-up,
    // probe-earned weight, hand-back.
    assert!(rejoin.detect_at > rcfg.blackout_at);
    assert!(
        rejoin.detect_at < rcfg.blackout_at + cluster.config().detector.oracle_delay,
        "accrual detection {:.4}s beats the oracle delay it replaced",
        rejoin.detect_at
    );
    assert!(rejoin.poisoned_lines > 0, "the blackout left media damage");
    assert!(
        rejoin.scrub_bad_blocks > 0,
        "the rejoin scrub found the damage"
    );
    assert!(rejoin.caught_up, "verified catch-up succeeded");
    let full_weight_at = rejoin.full_weight_at.expect("full weight re-earned");
    assert!(
        full_weight_at > rejoin.ready_at && rejoin.ready_at > rcfg.blackout_until,
        "suspect → demoted → full weight is a staged hand-back"
    );
    assert!(
        rejoin.time_to_full_weight().expect("rejoined") < 0.02,
        "weight back within a few probe dwells of the rejoin"
    );

    // Anti-entropy shipped *only* the divergent blocks — never the
    // whole shard (the full-copy alternative is the denominator). The
    // demo shard is a miniature (a few dozen 4 KiB blocks), so the
    // honest "≪" at this scale is structural: shipped blocks == the
    // scrub's damaged blocks, a small fraction of the blocks examined,
    // and a fraction of the shard's bytes.
    assert!(rejoin.catch_up.blocks_shipped > 0);
    assert_eq!(
        rejoin.catch_up.blocks_shipped, rejoin.scrub_bad_blocks,
        "exactly the divergent blocks ship — no more"
    );
    assert!(
        rejoin.catch_up.blocks_shipped * 4 <= rejoin.catch_up.blocks_examined,
        "shipped {} of {} examined blocks — not an incremental catch-up",
        rejoin.catch_up.blocks_shipped,
        rejoin.catch_up.blocks_examined
    );
    assert!(
        rejoin.catch_up.bytes_shipped < rejoin.full_shard_bytes / 3,
        "shipped {} B must be ≪ the {} B shard",
        rejoin.catch_up.bytes_shipped,
        rejoin.full_shard_bytes
    );
    assert!(
        rejoin.catch_up.hash_bytes_exchanged < rejoin.full_shard_bytes / 50,
        "the hash exchange is cheap"
    );
    assert_eq!(rejoin.catch_up.unrepairable, 0);
    assert!(rejoin.catch_up.clean, "end state verified clean");

    // Roles: the victim came back as `Rejoining`, its ring peer absorbed
    // the blackout span as `Failover`.
    let victim_fanout = rejoin.per_shard[victim as usize]
        .fanout
        .as_ref()
        .expect("victim fan-out");
    assert_eq!(victim_fanout.role, ShardRole::Rejoining);
    assert!(
        (victim_fanout.router_weight - 1.0).abs() < 1e-12,
        "full weight by end of run"
    );
    let peer = cluster.map().replica_of(victim).expect("ring peer");
    assert_eq!(
        rejoin.per_shard[peer as usize]
            .fanout
            .as_ref()
            .expect("peer fan-out")
            .role,
        ShardRole::Failover
    );
    assert!(rejoin.rerouted_jobs > 0, "the blackout span failed over");
    assert!(
        rejoin.handed_back_jobs > 0,
        "post-recovery arrivals came back to the victim"
    );

    // The replica-served range was handed back and the extra replica
    // GC'd: redundancy is back to exactly two copies.
    assert!(
        rejoin.rereplicated_bytes > 0,
        "re-replication ran at detect"
    );
    assert_eq!(
        rejoin.replica_gc_bytes, rejoin.rereplicated_bytes,
        "the extra copy was garbage-collected after the verified hand-back"
    );
    let third = cluster
        .machines()
        .iter()
        .enumerate()
        .filter(|(s, m)| *s != peer as usize && m.replica_of(victim).is_some())
        .count();
    assert_eq!(third, 0, "only the steady ring replica remains");

    // Goodput over the post-recovery tail returns to ≥ 95% of healthy —
    // while the written-off baseline stays pinned at the degraded level.
    let tail = (full_weight_at, cluster.config().horizon);
    let healthy_tail = healthy.goodput_in_window(tail.0, tail.1);
    let rejoin_tail = rejoin.goodput_in_window(tail.0, tail.1);
    let pinned_tail = pinned.goodput_in_window(tail.0, tail.1);
    println!(
        "tail ({:.3}, {:.3}]s goodput: healthy {:.3e}, rejoin {:.3e} ({:.1}%), pinned {:.3e} ({:.1}%)",
        tail.0,
        tail.1,
        healthy_tail,
        rejoin_tail,
        100.0 * rejoin_tail / healthy_tail,
        pinned_tail,
        100.0 * pinned_tail / healthy_tail,
    );
    assert!(
        rejoin_tail >= 0.95 * healthy_tail,
        "rejoined fleet tail goodput {rejoin_tail:.3e} < 95% of healthy {healthy_tail:.3e}"
    );
    assert!(
        pinned_tail < 0.95 * healthy_tail,
        "the no-rejoin baseline must demonstrably stay degraded"
    );
    assert!(
        rejoin_tail > pinned_tail,
        "rejoining must beat writing the machine off"
    );

    // Zero committed-data loss: the rejoined primary serves its own
    // range again and the aggregate matches the committed ground truth.
    assert!(
        rejoin.data_intact(),
        "aggregate {} != committed {}",
        rejoin.query.aggregate,
        rejoin.reference
    );
    assert_eq!(
        rejoin.query.replica_served_rows, 0,
        "no range is replica-served after the hand-back"
    );
}

#[test]
fn unverifiable_catch_up_is_never_handed_back() {
    // Poison the victim's shard AND the same region of its hosted
    // replica before the rejoin: the catch-up sees the divergence but
    // cannot source verified bytes for it, so it must refuse the
    // hand-back and leave the range failed over.
    let mut cluster = fleet(4);
    let victim = 1u32;
    let peer = cluster.map().replica_of(victim).expect("ring peer");
    {
        use pmem_ssb::columnar::Column;
        let machines = cluster.machines_mut();
        machines[victim as usize]
            .fact
            .inject_poison(Column::Revenue, 0, 64);
        let replica = machines[peer as usize]
            .replicas
            .iter_mut()
            .find(|(s, _)| *s == victim)
            .map(|(_, f)| f)
            .expect("hosted replica");
        replica.inject_poison(Column::Revenue, 0, 64);
    }
    let rejoin = cluster
        .run_rejoin(&RecoveryConfig::demo(victim))
        .expect("rejoin run");
    println!("{rejoin}");
    assert!(
        !rejoin.caught_up,
        "a catch-up that cannot verify must refuse"
    );
    assert!(rejoin.catch_up.unrepairable > 0);
    assert_eq!(rejoin.full_weight_at, None, "no weight hand-back");
    assert_eq!(rejoin.handed_back_jobs, 0);
    assert_eq!(rejoin.replica_gc_bytes, 0, "the extra replica stays");
    // The fleet still loses nothing: the (clean part of the) replica
    // keeps serving... but this replica is damaged too, so the honest
    // verdict is a visible loss, never a silently-served garbage range.
    assert!(
        !rejoin.data_intact(),
        "a damaged primary AND damaged replica must surface, not serve garbage"
    );
}

#[test]
fn oracle_mode_hands_back_after_its_fixed_delay() {
    let mut cluster = fleet(8);
    let rejoin = cluster
        .run_rejoin(&RecoveryConfig::demo(5))
        .expect("rejoin run");
    assert!(rejoin.caught_up);
    let fw = rejoin.full_weight_at.expect("oracle hands back too");
    let expected = rejoin.ready_at + cluster.config().detector.oracle_delay;
    assert!(
        (fw - expected).abs() < 1e-12,
        "oracle full weight {fw} != ready + delay {expected}"
    );
    assert!(rejoin.data_intact());
}

#[test]
fn rejoin_runs_are_seed_deterministic() {
    let run = || {
        let mut cluster = fleet(8);
        cluster.set_detector(DetectorConfig::accrual());
        cluster
            .run_rejoin(&RecoveryConfig::demo(3))
            .expect("rejoin run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.detect_at.to_bits(), b.detect_at.to_bits());
    assert_eq!(a.poisoned_lines, b.poisoned_lines);
    assert_eq!(a.scrub_bad_blocks, b.scrub_bad_blocks);
    assert_eq!(a.catch_up, b.catch_up, "anti-entropy replays bit for bit");
    assert_eq!(a.ready_at.to_bits(), b.ready_at.to_bits());
    assert_eq!(
        a.full_weight_at.map(f64::to_bits),
        b.full_weight_at.map(f64::to_bits)
    );
    assert_eq!(a.rerouted_jobs, b.rerouted_jobs);
    assert_eq!(a.handed_back_jobs, b.handed_back_jobs);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.query.partials, b.query.partials);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(
        a.goodput_bytes_per_sec.to_bits(),
        b.goodput_bytes_per_sec.to_bits()
    );
    assert_eq!(a.e2e.p99.to_bits(), b.e2e.p99.to_bits());
}

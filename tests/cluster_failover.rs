//! Acceptance tests for the sharded-serving tentpole: SSB facts are
//! hash-partitioned across N simulated machines, each partition is
//! replicated to its ring successor, and a seeded whole-machine blackout
//! at 2× per-shard load must not dent fleet goodput below 85% of the
//! healthy fleet, must keep the tail bounded, and must lose zero
//! committed data — while the replication-off baseline demonstrably
//! loses the dead shard's rows. Scaling 1 → N must stay near-linear,
//! and every counter must be seed-deterministic.
//!
//! Like the overload suite, the serving workload is ingest-only so the
//! whole fleet prices in the virtual plane and the suite stays cheap.

use pmem_cluster::{Cluster, ClusterConfig, ShardMachine};
use pmem_serve::{ShardRole, SloClass, SloPolicy};
use pmem_ssb::columnar::Column;

/// The master seed: identical seeds must reproduce identical reports.
const SEED: u64 = 7;
/// Blackout instant, ~25% into the 0.2 s demo horizon: the victim gets a
/// healthy head start, then the fleet absorbs the loss for the remaining
/// three quarters of the offered window.
const BLACKOUT_AT: f64 = 0.05;

fn fleet(shards: u32) -> Cluster {
    Cluster::build(ClusterConfig::demo(shards, SEED)).expect("cluster builds")
}

#[test]
fn lost_shard_keeps_goodput_tail_and_committed_data() {
    let mut cluster = fleet(8);
    let healthy = cluster.run_healthy().expect("healthy run");
    let victim = 3;
    let lost = cluster
        .run_with_lost_shard(victim, BLACKOUT_AT)
        .expect("failover run");
    println!("healthy:\n{healthy}");
    println!("lost:\n{lost}");

    // Robustness gate: the fleet keeps ≥ 85% of healthy goodput with one
    // of eight machines dark for ~90% of the run.
    assert!(healthy.goodput_bytes_per_sec > 0.0);
    assert!(
        lost.goodput_bytes_per_sec >= 0.85 * healthy.goodput_bytes_per_sec,
        "goodput under failover {:.2} GiB/s < 85% of healthy {:.2} GiB/s",
        lost.goodput_gib_s(),
        healthy.goodput_gib_s()
    );

    // Bounded tail: completed work must not hide behind a stretched p99.
    assert!(
        lost.e2e.p99 <= (2.0 * healthy.e2e.p99).max(0.3),
        "failover p99 {:.3}s vs healthy {:.3}s",
        lost.e2e.p99,
        healthy.e2e.p99
    );

    // Failover actually happened: post-detection arrivals moved to the
    // replica host and paid the interconnect.
    assert_eq!(lost.lost_shard, Some(victim));
    assert!(
        lost.rerouted_jobs > 0,
        "router re-routed the dead key range"
    );
    let peer = cluster.map().replica_of(victim).expect("ring peer");
    let peer_fanout = lost.per_shard[peer as usize]
        .fanout
        .as_ref()
        .expect("fan-out outcome attached");
    assert_eq!(peer_fanout.role, ShardRole::Failover);
    assert_eq!(peer_fanout.rerouted_jobs, lost.rerouted_jobs);
    assert!(
        peer_fanout.transfer_seconds > 0.0,
        "reroutes price the wire"
    );
    for (s, report) in lost.per_shard.iter().enumerate() {
        let fanout = report.fanout.as_ref().expect("every shard reports fan-out");
        assert_eq!(fanout.shard, s as u32);
        if s as u32 != peer {
            assert_eq!(fanout.role, ShardRole::Primary);
        }
    }

    // The cluster-level breaker isolated the dead shard.
    assert!(
        lost.outcomes[victim as usize].breaker_trips >= 1,
        "victim's breaker must trip after the blackout"
    );

    // Zero committed-data loss: the scatter-gather aggregate over the
    // survivors (serving the dead range from its replica) equals the
    // committed ground truth.
    assert!(
        lost.data_intact(),
        "aggregate {} != committed {}",
        lost.query.aggregate,
        lost.reference
    );
    assert_eq!(lost.query.lost_rows, 0);
    assert!(
        lost.query.replica_served_rows > 0,
        "replica served the dead range"
    );
    assert_eq!(
        lost.query.replica_served_rows,
        cluster.machines()[victim as usize].rows
    );

    // Background re-replication restored two-copy redundancy.
    assert!(lost.rereplicated_bytes > 0);
    let restored = lost.redundancy_restored_at.expect("redundancy restored");
    assert!(restored > lost.failover_at.expect("failover timestamped"));
}

#[test]
fn replication_off_baseline_loses_committed_data() {
    let mut cluster =
        Cluster::build(ClusterConfig::demo(4, SEED).without_replication()).expect("cluster builds");
    let victim = 1;
    assert!(
        cluster.machines()[victim as usize].committed != 0,
        "victim partition must hold committed revenue for the contrast to bite"
    );
    let lost = cluster
        .run_with_lost_shard(victim, BLACKOUT_AT)
        .expect("baseline run");
    assert!(
        !lost.data_intact(),
        "without replication the loss must show"
    );
    assert_eq!(
        lost.query.lost_rows,
        cluster.machines()[victim as usize].rows
    );
    assert!(lost.query.lost_rows > 0);
    assert_ne!(lost.query.aggregate, lost.reference);
    assert_eq!(lost.query.replica_served_rows, 0);
    assert_eq!(lost.rerouted_jobs, 0, "no replica, nowhere to re-route");
    assert_eq!(lost.rereplicated_bytes, 0);
}

#[test]
fn poisoned_shard_repairs_from_its_remote_replica() {
    let mut cluster = fleet(4);
    let victim = 2usize;
    let before = ShardMachine::q11_partial(&cluster.machines()[victim].fact);
    assert_eq!(before, cluster.machines()[victim].committed);

    let poisoned = {
        let fact = &mut cluster.machines_mut()[victim].fact;
        fact.inject_poison(Column::Revenue, 0, 16)
            + fact.inject_poison(Column::ExtendedPrice, 4096, 300)
            + fact.inject_poison(Column::Discount, 128, 8)
    };
    assert!(poisoned > 0, "poison landed");

    let repair = cluster
        .repair_shard_from_replica(victim as u32)
        .expect("repair runs");
    assert!(repair.blocks_repaired > 0);
    assert!(
        repair.is_fully_repaired(),
        "every block rebuilt from the peer"
    );

    // Byte-exact: the rebuilt partition answers exactly as before.
    let fact = &cluster.machines()[victim].fact;
    assert!(fact.scrub().iter().all(|(_, r)| r.is_clean()));
    assert_eq!(ShardMachine::q11_partial(fact), before);
}

#[test]
fn scaling_out_is_near_linear() {
    let goodput: Vec<f64> = [1u32, 2, 4]
        .iter()
        .map(|&n| {
            let report = fleet(n).run_healthy().expect("healthy run");
            assert_eq!(report.lost_shard, None);
            assert_eq!(report.rerouted_jobs, 0);
            println!(
                "{n} shard(s): {:.2} GiB/s over {} jobs",
                report.goodput_gib_s(),
                report.jobs
            );
            report.goodput_bytes_per_sec
        })
        .collect();
    assert!(goodput[0] > 0.0);
    assert!(
        goodput[1] >= 1.6 * goodput[0],
        "2 shards {:.3e} < 1.6x one shard {:.3e}",
        goodput[1],
        goodput[0]
    );
    assert!(
        goodput[2] >= 3.2 * goodput[0],
        "4 shards {:.3e} < 3.2x one shard {:.3e}",
        goodput[2],
        goodput[0]
    );
}

#[test]
fn slo_classes_propagate_through_failover_rerouting() {
    // With the SLO policy on, each shard's steady tenant is Interactive
    // and its bursty tenant BestEffort. Losing a shard re-routes its
    // post-detection arrivals to the replica host, and the class must
    // travel with the job: the failover host's report carries both
    // tiers, and no job is left at the default class.
    let cfg = ClusterConfig::demo(2, SEED).with_slo(SloPolicy::default_on());
    let mut cluster = Cluster::build(cfg).expect("cluster builds");
    let lost = cluster
        .run_with_lost_shard(0, BLACKOUT_AT)
        .expect("failover run");
    assert!(lost.rerouted_jobs > 0, "failover actually re-routed work");
    let host = lost
        .per_shard
        .iter()
        .find(|r| {
            r.fanout
                .as_ref()
                .is_some_and(|f| f.role == ShardRole::Failover)
        })
        .expect("a replica host served the victim's range");
    assert!(
        host.class_report(SloClass::Interactive).is_some(),
        "the victim's interactive tenant landed on the host"
    );
    assert!(host.class_report(SloClass::BestEffort).is_some());
    assert!(
        host.jobs.iter().all(|j| j.class != SloClass::Standard),
        "every tenant was class-tagged; nothing fell back to default"
    );
    // Class-aware shedding holds on the overloaded failover host too:
    // best-effort absorbs at least as many sheds as the latency tier.
    let sheds = |class| host.class_report(class).map(|c| c.shed).unwrap_or_default();
    assert!(
        sheds(SloClass::BestEffort) >= sheds(SloClass::Interactive),
        "best-effort must absorb the shed load before interactive"
    );
}

#[test]
fn cluster_runs_are_seed_deterministic() {
    let run = || {
        let mut cluster = fleet(4);
        cluster
            .run_with_lost_shard(1, BLACKOUT_AT)
            .expect("failover run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.rerouted_jobs, b.rerouted_jobs);
    assert_eq!(a.shard_breaker_trips, b.shard_breaker_trips);
    assert_eq!(a.outcomes, b.outcomes, "per-shard counters match exactly");
    assert_eq!(a.query.partials, b.query.partials);
    assert_eq!(a.query.aggregate, b.query.aggregate);
    assert_eq!(a.rereplicated_bytes, b.rereplicated_bytes);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(
        a.goodput_bytes_per_sec.to_bits(),
        b.goodput_bytes_per_sec.to_bits()
    );
    assert_eq!(a.e2e.p99.to_bits(), b.e2e.p99.to_bits());
    assert_eq!(a.redundancy_restored_at, b.redundancy_restored_at);
}

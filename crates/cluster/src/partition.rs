//! Hash partitioning of the SSB fact table across shards.
//!
//! Rows are routed by `orderkey` through a splitmix64 mix — the same
//! finalizer the seeded arrival processes use — so placement is uniform,
//! stateless, and stable: the same key maps to the same shard on every
//! run and every machine, which is what lets a router and N machines
//! agree on ownership without coordination. Dimension tables are small
//! and read-mostly; every shard keeps a full copy (the standard
//! star-schema broadcast), so scatter-gather queries never move
//! dimension rows at query time.

use pmem_sim::rng::splitmix64;
use pmem_ssb::datagen::SsbData;

/// The cluster's partitioning function: `shards` hash buckets over the
/// fact table's order keys, plus the successor-replica layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` shards (at least 1).
    pub fn new(shards: u32) -> Self {
        ShardMap {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `orderkey`. Deterministic: depends only on the
    /// key and the shard count.
    pub fn shard_of(&self, orderkey: u64) -> u32 {
        (splitmix64(orderkey) % u64::from(self.shards)) as u32
    }

    /// The peer holding `shard`'s replica (its ring successor), or
    /// `None` for a single-shard cluster that has no peer to hold one.
    pub fn replica_of(&self, shard: u32) -> Option<u32> {
        (self.shards > 1).then(|| (shard + 1) % self.shards)
    }

    /// A uniform `[0, 1)` draw deciding whether job `index` *stays* on a
    /// demoted `shard` (stay while the draw is below the shard's router
    /// weight). Pure function of `(seed, shard, index)`: the router and
    /// every replayed run agree on each job's placement without shared
    /// state, the same property [`ShardMap::shard_of`] gives key routing.
    pub fn rebalance_draw(seed: u64, shard: u32, index: u64) -> f64 {
        let bits = splitmix64(seed ^ splitmix64((u64::from(shard) << 32) ^ index));
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Split `data` into one [`SsbData`] per shard: `lineorder` rows
    /// routed by [`ShardMap::shard_of`], dimension tables copied whole
    /// into every shard.
    pub fn partition(&self, data: &SsbData) -> Vec<SsbData> {
        let mut parts: Vec<SsbData> = (0..self.shards)
            .map(|_| SsbData {
                lineorder: Vec::new(),
                dates: data.dates.clone(),
                customers: data.customers.clone(),
                suppliers: data.suppliers.clone(),
                parts: data.parts.clone(),
            })
            .collect();
        for row in &data.lineorder {
            parts[self.shard_of(row.orderkey) as usize]
                .lineorder
                .push(*row);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use pmem_ssb::datagen::generate;

    #[test]
    fn same_key_same_shard_across_runs_and_instances() {
        for shards in [1u32, 2, 3, 8, 16] {
            let a = ShardMap::new(shards);
            let b = ShardMap::new(shards);
            for key in (0u64..50_000).step_by(7) {
                let s = a.shard_of(key);
                assert_eq!(s, b.shard_of(key), "instances agree");
                assert_eq!(s, a.shard_of(key), "repeat calls agree");
                assert!(s < shards);
            }
        }
    }

    #[test]
    fn partitioning_is_balanced_and_lossless() {
        let data = generate(0.002, 77);
        let map = ShardMap::new(8);
        let parts = map.partition(&data);
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|p| p.lineorder.len()).sum();
        assert_eq!(total, data.lineorder.len(), "every row lands somewhere");
        let expect = data.lineorder.len() / 8;
        for (s, p) in parts.iter().enumerate() {
            // splitmix64 over dense orderkeys is near-uniform; allow 2x skew.
            // (orderkeys repeat across linenumbers, so buckets are lumpy.)
            assert!(
                p.lineorder.len() > expect / 2 && p.lineorder.len() < expect * 2,
                "shard {s} holds {} of ~{expect}",
                p.lineorder.len()
            );
            // Rows really belong here, and dims are broadcast whole.
            assert!(p
                .lineorder
                .iter()
                .all(|r| map.shard_of(r.orderkey) == s as u32));
            assert_eq!(p.dates.len(), data.dates.len());
            assert_eq!(p.customers.len(), data.customers.len());
        }
    }

    #[test]
    fn all_lines_of_an_order_colocate() {
        let data = generate(0.002, 77);
        let map = ShardMap::new(4);
        for row in &data.lineorder {
            assert_eq!(
                map.shard_of(row.orderkey),
                map.shard_of(row.orderkey),
                "orderkey routing is a pure function"
            );
        }
        // Partitioned by orderkey: every line of one order shares a shard.
        let parts = map.partition(&data);
        for (s, p) in parts.iter().enumerate() {
            for row in &p.lineorder {
                assert_eq!(map.shard_of(row.orderkey) as usize, s);
            }
        }
    }

    #[test]
    fn rebalance_draws_are_deterministic_uniform_and_independent() {
        let a: Vec<f64> = (0..256)
            .map(|i| ShardMap::rebalance_draw(7, 3, i))
            .collect();
        let b: Vec<f64> = (0..256)
            .map(|i| ShardMap::rebalance_draw(7, 3, i))
            .collect();
        assert_eq!(a, b, "replays agree on every job's placement");
        assert!(a.iter().all(|d| (0.0..1.0).contains(d)));
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.06, "uniform-ish, got {mean}");
        // Different shards and seeds draw independently.
        assert_ne!(
            ShardMap::rebalance_draw(7, 3, 0),
            ShardMap::rebalance_draw(7, 4, 0)
        );
        assert_ne!(
            ShardMap::rebalance_draw(7, 3, 0),
            ShardMap::rebalance_draw(8, 3, 0)
        );
        // At weight w, roughly w of the jobs stay.
        let stay = a.iter().filter(|d| **d < 0.1).count();
        assert!((10..=45).contains(&stay), "~10% stay at weight 0.1: {stay}");
    }

    #[test]
    fn replica_ring_never_self_replicates() {
        assert_eq!(ShardMap::new(1).replica_of(0), None, "no peer, no replica");
        for shards in [2u32, 3, 8] {
            let map = ShardMap::new(shards);
            for s in 0..shards {
                let r = map.replica_of(s).unwrap();
                assert_ne!(r, s, "replica must live on a different machine");
                assert!(r < shards);
            }
        }
    }
}

//! The shard router: build a fleet, fan out load, survive losing a
//! machine.

use pmem_olap::planner::AccessPlanner;
use pmem_serve::{
    BreakerConfig, BreakerState, CircuitBreaker, FanoutOutcome, JobSpec, OpenLoopPlan, Percentiles,
    QueryServer, ServeConfig, ShardRole, ShedReason, SloClass, SloPolicy, TenantLoad,
};
use pmem_sim::des::arrivals::ArrivalProcess;
use pmem_sim::fleet::{machine_seed, FleetFaultPlans, Interconnect};
use pmem_ssb::columnar::ColumnarRepair;
use pmem_ssb::datagen;
use pmem_store::Result;

use crate::detector::{DetectorConfig, DetectorMode};
use crate::machine::ShardMachine;
use crate::partition::ShardMap;
use crate::report::{ClusterReport, ScatterGather, ShardOutcome};

/// How a cluster experiment is shaped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of shards (= machines).
    pub shards: u32,
    /// Master seed: data generation, arrival processes, fault plans.
    pub seed: u64,
    /// SSB scale factor of the *whole* data set (split across shards).
    pub sf: f64,
    /// Replicate each partition to its ring successor.
    pub replicate: bool,
    /// Open-loop arrival horizon in virtual seconds.
    pub horizon: f64,
    /// Offered ingest load per shard as a multiple of its write capacity.
    pub overload: f64,
    /// Bytes per ingest unit.
    pub unit_bytes: u64,
    /// Per-unit completion deadline in seconds after arrival.
    pub deadline: f64,
    /// Inter-machine network pricing.
    pub interconnect: Interconnect,
    /// SLO-class policy every shard's server runs under. When enabled,
    /// each shard's steady tenant is tagged `Interactive` and its bursty
    /// tenant `BestEffort`, and failover re-routing carries the class
    /// with the job — the replica host inherits the victim's tiers.
    pub slo: SloPolicy,
    /// How the router detects unhealthy shards. [`DetectorConfig::oracle`]
    /// is the PR-7 behavior (fixed blackout delay, blind to gray
    /// failures); [`DetectorConfig::accrual`] scores probes and
    /// completion outcomes and grades demotion.
    pub detector: DetectorConfig,
}

impl ClusterConfig {
    /// The acceptance-test shape: tiny data set, 0.2 s horizon, 2× per-
    /// shard overload, 64 MiB units, 100 GbE interconnect, replication on.
    pub fn demo(shards: u32, seed: u64) -> Self {
        ClusterConfig {
            shards: shards.max(1),
            seed,
            sf: 0.002,
            replicate: true,
            horizon: 0.2,
            overload: 2.0,
            unit_bytes: 64 << 20,
            deadline: 0.25,
            interconnect: Interconnect::paper_default(),
            slo: SloPolicy::disabled(),
            detector: DetectorConfig::oracle(),
        }
    }

    /// The no-replication baseline (demonstrates data loss).
    pub fn without_replication(mut self) -> Self {
        self.replicate = false;
        self
    }

    /// Serve every shard under `slo` (class-tagged tenants, class-banded
    /// admission on each machine).
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// Swap the failure detector (oracle ↔ accrual, threshold sweeps).
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }
}

/// N simulated machines behind one hash router.
#[derive(Debug)]
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) map: ShardMap,
    pub(crate) machines: Vec<ShardMachine>,
    /// Committed ground-truth aggregate over the whole data set.
    pub(crate) reference: i64,
}

impl Cluster {
    /// Generate the data set once, partition it, and bring up one
    /// machine per shard (replicating each partition to its ring
    /// successor when the config says so).
    pub fn build(cfg: ClusterConfig) -> Result<Self> {
        let map = ShardMap::new(cfg.shards);
        let data = datagen::generate(cfg.sf, cfg.seed);
        let parts = map.partition(&data);
        let max_rows = parts
            .iter()
            .map(|p| p.lineorder.len() as u64)
            .max()
            .unwrap_or(1);
        // Room for the steady-state peer replica plus one re-replicated
        // partition after a failover.
        let replica_bytes = 2 * max_rows.max(1) * 64 + (8 << 20);
        let mut machines = Vec::with_capacity(parts.len());
        for (shard, part) in parts.iter().enumerate() {
            machines.push(ShardMachine::build(
                shard as u32,
                part,
                cfg.sf,
                replica_bytes,
            )?);
        }
        if cfg.replicate {
            for shard in 0..cfg.shards {
                if let Some(peer) = map.replica_of(shard) {
                    let copy = machines[shard as usize]
                        .fact
                        .replicate_to(machines[peer as usize].replica_ns())?;
                    machines[peer as usize].host_replica(shard, copy);
                }
            }
        }
        let reference = machines.iter().map(|m| m.committed).sum();
        Ok(Cluster {
            cfg,
            map,
            machines,
            reference,
        })
    }

    /// The partitioning function.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// The fleet's machines, by shard.
    pub fn machines(&self) -> &[ShardMachine] {
        &self.machines
    }

    /// Mutable access (fault-injection hooks in tests).
    pub fn machines_mut(&mut self) -> &mut [ShardMachine] {
        &mut self.machines
    }

    /// Committed ground-truth Q1.1 aggregate over all partitions.
    pub fn reference(&self) -> i64 {
        self.reference
    }

    /// The cluster's configuration.
    pub fn config(&self) -> ClusterConfig {
        self.cfg
    }

    /// Swap the failure detector on a built cluster (the gray suite
    /// contrasts oracle vs accrual over the same data set without
    /// paying data generation twice).
    pub fn set_detector(&mut self, detector: DetectorConfig) {
        self.cfg.detector = detector;
    }

    /// Repair shard `shard`'s columnar partition from the peer replica
    /// its ring successor hosts. Errors if replication is off (no
    /// replica exists) — mirroring an operator pointing repair at a
    /// source that is not there.
    pub fn repair_shard_from_replica(&mut self, shard: u32) -> Result<ColumnarRepair> {
        let peer = self
            .map
            .replica_of(shard)
            .ok_or(pmem_store::StoreError::OutOfBounds {
                offset: u64::from(shard),
                len: 0,
                capacity: u64::from(self.cfg.shards),
            })?;
        let (a, b) = {
            let (lo, hi) = (shard.min(peer) as usize, shard.max(peer) as usize);
            let (head, tail) = self.machines.split_at_mut(hi);
            (&mut head[lo], &mut tail[0])
        };
        let (target, host) = if shard < peer { (a, b) } else { (b, a) };
        let replica = host
            .replica_of(shard)
            .ok_or(pmem_store::StoreError::OutOfBounds {
                offset: u64::from(shard),
                len: 0,
                capacity: 0,
            })?;
        target.fact.repair_from_replica(replica)
    }

    /// Run the fleet healthy end to end.
    pub fn run_healthy(&mut self) -> Result<ClusterReport> {
        self.run_inner(None)
    }

    /// Run the fleet with shard `victim` blacked out from `at` onward.
    pub fn run_with_lost_shard(&mut self, victim: u32, at: f64) -> Result<ClusterReport> {
        self.run_inner(Some((victim % self.cfg.shards, at)))
    }

    /// Per-shard ingest capacity the surge is sized against (what the
    /// planner projects one machine sustains at its writer caps).
    pub(crate) fn machine_write_bw(planner: &AccessPlanner) -> f64 {
        let budget = planner.concurrency_budget();
        let (_, write) = planner.expected_mixed(0, budget.writer_threads);
        write.bytes_per_sec() * f64::from(planner.sockets().max(1))
    }

    /// Per-machine scan bandwidth the query plane prices partial
    /// aggregations against (what the planner projects at its reader
    /// caps, both sockets).
    pub(crate) fn machine_scan_bw(planner: &AccessPlanner) -> f64 {
        let budget = planner.concurrency_budget();
        let (read, _) = planner.expected_mixed(budget.reader_threads, 0);
        read.bytes_per_sec() * f64::from(planner.sockets().max(1))
    }

    /// One shard's open-loop plan: two tenants (steady + bursty) whose
    /// combined rate is `overload ×` the shard's write capacity. Tenant
    /// ids are globally unique; each shard draws from its own
    /// [`machine_seed`], so plans are independent and a shard's plan is
    /// identical whether the fleet has 1 machine or 16.
    pub(crate) fn shard_plan(&self, shard: u32, planner: &AccessPlanner) -> OpenLoopPlan {
        let cfg = &self.cfg;
        let total_rate = cfg.overload * Self::machine_write_bw(planner) / cfg.unit_bytes as f64;
        let per_tenant = total_rate / 2.0;
        let template = JobSpec::ingest(cfg.unit_bytes)
            .threads(2)
            .deadline(cfg.deadline);
        // With SLO classes on, the steady tenant is the latency tier and
        // the bursty one rides best-effort; disabled policies leave both
        // at the default class (inert — the PR-6 plan, byte for byte).
        let (steady, bursty) = if cfg.slo.enabled {
            (
                template.slo(SloClass::Interactive),
                template.slo(SloClass::BestEffort),
            )
        } else {
            (template, template)
        };
        let seed = machine_seed(cfg.seed, shard as usize);
        OpenLoopPlan::new(seed, cfg.horizon)
            .tenant(TenantLoad::new(
                shard * 2 + 1,
                ArrivalProcess::poisson(per_tenant),
                steady,
            ))
            .tenant(TenantLoad::new(
                shard * 2 + 2,
                ArrivalProcess::bursty(per_tenant * 2.0, 0.05, 0.05),
                bursty,
            ))
    }

    fn run_inner(&mut self, lost: Option<(u32, f64)>) -> Result<ClusterReport> {
        let cfg = self.cfg;
        let planner = AccessPlanner::paper_default();
        let shards = cfg.shards as usize;

        // Route: expand every shard's arrival plan, then move the dead
        // shard's post-detection arrivals to its replica host, priced by
        // the interconnect (the ingest payload crosses the network).
        let mut routed: Vec<Vec<JobSpec>> = (0..shards)
            .map(|s| self.shard_plan(s as u32, &planner).jobs())
            .collect();
        let mut routed_counts: Vec<u64> = routed.iter().map(|v| v.len() as u64).collect();
        let mut rerouted_counts: Vec<u64> = vec![0; shards];
        let mut failover_at = None;
        if let Some((victim, at)) = lost {
            // Oracle mode is told about the death after a fixed delay
            // (the PR-7 behavior, now a config field). Accrual mode is
            // told nothing: it replays the detector over the victim's
            // observable probe/completion streams and fails over at the
            // replayed death verdict.
            let detect_at = match cfg.detector.mode {
                DetectorMode::Oracle => at + cfg.detector.oracle_delay,
                DetectorMode::Accrual => self.accrual_blackout_detect_at(victim, at)?,
            };
            failover_at = Some(detect_at);
            // Ingest for a key range must land on a machine that owns the
            // data; only a replica host qualifies. With replication off
            // there is nowhere to re-route — post-detection arrivals keep
            // hitting the dead shard and die there.
            if let Some(peer) = self.map.replica_of(victim).filter(|_| cfg.replicate) {
                let hop = cfg.interconnect.transfer_seconds(cfg.unit_bytes);
                let (stay, moved): (Vec<JobSpec>, Vec<JobSpec>) = routed[victim as usize]
                    .iter()
                    .partition(|j| j.arrival < detect_at);
                routed_counts[victim as usize] = stay.len() as u64;
                rerouted_counts[peer as usize] = moved.len() as u64;
                routed[victim as usize] = stay;
                for mut job in moved {
                    job.arrival += hop;
                    routed[peer as usize].push(job);
                }
                routed[peer as usize].sort_by(|x, y| {
                    x.arrival
                        .total_cmp(&y.arrival)
                        .then(x.tenant.cmp(&y.tenant))
                });
            }
        }

        // Per-machine fault plans: healthy fleet, or one blackout.
        let mut fleet = FleetFaultPlans::healthy(shards);
        if let Some((victim, at)) = lost {
            fleet = fleet.with_lost_machine(victim as usize, at, 10.0 * cfg.horizon.max(0.1));
        }

        // Run every machine's serve stack over its routed jobs.
        let mut per_shard = Vec::with_capacity(shards);
        for (s, machine) in self.machines.iter().enumerate() {
            let config = ServeConfig::surge(&planner)
                .with_faults(fleet.plan(s))
                .with_slo_classes(cfg.slo);
            let mut server = QueryServer::new(&machine.store, config);
            server.submit_all(routed[s].iter().copied());
            let mut report = server.run()?;
            let rerouted = rerouted_counts[s];
            report.fanout = Some(FanoutOutcome {
                shard: s as u32,
                role: if rerouted > 0 {
                    ShardRole::Failover
                } else {
                    ShardRole::Primary
                },
                routed_jobs: routed_counts[s],
                rerouted_jobs: rerouted,
                rebalanced_jobs: 0,
                router_weight: 1.0,
                transfer_seconds: rerouted as f64
                    * cfg.interconnect.transfer_seconds(cfg.unit_bytes),
            });
            per_shard.push(report);
        }

        // Cluster-level per-shard circuit breakers, replayed over each
        // shard's terminal job outcomes in completion order. Ingress
        // sheds (flow control) are not service failures; admitted jobs
        // that miss their deadline or die are.
        let mut outcomes = Vec::with_capacity(shards);
        let mut trips_total = 0u32;
        for (s, report) in per_shard.iter().enumerate() {
            let mut breaker = CircuitBreaker::new(BreakerConfig::default_on());
            let mut terminal: Vec<(f64, bool)> = report
                .jobs
                .iter()
                .filter(|j| {
                    !matches!(
                        j.outcome,
                        pmem_serve::JobOutcome::Shed(ShedReason::QueueFull)
                            | pmem_serve::JobOutcome::Shed(ShedReason::RetryBudget)
                    )
                })
                .map(|j| (j.finished_at, !j.met_deadline()))
                .collect();
            terminal.sort_by(|x, y| x.0.total_cmp(&y.0));
            for (t, miss) in terminal {
                breaker.poll(t);
                breaker.record(miss, t);
            }
            let _ = matches!(breaker.state(), BreakerState::Open); // terminal state, trips carry the signal
            trips_total += breaker.trips();
            let completed: Vec<_> = report
                .jobs
                .iter()
                .filter(|j| j.outcome.is_completed())
                .collect();
            outcomes.push(ShardOutcome {
                shard: s as u32,
                routed: routed_counts[s],
                rerouted: rerouted_counts[s],
                completed: completed.len() as u64,
                bytes_completed: completed.iter().map(|j| j.bytes).sum(),
                breaker_trips: breaker.trips(),
            });
        }

        // Fleet rollup. A dead machine is written off at detection: the
        // fleet does not wait for jobs stranded on it (they drag the
        // victim's own makespan out to their deadline blow-ups), so its
        // contribution ends with its last pre-blackout completion.
        let makespan = per_shard
            .iter()
            .enumerate()
            .map(|(s, r)| {
                if lost.map(|(v, _)| v as usize) == Some(s) {
                    let last_done = r
                        .jobs
                        .iter()
                        .filter(|j| j.outcome.is_completed())
                        .map(|j| j.finished_at)
                        .fold(0.0_f64, f64::max);
                    last_done.max(failover_at.unwrap_or(0.0))
                } else {
                    r.makespan
                }
            })
            .fold(0.0_f64, f64::max);
        // Goodput over the offered window [0, horizon]: both the healthy
        // and the degraded fleet are measured over the same interval, so
        // a deeper end-of-run drain queue (the failover host's) does not
        // masquerade as lower throughput — the p99 gate covers tails.
        let window_bytes: u64 = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed() && j.finished_at <= cfg.horizon)
            .map(|j| j.bytes)
            .sum();
        let e2e_samples: Vec<f64> = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed())
            .map(|j| (j.finished_at - j.arrival).max(0.0))
            .collect();
        let jobs: u64 = routed_counts.iter().sum::<u64>() + rerouted_counts.iter().sum::<u64>();
        let completed: u64 = outcomes.iter().map(|o| o.completed).sum();
        let shed: u64 = per_shard.iter().map(|r| r.shed_jobs() as u64).sum();

        // Scatter-gather verification query over every key range.
        let query = self.scatter_gather(lost.map(|(v, _)| v));

        // Background re-replication: copy the dead shard's partition from
        // its surviving replica onto the next live machine, restoring
        // two-copy redundancy. With only two machines there is no third
        // survivor to host it.
        let mut rereplicated_bytes = 0;
        let mut redundancy_restored_at = None;
        if let (Some((victim, _)), true) = (lost, cfg.replicate) {
            if let Some(peer) = self.map.replica_of(victim) {
                if cfg.shards >= 3 {
                    let mut target = (peer + 1) % cfg.shards;
                    if target == victim {
                        target = (target + 1) % cfg.shards;
                    }
                    let copy = {
                        let host = &self.machines[peer as usize];
                        let replica =
                            host.replica_of(victim)
                                .ok_or(pmem_store::StoreError::OutOfBounds {
                                    offset: u64::from(victim),
                                    len: 0,
                                    capacity: 0,
                                })?;
                        replica.replicate_to(self.machines[target as usize].replica_ns())?
                    };
                    rereplicated_bytes = copy.total_bytes();
                    self.machines[target as usize].host_replica(victim, copy);
                    redundancy_restored_at = failover_at
                        .map(|t| t + cfg.interconnect.transfer_seconds(rereplicated_bytes));
                }
            }
        }

        Ok(ClusterReport {
            shards: cfg.shards,
            replicated: cfg.replicate,
            per_shard,
            outcomes,
            makespan,
            goodput_bytes_per_sec: window_bytes as f64 / cfg.horizon.max(1e-9),
            e2e: Percentiles::of(&e2e_samples),
            jobs,
            completed,
            shed,
            rerouted_jobs: rerouted_counts.iter().sum(),
            shard_breaker_trips: trips_total,
            lost_shard: lost.map(|(v, _)| v),
            failover_at,
            query,
            reference: self.reference,
            rereplicated_bytes,
            redundancy_restored_at,
        })
    }

    /// Fan the Q1.1 verification query out to every shard and sum the
    /// partials. A lost shard's key range is served by the replica its
    /// ring successor hosts; with replication off those rows are gone.
    pub fn scatter_gather(&self, lost: Option<u32>) -> ScatterGather {
        let cfg = &self.cfg;
        let mut partials = vec![0i64; cfg.shards as usize];
        let mut lost_rows = 0;
        let mut replica_served_rows = 0;
        // Request fan-out + tiny partial results back: latency-dominated.
        let mut transfer_seconds = 2.0 * cfg.shards as f64 * cfg.interconnect.latency_seconds;
        for (s, machine) in self.machines.iter().enumerate() {
            if lost == Some(s as u32) {
                let replica = self
                    .map
                    .replica_of(s as u32)
                    .and_then(|peer| self.machines[peer as usize].replica_of(s as u32));
                match replica {
                    Some(fact) => {
                        partials[s] = ShardMachine::q11_partial(fact);
                        replica_served_rows += fact.rows();
                        transfer_seconds += cfg.interconnect.latency_seconds;
                    }
                    None => lost_rows += machine.rows,
                }
            } else {
                partials[s] = ShardMachine::q11_partial(&machine.fact);
            }
        }
        ScatterGather {
            aggregate: partials.iter().sum(),
            partials,
            lost_rows,
            replica_served_rows,
            transfer_seconds,
        }
    }
}

//! Cluster-wide accounting: fleet goodput, merged percentiles, failover
//! and re-replication outcomes, and the committed-data ledger.

use pmem_serve::{Percentiles, ServeReport};
use pmem_sim::fleet::FailSlowWindow;
use pmem_ssb::columnar::AntiEntropyReport;

use crate::detector::DetectorMode;

/// One shard's router-side summary (the full [`ServeReport`] rides in
/// [`ClusterReport::per_shard`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: u32,
    /// Jobs routed here as primary.
    pub routed: u64,
    /// Jobs re-routed here after a peer died.
    pub rerouted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Completed bytes (the shard's goodput contribution).
    pub bytes_completed: u64,
    /// Cluster-level breaker trips observed for this shard.
    pub breaker_trips: u32,
}

/// One scatter-gather query: per-shard partials and their sum, plus the
/// rows that had no surviving source (replication off + lost shard).
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterGather {
    /// Per-shard Q1.1 partials, indexed by shard.
    pub partials: Vec<i64>,
    /// Sum of the partials — the answer the router returns.
    pub aggregate: i64,
    /// Rows unreachable on any survivor (0 when replication holds).
    pub lost_rows: u64,
    /// Rows served from a peer replica instead of their dead primary.
    pub replica_served_rows: u64,
    /// Interconnect seconds the fan-out paid (request + partial returns).
    pub transfer_seconds: f64,
}

/// The outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Shards in the fleet.
    pub shards: u32,
    /// Whether peer replication was enabled.
    pub replicated: bool,
    /// Per-shard serve reports, fan-out outcomes filled in.
    pub per_shard: Vec<ServeReport>,
    /// Router-side per-shard summaries.
    pub outcomes: Vec<ShardOutcome>,
    /// Longest shard makespan (the fleet finishes when its slowest
    /// member does).
    pub makespan: f64,
    /// Bytes completed inside the offered window `[0, horizon]` divided
    /// by the horizon, bytes/s. Post-window drain is excluded for every
    /// run alike, so fleets with different end-of-run queue depths
    /// compare cleanly; the latency percentiles cover the tails.
    pub goodput_bytes_per_sec: f64,
    /// End-to-end latency percentiles over every completed job fleet-wide.
    pub e2e: Percentiles,
    /// Jobs routed across the fleet (reroutes not double-counted).
    pub jobs: u64,
    /// Jobs completed fleet-wide.
    pub completed: u64,
    /// Jobs shed fleet-wide.
    pub shed: u64,
    /// Jobs re-routed off the lost shard.
    pub rerouted_jobs: u64,
    /// Cluster-level per-shard breaker trips, summed.
    pub shard_breaker_trips: u32,
    /// The shard the fault plan killed, if any.
    pub lost_shard: Option<u32>,
    /// Virtual time the router detected the loss and re-routed.
    pub failover_at: Option<f64>,
    /// The scatter-gather verification query the router ran after the
    /// run (Q1.1 partial aggregation over every key range).
    pub query: ScatterGather,
    /// Ground-truth committed aggregate (from the generated rows).
    pub reference: i64,
    /// Bytes copied to restore redundancy after the loss.
    pub rereplicated_bytes: u64,
    /// Virtual time redundancy was restored (failover + transfer).
    pub redundancy_restored_at: Option<f64>,
}

impl ClusterReport {
    /// Zero committed-data loss: every key range was served by some
    /// survivor and the scatter-gather aggregate equals the committed
    /// ground truth.
    pub fn data_intact(&self) -> bool {
        self.query.lost_rows == 0 && self.query.aggregate == self.reference
    }

    /// Completed-bytes goodput in GiB/s.
    pub fn goodput_gib_s(&self) -> f64 {
        self.goodput_bytes_per_sec / (1u64 << 30) as f64
    }

    /// Goodput over the sub-window `(from, until]` only — the recovery
    /// gates compare fleets over the *post-rejoin* tail, where a rejoined
    /// fleet is back to strength and a written-off one stays pinned.
    pub fn goodput_in_window(&self, from: f64, until: f64) -> f64 {
        let bytes: u64 = self
            .per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed() && j.finished_at > from && j.finished_at <= until)
            .map(|j| j.bytes)
            .sum();
        bytes as f64 / (until - from).max(1e-9)
    }
}

/// The outcome of one gray-failure run: an ingest plane routed by the
/// detector's graded weights, plus a stream of scatter-gather queries
/// with (optional) hedging — the plane where a fail-slow machine either
/// drags the whole fleet's tail or does not.
#[derive(Debug, Clone)]
pub struct GrayReport {
    /// Shards in the fleet.
    pub shards: u32,
    /// The injected fail-slow window, if the run scheduled one.
    pub fault: Option<FailSlowWindow>,
    /// Detector mode the run routed under.
    pub mode: DetectorMode,
    /// Whether scatter-gather hedging was armed.
    pub hedging: bool,
    /// Offered window the goodput is measured over.
    pub horizon: f64,
    /// When the detector first suspected the victim, if ever.
    pub suspected_at: Option<f64>,
    /// When the detector declared the victim dead, if ever (a fail-slow
    /// machine must never be).
    pub dead_at: Option<f64>,
    /// When the victim re-earned full router weight, if it did.
    pub cleared_at: Option<f64>,
    /// Lowest router weight the victim served at.
    pub victim_weight_min: f64,
    /// The victim's router weight at the end of the run.
    pub victim_weight_end: f64,
    /// Ingest jobs the router moved off demoted shards.
    pub rebalanced_jobs: u64,
    /// Ingest goodput over the window (completed bytes / horizon).
    pub ingest_goodput_bytes_per_sec: f64,
    /// Ingest end-to-end latency percentiles (completed jobs).
    pub ingest_e2e: Percentiles,
    /// Per-shard ingest serve reports, fan-out outcomes attached.
    pub per_shard: Vec<ServeReport>,
    /// Scatter-gather queries issued.
    pub queries: u64,
    /// Queries whose full fan-out completed within the query deadline.
    pub queries_met: u64,
    /// The per-query completion deadline the goodput gates on.
    pub query_deadline: f64,
    /// Query-plane goodput: virtual bytes scanned by deadline-met
    /// queries, over the horizon.
    pub query_goodput_bytes_per_sec: f64,
    /// Query completion-latency percentiles (all queries).
    pub query_latency: Percentiles,
    /// Slowest query of the run.
    pub query_latency_max: f64,
    /// Backup requests fired (tied + reactive).
    pub hedges_fired: u64,
    /// Hedges fired at issue because the detector had the primary
    /// demoted (the rest fired reactively at the hedge quantile).
    pub hedges_tied: u64,
    /// Hedges whose backup beat the primary.
    pub hedge_wins: u64,
    /// Loser requests cancelled (must equal `hedges_fired`: every race
    /// has exactly one loser, counted or cancelled — never both).
    pub hedges_cancelled: u64,
    /// Partials served from a ring replica instead of the primary.
    pub replica_partials: u64,
    /// Queries whose aggregate differed from the committed ground truth
    /// (0 = zero data loss, zero double count).
    pub mismatched_queries: u64,
    /// Partials counted beyond exactly-one-per-key-range, summed over
    /// all queries. Structural invariant: 0.
    pub double_counted: u64,
    /// Committed ground-truth aggregate every query must reproduce.
    pub reference: i64,
    /// Interconnect seconds the query fan-outs and hedges paid.
    pub query_transfer_seconds: f64,
}

impl GrayReport {
    /// Zero committed-data loss and zero double counting: every query's
    /// aggregate matched the committed ground truth exactly.
    pub fn data_intact(&self) -> bool {
        self.mismatched_queries == 0 && self.double_counted == 0
    }

    /// Query-plane goodput as a fraction of `healthy`'s.
    pub fn goodput_vs(&self, healthy: &GrayReport) -> f64 {
        self.query_goodput_bytes_per_sec / healthy.query_goodput_bytes_per_sec.max(1e-9)
    }

    /// Query p99 as a multiple of `healthy`'s.
    pub fn p99_vs(&self, healthy: &GrayReport) -> f64 {
        self.query_latency.p99 / healthy.query_latency.p99.max(1e-12)
    }
}

impl std::fmt::Display for GrayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "gray report: {} shards, {:?} detector, hedging {}{}",
            self.shards,
            self.mode,
            if self.hedging { "on" } else { "off" },
            match self.fault {
                Some(w) => format!(
                    ", machine {} at {:.0}% rate over [{:.3}, {:.3})s",
                    w.machine,
                    w.factor * 100.0,
                    w.at,
                    w.until
                ),
                None => ", healthy fleet".to_string(),
            },
        )?;
        writeln!(
            f,
            "  queries: {}/{} met {:.1} ms deadline, goodput {:.2} GiB/s, p50/p95/p99 {:.2}/{:.2}/{:.2} ms (max {:.2})",
            self.queries_met,
            self.queries,
            self.query_deadline * 1e3,
            self.query_goodput_bytes_per_sec / (1u64 << 30) as f64,
            self.query_latency.p50 * 1e3,
            self.query_latency.p95 * 1e3,
            self.query_latency.p99 * 1e3,
            self.query_latency_max * 1e3,
        )?;
        writeln!(
            f,
            "  hedges: {} fired ({} tied), {} won, {} cancelled, {} replica partials; {} mismatched, {} double-counted",
            self.hedges_fired,
            self.hedges_tied,
            self.hedge_wins,
            self.hedges_cancelled,
            self.replica_partials,
            self.mismatched_queries,
            self.double_counted,
        )?;
        writeln!(
            f,
            "  detector: suspected {}, dead {}, cleared {}; victim weight min {:.2} end {:.2}; {} ingest jobs rebalanced",
            match self.suspected_at {
                Some(t) => format!("{t:.3}s"),
                None => "never".to_string(),
            },
            match self.dead_at {
                Some(t) => format!("{t:.3}s"),
                None => "never".to_string(),
            },
            match self.cleared_at {
                Some(t) => format!("{t:.3}s"),
                None => "never".to_string(),
            },
            self.victim_weight_min,
            self.victim_weight_end,
            self.rebalanced_jobs,
        )?;
        writeln!(
            f,
            "  ingest: goodput {:.2} GiB/s, e2e p99 {:.3}s",
            self.ingest_goodput_bytes_per_sec / (1u64 << 30) as f64,
            self.ingest_e2e.p99,
        )
    }
}

/// The outcome of one rejoin experiment ([`crate::recovery`]): the full
/// blackout → scrub → anti-entropy → hand-back arc, with the serve
/// plane's fleet rollup alongside the recovery-plane accounting.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Shards in the fleet.
    pub shards: u32,
    /// The machine that blacked out and rejoined.
    pub victim: u32,
    /// Detector mode the run routed under.
    pub mode: DetectorMode,
    /// Whether the catch-up verified landed blocks (off = the planted
    /// regression).
    pub verified: bool,
    /// Blackout window open.
    pub blackout_at: f64,
    /// Blackout window close — the rejoin instant.
    pub blackout_until: f64,
    /// When the router detected the loss and failed over.
    pub detect_at: f64,
    /// XPLines of media damage the blackout left on the victim's shard.
    pub poisoned_lines: u64,
    /// Blocks the rejoin scrub found bad.
    pub scrub_bad_blocks: u64,
    /// Virtual seconds the local scrub took.
    pub scrub_seconds: f64,
    /// The anti-entropy catch-up's own accounting (hash bytes, shipped
    /// blocks/bytes, refetches, verification verdict).
    pub catch_up: AntiEntropyReport,
    /// Total bytes of the victim's shard (the denominator for the
    /// shipped-bytes ≪ full-shard assertion).
    pub full_shard_bytes: u64,
    /// Virtual seconds the hash exchange + block shipping took over the
    /// (jittered) interconnect.
    pub catch_up_seconds: f64,
    /// When the victim finished scrub + catch-up and offered itself back.
    pub ready_at: f64,
    /// Whether the catch-up verified fully — the hand-back precondition.
    pub caught_up: bool,
    /// When the victim re-earned full router weight (probe-cleared), if
    /// it did within the replayed window. `None` = never handed back.
    pub full_weight_at: Option<f64>,
    /// Victim arrivals failed over to the replica host.
    pub rerouted_jobs: u64,
    /// Victim arrivals routed back to it after `ready_at` (demoted-span
    /// keeps + post-full-weight hand-backs).
    pub handed_back_jobs: u64,
    /// Bytes re-replication copied at detection.
    pub rereplicated_bytes: u64,
    /// Bytes of the extra replica garbage-collected after the verified
    /// hand-back.
    pub replica_gc_bytes: u64,
    /// Per-shard serve reports, fan-out roles attached (the victim is
    /// `Rejoining`).
    pub per_shard: Vec<ServeReport>,
    /// Longest shard makespan.
    pub makespan: f64,
    /// Whole-window goodput (completed bytes in `[0, horizon]` / horizon).
    pub goodput_bytes_per_sec: f64,
    /// End-to-end latency percentiles over completed jobs fleet-wide.
    pub e2e: Percentiles,
    /// Jobs routed across the fleet.
    pub jobs: u64,
    /// Jobs completed fleet-wide.
    pub completed: u64,
    /// Jobs shed fleet-wide.
    pub shed: u64,
    /// The guarded scatter-gather verification query after the run.
    pub query: ScatterGather,
    /// Ground-truth committed aggregate.
    pub reference: i64,
}

impl RecoveryReport {
    /// Zero committed-data loss: every key range served by a verified
    /// source and the aggregate matches the committed ground truth.
    pub fn data_intact(&self) -> bool {
        self.query.lost_rows == 0 && self.query.aggregate == self.reference
    }

    /// Whole-window goodput in GiB/s.
    pub fn goodput_gib_s(&self) -> f64 {
        self.goodput_bytes_per_sec / (1u64 << 30) as f64
    }

    /// Goodput over the sub-window `(from, until]` only (see
    /// [`ClusterReport::goodput_in_window`]).
    pub fn goodput_in_window(&self, from: f64, until: f64) -> f64 {
        let bytes: u64 = self
            .per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed() && j.finished_at > from && j.finished_at <= until)
            .map(|j| j.bytes)
            .sum();
        bytes as f64 / (until - from).max(1e-9)
    }

    /// Seconds from the rejoin instant to full router weight, if the
    /// shard got there.
    pub fn time_to_full_weight(&self) -> Option<f64> {
        self.full_weight_at.map(|t| t - self.blackout_until)
    }

    /// Shipped bytes as a fraction of the full shard — the anti-entropy
    /// protocol's reason to exist is keeping this ≪ 1.
    pub fn shipped_fraction(&self) -> f64 {
        self.catch_up.bytes_shipped as f64 / self.full_shard_bytes.max(1) as f64
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "recovery report: {} shards, victim {} dark [{:.3}, {:.3})s, {:?} detector, verification {}",
            self.shards,
            self.victim,
            self.blackout_at,
            self.blackout_until,
            self.mode,
            if self.verified { "on" } else { "OFF" },
        )?;
        writeln!(
            f,
            "  rejoin: detected {:.3}s; scrub {:.1} ms found {} bad blocks ({} poisoned lines); catch-up shipped {}/{} blocks ({:.1} KiB of {:.1} MiB shard, {:.2}% ) in {:.1} ms, {} refetched, {} unrepairable",
            self.detect_at,
            self.scrub_seconds * 1e3,
            self.scrub_bad_blocks,
            self.poisoned_lines,
            self.catch_up.blocks_shipped,
            self.catch_up.blocks_examined,
            self.catch_up.bytes_shipped as f64 / 1024.0,
            self.full_shard_bytes as f64 / (1 << 20) as f64,
            self.shipped_fraction() * 100.0,
            self.catch_up_seconds * 1e3,
            self.catch_up.refetched_blocks,
            self.catch_up.unrepairable,
        )?;
        writeln!(
            f,
            "  hand-back: {}; ready {:.3}s, full weight {}, {} jobs rerouted, {} handed back; re-replicated {:.1} MiB, GC'd {:.1} MiB",
            if self.caught_up {
                "verified caught up"
            } else {
                "REFUSED (stays failed over)"
            },
            self.ready_at,
            match self.full_weight_at {
                Some(t) => format!("{t:.3}s"),
                None => "never".to_string(),
            },
            self.rerouted_jobs,
            self.handed_back_jobs,
            self.rereplicated_bytes as f64 / (1 << 20) as f64,
            self.replica_gc_bytes as f64 / (1 << 20) as f64,
        )?;
        writeln!(
            f,
            "  fleet: {} jobs ({} done, {} shed), goodput {:.2} GiB/s, e2e p50/p99 {:.3}/{:.3}s, makespan {:.3}s, data {}",
            self.jobs,
            self.completed,
            self.shed,
            self.goodput_gib_s(),
            self.e2e.p50,
            self.e2e.p99,
            self.makespan,
            if self.data_intact() {
                "intact".to_string()
            } else {
                format!(
                    "LOST (aggregate {} != reference {}, {} rows unreachable)",
                    self.query.aggregate, self.reference, self.query.lost_rows
                )
            },
        )
    }
}

/// The outcome of one chaos schedule ([`crate::recovery`]'s
/// `run_chaos`): the serve/cluster stack under a stacked multi-fault
/// schedule, with the standing invariants accounted.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Seed of the schedule that ran.
    pub seed: u64,
    /// Events in the schedule.
    pub events: usize,
    /// Shards in the fleet.
    pub shards: u32,
    /// The blackout/rejoin window, if the schedule stacked one:
    /// `(machine, at, until)`.
    pub blackout: Option<(usize, f64, f64)>,
    /// Whether the blackout victim verified its catch-up and took its
    /// range back.
    pub rejoined: bool,
    /// The victim's anti-entropy accounting, if a catch-up ran.
    pub catch_up: Option<AntiEntropyReport>,
    /// Checksum-invalid blocks left on *serving* primaries at the end of
    /// the run. Invariant: 0 — an unverified block must never be handed
    /// back.
    pub handed_back_dirty_blocks: u64,
    /// Longest fault window in the schedule (bounds legitimate latency
    /// inflation).
    pub worst_window: f64,
    /// Per-job deadline the cluster ran under.
    pub deadline: f64,
    /// Jobs submitted across the fleet after routing.
    pub jobs: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs shed (terminal, accounted).
    pub shed: u64,
    /// Submitted jobs minus terminal records. Invariant: 0 — the ledger
    /// drains, nothing is silently dropped.
    pub ledger_outstanding: i64,
    /// End-to-end latency percentiles over completed jobs.
    pub e2e: Percentiles,
    /// Partials the verification query counted. Invariant: exactly one
    /// per key range.
    pub partials_counted: u64,
    /// The guarded scatter-gather verification query.
    pub query: ScatterGather,
    /// Ground-truth committed aggregate.
    pub reference: i64,
}

impl ChaosReport {
    /// Check the standing invariants against a healthy-fleet p99
    /// baseline; one human-readable line per violation, empty = clean.
    pub fn violations(&self, healthy_p99: f64) -> Vec<String> {
        let mut v = Vec::new();
        if self.query.lost_rows > 0 || self.query.aggregate != self.reference {
            v.push(format!(
                "committed-data loss: aggregate {} != reference {} ({} rows unreachable)",
                self.query.aggregate, self.reference, self.query.lost_rows
            ));
        }
        if self.handed_back_dirty_blocks > 0 {
            v.push(format!(
                "{} unverified blocks handed back to serving primaries",
                self.handed_back_dirty_blocks
            ));
        }
        if self.partials_counted != u64::from(self.shards) {
            v.push(format!(
                "partial count {} != one per key range ({})",
                self.partials_counted, self.shards
            ));
        }
        if self.ledger_outstanding != 0 {
            v.push(format!(
                "ledger failed to drain: {} submitted jobs missing a terminal record",
                self.ledger_outstanding
            ));
        }
        // Bounded p99 inflation: stacked fault windows legitimately park
        // jobs for their span plus queueing slack; anything past that is
        // an unexplained stall.
        let bound = self.worst_window + self.deadline + 5.0 * healthy_p99.max(1e-6);
        if self.e2e.p99 > bound {
            v.push(format!(
                "p99 {:.4}s above the fault-window bound {:.4}s",
                self.e2e.p99, bound
            ));
        }
        v
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos report: seed {}, {} events, {} shards{}",
            self.seed,
            self.events,
            self.shards,
            match self.blackout {
                Some((m, at, until)) => format!(
                    ", machine {m} dark [{at:.3}, {until:.3})s ({})",
                    if self.rejoined {
                        "rejoined"
                    } else {
                        "written off"
                    }
                ),
                None => String::new(),
            },
        )?;
        writeln!(
            f,
            "  {} jobs ({} done, {} shed, ledger {:+}), e2e p99 {:.4}s; {} dirty handed back, {} partials, aggregate {}",
            self.jobs,
            self.completed,
            self.shed,
            self.ledger_outstanding,
            self.e2e.p99,
            self.handed_back_dirty_blocks,
            self.partials_counted,
            if self.query.aggregate == self.reference {
                "matches".to_string()
            } else {
                format!("{} != {}", self.query.aggregate, self.reference)
            },
        )
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster report: {} shards{}, {} jobs ({} done, {} shed, {} rerouted), makespan {:.3}s",
            self.shards,
            if self.replicated {
                ""
            } else {
                " (replication off)"
            },
            self.jobs,
            self.completed,
            self.shed,
            self.rerouted_jobs,
            self.makespan,
        )?;
        writeln!(
            f,
            "  goodput {:.2} GiB/s, e2e p50/p95/p99 {:.3}/{:.3}/{:.3}s, {} shard breaker trips",
            self.goodput_gib_s(),
            self.e2e.p50,
            self.e2e.p95,
            self.e2e.p99,
            self.shard_breaker_trips,
        )?;
        if let Some(lost) = self.lost_shard {
            writeln!(
                f,
                "  lost shard {} at {:.3}s; data {}; re-replicated {:.1} MiB{}",
                lost,
                self.failover_at.unwrap_or_default(),
                if self.data_intact() {
                    "intact".to_string()
                } else {
                    format!("LOST ({} rows unreachable)", self.query.lost_rows)
                },
                self.rereplicated_bytes as f64 / (1 << 20) as f64,
                match self.redundancy_restored_at {
                    Some(t) => format!(", redundancy restored at {t:.3}s"),
                    None => String::new(),
                },
            )?;
        }
        for o in &self.outcomes {
            writeln!(
                f,
                "  shard {}: {} routed + {} rerouted, {} done, {:.1} MiB good, {} trips",
                o.shard,
                o.routed,
                o.rerouted,
                o.completed,
                o.bytes_completed as f64 / (1 << 20) as f64,
                o.breaker_trips,
            )?;
        }
        Ok(())
    }
}

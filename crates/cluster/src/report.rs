//! Cluster-wide accounting: fleet goodput, merged percentiles, failover
//! and re-replication outcomes, and the committed-data ledger.

use pmem_serve::{Percentiles, ServeReport};

/// One shard's router-side summary (the full [`ServeReport`] rides in
/// [`ClusterReport::per_shard`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: u32,
    /// Jobs routed here as primary.
    pub routed: u64,
    /// Jobs re-routed here after a peer died.
    pub rerouted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Completed bytes (the shard's goodput contribution).
    pub bytes_completed: u64,
    /// Cluster-level breaker trips observed for this shard.
    pub breaker_trips: u32,
}

/// One scatter-gather query: per-shard partials and their sum, plus the
/// rows that had no surviving source (replication off + lost shard).
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterGather {
    /// Per-shard Q1.1 partials, indexed by shard.
    pub partials: Vec<i64>,
    /// Sum of the partials — the answer the router returns.
    pub aggregate: i64,
    /// Rows unreachable on any survivor (0 when replication holds).
    pub lost_rows: u64,
    /// Rows served from a peer replica instead of their dead primary.
    pub replica_served_rows: u64,
    /// Interconnect seconds the fan-out paid (request + partial returns).
    pub transfer_seconds: f64,
}

/// The outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Shards in the fleet.
    pub shards: u32,
    /// Whether peer replication was enabled.
    pub replicated: bool,
    /// Per-shard serve reports, fan-out outcomes filled in.
    pub per_shard: Vec<ServeReport>,
    /// Router-side per-shard summaries.
    pub outcomes: Vec<ShardOutcome>,
    /// Longest shard makespan (the fleet finishes when its slowest
    /// member does).
    pub makespan: f64,
    /// Bytes completed inside the offered window `[0, horizon]` divided
    /// by the horizon, bytes/s. Post-window drain is excluded for every
    /// run alike, so fleets with different end-of-run queue depths
    /// compare cleanly; the latency percentiles cover the tails.
    pub goodput_bytes_per_sec: f64,
    /// End-to-end latency percentiles over every completed job fleet-wide.
    pub e2e: Percentiles,
    /// Jobs routed across the fleet (reroutes not double-counted).
    pub jobs: u64,
    /// Jobs completed fleet-wide.
    pub completed: u64,
    /// Jobs shed fleet-wide.
    pub shed: u64,
    /// Jobs re-routed off the lost shard.
    pub rerouted_jobs: u64,
    /// Cluster-level per-shard breaker trips, summed.
    pub shard_breaker_trips: u32,
    /// The shard the fault plan killed, if any.
    pub lost_shard: Option<u32>,
    /// Virtual time the router detected the loss and re-routed.
    pub failover_at: Option<f64>,
    /// The scatter-gather verification query the router ran after the
    /// run (Q1.1 partial aggregation over every key range).
    pub query: ScatterGather,
    /// Ground-truth committed aggregate (from the generated rows).
    pub reference: i64,
    /// Bytes copied to restore redundancy after the loss.
    pub rereplicated_bytes: u64,
    /// Virtual time redundancy was restored (failover + transfer).
    pub redundancy_restored_at: Option<f64>,
}

impl ClusterReport {
    /// Zero committed-data loss: every key range was served by some
    /// survivor and the scatter-gather aggregate equals the committed
    /// ground truth.
    pub fn data_intact(&self) -> bool {
        self.query.lost_rows == 0 && self.query.aggregate == self.reference
    }

    /// Completed-bytes goodput in GiB/s.
    pub fn goodput_gib_s(&self) -> f64 {
        self.goodput_bytes_per_sec / (1u64 << 30) as f64
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster report: {} shards{}, {} jobs ({} done, {} shed, {} rerouted), makespan {:.3}s",
            self.shards,
            if self.replicated {
                ""
            } else {
                " (replication off)"
            },
            self.jobs,
            self.completed,
            self.shed,
            self.rerouted_jobs,
            self.makespan,
        )?;
        writeln!(
            f,
            "  goodput {:.2} GiB/s, e2e p50/p95/p99 {:.3}/{:.3}/{:.3}s, {} shard breaker trips",
            self.goodput_gib_s(),
            self.e2e.p50,
            self.e2e.p95,
            self.e2e.p99,
            self.shard_breaker_trips,
        )?;
        if let Some(lost) = self.lost_shard {
            writeln!(
                f,
                "  lost shard {} at {:.3}s; data {}; re-replicated {:.1} MiB{}",
                lost,
                self.failover_at.unwrap_or_default(),
                if self.data_intact() {
                    "intact".to_string()
                } else {
                    format!("LOST ({} rows unreachable)", self.query.lost_rows)
                },
                self.rereplicated_bytes as f64 / (1 << 20) as f64,
                match self.redundancy_restored_at {
                    Some(t) => format!(", redundancy restored at {t:.3}s"),
                    None => String::new(),
                },
            )?;
        }
        for o in &self.outcomes {
            writeln!(
                f,
                "  shard {}: {} routed + {} rerouted, {} done, {:.1} MiB good, {} trips",
                o.shard,
                o.routed,
                o.rerouted,
                o.completed,
                o.bytes_completed as f64 / (1 << 20) as f64,
                o.breaker_trips,
            )?;
        }
        Ok(())
    }
}

//! The recovery plane: a blacked-out machine rejoins the fleet.
//!
//! Every loss in the cluster layer used to be terminal — detection wrote
//! the victim off and its shard lived on a replica forever, permanently
//! halving headroom. Real PMEM blackouts (DIMM dropout + thermal
//! throttle + queue stall) are mostly *windows*: power is restored, the
//! DIMMs re-train, and the machine is back — with stale or damaged
//! media. This module runs that full arc, deterministically:
//!
//! 1. **Blackout.** The victim goes dark over a finite `[at, until)`
//!    window ([`pmem_sim::fleet::FleetFaultPlans::with_lost_machine`]);
//!    the router detects (oracle delay or accrual replay) and fails its
//!    arrivals over to the replica host.
//! 2. **Rejoin + scrub.** At `until` the machine re-attaches and
//!    validates its local shard against its sealed
//!    [`pmem_store::scrub::BlockChecksums`]. The blackout leaves seeded
//!    media poison behind (uncorrectable errors are exactly what DIMM
//!    power events produce), so the scrub finds real damage.
//! 3. **Anti-entropy catch-up.** The rejoiner exchanges per-block
//!    content hashes with the replica host over the priced (and
//!    jittered) interconnect and ships *only* the divergent blocks via
//!    verified copies ([`pmem_ssb::columnar::ColumnarFact::catch_up_from_replica`]).
//!    Shipped bytes ≪ shard bytes is the point of the protocol.
//! 4. **Probe-earned weight.** The caught-up shard re-enters the
//!    accrual detector `Suspect` and re-earns full router weight
//!    through clean probes ([`HealthTimeline::replay_from`]): demoted
//!    weight first, full weight at the cleared verdict, at which point
//!    the replica-served range is handed back and the extra replica
//!    re-replication made is garbage-collected.
//!
//! A machine that cannot verify its catch-up (bad replica source,
//! verification refusals) is **never** handed back — it stays failed
//! over, exactly like the terminal-loss path.
//!
//! The second half of the module is the chaos runner
//! ([`Cluster::run_chaos`]): it applies a compositional
//! [`ChaosSchedule`] — media poison + power loss + fail-slow + link
//! jitter + blackout/rejoin, stacked — to the full serve/cluster stack
//! and checks the standing invariants (zero committed-data loss, one
//! partial per key range, the retry ledger drains, bounded p99). The
//! `pmem-crashmc` fuzz client drives it over hundreds of seeded
//! schedules and delta-debugs any failure to a minimal reproducer.

use pmem_olap::planner::AccessPlanner;
use pmem_serve::{FanoutOutcome, JobSpec, Percentiles, QueryServer, ServeConfig, ShardRole};
use pmem_sim::chaos::{ChaosFault, ChaosSchedule};
use pmem_sim::faults::{FaultEvent, FaultKind};
use pmem_sim::fleet::{machine_seed, FleetFaultPlans, LinkEvent, LinkPlan};
use pmem_sim::rng::{splitmix64, SplitMix64};
use pmem_sim::topology::Machine;
use pmem_ssb::columnar::{AntiEntropyReport, Column, ColumnarFact};
use pmem_store::scrub::SCRUB_BLOCK;
use pmem_store::{Result, StoreError};

use crate::cluster::Cluster;
use crate::detector::{DetectorMode, HealthState, HealthTimeline};
use crate::machine::ShardMachine;
use crate::partition::ShardMap;
use crate::report::{ChaosReport, RecoveryReport, ScatterGather};

/// Sub-seed salt for the rejoin experiment's link-jitter stream,
/// distinct from the gray plane's so the two suites draw independent
/// weather.
const REJOIN_LINK_SALT: u64 = 0x7265_6a6f_696e; // "rejoin"

/// Sub-seed salt for the media damage a blackout leaves behind.
const POISON_SALT: u64 = 0x706f_6973_6f6e; // "poison"

/// Shape of one rejoin experiment, layered on a built [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// The machine that blacks out and rejoins.
    pub victim: u32,
    /// Virtual time the blackout opens.
    pub blackout_at: f64,
    /// Virtual time the machine comes back (the rejoin instant).
    pub blackout_until: f64,
    /// Seeded media-poison sites the blackout leaves on the victim's
    /// shard (each one damages ~1 scrub block).
    pub poison_sites: u32,
    /// Whether the anti-entropy catch-up verifies landed blocks and
    /// scrubs before claiming success. Turning this off is the planted
    /// regression the chaos fuzzer exists to rediscover.
    pub verify_catch_up: bool,
    /// Virtual bytes each row stands in for when pricing the scrub and
    /// the catch-up transfer (the demo data set is a miniature; see
    /// [`ShardMachine::virtual_scan_bytes`]).
    pub bytes_per_row: u64,
    /// Seeded interconnect-jitter windows over the horizon.
    pub link_windows: u32,
    /// Range a jitter window's latency multiplier is drawn from.
    pub link_latency_jitter: (f64, f64),
    /// Range a jitter window's bandwidth multiplier is drawn from.
    pub link_bandwidth_jitter: (f64, f64),
}

impl RecoveryConfig {
    /// The acceptance-suite shape: blackout over `[0.05, 0.10)` of the
    /// 0.2 s horizon, 3 poison sites, verified catch-up, two jitter
    /// windows.
    pub fn demo(victim: u32) -> Self {
        RecoveryConfig {
            victim,
            blackout_at: 0.05,
            blackout_until: 0.10,
            poison_sites: 3,
            verify_catch_up: true,
            bytes_per_row: 4 << 10,
            link_windows: 2,
            link_latency_jitter: (1.5, 3.0),
            link_bandwidth_jitter: (0.4, 0.9),
        }
    }

    /// The regression shape: catch-up ships blocks but never verifies.
    pub fn without_verification(mut self) -> Self {
        self.verify_catch_up = false;
        self
    }
}

/// The shard's Q1.1 partial — but only if its blocks verify against the
/// sealed checksums right now. A primary serving unverified blocks
/// returns garbage, not an answer; the guard scores it `None` so the
/// aggregate-vs-reference invariant flags it (an unchecked scan of a
/// poisoned region would abort the whole simulated machine instead).
fn guarded_partial(fact: &ColumnarFact) -> Option<i64> {
    if fact.scrub().iter().all(|(_, r)| r.is_clean()) {
        Some(ShardMachine::q11_partial(fact))
    } else {
        None
    }
}

/// Inject `sites` seeded uncorrectable media errors into `fact`, each at
/// a column/offset drawn from `seed`. Returns newly poisoned XPLines.
fn inject_seeded_poison(fact: &mut ColumnarFact, seed: u64, sites: u32) -> u64 {
    let mut rng = SplitMix64::new(seed);
    let mut lines = 0;
    for _ in 0..sites {
        let column = Column::ALL[(rng.next_u64() as usize) % Column::ALL.len()];
        let bytes = fact.column_bytes(column).max(1);
        let offset = rng.next_u64() % bytes;
        lines += fact.inject_poison(column, offset, 32);
    }
    lines
}

/// Inject one chaos-scheduled media error: `column`/`block` are reduced
/// modulo the shard's actual geometry (the schedule generator does not
/// know shard sizes).
fn inject_poison_at(fact: &mut ColumnarFact, column: u32, block: u64) {
    let column = Column::ALL[(column as usize) % Column::ALL.len()];
    let bytes = fact.column_bytes(column).max(1);
    let blocks = bytes.div_ceil(SCRUB_BLOCK).max(1);
    let offset = ((block % blocks) * SCRUB_BLOCK).min(bytes - 1);
    fact.inject_poison(column, offset, 32);
}

impl Cluster {
    /// Borrow shard `shard`'s machine mutably together with the replica
    /// of its partition hosted by its ring successor (the split-borrow
    /// the catch-up path needs). Errors if no replica exists.
    fn with_replica<R>(
        &mut self,
        shard: u32,
        f: impl FnOnce(&mut ShardMachine, &ColumnarFact) -> Result<R>,
    ) -> Result<R> {
        let peer = self.map.replica_of(shard).ok_or(StoreError::OutOfBounds {
            offset: u64::from(shard),
            len: 0,
            capacity: u64::from(self.cfg.shards),
        })?;
        let (a, b) = {
            let (lo, hi) = (shard.min(peer) as usize, shard.max(peer) as usize);
            let (head, tail) = self.machines.split_at_mut(hi);
            (&mut head[lo], &mut tail[0])
        };
        let (target, host) = if shard < peer { (a, b) } else { (b, a) };
        let replica = host.replica_of(shard).ok_or(StoreError::OutOfBounds {
            offset: u64::from(shard),
            len: 0,
            capacity: 0,
        })?;
        f(target, replica)
    }

    /// Scatter-gather with the scrub guard of [`guarded_partial`]: a
    /// primary whose blocks no longer verify contributes a zero partial
    /// (surfacing as an aggregate mismatch) instead of scanning
    /// unverified bytes.
    fn guarded_scatter_gather(&self, lost: Option<u32>) -> ScatterGather {
        let cfg = &self.cfg;
        let mut partials = vec![0i64; cfg.shards as usize];
        let mut lost_rows = 0;
        let mut replica_served_rows = 0;
        let mut transfer_seconds = 2.0 * cfg.shards as f64 * cfg.interconnect.latency_seconds;
        for (s, machine) in self.machines.iter().enumerate() {
            if lost == Some(s as u32) {
                let replica = self
                    .map
                    .replica_of(s as u32)
                    .and_then(|peer| self.machines[peer as usize].replica_of(s as u32));
                match replica.and_then(guarded_partial) {
                    Some(partial) => {
                        partials[s] = partial;
                        replica_served_rows += machine.rows;
                        transfer_seconds += cfg.interconnect.latency_seconds;
                    }
                    None => lost_rows += machine.rows,
                }
            } else {
                partials[s] = guarded_partial(&machine.fact).unwrap_or(0);
            }
        }
        ScatterGather {
            aggregate: partials.iter().sum(),
            partials,
            lost_rows,
            replica_served_rows,
            transfer_seconds,
        }
    }

    /// Run the full rejoin arc: blackout → failover → scrub →
    /// anti-entropy catch-up → probe-earned weight → range hand-back +
    /// replica GC. See the module docs. Every stream is seeded; the run
    /// replays bit for bit from `(ClusterConfig, RecoveryConfig)`.
    pub fn run_rejoin(&mut self, rcfg: &RecoveryConfig) -> Result<RecoveryReport> {
        let cfg = self.cfg;
        let det = cfg.detector;
        let planner = AccessPlanner::paper_default();
        let shards = cfg.shards as usize;
        let victim = rcfg.victim % cfg.shards;
        let v = victim as usize;
        let at = rcfg.blackout_at;
        let until = rcfg.blackout_until.max(at);
        let link = LinkPlan::generate(
            splitmix64(cfg.seed ^ REJOIN_LINK_SALT),
            cfg.horizon,
            rcfg.link_windows,
            rcfg.link_latency_jitter,
            rcfg.link_bandwidth_jitter,
        );

        // The blackout is a *window*: the machine comes back at `until`.
        let fleet = FleetFaultPlans::healthy(shards).with_lost_machine(v, at, until);

        // Detection and failover, same verdict the terminal-loss path
        // would reach (the detector cannot know the window will close).
        let detect_at = match det.mode {
            DetectorMode::Oracle => at + det.oracle_delay,
            DetectorMode::Accrual => self.accrual_blackout_detect_at(victim, at)?,
        };

        // The blackout leaves seeded media damage on the victim's shard.
        let poisoned_lines = inject_seeded_poison(
            &mut self.machines[v].fact,
            splitmix64(machine_seed(cfg.seed, v) ^ POISON_SALT),
            rcfg.poison_sites,
        );

        // Rejoin step 1: scrub the local shard against its sealed
        // checksums, priced at the machine's scan bandwidth over the
        // shard's virtual bytes.
        let scan_bw = Self::machine_scan_bw(&planner).max(1.0);
        let virtual_bytes = self.machines[v].virtual_scan_bytes(rcfg.bytes_per_row);
        let scrub_bad_blocks: u64 = self.machines[v]
            .fact
            .scrub()
            .iter()
            .map(|(_, r)| r.bad_blocks().len() as u64)
            .sum();
        let scrub_seconds = virtual_bytes as f64 / scan_bw;

        // Rejoin step 2: incremental anti-entropy from the replica host.
        // Hash exchange + divergent blocks only, over the jittered link.
        let full_shard_bytes = self.machines[v].fact.total_bytes();
        let verify = rcfg.verify_catch_up;
        let catch_up = self.with_replica(victim, |m, replica| {
            m.fact.catch_up_from_replica(replica, verify)
        })?;
        // Wire pricing in the virtual plane: each real shard byte stands
        // in for `bytes_per_row / row_bytes` wire bytes, like every other
        // transfer in the demo-scale cluster.
        let vscale = virtual_bytes as f64 / full_shard_bytes.max(1) as f64;
        let wire_bytes =
            ((catch_up.hash_bytes_exchanged + catch_up.bytes_shipped) as f64 * vscale) as u64;
        let scrub_done = until + scrub_seconds;
        let catch_up_seconds = cfg
            .interconnect
            .transfer_seconds_at(wire_bytes, scrub_done, &link);
        let ready_at = scrub_done + catch_up_seconds;
        let caught_up = catch_up.is_fully_caught_up();

        // Rejoin step 3: earn the traffic back. The rejoined shard
        // re-enters the detector `Suspect` and must clear the probe
        // dwell; the oracle just waits its fixed delay. A shard that
        // could not verify its catch-up is never handed back.
        let full_weight_at = if !caught_up {
            None
        } else {
            match det.mode {
                DetectorMode::Oracle => Some(ready_at + det.oracle_delay),
                DetectorMode::Accrual => {
                    let scan = virtual_bytes as f64 / scan_bw;
                    let healthy_rtt = 2.0 * cfg.interconnect.latency_seconds;
                    let plan = fleet.plan(v);
                    let machine = Machine::paper_default();
                    let probe = |t: f64| {
                        2.0 * cfg.interconnect.latency_seconds_at(t, &link)
                            + scan / plan.state_at(&machine, t).service_scale().max(1e-9)
                    };
                    HealthTimeline::replay_from(
                        &det,
                        ready_at,
                        HealthState::Suspect,
                        cfg.horizon.max(ready_at + 10.0 * det.probe_interval),
                        healthy_rtt + scan,
                        probe,
                        &[],
                    )
                    .cleared_at()
                }
            }
        };

        // Route: victim keeps pre-detection arrivals; the blackout/
        // catch-up span fails over to the peer; the demoted span routes
        // by the detector's graded weight; past full weight the range is
        // handed back.
        let mut routed: Vec<Vec<JobSpec>> = (0..shards)
            .map(|s| self.shard_plan(s as u32, &planner).jobs())
            .collect();
        let routed_counts: Vec<u64> = routed.iter().map(|x| x.len() as u64).collect();
        let mut rerouted = 0u64;
        let mut handed_back = 0u64;
        let mut rerouted_to = vec![0u64; shards];
        let mut transfer_in = vec![0.0_f64; shards];
        if let Some(peer) = self.map.replica_of(victim).filter(|_| cfg.replicate) {
            let p = peer as usize;
            let jobs = std::mem::take(&mut routed[v]);
            let mut stay = Vec::with_capacity(jobs.len());
            for (i, mut job) in jobs.into_iter().enumerate() {
                let a = job.arrival;
                let keep = if a < detect_at {
                    true
                } else if full_weight_at.map(|fw| a >= fw).unwrap_or(false) {
                    handed_back += 1;
                    true
                } else if caught_up && a >= ready_at && det.mode == DetectorMode::Accrual {
                    // Demoted span: probe-earned partial weight.
                    let keep =
                        ShardMap::rebalance_draw(cfg.seed, victim, i as u64) < det.demoted_weight;
                    if keep {
                        handed_back += 1;
                    }
                    keep
                } else {
                    false
                };
                if keep {
                    stay.push(job);
                } else {
                    let hop = cfg
                        .interconnect
                        .transfer_seconds_at(cfg.unit_bytes, a, &link);
                    job.arrival += hop;
                    transfer_in[p] += hop;
                    rerouted += 1;
                    rerouted_to[p] += 1;
                    routed[p].push(job);
                }
            }
            routed[v] = stay;
            routed[p].sort_by(|x, y| {
                x.arrival
                    .total_cmp(&y.arrival)
                    .then(x.tenant.cmp(&y.tenant))
            });
        }

        // Serve every machine over its routed jobs under the windowed
        // fault plan.
        let mut per_shard = Vec::with_capacity(shards);
        for (s, machine) in self.machines.iter().enumerate() {
            let config = ServeConfig::surge(&planner)
                .with_faults(fleet.plan(s))
                .with_slo_classes(cfg.slo);
            let mut server = QueryServer::new(&machine.store, config);
            server.submit_all(routed[s].iter().copied());
            let mut report = server.run()?;
            let role = if s == v {
                if caught_up {
                    ShardRole::Rejoining
                } else {
                    ShardRole::Demoted
                }
            } else if rerouted_to[s] > 0 {
                ShardRole::Failover
            } else {
                ShardRole::Primary
            };
            report.fanout = Some(FanoutOutcome {
                shard: s as u32,
                role,
                routed_jobs: routed_counts[s],
                rerouted_jobs: rerouted_to[s],
                rebalanced_jobs: if s == v { rerouted } else { 0 },
                router_weight: if s != v
                    || full_weight_at.map(|fw| fw <= cfg.horizon).unwrap_or(false)
                {
                    1.0
                } else if caught_up {
                    det.demoted_weight
                } else {
                    0.0
                },
                transfer_seconds: transfer_in[s],
            });
            per_shard.push(report);
        }

        // Fleet rollup. A rejoined machine's makespan counts like any
        // other; only a never-handed-back victim is written off at its
        // last completion (the terminal-loss rule).
        let makespan = per_shard
            .iter()
            .enumerate()
            .map(|(s, r)| {
                if s == v && !caught_up {
                    r.jobs
                        .iter()
                        .filter(|j| j.outcome.is_completed())
                        .map(|j| j.finished_at)
                        .fold(detect_at, f64::max)
                } else {
                    r.makespan
                }
            })
            .fold(0.0_f64, f64::max);
        let window_bytes: u64 = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed() && j.finished_at <= cfg.horizon)
            .map(|j| j.bytes)
            .sum();
        let e2e_samples: Vec<f64> = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed())
            .map(|j| (j.finished_at - j.arrival).max(0.0))
            .collect();
        let jobs: u64 = routed_counts.iter().sum();
        let completed: u64 = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed())
            .count() as u64;
        let shed: u64 = per_shard.iter().map(|r| r.shed_jobs() as u64).sum();

        // Redundancy: re-replication starts at detection exactly like
        // the terminal-loss path (the router cannot know the machine
        // will be back); once the rejoin verifies, the extra copy is
        // garbage-collected and the steady ring replica remains the only
        // one.
        let mut rereplicated_bytes = 0;
        let mut replica_gc_bytes = 0;
        if cfg.replicate && cfg.shards >= 3 {
            if let Some(peer) = self.map.replica_of(victim) {
                let mut target = (peer + 1) % cfg.shards;
                if target == victim {
                    target = (target + 1) % cfg.shards;
                }
                let copy = {
                    let host = &self.machines[peer as usize];
                    let replica = host.replica_of(victim).ok_or(StoreError::OutOfBounds {
                        offset: u64::from(victim),
                        len: 0,
                        capacity: 0,
                    })?;
                    // A damaged replica must never be the *source* of a
                    // new copy: refuse the re-replication rather than
                    // propagate unverifiable bytes.
                    match replica.replicate_to(self.machines[target as usize].replica_ns()) {
                        Ok(copy) => Some(copy),
                        Err(StoreError::Poisoned { .. }) => None,
                        Err(e) => return Err(e),
                    }
                };
                if let Some(copy) = copy {
                    rereplicated_bytes = copy.total_bytes();
                    self.machines[target as usize].host_replica(victim, copy);
                    if caught_up {
                        replica_gc_bytes = self.machines[target as usize]
                            .drop_replica(victim)
                            .unwrap_or(0);
                    }
                }
            }
        }

        // Verification query: a caught-up victim serves its own range
        // again; otherwise the replica still covers it.
        let query = self.guarded_scatter_gather(if caught_up { None } else { Some(victim) });

        Ok(RecoveryReport {
            shards: cfg.shards,
            victim,
            mode: det.mode,
            verified: verify,
            blackout_at: at,
            blackout_until: until,
            detect_at,
            poisoned_lines,
            scrub_bad_blocks,
            scrub_seconds,
            catch_up,
            full_shard_bytes,
            catch_up_seconds,
            ready_at,
            caught_up,
            full_weight_at,
            rerouted_jobs: rerouted,
            handed_back_jobs: handed_back,
            rereplicated_bytes,
            replica_gc_bytes,
            per_shard,
            makespan,
            goodput_bytes_per_sec: window_bytes as f64 / cfg.horizon.max(1e-9),
            e2e: Percentiles::of(&e2e_samples),
            jobs,
            completed,
            shed,
            query,
            reference: self.reference,
        })
    }

    /// Run one compositional chaos schedule over the full serve/cluster
    /// stack and account the standing invariants. `verify` gates the
    /// anti-entropy verification pass — `false` is the planted
    /// regression (`clean` asserted without evidence) the fuzzer must
    /// rediscover.
    ///
    /// The runner routes blackout failover with the oracle delay
    /// regardless of detector mode: detector quality is the gray and
    /// rejoin suites' subject; this plane's subject is data-loss,
    /// partial-count, ledger, and tail invariants under stacked faults.
    /// The cluster is restored to a clean, fully-replicated state before
    /// returning, so one built cluster serves an entire fuzz campaign.
    pub fn run_chaos(&mut self, schedule: &ChaosSchedule, verify: bool) -> Result<ChaosReport> {
        let cfg = self.cfg;
        let planner = AccessPlanner::paper_default();
        let shards = cfg.shards as usize;

        // Partition the schedule into the planes it touches.
        let blackout = schedule
            .blackout_rejoin()
            .map(|(m, b_at, b_until)| (m % shards, b_at, b_until));
        let mut fleet = FleetFaultPlans::healthy(shards);
        if let Some((m, b_at, b_until)) = blackout {
            fleet = fleet.with_lost_machine(m, b_at, b_until);
        }
        let mut link_events = Vec::new();
        let mut poisons: Vec<(usize, u32, u64)> = Vec::new();
        let mut worst_window = blackout
            .map(|(_, b_at, b_until)| b_until - b_at)
            .unwrap_or(0.0);
        for e in schedule.events() {
            let m = e.machine % shards.max(1);
            match e.fault {
                ChaosFault::MediaPoison { column, block, .. } => poisons.push((m, column, block)),
                ChaosFault::PowerLoss { socket, at } => {
                    fleet = fleet.with_machine_event(
                        m,
                        FaultEvent {
                            start: at,
                            end: at,
                            kind: FaultKind::PowerLoss { socket },
                        },
                    );
                }
                ChaosFault::FailSlow { at, until, factor } => {
                    worst_window = worst_window.max(until - at);
                    fleet = fleet.with_fail_slow(m, at, until, factor);
                }
                ChaosFault::LinkJitter {
                    at,
                    until,
                    latency_scale,
                    bandwidth_scale,
                } => {
                    link_events.push(LinkEvent {
                        start: at,
                        end: until,
                        latency_scale,
                        bandwidth_scale,
                    });
                }
                ChaosFault::BlackoutRejoin { .. } => {}
            }
        }
        let link = LinkPlan::from_events(link_events);

        // Media plane: poison lands, anti-entropy catches up. Poison on
        // the blackout victim lands *mid catch-up* — after the hash
        // exchange, before verification — the window the verify pass's
        // catch-all scrub exists for. Poison elsewhere is found by the
        // hash exchange itself.
        let victim = blackout.map(|(m, _, _)| m);
        let mut catch_up: Option<AntiEntropyReport> = None;
        let mut damaged: Vec<usize> = poisons.iter().map(|p| p.0).collect();
        damaged.sort_unstable();
        damaged.dedup();
        for &m in &damaged {
            let m32 = m as u32;
            let has_replica = cfg.replicate
                && self
                    .map
                    .replica_of(m32)
                    .map(|peer| self.machines[peer as usize].replica_of(m32).is_some())
                    .unwrap_or(false);
            if victim == Some(m) {
                let diff =
                    if has_replica {
                        Some(self.with_replica(m32, |machine, replica| {
                            machine.fact.diff_blocks(replica)
                        })?)
                    } else {
                        None
                    };
                for &(pm, column, block) in poisons.iter().filter(|p| p.0 == m) {
                    let _ = pm;
                    inject_poison_at(&mut self.machines[m].fact, column, block);
                }
                if let Some(diff) = diff {
                    catch_up = Some(self.with_replica(m32, |machine, replica| {
                        machine.fact.apply_diff(replica, &diff, verify)
                    })?);
                }
            } else {
                for &(pm, column, block) in poisons.iter().filter(|p| p.0 == m) {
                    let _ = pm;
                    inject_poison_at(&mut self.machines[m].fact, column, block);
                }
                if has_replica {
                    let _ = self.with_replica(m32, |machine, replica| {
                        machine.fact.catch_up_from_replica(replica, verify)
                    })?;
                }
            }
        }
        // A blackout victim with no media damage still runs the rejoin
        // catch-up (an empty diff, nothing shipped).
        if let Some(m) = victim {
            if catch_up.is_none() && cfg.replicate && self.map.replica_of(m as u32).is_some() {
                catch_up = Some(self.with_replica(m as u32, |machine, replica| {
                    machine.fact.catch_up_from_replica(replica, verify)
                })?);
            }
        }
        let rejoined = match (blackout, catch_up) {
            (Some(_), Some(report)) => report.is_fully_caught_up(),
            (Some(_), None) => false,
            (None, _) => false,
        };

        // Serve plane: route the blackout victim's post-detection
        // arrivals to its replica host until the rejoin instant, then
        // hand the range back if (and only if) the catch-up verified.
        let mut routed: Vec<Vec<JobSpec>> = (0..shards)
            .map(|s| self.shard_plan(s as u32, &planner).jobs())
            .collect();
        let submitted: u64 = routed.iter().map(|x| x.len() as u64).sum();
        let mut rerouted_to = vec![0u64; shards];
        if let Some((m, b_at, b_until)) = blackout {
            let detect_at = b_at + cfg.detector.oracle_delay;
            if let Some(peer) = self.map.replica_of(m as u32).filter(|_| cfg.replicate) {
                let p = peer as usize;
                let jobs = std::mem::take(&mut routed[m]);
                let mut stay = Vec::with_capacity(jobs.len());
                for mut job in jobs {
                    let a = job.arrival;
                    if a < detect_at || (rejoined && a >= b_until) {
                        stay.push(job);
                    } else {
                        job.arrival +=
                            cfg.interconnect
                                .transfer_seconds_at(cfg.unit_bytes, a, &link);
                        rerouted_to[p] += 1;
                        routed[p].push(job);
                    }
                }
                routed[m] = stay;
                routed[p].sort_by(|x, y| {
                    x.arrival
                        .total_cmp(&y.arrival)
                        .then(x.tenant.cmp(&y.tenant))
                });
            }
        }
        let mut per_shard_jobs = 0u64;
        let mut completed = 0u64;
        let mut shed = 0u64;
        let mut e2e_samples = Vec::new();
        for (s, machine) in self.machines.iter().enumerate() {
            let config = ServeConfig::surge(&planner)
                .with_faults(fleet.plan(s))
                .with_slo_classes(cfg.slo);
            let mut server = QueryServer::new(&machine.store, config);
            server.submit_all(routed[s].iter().copied());
            let report = server.run()?;
            // Ledger conservation: every submitted job must reach a
            // terminal record — completed or shed, never silently gone.
            per_shard_jobs += report.jobs.len() as u64;
            shed += report.shed_jobs() as u64;
            for j in &report.jobs {
                if j.outcome.is_completed() {
                    completed += 1;
                    e2e_samples.push((j.finished_at - j.arrival).max(0.0));
                }
            }
        }
        let ledger_outstanding = submitted as i64 - per_shard_jobs as i64;

        // Invariant accounting happens *before* the restore: dirty
        // blocks on any serving primary (a rejoined victim included) are
        // a hand-back violation, and the guarded scatter-gather turns
        // them into an aggregate mismatch.
        let mut handed_back_dirty_blocks = 0u64;
        for (s, machine) in self.machines.iter().enumerate() {
            let serving = victim != Some(s) || rejoined;
            if serving {
                handed_back_dirty_blocks += machine
                    .fact
                    .scrub()
                    .iter()
                    .map(|(_, r)| r.bad_blocks().len() as u64)
                    .sum::<u64>();
            }
        }
        let lost = victim.filter(|_| !rejoined).map(|m| m as u32);
        let query = self.guarded_scatter_gather(lost);
        let partials_counted = query.partials.len() as u64;

        // Restore the fleet for the next schedule: force a *verified*
        // repair on anything still dirty so one built cluster can absorb
        // an entire fuzz campaign.
        for m in 0..shards {
            let dirty = self.machines[m]
                .fact
                .scrub()
                .iter()
                .any(|(_, r)| !r.is_clean());
            if dirty {
                self.with_replica(m as u32, |machine, replica| {
                    machine.fact.repair_from_replica(replica).map(|_| ())
                })?;
            }
        }

        Ok(ChaosReport {
            seed: schedule.seed,
            events: schedule.len(),
            shards: cfg.shards,
            blackout,
            rejoined,
            catch_up,
            handed_back_dirty_blocks,
            worst_window,
            deadline: cfg.deadline,
            jobs: submitted,
            completed,
            shed,
            ledger_outstanding,
            e2e: Percentiles::of(&e2e_samples),
            partials_counted,
            query,
            reference: self.reference,
        })
    }
}

//! Deterministic accrual-style gray-failure detection.
//!
//! PR 7's router had an oracle: a hard-coded detection delay after which
//! a *dead* machine's arrivals re-route. Real fleets do not get told —
//! and worse, PMEM machines fail *slow* before they fail dead (thermal
//! write throttling, firmware background tasks, asymmetric bandwidth
//! collapse under contention), a mode a binary alive/dead check never
//! sees. This module replaces the oracle with a per-shard health score
//! in the spirit of the φ accrual failure detector, adapted to the
//! repo's replayed virtual clock so every verdict is bit-for-bit
//! reproducible from the seed:
//!
//! * **Signals.** The router observes two streams per shard: periodic
//!   health probes (a fixed-cost sample scan, priced directly off the
//!   shard's [`FaultPlan`] service scale and the interconnect) and the
//!   shard's *completion stream* — per-job latency and deadline
//!   outcomes from the serve plane.
//! * **Score.** The windowed median probe inflation (observed latency ÷
//!   healthy baseline) is the primary score; a deadline-miss fraction
//!   over the recent completion window is a fast secondary trigger.
//! * **Thresholds.** `suspect → demote` at [`DetectorConfig::suspect_inflation`],
//!   `dead` at [`DetectorConfig::dead_inflation`]; a suspected shard
//!   keeps serving at [`DetectorConfig::demoted_weight`] router weight
//!   (graded demotion, not a write-off) and re-earns full weight when
//!   its probe score clears below [`DetectorConfig::clear_inflation`].
//!   Once a shard is suspected its completion stream is frozen out of
//!   the score: the backlog the fault built (and the demotion itself)
//!   confound it, so health is re-earned through probes alone. Death is
//!   terminal — a machine that inflates probes 50× is indistinguishable
//!   from gone, and the blackout plane already models replacement.
//!
//! The outcome of a replay is a [`HealthTimeline`]: the shard's state
//! transitions over virtual time, which the router consults for routing
//! weights, tied hedges, and failover instants.

use std::collections::VecDeque;

/// How the router decides a shard's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorMode {
    /// The PR-7 oracle: a fixed delay after a *blackout* the router is
    /// simply told about. Fail-slow machines are never noticed — this
    /// is the demonstrably-blind baseline the gray suite contrasts.
    Oracle,
    /// The accrual detector: probe + completion scoring over the
    /// virtual clock, graded demotion, probe-earned recovery.
    Accrual,
}

/// Detector tuning. Lives in `ClusterConfig` so experiments can sweep
/// detection latency and thresholds; [`Self::oracle`] reproduces the
/// PR-7 behavior byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Scoring mode.
    pub mode: DetectorMode,
    /// Oracle-mode detection delay in virtual seconds after a blackout
    /// (the old hard-coded `DETECT_DELAY`).
    pub oracle_delay: f64,
    /// Virtual seconds between health probes.
    pub probe_interval: f64,
    /// Probes in the windowed median score.
    pub probe_window: usize,
    /// Median probe inflation at which a shard becomes `Suspect`.
    pub suspect_inflation: f64,
    /// Median probe inflation at which a shard is declared `Dead`.
    pub dead_inflation: f64,
    /// Median probe inflation a `Suspect` shard must clear to re-earn
    /// full weight.
    pub clear_inflation: f64,
    /// Minimum probes observed *while suspected* before the score may
    /// clear — a deterministic demotion dwell that stops flapping.
    pub clear_probes: u32,
    /// Deadline-miss fraction over a full completion window that
    /// suspects a shard even while its probes still look healthy.
    pub miss_suspect: f64,
    /// Completion outcomes in the miss-fraction window.
    pub terminal_window: usize,
    /// Router weight of a `Suspect` shard (graded demotion: it keeps
    /// serving, most new arrivals rebalance to its replica).
    pub demoted_weight: f64,
    /// Quantile of observed scatter-gather partial latencies past which
    /// a straggler triggers a reactive backup request.
    pub hedge_quantile: f64,
    /// Multiplier on that quantile before the hedge fires.
    pub hedge_scale: f64,
    /// Observed-latency window the hedge quantile is computed over.
    pub hedge_window: usize,
}

impl DetectorConfig {
    /// The PR-7 oracle, byte for byte: fixed 5 ms blackout detection,
    /// no gray-failure awareness. Hedge/demotion parameters are carried
    /// (the gray plane can hedge under either mode) but nothing ever
    /// becomes `Suspect`.
    pub fn oracle() -> Self {
        DetectorConfig {
            mode: DetectorMode::Oracle,
            ..DetectorConfig::accrual()
        }
    }

    /// The accrual detector with the acceptance-suite tuning: 1 ms
    /// probes, median-of-3 scoring, suspect at 3× inflation, dead at
    /// 50×, clear below 1.5×, 10% demoted weight.
    pub fn accrual() -> Self {
        DetectorConfig {
            mode: DetectorMode::Accrual,
            oracle_delay: 0.005,
            probe_interval: 0.001,
            probe_window: 3,
            suspect_inflation: 3.0,
            dead_inflation: 50.0,
            clear_inflation: 1.5,
            clear_probes: 3,
            miss_suspect: 0.95,
            terminal_window: 16,
            demoted_weight: 0.1,
            hedge_quantile: 0.95,
            hedge_scale: 1.5,
            hedge_window: 64,
        }
    }
}

/// A shard's health as the detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Full router weight.
    Healthy,
    /// Demoted: serving at reduced weight, tied hedges fire against it.
    Suspect,
    /// Written off: zero weight, traffic fails over.
    Dead,
}

/// One completion-stream observation: a job's terminal outcome as the
/// router sees it (ingress sheds carry no service signal and are
/// filtered out upstream, same as the cluster breaker's replay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Virtual completion time.
    pub at: f64,
    /// End-to-end latency (completion − arrival).
    pub latency: f64,
    /// Whether the job missed its deadline.
    pub miss: bool,
}

/// A shard's health-state transitions over one replayed run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTimeline {
    /// `(at, state)` pairs in time order, starting `(0, Healthy)`.
    transitions: Vec<(f64, HealthState)>,
}

impl HealthTimeline {
    /// A shard the detector never flagged.
    pub fn healthy() -> Self {
        HealthTimeline {
            transitions: vec![(0.0, HealthState::Healthy)],
        }
    }

    /// Replay the detector over one shard's observable streams and
    /// return its health timeline. `probe_latency` prices a health
    /// probe issued at virtual time `t` (round trip + sample scan at
    /// the shard's current service rate); `baseline` is the same
    /// probe's healthy cost, so `probe_latency(t) / baseline` is the
    /// inflation the score windows. `terminals` is the shard's
    /// completion stream. Fully deterministic: same inputs, same
    /// timeline, bit for bit.
    pub fn replay(
        cfg: &DetectorConfig,
        horizon: f64,
        baseline: f64,
        probe_latency: impl Fn(f64) -> f64,
        terminals: &[Observation],
    ) -> Self {
        Self::replay_from(
            cfg,
            0.0,
            HealthState::Healthy,
            horizon,
            baseline,
            probe_latency,
            terminals,
        )
    }

    /// [`Self::replay`] generalized to a mid-run start: the detector
    /// begins at virtual time `start` in state `initial` and probes
    /// forward from there. This is the rejoin path — a machine back
    /// from a blackout re-enters the fleet `Suspect` and must re-earn
    /// full weight through `clear_probes` clean probes, exactly like a
    /// demoted gray machine. `replay` is `replay_from(cfg, 0, Healthy,
    /// ..)`, byte for byte. Completion outcomes before `start` are
    /// ignored (they predate the detector's view of this incarnation).
    pub fn replay_from(
        cfg: &DetectorConfig,
        start: f64,
        initial: HealthState,
        horizon: f64,
        baseline: f64,
        probe_latency: impl Fn(f64) -> f64,
        terminals: &[Observation],
    ) -> Self {
        let baseline = baseline.max(1e-12);
        let interval = cfg.probe_interval.max(1e-6);
        let mut terms: Vec<Observation> = terminals
            .iter()
            .copied()
            .filter(|o| o.at >= start)
            .collect();
        terms.sort_by(|a, b| a.at.total_cmp(&b.at));

        let mut transitions = vec![(start, initial)];
        let mut state = initial;
        let mut probes: VecDeque<f64> = VecDeque::with_capacity(cfg.probe_window.max(1));
        let mut misses: VecDeque<bool> = VecDeque::with_capacity(cfg.terminal_window.max(1));
        // Frozen after the first suspicion: see the module docs.
        let mut terminals_live = state == HealthState::Healthy;
        let mut probes_since_suspect = 0u32;

        let median = |window: &VecDeque<f64>| -> f64 {
            let mut sorted: Vec<f64> = window.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            sorted[sorted.len() / 2]
        };

        let mut ti = 0usize;
        let probe_count = ((horizon - start).max(0.0) / interval).floor() as u64;
        for k in 1..=probe_count {
            let t = start + k as f64 * interval;
            // Completion outcomes that landed since the last probe are
            // scored first, at their own timestamps.
            while ti < terms.len() && terms[ti].at <= t {
                let term = terms[ti];
                ti += 1;
                if !terminals_live || state != HealthState::Healthy {
                    continue;
                }
                if misses.len() == cfg.terminal_window.max(1) {
                    misses.pop_front();
                }
                misses.push_back(term.miss);
                if misses.len() == cfg.terminal_window.max(1) {
                    let frac = misses.iter().filter(|m| **m).count() as f64 / misses.len() as f64;
                    if frac >= cfg.miss_suspect {
                        state = HealthState::Suspect;
                        terminals_live = false;
                        probes_since_suspect = 0;
                        transitions.push((term.at, state));
                    }
                }
            }

            if probes.len() == cfg.probe_window.max(1) {
                probes.pop_front();
            }
            probes.push_back(probe_latency(t) / baseline);
            if state == HealthState::Suspect {
                probes_since_suspect += 1;
            }
            if probes.len() < cfg.probe_window.max(1) {
                continue;
            }
            let score = median(&probes);
            match state {
                HealthState::Healthy => {
                    if score >= cfg.dead_inflation {
                        state = HealthState::Dead;
                    } else if score >= cfg.suspect_inflation {
                        state = HealthState::Suspect;
                        terminals_live = false;
                        probes_since_suspect = 0;
                    }
                    if state != HealthState::Healthy {
                        transitions.push((t, state));
                    }
                }
                HealthState::Suspect => {
                    if score >= cfg.dead_inflation {
                        state = HealthState::Dead;
                        transitions.push((t, state));
                    } else if probes_since_suspect >= cfg.clear_probes
                        && score <= cfg.clear_inflation
                    {
                        state = HealthState::Healthy;
                        transitions.push((t, state));
                    }
                }
                HealthState::Dead => {}
            }
        }
        HealthTimeline { transitions }
    }

    /// The transitions, `(at, state)` in time order.
    pub fn transitions(&self) -> &[(f64, HealthState)] {
        &self.transitions
    }

    /// The shard's state at virtual time `t`.
    pub fn state_at(&self, t: f64) -> HealthState {
        self.transitions
            .iter()
            .take_while(|(at, _)| *at <= t)
            .last()
            .map(|(_, s)| *s)
            .unwrap_or(HealthState::Healthy)
    }

    /// The shard's router weight at `t` under `cfg`'s demotion grading.
    pub fn weight_at(&self, t: f64, cfg: &DetectorConfig) -> f64 {
        match self.state_at(t) {
            HealthState::Healthy => 1.0,
            HealthState::Suspect => cfg.demoted_weight.clamp(0.0, 1.0),
            HealthState::Dead => 0.0,
        }
    }

    /// Whether the detector ever took the shard off full weight.
    pub fn ever_degraded(&self) -> bool {
        self.transitions
            .iter()
            .any(|(_, s)| *s != HealthState::Healthy)
    }

    /// First time the shard became `Suspect`, if ever.
    pub fn suspected_at(&self) -> Option<f64> {
        self.transitions
            .iter()
            .find(|(_, s)| *s == HealthState::Suspect)
            .map(|(at, _)| *at)
    }

    /// Time the shard was declared `Dead`, if ever.
    pub fn dead_at(&self) -> Option<f64> {
        self.transitions
            .iter()
            .find(|(_, s)| *s == HealthState::Dead)
            .map(|(at, _)| *at)
    }

    /// Last time the shard re-earned full weight after a suspicion.
    pub fn cleared_at(&self) -> Option<f64> {
        self.transitions
            .iter()
            .skip(1)
            .filter(|(_, s)| *s == HealthState::Healthy)
            .map(|(at, _)| *at)
            .next_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: f64 = 3.2e-4;

    fn cfg() -> DetectorConfig {
        DetectorConfig::accrual()
    }

    /// Probe pricing for a machine that serves at `scale(t)` of its
    /// healthy rate: the probe's scan dilates, its round trip does not.
    fn probe(scale: impl Fn(f64) -> f64) -> impl Fn(f64) -> f64 {
        move |t| 2.0e-5 + (BASE - 2.0e-5) / scale(t).max(1e-9)
    }

    #[test]
    fn healthy_stream_never_transitions() {
        let tl = HealthTimeline::replay(&cfg(), 0.2, BASE, probe(|_| 1.0), &[]);
        assert_eq!(tl.transitions(), &[(0.0, HealthState::Healthy)]);
        assert!(!tl.ever_degraded());
        assert_eq!(tl.weight_at(0.1, &cfg()), 1.0);
        assert_eq!(tl.suspected_at(), None);
        assert_eq!(tl.cleared_at(), None);
    }

    #[test]
    fn fail_slow_suspects_demotes_and_recovers() {
        // 10x service degradation over [0.04, 0.16): gray, never dead.
        let scale = |t: f64| if (0.04..0.16).contains(&t) { 0.1 } else { 1.0 };
        let c = cfg();
        let tl = HealthTimeline::replay(&c, 0.2, BASE, probe(scale), &[]);
        let suspected = tl.suspected_at().expect("fail-slow must be noticed");
        assert!(
            suspected > 0.04 && suspected < 0.045,
            "suspected within a few probes of onset: {suspected}"
        );
        assert_eq!(tl.dead_at(), None, "10x slow is demoted, never killed");
        assert_eq!(tl.state_at(0.1), HealthState::Suspect);
        assert!((tl.weight_at(0.1, &c) - c.demoted_weight).abs() < 1e-12);
        let cleared = tl.cleared_at().expect("weight re-earned");
        assert!(
            cleared > 0.16 && cleared < 0.165,
            "cleared within a few probes of recovery: {cleared}"
        );
        assert_eq!(tl.state_at(0.19), HealthState::Healthy);
        assert_eq!(tl.weight_at(0.19, &c), 1.0);
    }

    #[test]
    fn blackout_inflation_is_declared_dead_and_stays_dead() {
        let scale = |t: f64| if t >= 0.05 { 1e-3 } else { 1.0 };
        let c = cfg();
        let tl = HealthTimeline::replay(&c, 0.2, BASE, probe(scale), &[]);
        let dead = tl.dead_at().expect("a 1000x-inflated machine is dead");
        assert!(dead > 0.05 && dead < 0.055, "dead fast: {dead}");
        assert!(
            dead < 0.05 + c.oracle_delay,
            "accrual beats the 5 ms oracle it replaces"
        );
        assert_eq!(tl.state_at(0.19), HealthState::Dead, "death is terminal");
        assert_eq!(tl.weight_at(0.19, &c), 0.0);
    }

    #[test]
    fn deadline_miss_burst_suspects_even_with_healthy_probes() {
        let c = cfg();
        // A full window of misses lands early; probes never inflate.
        let terminals: Vec<Observation> = (0..c.terminal_window)
            .map(|i| Observation {
                at: 0.05 + i as f64 * 1e-4,
                latency: 0.3,
                miss: true,
            })
            .collect();
        let tl = HealthTimeline::replay(&c, 0.2, BASE, probe(|_| 1.0), &terminals);
        let suspected = tl.suspected_at().expect("miss burst suspects");
        assert!(suspected < 0.055);
        // With probes healthy the demotion dwell is the floor: the shard
        // re-earns weight after `clear_probes` clean probes.
        let cleared = tl.cleared_at().expect("healthy probes clear it");
        assert!(cleared > suspected);
        assert!(cleared <= suspected + (c.clear_probes as f64 + 1.0) * c.probe_interval);
    }

    #[test]
    fn median_scoring_shrugs_off_a_single_probe_spike() {
        // One probe at 100x (a transient stall) inside a healthy stream:
        // the median-of-3 window never crosses the suspect threshold.
        let spike_at = 0.1;
        let scale = move |t: f64| {
            if (t - spike_at).abs() < 1e-9 {
                0.01
            } else {
                1.0
            }
        };
        let tl = HealthTimeline::replay(&cfg(), 0.2, BASE, probe(scale), &[]);
        assert!(!tl.ever_degraded(), "one outlier is not a gray failure");
    }

    #[test]
    fn sub_threshold_misses_never_suspect() {
        let c = cfg();
        // Alternating hit/miss stays far below the miss_suspect fraction.
        let terminals: Vec<Observation> = (0..64)
            .map(|i| Observation {
                at: 0.01 + i as f64 * 2e-3,
                latency: 0.1,
                miss: i % 2 == 0,
            })
            .collect();
        let tl = HealthTimeline::replay(&c, 0.2, BASE, probe(|_| 1.0), &terminals);
        assert!(!tl.ever_degraded());
    }

    #[test]
    fn replay_is_deterministic() {
        let scale = |t: f64| if (0.04..0.12).contains(&t) { 0.2 } else { 1.0 };
        let terminals = vec![
            Observation {
                at: 0.06,
                latency: 0.3,
                miss: true,
            };
            8
        ];
        let run = || HealthTimeline::replay(&cfg(), 0.2, BASE, probe(scale), &terminals);
        assert_eq!(run(), run());
    }

    #[test]
    fn rejoin_starts_suspect_and_earns_weight_back_through_probes() {
        let c = cfg();
        // A machine back from a blackout re-enters at 0.1 `Suspect` with
        // its hardware healthy again: the dwell is the only barrier.
        let tl = HealthTimeline::replay_from(
            &c,
            0.1,
            HealthState::Suspect,
            0.2,
            BASE,
            probe(|_| 1.0),
            &[],
        );
        assert_eq!(tl.transitions()[0], (0.1, HealthState::Suspect));
        assert_eq!(tl.state_at(0.1), HealthState::Suspect);
        let cleared = tl.cleared_at().expect("clean probes re-earn weight");
        assert!(
            cleared > 0.1 && cleared <= 0.1 + (c.clear_probes as f64 + 1.0) * c.probe_interval,
            "cleared after the dwell: {cleared}"
        );
        assert_eq!(tl.state_at(0.19), HealthState::Healthy);

        // Still-degraded hardware keeps the rejoiner demoted.
        let slow = HealthTimeline::replay_from(
            &c,
            0.1,
            HealthState::Suspect,
            0.2,
            BASE,
            probe(|_| 0.1),
            &[],
        );
        assert_eq!(slow.cleared_at(), None, "10x slow stays demoted");
        assert_eq!(slow.state_at(0.19), HealthState::Suspect);
    }

    #[test]
    fn replay_is_replay_from_time_zero_healthy() {
        let scale = |t: f64| if (0.04..0.16).contains(&t) { 0.1 } else { 1.0 };
        let c = cfg();
        let a = HealthTimeline::replay(&c, 0.2, BASE, probe(scale), &[]);
        let b = HealthTimeline::replay_from(
            &c,
            0.0,
            HealthState::Healthy,
            0.2,
            BASE,
            probe(scale),
            &[],
        );
        assert_eq!(a, b, "delegation is byte-identical");
    }

    #[test]
    fn oracle_config_carries_the_old_detect_delay() {
        let c = DetectorConfig::oracle();
        assert_eq!(c.mode, DetectorMode::Oracle);
        assert!((c.oracle_delay - 0.005).abs() < 1e-15, "PR-7 value");
        assert_eq!(DetectorConfig::accrual().mode, DetectorMode::Accrual);
    }
}

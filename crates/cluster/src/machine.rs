//! One simulated machine of the cluster: its own store + serve stack,
//! its columnar partition, and the peer replicas it hosts.

use pmem_sim::topology::SocketId;
use pmem_ssb::columnar::{Column, ColumnarFact};
use pmem_ssb::datagen::SsbData;
use pmem_ssb::queries::QueryId;
use pmem_ssb::{EngineMode, SsbStore, StorageDevice};
use pmem_store::{Namespace, Result};

/// One shard's machine: a full `pmem-sim` + store stack of its own. The
/// row-format [`SsbStore`] backs the serving plane (admission, pricing);
/// the [`ColumnarFact`] is the scatter-gather scan target, checksummed
/// and replicated to the shard's ring successor.
#[derive(Debug)]
pub struct ShardMachine {
    /// Shard index this machine owns.
    pub shard: u32,
    /// Row-format store serving this machine's query/ingest plane.
    pub store: SsbStore,
    /// This shard's columnar partition (checksummed, scannable).
    pub fact: ColumnarFact,
    /// Namespace hosting replicas of peer shards' partitions.
    replica_ns: Namespace,
    /// Peer replicas hosted here: `(source shard, copy)`.
    pub replicas: Vec<(u32, ColumnarFact)>,
    /// Rows of the owned partition.
    pub rows: u64,
    /// Ground-truth Q1.1 partial over the owned partition, computed from
    /// the generated rows at load time — the committed data the cluster
    /// must never lose.
    pub committed: i64,
}

/// The Q1.1 predicate/aggregate over one projected tuple — the
/// committed-data witness the failover tests compare against.
fn q11_term(orderdate: u32, discount: u8, quantity: u8, extendedprice: u32) -> i64 {
    if (19930101..19940101).contains(&orderdate) && (1..=3).contains(&discount) && quantity < 25 {
        extendedprice as i64 * discount as i64
    } else {
        0
    }
}

impl ShardMachine {
    /// Build shard `shard`'s machine from its partition. `replica_bytes`
    /// sizes the namespace that will host peer replicas (the cluster
    /// passes the largest partition's footprint plus slack).
    pub fn build(shard: u32, part: &SsbData, sf: f64, replica_bytes: u64) -> Result<Self> {
        let store = SsbStore::load(part, sf, EngineMode::Aware, StorageDevice::PmemFsdax)?;
        let rows = part.lineorder.len() as u64;
        // Own columnar namespace: 30 B/row across 9 column regions + slack.
        let fact_ns = Namespace::devdax(SocketId(0), rows.max(1) * 64 + (4 << 20));
        let fact = ColumnarFact::load(&fact_ns, part)?;
        let committed = part
            .lineorder
            .iter()
            .map(|r| q11_term(r.orderdate, r.discount, r.quantity, r.extendedprice))
            .sum();
        Ok(ShardMachine {
            shard,
            store,
            fact,
            replica_ns: Namespace::devdax(SocketId(1), replica_bytes),
            replicas: Vec::new(),
            rows,
            committed,
        })
    }

    /// The namespace peer replicas land in.
    pub fn replica_ns(&self) -> &Namespace {
        &self.replica_ns
    }

    /// Install (or refresh) the hosted replica of `source`'s partition.
    pub fn host_replica(&mut self, source: u32, copy: ColumnarFact) {
        self.replicas.retain(|(s, _)| *s != source);
        self.replicas.push((source, copy));
    }

    /// Garbage-collect the hosted replica of `source` (the rejoin
    /// hand-back path: once the owner's shard is verified caught up, the
    /// extra copy re-replication made is redundant). Returns the bytes
    /// freed, or `None` if no such replica was hosted.
    pub fn drop_replica(&mut self, source: u32) -> Option<u64> {
        let index = self.replicas.iter().position(|(s, _)| *s == source)?;
        let (_, copy) = self.replicas.remove(index);
        Some(copy.total_bytes())
    }

    /// The hosted replica of shard `source`, if this machine carries one.
    pub fn replica_of(&self, source: u32) -> Option<&ColumnarFact> {
        self.replicas
            .iter()
            .find(|(s, _)| *s == source)
            .map(|(_, f)| f)
    }

    /// Bytes one Q1.1 partial scan over this machine's partition is
    /// priced at on the query plane. The demo data set is a miniature
    /// (sf ≈ 0.002), so each row stands in for `bytes_per_row` of the
    /// paper-scale table — that keeps per-shard service times large
    /// enough to be visible over the 10 µs interconnect, which is what
    /// the hedging experiments are about.
    pub fn virtual_scan_bytes(&self, bytes_per_row: u64) -> u64 {
        self.rows.max(1) * bytes_per_row.max(1)
    }

    /// Q1.1 partial aggregate over a columnar partition (4 threads; the
    /// per-thread partials sum associatively, so the result is
    /// scheduling-independent).
    pub fn q11_partial(fact: &ColumnarFact) -> i64 {
        fact.scan(
            Column::for_query(QueryId::Q1_1),
            4,
            || 0i64,
            |acc, t| *acc += q11_term(t.orderdate, t.discount, t.quantity, t.extendedprice),
        )
        .into_iter()
        .sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::partition::ShardMap;
    use pmem_ssb::datagen::generate;

    #[test]
    fn machine_partial_matches_committed_ground_truth() {
        let data = generate(0.002, 31);
        let parts = ShardMap::new(2).partition(&data);
        let m = ShardMachine::build(0, &parts[0], 0.002, 32 << 20).unwrap();
        assert_eq!(m.rows, parts[0].lineorder.len() as u64);
        assert_eq!(ShardMachine::q11_partial(&m.fact), m.committed);
        assert!(m.committed != 0, "predicate selects something at this sf");
    }

    #[test]
    fn hosted_replicas_replace_by_source() {
        let data = generate(0.001, 3);
        let parts = ShardMap::new(2).partition(&data);
        let mut host = ShardMachine::build(1, &parts[1], 0.001, 64 << 20).unwrap();
        let src = ShardMachine::build(0, &parts[0], 0.001, 32 << 20).unwrap();
        let copy1 = src.fact.replicate_to(host.replica_ns()).unwrap();
        let copy2 = src.fact.replicate_to(host.replica_ns()).unwrap();
        host.host_replica(0, copy1);
        host.host_replica(0, copy2);
        assert_eq!(host.replicas.len(), 1, "refresh replaces, never duplicates");
        assert!(host.replica_of(0).is_some());
        assert!(host.replica_of(1).is_none());

        let freed = host.drop_replica(0).expect("replica hosted");
        assert!(freed > 0, "GC reports the bytes it freed");
        assert!(host.replica_of(0).is_none(), "copy gone");
        assert_eq!(host.drop_replica(0), None, "double GC is a no-op");
    }
}

//! The gray-failure plane: fail-slow machines, graded demotion, and
//! hedged scatter-gather.
//!
//! A blackout is easy: nothing answers, any detector fires, the router
//! fails over. The expensive failure in a real PMEM fleet is the
//! machine that *keeps answering* — at a tenth of its service rate.
//! Every scatter-gather query waits for its slowest partial, so one
//! 10×-slow machine out of eight drags the entire fleet's tail; the
//! per-machine backlog compounds; and nothing binary ever trips. This
//! module runs that experiment end to end, deterministically:
//!
//! 1. **Fault.** A seeded [`FailSlowWindow`] (optionally plus seeded
//!    interconnect jitter, [`LinkPlan`]) degrades one machine's service
//!    rate — alive, answering, slow.
//! 2. **Detection.** The accrual detector ([`crate::detector`]) replays
//!    each shard's probe and completion streams into a
//!    [`HealthTimeline`]; a suspected shard is *demoted*, not written
//!    off — it keeps serving at reduced router weight while new ingest
//!    arrivals rebalance to its replica host (each paying the priced,
//!    possibly degraded interconnect), and it re-earns full weight when
//!    its score clears.
//! 3. **Hedging.** The query plane fans Q1.1 out every
//!    [`GrayConfig::query_interval`] seconds. A shard the detector has
//!    demoted gets a *tied* hedge (primary and ring-replica backup
//!    fired together); a healthy-looking straggler gets a *reactive*
//!    hedge once it outlives the hedge quantile of observed partial
//!    latencies. First result wins, the loser is cancelled on arrival
//!    of the cancel message, and exactly one partial per key range is
//!    ever summed — the aggregate must equal the committed ground truth
//!    on every query, hedged or not.
//!
//! Service times integrate piecewise over the fault plan (a scan that
//! straddles the fault onset slows mid-flight), each machine serves its
//! own partition and its hosted replicas on separate scan lanes
//! (matching the socket-0/socket-1 placement in
//! [`crate::machine::ShardMachine`]), and every draw is seeded — the
//! whole run replays bit for bit.

use std::collections::VecDeque;

use pmem_olap::planner::AccessPlanner;
use pmem_serve::{
    FanoutOutcome, JobSpec, Percentiles, QueryServer, ServeConfig, ShardRole, ShedReason,
};
use pmem_sim::faults::FaultPlan;
use pmem_sim::fleet::{FailSlowWindow, FleetFaultPlans, LinkPlan};
use pmem_sim::rng::splitmix64;
use pmem_sim::topology::Machine;
use pmem_store::Result;

use crate::cluster::Cluster;
use crate::detector::{DetectorMode, HealthState, HealthTimeline, Observation};
use crate::machine::ShardMachine;
use crate::partition::ShardMap;
use crate::report::GrayReport;

/// Sub-seed salt for the interconnect jitter stream, so link draws are
/// independent of every other consumer of the cluster seed.
const LINK_JITTER_SALT: u64 = 0x6c69_6e6b_6a69_7474;

/// Shape of one gray-failure experiment, layered on a built
/// [`Cluster`]: the injected fault, the query-plane cadence, and the
/// hedging switch. Detector behavior comes from the cluster's
/// [`crate::detector::DetectorConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayConfig {
    /// The fail-slow window to inject, or `None` for the healthy
    /// reference run.
    pub fail_slow: Option<FailSlowWindow>,
    /// Whether scatter-gather hedging is armed (the no-hedge baseline
    /// turns this off).
    pub hedging: bool,
    /// Virtual seconds between scatter-gather queries.
    pub query_interval: f64,
    /// Issue offset of the first query (de-phases the query grid from
    /// the probe grid).
    pub query_offset: f64,
    /// Virtual bytes each row stands in for on the query plane (the
    /// demo data set is a miniature; see
    /// [`ShardMachine::virtual_scan_bytes`]).
    pub bytes_per_row: u64,
    /// Per-query completion deadline as a multiple of the healthy
    /// fan-out estimate; deadline-met queries are the goodput.
    pub query_deadline_scale: f64,
    /// Seeded interconnect-jitter windows over the horizon (0 = clean
    /// link).
    pub link_windows: u32,
    /// Range a jitter window's latency multiplier is drawn from.
    pub link_latency_jitter: (f64, f64),
    /// Range a jitter window's bandwidth multiplier is drawn from.
    pub link_bandwidth_jitter: (f64, f64),
}

impl GrayConfig {
    /// The acceptance-suite shape: 1 ms query cadence (de-phased off
    /// the probe grid), 4 KiB virtual bytes per row, 4× deadline slack,
    /// two link-jitter windows, hedging on, no fault yet.
    pub fn demo() -> Self {
        GrayConfig {
            fail_slow: None,
            hedging: true,
            query_interval: 0.001,
            query_offset: 0.0004,
            bytes_per_row: 4 << 10,
            query_deadline_scale: 4.0,
            link_windows: 2,
            link_latency_jitter: (1.5, 3.0),
            link_bandwidth_jitter: (0.4, 0.9),
        }
    }

    /// Schedule machine `victim` to serve at `factor` of its rate over
    /// `[at, until)`.
    pub fn with_fail_slow(mut self, victim: u32, at: f64, until: f64, factor: f64) -> Self {
        self.fail_slow = Some(FailSlowWindow {
            machine: victim as usize,
            at,
            until,
            factor,
        });
        self
    }

    /// The no-hedge baseline.
    pub fn without_hedging(mut self) -> Self {
        self.hedging = false;
        self
    }

    /// The same experiment with the fault removed (the healthy
    /// reference the gates compare against).
    pub fn healthy(mut self) -> Self {
        self.fail_slow = None;
        self
    }
}

/// Piecewise-integrated finish time of a scan of `bytes` virtual bytes
/// starting at `start` on a machine whose service rate is `bw` scaled
/// by `plan`'s fault state: the scan slows mid-flight when a fault
/// window opens and speeds back up when it clears.
fn scan_finish(plan: &FaultPlan, machine: &Machine, start: f64, bytes: f64, bw: f64) -> f64 {
    let mut t = start;
    let mut remaining = bytes;
    loop {
        let rate = (bw * plan.state_at(machine, t).service_scale()).max(1e-3);
        let finish = t + remaining / rate;
        match plan.next_transition_after(t) {
            Some(boundary) if boundary < finish => {
                remaining -= (boundary - t) * rate;
                t = boundary;
            }
            _ => return finish,
        }
    }
}

/// Nearest-rank quantile over the observed-latency window, or `fallback`
/// while the window is still filling.
fn hedge_quantile(window: &VecDeque<f64>, quantile: f64, fallback: f64) -> f64 {
    if window.len() < 16 {
        return fallback;
    }
    let mut sorted: Vec<f64> = window.iter().copied().collect();
    sorted.sort_by(f64::total_cmp);
    let rank =
        ((quantile.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// FIFO scan-lane occupancy after a request that may have been
/// cancelled: if the cancel arrived before the request started, the
/// lane never saw it; otherwise the request holds the lane until the
/// cancel lands (or until it finished on its own, whichever is first).
fn lane_after_cancel(before: f64, start: f64, finish: f64, cancel_at: f64) -> f64 {
    if cancel_at <= start {
        before
    } else {
        finish.min(cancel_at).max(before)
    }
}

impl Cluster {
    /// Run one shard's ingest plan under `plan` and return its
    /// completion stream as detector observations. Ingress sheds (flow
    /// control) carry no service signal and are filtered, the same rule
    /// the cluster breaker replay uses.
    pub(crate) fn observe_shard(
        &self,
        shard: u32,
        plan: &FaultPlan,
        planner: &AccessPlanner,
    ) -> Result<Vec<Observation>> {
        let config = ServeConfig::surge(planner)
            .with_faults(plan.clone())
            .with_slo_classes(self.cfg.slo);
        let mut server = QueryServer::new(&self.machines[shard as usize].store, config);
        server.submit_all(self.shard_plan(shard, planner).jobs());
        let report = server.run()?;
        let mut observations: Vec<Observation> = report
            .jobs
            .iter()
            .filter(|j| {
                !matches!(
                    j.outcome,
                    pmem_serve::JobOutcome::Shed(ShedReason::QueueFull)
                        | pmem_serve::JobOutcome::Shed(ShedReason::RetryBudget)
                )
            })
            .map(|j| Observation {
                at: j.finished_at,
                latency: (j.finished_at - j.arrival).max(0.0),
                miss: !j.met_deadline(),
            })
            .collect();
        observations.sort_by(|a, b| a.at.total_cmp(&b.at));
        Ok(observations)
    }

    /// Replay the accrual detector against a blacked-out machine and
    /// return the virtual time it declares the machine dead. This is
    /// what replaces the `DETECT_DELAY` oracle in
    /// [`Cluster::run_with_lost_shard`]: the router is told nothing and
    /// still fails over, typically faster than the 5 ms oracle did.
    pub(crate) fn accrual_blackout_detect_at(&self, victim: u32, at: f64) -> Result<f64> {
        let cfg = self.cfg;
        let planner = AccessPlanner::paper_default();
        let machine = Machine::paper_default();
        let plan = FleetFaultPlans::healthy(cfg.shards as usize)
            .with_lost_machine(victim as usize, at, 10.0 * cfg.horizon.max(0.1))
            .plan(victim as usize);
        let terminals = self.observe_shard(victim, &plan, &planner)?;
        let scan_bw = Self::machine_scan_bw(&planner);
        let scan = self.machines[victim as usize]
            .virtual_scan_bytes(GrayConfig::demo().bytes_per_row) as f64
            / scan_bw.max(1.0);
        let rtt = 2.0 * cfg.interconnect.latency_seconds;
        let probe = |t: f64| rtt + scan / plan.state_at(&machine, t).service_scale().max(1e-9);
        let timeline = HealthTimeline::replay(
            &cfg.detector,
            cfg.horizon.max(at + 10.0 * cfg.detector.probe_interval),
            rtt + scan,
            probe,
            &terminals,
        );
        // A detector that somehow never fires falls back to the oracle
        // delay rather than never failing over.
        Ok(timeline.dead_at().unwrap_or(at + cfg.detector.oracle_delay))
    }

    /// Run one gray-failure experiment: detector-routed ingest plus the
    /// hedged scatter-gather query plane. See the module docs for the
    /// moving parts; every stream is seeded and the run replays bit for
    /// bit from `(ClusterConfig, GrayConfig)`.
    pub fn run_gray(&mut self, gray: &GrayConfig) -> Result<GrayReport> {
        let cfg = self.cfg;
        let det = cfg.detector;
        let planner = AccessPlanner::paper_default();
        let machine = Machine::paper_default();
        let shards = cfg.shards as usize;
        let link = LinkPlan::generate(
            splitmix64(cfg.seed ^ LINK_JITTER_SALT),
            cfg.horizon,
            gray.link_windows,
            gray.link_latency_jitter,
            gray.link_bandwidth_jitter,
        );

        let mut fleet = FleetFaultPlans::healthy(shards);
        if let Some(w) = gray.fail_slow {
            fleet = fleet.with_fail_slow(w.machine, w.at, w.until, w.factor);
        }
        let plans: Vec<FaultPlan> = (0..shards).map(|s| fleet.plan(s)).collect();

        // Query-plane pricing: each shard's partial scan in virtual
        // bytes, served at the planner's projected scan bandwidth.
        let scan_bw = Self::machine_scan_bw(&planner).max(1.0);
        let scan_secs: Vec<f64> = self
            .machines
            .iter()
            .map(|m| m.virtual_scan_bytes(gray.bytes_per_row) as f64 / scan_bw)
            .collect();
        let max_scan = scan_secs.iter().fold(0.0_f64, |a, &b| a.max(b));
        let healthy_rtt = 2.0 * cfg.interconnect.latency_seconds;

        // Detector replay per shard. The oracle only ever learns about
        // blackouts, so under a pure fail-slow fault it keeps every
        // timeline healthy — that blindness is the baseline.
        let mut timelines = Vec::with_capacity(shards);
        for s in 0..shards {
            if plans[s].is_empty() || det.mode == DetectorMode::Oracle {
                timelines.push(HealthTimeline::healthy());
                continue;
            }
            let terminals = self.observe_shard(s as u32, &plans[s], &planner)?;
            let plan = &plans[s];
            let probe = |t: f64| {
                2.0 * cfg.interconnect.latency_seconds_at(t, &link)
                    + scan_secs[s] / plan.state_at(&machine, t).service_scale().max(1e-9)
            };
            timelines.push(HealthTimeline::replay(
                &det,
                cfg.horizon,
                healthy_rtt + scan_secs[s],
                probe,
                &terminals,
            ));
        }

        // Ingest plane, pass 2: replay the arrivals with the detector's
        // graded weights. A demoted shard keeps `weight` of its new
        // arrivals; the rest rebalance to the replica host, paying the
        // (possibly jittered) interconnect for the payload hop.
        let mut routed: Vec<Vec<JobSpec>> = (0..shards)
            .map(|s| self.shard_plan(s as u32, &planner).jobs())
            .collect();
        let routed_counts: Vec<u64> = routed.iter().map(|v| v.len() as u64).collect();
        let mut rebalanced_from = vec![0u64; shards];
        let mut rebalanced_to = vec![0u64; shards];
        let mut transfer_in = vec![0.0_f64; shards];
        for s in 0..shards {
            if !timelines[s].ever_degraded() {
                continue;
            }
            let Some(peer) = self.map.replica_of(s as u32).filter(|_| cfg.replicate) else {
                continue;
            };
            let jobs = std::mem::take(&mut routed[s]);
            let mut stay = Vec::with_capacity(jobs.len());
            for (i, mut job) in jobs.into_iter().enumerate() {
                let weight = timelines[s].weight_at(job.arrival, &det);
                if weight >= 1.0 || ShardMap::rebalance_draw(cfg.seed, s as u32, i as u64) < weight
                {
                    stay.push(job);
                } else {
                    let hop =
                        cfg.interconnect
                            .transfer_seconds_at(cfg.unit_bytes, job.arrival, &link);
                    job.arrival += hop;
                    transfer_in[peer as usize] += hop;
                    rebalanced_from[s] += 1;
                    rebalanced_to[peer as usize] += 1;
                    routed[peer as usize].push(job);
                }
            }
            routed[s] = stay;
        }
        for (s, jobs) in routed.iter_mut().enumerate() {
            if rebalanced_to[s] > 0 {
                jobs.sort_by(|x, y| {
                    x.arrival
                        .total_cmp(&y.arrival)
                        .then(x.tenant.cmp(&y.tenant))
                });
            }
        }

        let mut per_shard = Vec::with_capacity(shards);
        for (s, shard_machine) in self.machines.iter().enumerate() {
            let config = ServeConfig::surge(&planner)
                .with_faults(plans[s].clone())
                .with_slo_classes(cfg.slo);
            let mut server = QueryServer::new(&shard_machine.store, config);
            server.submit_all(routed[s].iter().copied());
            let mut report = server.run()?;
            let weight_min = if timelines[s].dead_at().is_some() {
                0.0
            } else if timelines[s].suspected_at().is_some() {
                det.demoted_weight
            } else {
                1.0
            };
            report.fanout = Some(FanoutOutcome {
                shard: s as u32,
                role: if rebalanced_from[s] > 0 {
                    ShardRole::Demoted
                } else if rebalanced_to[s] > 0 {
                    ShardRole::Failover
                } else {
                    ShardRole::Primary
                },
                routed_jobs: routed_counts[s],
                rerouted_jobs: rebalanced_to[s],
                rebalanced_jobs: rebalanced_from[s],
                router_weight: weight_min,
                transfer_seconds: transfer_in[s],
            });
            per_shard.push(report);
        }
        let ingest_window_bytes: u64 = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed() && j.finished_at <= cfg.horizon)
            .map(|j| j.bytes)
            .sum();
        let ingest_samples: Vec<f64> = per_shard
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome.is_completed())
            .map(|j| (j.finished_at - j.arrival).max(0.0))
            .collect();

        // The query plane. Partial *values* are computed once per
        // source — the columnar data is static over the run (ingest is
        // priced in the virtual plane) — and the race decides which
        // copy's value is summed.
        let q11_primary: Vec<i64> = self
            .machines
            .iter()
            .map(|m| ShardMachine::q11_partial(&m.fact))
            .collect();
        let replica_host: Vec<Option<u32>> = (0..shards)
            .map(|s| {
                self.map
                    .replica_of(s as u32)
                    .filter(|_| cfg.replicate)
                    .filter(|peer| self.machines[*peer as usize].replica_of(s as u32).is_some())
            })
            .collect();
        let q11_replica: Vec<Option<i64>> = (0..shards)
            .map(|s| {
                replica_host[s].and_then(|peer| {
                    self.machines[peer as usize]
                        .replica_of(s as u32)
                        .map(ShardMachine::q11_partial)
                })
            })
            .collect();
        let total_vbytes: f64 = self
            .machines
            .iter()
            .map(|m| m.virtual_scan_bytes(gray.bytes_per_row) as f64)
            .sum();
        let fanout_estimate = healthy_rtt + max_scan;
        let query_deadline = gray.query_deadline_scale.max(1.0) * fanout_estimate;

        let mut own_lane = vec![0.0_f64; shards];
        let mut replica_lane = vec![0.0_f64; shards];
        let mut observed: VecDeque<f64> = VecDeque::with_capacity(det.hedge_window.max(1));
        let mut latencies = Vec::new();
        let mut queries = 0u64;
        let mut queries_met = 0u64;
        let mut good_bytes = 0.0_f64;
        let mut hedges_fired = 0u64;
        let mut hedges_tied = 0u64;
        let mut hedge_wins = 0u64;
        let mut hedges_cancelled = 0u64;
        let mut replica_partials = 0u64;
        let mut mismatched = 0u64;
        let mut counted_partials = 0u64;
        let mut transfer_seconds = 0.0_f64;

        let interval = gray.query_interval.max(1e-6);
        let mut q_t = gray.query_offset.max(0.0);
        while q_t < cfg.horizon {
            queries += 1;
            let mut aggregate = 0i64;
            let mut completion = q_t;
            for s in 0..shards {
                let one_way = |t: f64| cfg.interconnect.latency_seconds_at(t, &link);
                // Primary request to the owner, scanned on its own-fact
                // lane (socket 0).
                let arrive = q_t + one_way(q_t);
                let before = own_lane[s];
                let start = arrive.max(before);
                let finish = scan_finish(
                    &plans[s],
                    &machine,
                    start,
                    self.machines[s].virtual_scan_bytes(gray.bytes_per_row) as f64,
                    scan_bw,
                );
                let primary_resp = finish + one_way(finish);
                transfer_seconds += 2.0 * one_way(q_t);

                // Hedge decision: tied when the detector has the shard
                // off full weight at issue time, reactive when a
                // healthy-looking primary outlives the hedge quantile.
                let mut backup = None;
                if gray.hedging {
                    if let (Some(host), Some(partial)) = (replica_host[s], q11_replica[s]) {
                        let tied = timelines[s].state_at(q_t) != HealthState::Healthy;
                        let hedge_at = if tied {
                            q_t
                        } else {
                            q_t + det.hedge_scale
                                * hedge_quantile(&observed, det.hedge_quantile, fanout_estimate)
                        };
                        if tied || primary_resp > hedge_at {
                            let host = host as usize;
                            let b_arrive = hedge_at + one_way(hedge_at);
                            let b_before = replica_lane[host];
                            let b_start = b_arrive.max(b_before);
                            // The hosted replica scans on the host's
                            // replica lane (socket 1), at the host's rate.
                            let b_finish = scan_finish(
                                &plans[host],
                                &machine,
                                b_start,
                                self.machines[s].virtual_scan_bytes(gray.bytes_per_row) as f64,
                                scan_bw,
                            );
                            let b_resp = b_finish + one_way(b_finish);
                            transfer_seconds += 2.0 * one_way(hedge_at);
                            hedges_fired += 1;
                            if tied {
                                hedges_tied += 1;
                            }
                            backup = Some((host, partial, b_before, b_start, b_finish, b_resp));
                        }
                    }
                }

                // The race: first response wins, the router cancels the
                // loser, exactly one partial is summed.
                let winner_resp = match backup {
                    None => {
                        own_lane[s] = finish;
                        aggregate += q11_primary[s];
                        counted_partials += 1;
                        primary_resp
                    }
                    Some((host, partial, b_before, b_start, b_finish, b_resp)) => {
                        hedges_cancelled += 1;
                        if b_resp < primary_resp {
                            hedge_wins += 1;
                            replica_partials += 1;
                            aggregate += partial;
                            counted_partials += 1;
                            let cancel_at = b_resp + one_way(b_resp);
                            transfer_seconds += one_way(b_resp);
                            own_lane[s] = lane_after_cancel(before, start, finish, cancel_at);
                            replica_lane[host] = b_finish;
                            b_resp
                        } else {
                            aggregate += q11_primary[s];
                            counted_partials += 1;
                            let cancel_at = primary_resp + one_way(primary_resp);
                            transfer_seconds += one_way(primary_resp);
                            own_lane[s] = finish;
                            replica_lane[host] =
                                lane_after_cancel(b_before, b_start, b_finish, cancel_at);
                            primary_resp
                        }
                    }
                };
                completion = completion.max(winner_resp);
                if observed.len() == det.hedge_window.max(1) {
                    observed.pop_front();
                }
                observed.push_back((winner_resp - q_t).max(0.0));
            }
            let latency = (completion - q_t).max(0.0);
            latencies.push(latency);
            if latency <= query_deadline {
                queries_met += 1;
                good_bytes += total_vbytes;
            }
            if aggregate != self.reference {
                mismatched += 1;
            }
            q_t += interval;
        }

        let victim = gray.fail_slow.map(|w| w.machine).unwrap_or(usize::MAX);
        let victim_timeline = timelines.get(victim);
        let (victim_weight_min, victim_weight_end) = match victim_timeline {
            Some(tl) => {
                let min = if tl.dead_at().is_some() {
                    0.0
                } else if tl.suspected_at().is_some() {
                    det.demoted_weight
                } else {
                    1.0
                };
                (min, tl.weight_at(cfg.horizon, &det))
            }
            None => (1.0, 1.0),
        };

        Ok(GrayReport {
            shards: cfg.shards,
            fault: gray.fail_slow,
            mode: det.mode,
            hedging: gray.hedging,
            horizon: cfg.horizon,
            suspected_at: victim_timeline.and_then(HealthTimeline::suspected_at),
            dead_at: victim_timeline.and_then(HealthTimeline::dead_at),
            cleared_at: victim_timeline.and_then(HealthTimeline::cleared_at),
            victim_weight_min,
            victim_weight_end,
            rebalanced_jobs: rebalanced_from.iter().sum(),
            ingest_goodput_bytes_per_sec: ingest_window_bytes as f64 / cfg.horizon.max(1e-9),
            ingest_e2e: Percentiles::of(&ingest_samples),
            per_shard,
            queries,
            queries_met,
            query_deadline,
            query_goodput_bytes_per_sec: good_bytes / cfg.horizon.max(1e-9),
            query_latency: Percentiles::of(&latencies),
            query_latency_max: latencies.iter().fold(0.0_f64, |a, &b| a.max(b)),
            hedges_fired,
            hedges_tied,
            hedge_wins,
            hedges_cancelled,
            replica_partials,
            mismatched_queries: mismatched,
            double_counted: counted_partials.saturating_sub(queries * cfg.shards as u64),
            reference: self.reference,
            query_transfer_seconds: transfer_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finish_integrates_piecewise_over_the_fault_window() {
        let machine = Machine::paper_default();
        let bw = 1e9; // 1 GB/s for round numbers
        let healthy = FaultPlan::none();
        // 10 MB at 1 GB/s = 10 ms.
        let done = scan_finish(&healthy, &machine, 0.0, 10e6, bw);
        assert!((done - 0.01).abs() < 1e-12);

        // A 10x fail-slow window opening 5 ms in: half the bytes scan at
        // full rate, the rest at a tenth — 5 ms + 50 ms.
        let plan = FaultPlan::from_events(vec![pmem_sim::faults::FaultEvent {
            start: 0.005,
            end: 1.0,
            kind: pmem_sim::faults::FaultKind::FailSlow { factor: 0.1 },
        }]);
        let straddle = scan_finish(&plan, &machine, 0.0, 10e6, bw);
        assert!((straddle - 0.055).abs() < 1e-9, "got {straddle}");
        // Entirely inside the window: 10x the healthy time.
        let inside = scan_finish(&plan, &machine, 0.01, 10e6, bw);
        assert!((inside - 0.11).abs() < 1e-9);
        // A scan that outlives the window speeds back up at the close.
        let recover = FaultPlan::from_events(vec![pmem_sim::faults::FaultEvent {
            start: 0.0,
            end: 0.01,
            kind: pmem_sim::faults::FaultKind::FailSlow { factor: 0.1 },
        }]);
        let out = scan_finish(&recover, &machine, 0.0, 10e6, bw);
        // 1 ms of work done slow in the first 10 ms, 9 ms of work after.
        assert!((out - 0.019).abs() < 1e-9, "got {out}");
    }

    #[test]
    fn hedge_quantile_falls_back_until_the_window_fills() {
        let mut window = VecDeque::new();
        assert_eq!(hedge_quantile(&window, 0.95, 0.5), 0.5);
        for i in 0..64 {
            window.push_back(i as f64 / 100.0);
        }
        let q = hedge_quantile(&window, 0.95, 0.5);
        assert!((q - 0.60).abs() < 0.02, "p95 of 0..0.63: {q}");
        assert_eq!(hedge_quantile(&window, 1.0, 0.5), 0.63);
    }

    #[test]
    fn cancelled_losers_release_their_lane() {
        // Cancel lands before the loser starts: the lane never saw it.
        assert_eq!(lane_after_cancel(1.0, 2.0, 5.0, 1.5), 1.0);
        // Cancel lands mid-service: the lane frees at the cancel.
        assert_eq!(lane_after_cancel(1.0, 2.0, 5.0, 3.0), 3.0);
        // Cancel lands after the loser finished anyway.
        assert_eq!(lane_after_cancel(1.0, 2.0, 5.0, 9.0), 5.0);
    }
}

//! `pmem-cluster`: a shard router over N simulated PMEM machines.
//!
//! Everything below `pmem-cluster` models *one* calibrated dual-socket
//! Optane box. This crate scales that model out: SSB facts are
//! hash-partitioned by order key across N machines
//! ([`partition::ShardMap`]), each machine wraps its own store + serve
//! stack ([`machine::ShardMachine`]), and a router
//! ([`cluster::Cluster`]) fans queries out scatter-gather with partial
//! aggregation while ingest load is admitted per shard through the
//! existing planner.
//!
//! Robustness is the point of the design:
//!
//! * **Peer replication.** Every shard's columnar partition is copied to
//!   its successor shard (`ColumnarFact::replicate_to`), so a media
//!   error can be repaired from a *remote replica*
//!   (`ColumnarFact::repair_from_replica`) — not just the local
//!   checkpoint mirror — and a whole lost machine does not lose data.
//! * **Failover.** A seeded whole-machine blackout
//!   ([`pmem_sim::fleet::FleetFaultPlans::with_lost_machine`]) kills one
//!   shard mid-run; the router re-routes the dead shard's key range to
//!   its replica (arrivals pay the interconnect transfer), a per-shard
//!   circuit breaker ([`pmem_serve::CircuitBreaker`]) isolates the
//!   failure, and a background re-replication pass restores redundancy
//!   on a surviving peer.
//! * **Gray failures.** A machine that *keeps answering slowly* never
//!   trips a binary breaker, yet drags every scatter-gather query's tail
//!   behind its slowest partial. The accrual detector
//!   ([`detector::HealthTimeline`]) replays probe and completion streams
//!   into per-shard health scores — suspect → demote → (for true
//!   blackouts) dead — demotion is *graded* (reduced router weight, not
//!   exile; the shard re-earns full weight when its score clears), and
//!   the query plane ([`gray`]) hedges straggling partials to the ring
//!   replica over the priced interconnect, first result wins, loser
//!   cancelled, exactly one partial per key range ever counted.
//! * **Accounting.** [`report::ClusterReport`] carries fleet goodput,
//!   merged latency percentiles, per-shard [`pmem_serve::ServeReport`]s
//!   with fan-out outcomes, and the committed-vs-served aggregate that
//!   proves zero committed-data loss (or, with replication off,
//!   demonstrates the loss). [`report::GrayReport`] does the same for
//!   the gray plane: deadline-met query goodput, hedge/cancel counters,
//!   and the per-query aggregate-vs-ground-truth check that proves no
//!   partial was lost or double-counted.
//! * **Recovery.** Losses stop being terminal: a blacked-out machine
//!   rejoins after its window closes ([`recovery`]), scrubs its shard
//!   against the sealed checksums, catches up divergence from the ring
//!   replica through incremental anti-entropy (per-block hash exchange
//!   over the priced link, only divergent blocks shipped, verified on
//!   landing), re-earns traffic through the accrual detector's probe
//!   path (suspect → demoted weight → full weight), takes its key range
//!   back, and the extra replica re-replication made is GC'd. The same
//!   module's chaos runner stacks compositional fault schedules
//!   ([`pmem_sim::chaos`]) on the full stack and checks the standing
//!   invariants, for the `pmem-crashmc` fuzzer to search and shrink.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(clippy::unwrap_used)]

pub mod cluster;
pub mod detector;
pub mod gray;
pub mod machine;
pub mod partition;
pub mod recovery;
pub mod report;

pub use cluster::{Cluster, ClusterConfig};
pub use detector::{DetectorConfig, DetectorMode, HealthState, HealthTimeline, Observation};
pub use gray::GrayConfig;
pub use machine::ShardMachine;
pub use partition::ShardMap;
pub use recovery::RecoveryConfig;
pub use report::{
    ChaosReport, ClusterReport, GrayReport, RecoveryReport, ScatterGather, ShardOutcome,
};

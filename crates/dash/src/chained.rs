//! A deliberately PMEM-*unaware* chained hash table.
//!
//! This is the contrast structure for the paper's Hyrise experiment (§6.1):
//! a textbook bucket-array + linked-list hash map that is perfectly
//! reasonable on DRAM and pathological on PMEM. Every probe chases 24-byte
//! nodes at random offsets — far below Optane's 256 B granularity, so each
//! hop is an amplified random read. The paper found exactly this pattern
//! ("hash-operations take over 90 % of the execution time") responsible for
//! Hyrise's 5.3× PMEM slowdown.
//!
//! It is also persistence-unaware: plain stores, no flushes — on PMEM it
//! would not recover from a crash, just like a volatile structure `mmap`ed
//! onto App Direct memory.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;
use pmem_store::alloc::Arena;
use pmem_store::{AccessHint, Namespace, Region, Result};

use crate::hash::hash64;
use crate::KvIndex;

/// Node layout: key (8) | value (8) | next (8, offset+1, 0 = nil).
const NODE_SIZE: u64 = 24;
/// Grow the bucket array when chains average above this length.
const MAX_LOAD: usize = 3;

struct Inner {
    heads: Region,
    nodes: Region,
    arena: Arena,
    bucket_count: u64,
    free_head: u64, // offset+1 of first freed node, 0 = none
}

/// The PMEM-unaware chained hash table.
pub struct ChainedTable {
    ns: Namespace,
    inner: RwLock<Inner>,
    len: AtomicUsize,
}

impl ChainedTable {
    /// Table sized for ~1k records (grows by rehashing).
    pub fn new(ns: &Namespace) -> Result<Self> {
        Self::with_capacity(ns, 1024)
    }

    /// Table pre-sized for `records` entries.
    pub fn with_capacity(ns: &Namespace, records: usize) -> Result<Self> {
        let bucket_count = (records.max(16) as u64 / 2).next_power_of_two();
        let heads = ns.alloc_region(bucket_count * 8)?;
        let node_bytes = (records.max(16) as u64 * 2) * NODE_SIZE;
        let nodes = ns.alloc_region(node_bytes)?;
        Ok(ChainedTable {
            ns: ns.clone(),
            inner: RwLock::new(Inner {
                heads,
                nodes,
                arena: Arena::new(node_bytes),
                bucket_count,
                free_head: 0,
            }),
            len: AtomicUsize::new(0),
        })
    }

    /// Number of buckets (diagnostic).
    pub fn bucket_count(&self) -> u64 {
        self.inner.read().bucket_count
    }

    /// Simulate a power loss (chaos-testing hook). This table never
    /// flushes, so everything written since creation is lost — the
    /// PMEM-unaware failure mode.
    pub fn simulate_crash(&self) -> u64 {
        let mut inner = self.inner.write();
        let lost = inner.heads.crash() + inner.nodes.crash();
        self.len.store(0, Ordering::Relaxed);
        lost
    }
}

impl Inner {
    fn bucket_of(&self, key: u64) -> u64 {
        hash64(key) & (self.bucket_count - 1)
    }

    fn head(&self, bucket: u64) -> u64 {
        self.heads.read_u64(bucket * 8, AccessHint::Random)
    }

    fn set_head(&mut self, bucket: u64, link: u64) {
        self.heads
            .try_write(bucket * 8, &link.to_le_bytes(), AccessHint::Random)
            .expect("head in bounds");
    }

    fn node(&self, link: u64) -> (u64, u64, u64) {
        debug_assert_ne!(link, 0);
        let off = link - 1;
        // One pointer-chasing hop: a 24 B random read, the PMEM-hostile
        // pattern this structure exists to demonstrate.
        let bytes = self.nodes.read(off, NODE_SIZE, AccessHint::Random);
        (
            u64::from_le_bytes(bytes[0..8].try_into().expect("8")),
            u64::from_le_bytes(bytes[8..16].try_into().expect("8")),
            u64::from_le_bytes(bytes[16..24].try_into().expect("8")),
        )
    }

    fn write_node(&mut self, link: u64, key: u64, value: u64, next: u64) {
        let off = link - 1;
        let mut buf = [0u8; NODE_SIZE as usize];
        buf[0..8].copy_from_slice(&key.to_le_bytes());
        buf[8..16].copy_from_slice(&value.to_le_bytes());
        buf[16..24].copy_from_slice(&next.to_le_bytes());
        self.nodes
            .try_write(off, &buf, AccessHint::Random)
            .expect("node in bounds");
    }

    fn set_node_value(&mut self, link: u64, value: u64) {
        self.nodes
            .try_write(link - 1 + 8, &value.to_le_bytes(), AccessHint::Random)
            .expect("node in bounds");
    }

    fn set_node_next(&mut self, link: u64, next: u64) {
        self.nodes
            .try_write(link - 1 + 16, &next.to_le_bytes(), AccessHint::Random)
            .expect("node in bounds");
    }

    fn alloc_node(&mut self, ns: &Namespace) -> Result<u64> {
        if self.free_head != 0 {
            let link = self.free_head;
            let (_, _, next) = self.node(link);
            self.free_head = next;
            return Ok(link);
        }
        match self.arena.alloc(NODE_SIZE, 8) {
            Ok(off) => Ok(off + 1),
            Err(pmem_store::StoreError::OutOfSpace { .. }) => {
                self.grow_nodes(ns)?;
                Ok(self.arena.alloc(NODE_SIZE, 8)? + 1)
            }
            Err(e) => Err(e),
        }
    }

    /// Double the node storage, copying existing nodes so offsets stay
    /// valid (accounted as the sequential copy a real rehash performs).
    fn grow_nodes(&mut self, ns: &Namespace) -> Result<()> {
        let old_len = self.nodes.len();
        let new_len = old_len * 2;
        let mut new_nodes = ns.alloc_region(new_len)?;
        let bytes = self.nodes.read(0, old_len, AccessHint::Sequential).to_vec();
        new_nodes.try_write(0, &bytes, AccessHint::Sequential)?;
        self.nodes = new_nodes;
        self.arena.grow(new_len);
        ns.release(old_len);
        Ok(())
    }

    fn rehash(&mut self, ns: &Namespace) -> Result<()> {
        let new_count = self.bucket_count * 2;
        let new_heads = ns.alloc_region(new_count * 8)?;
        let old_heads = std::mem::replace(&mut self.heads, new_heads);
        let old_count = self.bucket_count;
        self.bucket_count = new_count;
        for b in 0..old_count {
            let mut link = old_heads.read_u64(b * 8, AccessHint::Sequential);
            while link != 0 {
                let (key, _, next) = self.node(link);
                let nb = self.bucket_of(key);
                let nh = self.head(nb);
                self.set_node_next(link, nh);
                self.set_head(nb, link);
                link = next;
            }
        }
        ns.release(old_count * 8);
        Ok(())
    }
}

impl KvIndex for ChainedTable {
    fn insert(&self, key: u64, value: u64) -> Result<()> {
        let mut inner = self.inner.write();
        let bucket = inner.bucket_of(key);
        let head = inner.head(bucket);
        // Walk the chain looking for the key.
        let mut link = head;
        while link != 0 {
            let (k, _, next) = inner.node(link);
            if k == key {
                inner.set_node_value(link, value);
                return Ok(());
            }
            link = next;
        }
        let node = inner.alloc_node(&self.ns)?;
        inner.write_node(node, key, value, head);
        inner.set_head(bucket, node);
        let len = self.len.fetch_add(1, Ordering::Relaxed) + 1;
        if len > inner.bucket_count as usize * MAX_LOAD {
            inner.rehash(&self.ns)?;
        }
        Ok(())
    }

    fn get(&self, key: u64) -> Option<u64> {
        let inner = self.inner.read();
        let mut link = inner.head(inner.bucket_of(key));
        while link != 0 {
            let (k, v, next) = inner.node(link);
            if k == key {
                return Some(v);
            }
            link = next;
        }
        None
    }

    fn remove(&self, key: u64) -> Option<u64> {
        let mut inner = self.inner.write();
        let bucket = inner.bucket_of(key);
        let mut prev = 0u64;
        let mut link = inner.head(bucket);
        while link != 0 {
            let (k, v, next) = inner.node(link);
            if k == key {
                if prev == 0 {
                    inner.set_head(bucket, next);
                } else {
                    inner.set_node_next(prev, next);
                }
                // Push onto the free list.
                let free = inner.free_head;
                inner.set_node_next(link, free);
                inner.free_head = link;
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(v);
            }
            prev = link;
            link = next;
        }
        None
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use pmem_sim::topology::SocketId;

    fn ns(mib: u64) -> Namespace {
        Namespace::devdax(SocketId(0), mib << 20)
    }

    #[test]
    fn basic_crud() {
        let ns = ns(8);
        let t = ChainedTable::new(&ns).unwrap();
        t.insert(1, 10).unwrap();
        t.insert(2, 20).unwrap();
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), Some(20));
        assert_eq!(t.get(99), None);
        t.insert(1, 11).unwrap();
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(2), Some(20));
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_by_rehash_and_keeps_everything() {
        let ns = ns(64);
        let t = ChainedTable::with_capacity(&ns, 64).unwrap();
        let before = t.bucket_count();
        for k in 0..20_000u64 {
            t.insert(k, k * 7).unwrap();
        }
        assert!(t.bucket_count() > before, "should have rehashed");
        for k in 0..20_000u64 {
            assert_eq!(t.get(k), Some(k * 7), "key {k}");
        }
    }

    #[test]
    fn removal_in_middle_of_chain_and_node_reuse() {
        let ns = ns(8);
        let t = ChainedTable::with_capacity(&ns, 16).unwrap();
        // Few buckets → long chains guaranteed.
        for k in 0..30u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..30u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k));
        }
        for k in 0..30u64 {
            assert_eq!(t.get(k), (k % 2 == 1).then_some(k), "key {k}");
        }
        // Freed nodes are reused: inserts succeed without growing the arena.
        for k in 100..115u64 {
            t.insert(k, k).unwrap();
        }
        for k in 100..115u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn probes_generate_small_random_reads() {
        // The accounting signature that makes this table slow on PMEM.
        let ns = ns(8);
        let t = ChainedTable::with_capacity(&ns, 1024).unwrap();
        for k in 0..1024u64 {
            t.insert(k, k).unwrap();
        }
        let before = ns.tracker().snapshot();
        for k in 0..1024u64 {
            t.get(k);
        }
        let delta = ns.tracker().snapshot().since(&before);
        assert_eq!(delta.seq_read_bytes, 0, "probes must be random reads");
        let mean = delta.rand_read_bytes as f64 / delta.read_ops as f64;
        assert!(
            mean < 32.0,
            "mean probe granule should be sub-cacheline, got {mean}"
        );
    }

    #[test]
    fn unaware_table_loses_data_on_crash() {
        // Contrast with Dash's crash-consistent publication order.
        let ns = ns(8);
        let t = ChainedTable::new(&ns).unwrap();
        t.insert(5, 50).unwrap();
        {
            let mut inner = t.inner.write();
            inner.heads.crash();
            inner.nodes.crash();
        }
        assert_eq!(t.get(5), None, "plain stores must not survive a crash");
    }
}

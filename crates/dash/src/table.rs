//! The extendible-hashing directory tying segments into a table.
//!
//! The directory maps the low `global_depth` hash bits to segments. A full
//! segment splits into two with `local_depth + 1`; when a segment is
//! already at the global depth, the directory doubles first. Concurrency is
//! directory-read + segment-write for normal operations and directory-write
//! for splits — coarse but correct, and segment operations dominate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use pmem_store::{Namespace, Result};

use crate::hash::{self, hash64};
use crate::segment::{Segment, SegmentInsert};
use crate::KvIndex;

/// Directory state.
struct Directory {
    global_depth: u8,
    entries: Vec<Arc<Segment>>,
}

/// Structural statistics of a [`DashTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DashStats {
    /// Live records.
    pub records: usize,
    /// Distinct segments.
    pub segments: usize,
    /// Directory slots (≥ segments; twins share a segment until split).
    pub directory_entries: usize,
    /// Extendible-hashing global depth.
    pub global_depth: u8,
    /// Smallest local depth across segments.
    pub min_local_depth: u8,
    /// Records living in stash (overflow) buckets.
    pub stash_records: u64,
    /// Records / theoretical slot capacity.
    pub load_factor: f64,
    /// PMEM bytes held by segments.
    pub bytes: u64,
}

/// What [`DashTable::crash_recover`] found and fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DashRecovery {
    /// Segments swept.
    pub segments: usize,
    /// Stale duplicate copies persistently cleared.
    pub duplicates_repaired: usize,
    /// Live records after recovery.
    pub records: usize,
}

/// A Dash-style extendible hash table on persistent memory.
pub struct DashTable {
    ns: Namespace,
    dir: RwLock<Directory>,
    len: AtomicUsize,
}

impl DashTable {
    /// Create a table with a single segment (global depth 0).
    pub fn new(ns: &Namespace) -> Result<Self> {
        Self::with_initial_depth(ns, 0)
    }

    /// Create a table pre-sized with `2^depth` segments — avoids split
    /// storms when the final cardinality is known (e.g. SSB dimension
    /// tables).
    pub fn with_initial_depth(ns: &Namespace, depth: u8) -> Result<Self> {
        assert!(
            depth <= 28,
            "directory of 2^{depth} entries is unreasonable"
        );
        let count = 1usize << depth;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(Arc::new(Segment::new(ns, depth)?));
        }
        Ok(DashTable {
            ns: ns.clone(),
            dir: RwLock::new(Directory {
                global_depth: depth,
                entries,
            }),
            len: AtomicUsize::new(0),
        })
    }

    /// Pick an initial depth for an expected number of records.
    pub fn with_capacity(ns: &Namespace, records: usize) -> Result<Self> {
        let per_segment = (crate::segment::SegmentInner::capacity() as f64 * 0.7) as usize;
        let mut depth = 0u8;
        while (1usize << depth) * per_segment < records && depth < 28 {
            depth += 1;
        }
        Self::with_initial_depth(ns, depth)
    }

    /// Current directory size (diagnostic).
    pub fn directory_size(&self) -> usize {
        self.dir.read().entries.len()
    }

    /// Current global depth (diagnostic).
    pub fn global_depth(&self) -> u8 {
        self.dir.read().global_depth
    }

    fn insert_inner(&self, key: u64, value: u64) -> Result<()> {
        let h = hash64(key);
        loop {
            let full_segment = {
                let dir = self.dir.read();
                let idx = hash::dir_index(h, dir.global_depth);
                let segment = Arc::clone(&dir.entries[idx]);
                let mut inner = segment.write();
                match inner.insert(h, key, value) {
                    SegmentInsert::Inserted => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                    SegmentInsert::Updated => return Ok(()),
                    SegmentInsert::NeedsSplit => Arc::as_ptr(&segment),
                }
            };
            // Split outside of the read lock, then retry.
            self.split(h, full_segment)?;
        }
    }

    /// Split the segment responsible for hash `h`, unless another thread
    /// already replaced it (`expected` no longer matches).
    fn split(&self, h: u64, expected: *const Segment) -> Result<()> {
        let mut dir = self.dir.write();
        let idx = hash::dir_index(h, dir.global_depth);
        let old = Arc::clone(&dir.entries[idx]);
        if Arc::as_ptr(&old) != expected {
            return Ok(()); // concurrent split already handled it
        }
        let old_inner = old.write();
        let local = old_inner.local_depth;

        if local == dir.global_depth {
            // Double the directory: entry i gains a twin at i + 2^depth.
            let entries = dir.entries.clone();
            dir.entries.extend(entries);
            dir.global_depth += 1;
        }

        let new_depth = local + 1;
        let zero = Arc::new(Segment::new(&self.ns, new_depth)?);
        let one = Arc::new(Segment::new(&self.ns, new_depth)?);
        {
            let mut z = zero.write();
            let mut o = one.write();
            for (k, v) in old_inner.records() {
                let kh = hash64(k);
                let bit = (kh >> local) & 1;
                let target = if bit == 0 { &mut *z } else { &mut *o };
                match target.insert(kh, k, v) {
                    SegmentInsert::Inserted => {}
                    // A single split cannot overflow a fresh segment: the
                    // parent held ≤ capacity records.
                    other => unreachable!("split re-insert failed: {other:?}"),
                }
            }
        }

        // Rewire every directory entry that pointed at the old segment.
        let stride = 1usize << local;
        let base = idx & (stride - 1);
        let mut slot = base;
        while slot < dir.entries.len() {
            let bit = (slot >> local) & 1;
            dir.entries[slot] = if bit == 0 {
                Arc::clone(&zero)
            } else {
                Arc::clone(&one)
            };
            slot += stride;
        }
        Ok(())
    }

    /// Structural statistics (diagnostics and sizing).
    pub fn stats(&self) -> DashStats {
        let dir = self.dir.read();
        let mut seen: Vec<*const Segment> = Vec::new();
        let mut records = 0usize;
        let mut stash_records = 0u64;
        let mut min_depth = u8::MAX;
        for seg in &dir.entries {
            let ptr = Arc::as_ptr(seg);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            let inner = seg.read();
            records += inner.count;
            stash_records += inner.stash_used as u64;
            min_depth = min_depth.min(inner.local_depth);
        }
        let segments = seen.len();
        DashStats {
            records,
            segments,
            directory_entries: dir.entries.len(),
            global_depth: dir.global_depth,
            min_local_depth: if segments == 0 { 0 } else { min_depth },
            stash_records,
            load_factor: records as f64
                / (segments * crate::segment::SegmentInner::capacity()).max(1) as f64,
            bytes: segments as u64 * crate::segment::SEGMENT_BYTES,
        }
    }

    /// Simulate a power loss across every segment: lines not yet accepted
    /// into the WPQ revert to their last persisted image (chaos-testing
    /// hook; see `pmem_store::Region::crash`). Dash's publication order
    /// guarantees no half-visible records afterwards.
    pub fn simulate_crash(&self) -> u64 {
        let dir = self.dir.write();
        let mut seen: Vec<*const Segment> = Vec::new();
        let mut lost = 0;
        for seg in &dir.entries {
            let ptr = Arc::as_ptr(seg);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            lost += seg.write().region.crash();
        }
        lost
    }

    /// Recount live records after a crash (the persisted truth may differ
    /// from the in-memory counter for unfenced inserts).
    pub fn recount(&self) -> usize {
        let n = self.iter_records().len();
        self.len.store(n, Ordering::Relaxed);
        n
    }

    /// Post-crash recovery: sweep every segment for interrupted
    /// displacements (the same record live in both buckets of its home
    /// pair) and rebuild the live counters from the persisted buckets.
    /// Must run before serving operations after a power loss — a surviving
    /// duplicate would otherwise outlive its own removal and resurrect
    /// deleted data (see `SegmentInner::repair_duplicates`).
    pub fn crash_recover(&self) -> DashRecovery {
        let dir = self.dir.write();
        let mut seen: Vec<*const Segment> = Vec::new();
        let mut duplicates_repaired = 0usize;
        let mut records = 0usize;
        for seg in &dir.entries {
            let ptr = Arc::as_ptr(seg);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            let mut inner = seg.write();
            duplicates_repaired += inner.repair_duplicates();
            inner.recount();
            records += inner.count;
        }
        self.len.store(records, Ordering::Relaxed);
        DashRecovery {
            segments: seen.len(),
            duplicates_repaired,
            records,
        }
    }

    /// Iterate all records (snapshot per segment; used by tests and the SSB
    /// build verification).
    pub fn iter_records(&self) -> Vec<(u64, u64)> {
        let dir = self.dir.read();
        let mut seen: Vec<*const Segment> = Vec::new();
        let mut out = Vec::new();
        for seg in &dir.entries {
            let ptr = Arc::as_ptr(seg);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            out.extend(seg.read().records());
        }
        out
    }
}

impl KvIndex for DashTable {
    fn insert(&self, key: u64, value: u64) -> Result<()> {
        self.insert_inner(key, value)
    }

    fn get(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let dir = self.dir.read();
        let idx = hash::dir_index(h, dir.global_depth);
        let segment = Arc::clone(&dir.entries[idx]);
        drop(dir);
        let inner = segment.read();
        inner.get(h, key)
    }

    fn remove(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let dir = self.dir.read();
        let idx = hash::dir_index(h, dir.global_depth);
        let segment = Arc::clone(&dir.entries[idx]);
        let mut inner = segment.write();
        let removed = inner.remove(h, key);
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use pmem_sim::topology::SocketId;

    fn ns(mib: u64) -> Namespace {
        Namespace::devdax(SocketId(0), mib << 20)
    }

    #[test]
    fn basic_crud() {
        let ns = ns(8);
        let t = DashTable::new(&ns).unwrap();
        assert!(t.is_empty());
        t.insert(1, 100).unwrap();
        t.insert(2, 200).unwrap();
        assert_eq!(t.get(1), Some(100));
        assert_eq!(t.get(2), Some(200));
        assert_eq!(t.get(3), None);
        assert_eq!(t.len(), 2);
        t.insert(1, 101).unwrap();
        assert_eq!(t.get(1), Some(101));
        assert_eq!(t.len(), 2, "update must not grow len");
        assert_eq!(t.remove(1), Some(101));
        assert_eq!(t.remove(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_through_many_splits() {
        let ns = ns(256);
        let t = DashTable::new(&ns).unwrap();
        let n = 50_000u64;
        for k in 0..n {
            t.insert(k, k.wrapping_mul(3)).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.global_depth() >= 5, "depth {}", t.global_depth());
        for k in 0..n {
            assert_eq!(t.get(k), Some(k.wrapping_mul(3)), "key {k}");
        }
        assert_eq!(t.get(n + 1), None);
    }

    #[test]
    fn presized_table_avoids_splits() {
        let ns = ns(256);
        let t = DashTable::with_capacity(&ns, 20_000).unwrap();
        let before = t.directory_size();
        for k in 0..20_000u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(
            t.directory_size(),
            before,
            "presized table should not split"
        );
    }

    #[test]
    fn iter_records_matches_len() {
        let ns = ns(64);
        let t = DashTable::new(&ns).unwrap();
        for k in 0..5_000u64 {
            t.insert(k, k + 7).unwrap();
        }
        let recs = t.iter_records();
        assert_eq!(recs.len(), t.len());
        assert!(recs.iter().all(|(k, v)| *v == k + 7));
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let ns = ns(256);
        let t = Arc::new(DashTable::new(&ns).unwrap());
        let threads = 8;
        let per = 4_000u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per {
                        let k = tid * per + i;
                        t.insert(k, k * 2).unwrap();
                        assert_eq!(t.get(k), Some(k * 2));
                    }
                });
            }
        });
        assert_eq!(t.len(), (threads * per) as usize);
        for k in 0..threads * per {
            assert_eq!(t.get(k), Some(k * 2));
        }
    }

    #[test]
    fn stats_reflect_structure_and_load() {
        let ns = ns(256);
        let t = DashTable::new(&ns).unwrap();
        let empty = t.stats();
        assert_eq!(empty.records, 0);
        assert_eq!(empty.segments, 1);
        assert_eq!(empty.global_depth, 0);
        for k in 0..30_000u64 {
            t.insert(k, k).unwrap();
        }
        let full = t.stats();
        assert_eq!(full.records, 30_000);
        assert!(full.segments > 16, "segments {}", full.segments);
        assert!(full.directory_entries >= full.segments);
        assert!(
            (0.3..0.95).contains(&full.load_factor),
            "load factor {}",
            full.load_factor
        );
        assert!(full.min_local_depth <= full.global_depth);
        assert_eq!(
            full.bytes,
            full.segments as u64 * crate::segment::SEGMENT_BYTES
        );
    }

    #[test]
    fn crash_recover_sweeps_duplicates_and_recounts() {
        let ns = ns(64);
        let t = DashTable::new(&ns).unwrap();
        for k in 0..200u64 {
            t.insert(k, k + 1).unwrap();
        }
        // Plant an interrupted displacement in whichever segment owns the
        // key, exactly as a crash in the displacement window would.
        let key = 7777u64;
        let h = hash64(key);
        {
            let dir = t.dir.read();
            let idx = hash::dir_index(h, dir.global_depth);
            let seg = Arc::clone(&dir.entries[idx]);
            drop(dir);
            let mut inner = seg.write();
            assert_eq!(inner.insert(h, key, 1), SegmentInsert::Inserted);
            let b = hash::bucket_index(h, crate::segment::BUCKETS);
            let n = (b + 1) % crate::segment::BUCKETS;
            let fp = hash::fingerprint(h);
            let off = |bkt: u32| bkt as u64 * crate::bucket::BUCKET_BYTES;
            let to = if crate::bucket::load(&inner.region, off(b))
                .find(fp, key)
                .is_some()
            {
                n
            } else {
                b
            };
            let free = crate::bucket::load(&inner.region, off(to))
                .free_slot()
                .unwrap();
            crate::bucket::publish(&mut inner.region, off(to), free, fp, key, 1);
        }
        let report = t.crash_recover();
        assert_eq!(report.duplicates_repaired, 1);
        assert_eq!(report.records, 201);
        assert_eq!(t.len(), 201);
        assert_eq!(t.remove(key), Some(1));
        assert_eq!(t.get(key), None, "removal must be final after recovery");
    }

    #[test]
    fn out_of_space_surfaces_as_error() {
        let tiny = Namespace::devdax(SocketId(0), 64 << 10); // one segment fits, splits don't
        let t = DashTable::new(&tiny).unwrap();
        let mut err = None;
        for k in 0..100_000u64 {
            if let Err(e) = t.insert(k, k) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(
            err,
            Some(pmem_store::StoreError::OutOfSpace { .. })
        ));
    }
}

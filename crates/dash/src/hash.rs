//! Hash-bit carving for the extendible directory, bucket choice, and
//! fingerprints.
//!
//! One 64-bit hash feeds three independent consumers:
//!
//! * the **low bits** index the segment directory (extendible hashing),
//! * bits 32.. pick the bucket within a segment,
//! * bits 56.. form the 1-byte fingerprint stored next to each slot.
//!
//! Keeping the bit ranges disjoint matters: directory doubling must not
//! reshuffle in-bucket placement, and fingerprints must stay independent of
//! the bucket index or false-positive rates spike.

/// A Fibonacci/xor mix — cheap, statistically solid for integer keys, and
/// deterministic across runs (no per-process seeding, so layouts are
/// reproducible in tests and benches).
#[inline]
pub fn hash64(key: u64) -> u64 {
    let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 32;
    h
}

/// Directory slot for a hash under `global_depth` (low bits).
#[inline]
pub fn dir_index(hash: u64, global_depth: u8) -> usize {
    if global_depth == 0 {
        0
    } else {
        (hash & ((1u64 << global_depth) - 1)) as usize
    }
}

/// Bucket index within a segment of `buckets` buckets (bits 32..).
#[inline]
pub fn bucket_index(hash: u64, buckets: u32) -> u32 {
    ((hash >> 32) % buckets as u64) as u32
}

/// 1-byte fingerprint (bits 56..). Zero is reserved for "empty slot", so
/// the fingerprint is forced non-zero.
#[inline]
pub fn fingerprint(hash: u64) -> u8 {
    let fp = (hash >> 56) as u8;
    if fp == 0 {
        1
    } else {
        fp
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn hash_is_deterministic_and_mixing() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(1), hash64(2));
        // Consecutive keys should not land in consecutive directory slots
        // for all depths (i.e. low bits actually mixed).
        let collisions = (0..1000u64)
            .filter(|k| dir_index(hash64(*k), 8) == dir_index(hash64(k + 1), 8))
            .count();
        assert!(collisions < 50, "low bits badly mixed: {collisions}");
    }

    #[test]
    fn dir_index_respects_depth() {
        let h = hash64(7);
        assert_eq!(dir_index(h, 0), 0);
        assert!(dir_index(h, 4) < 16);
        // Deeper depth refines, never contradicts, the shallow index.
        assert_eq!(dir_index(h, 4), dir_index(h, 8) & 0xF);
    }

    #[test]
    fn bucket_index_in_range_and_independent_of_dir_bits() {
        for k in 0..1000u64 {
            let h = hash64(k);
            assert!(bucket_index(h, 64) < 64);
        }
        // Keys sharing low bits must not all share a bucket.
        let same_dir: Vec<u64> = (0..4000u64)
            .map(hash64)
            .filter(|h| dir_index(*h, 4) == 3)
            .collect();
        let first_bucket = bucket_index(same_dir[0], 64);
        assert!(
            same_dir
                .iter()
                .any(|h| bucket_index(*h, 64) != first_bucket),
            "bucket index must be independent of directory bits"
        );
    }

    #[test]
    fn fingerprint_is_never_zero() {
        for k in 0..10_000u64 {
            assert_ne!(fingerprint(hash64(k)), 0);
        }
        assert_eq!(fingerprint(0), 1); // hash that would produce 0
    }

    #[test]
    fn fingerprints_spread() {
        let mut seen = [0u32; 256];
        for k in 0..10_000u64 {
            seen[fingerprint(hash64(k)) as usize] += 1;
        }
        let max = *seen.iter().max().unwrap();
        assert!(max < 200, "fingerprint distribution too skewed: {max}");
    }
}

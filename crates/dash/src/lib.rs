//! # pmem-dash — a Dash-style hash index on persistent memory
//!
//! The paper's handcrafted SSB joins use **Dash** (Lu et al., VLDB 2020), a
//! PMEM-optimized extendible hash table. This crate implements the same
//! design points on top of [`pmem-store`](pmem_store) regions:
//!
//! * **256 B buckets** aligned to Optane's XPLine granularity, so one bucket
//!   probe costs exactly one media access (the paper's Insight #12 —
//!   "recent PMEM data structures work on internal 256 Byte access
//!   granularity").
//! * **Fingerprints**: a 1-byte hash per slot checked before touching keys,
//!   so most negative probes never read the record area.
//! * **Balanced inserts + displacement**: a record may live in its home
//!   bucket or the neighbour; inserts fill the emptier of the two and
//!   displace neighbours before splitting.
//! * **Stash buckets** absorb overflow, delaying expensive segment splits.
//! * **Crash-consistent ordering**: records are written and persisted
//!   *before* the slot-visibility bit, so a crash never exposes a
//!   half-written record.
//!
//! For the Hyrise contrast (paper §6.1), [`chained::ChainedTable`] provides
//! a deliberately PMEM-*unaware* chained hash table whose pointer chasing
//! generates the small random reads that make hash joins slow on PMEM.
//!
//! ```
//! use pmem_dash::{DashTable, KvIndex};
//! use pmem_store::Namespace;
//! use pmem_sim::topology::SocketId;
//!
//! let ns = Namespace::devdax(SocketId(0), 32 << 20);
//! let table = DashTable::new(&ns).unwrap();
//! table.insert(42, 4200).unwrap();
//! assert_eq!(table.get(42), Some(4200));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(clippy::unwrap_used)]

pub mod bucket;
pub mod chained;
pub mod hash;
pub mod segment;
pub mod table;

pub use chained::ChainedTable;
pub use table::{DashRecovery, DashStats, DashTable};

/// Common interface over the PMEM-aware and PMEM-unaware tables so the SSB
/// engine can swap them per execution mode.
pub trait KvIndex {
    /// Insert or update a key. Errors only on resource exhaustion.
    fn insert(&self, key: u64, value: u64) -> pmem_store::Result<()>;
    /// Point lookup.
    fn get(&self, key: u64) -> Option<u64>;
    /// Remove a key, returning its value.
    fn remove(&self, key: u64) -> Option<u64>;
    /// Number of live records.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

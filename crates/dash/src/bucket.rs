//! Bucket layout and operations.
//!
//! A bucket is exactly 256 bytes — one Optane XPLine — so probing a bucket
//! costs a single media access:
//!
//! ```text
//! offset  0..14   fingerprints, one byte per slot (0 = empty)
//! offset 14..16   reserved
//! offset 16..240  14 records × 16 B (key u64 LE, value u64 LE)
//! offset 240..256 padding
//! ```
//!
//! Crash consistency: on insert the record bytes are written and persisted
//! *first*; only then is the fingerprint (the visibility bit) written and
//! persisted. A crash between the two leaves the slot empty — never a
//! half-visible record.

use pmem_store::{AccessHint, Region};

/// Bytes per bucket (= Optane XPLine).
pub const BUCKET_BYTES: u64 = 256;
/// Record slots per bucket.
pub const SLOTS: usize = 14;
/// Byte offset of the record area.
const REC_OFF: u64 = 16;
/// Bytes per record.
const REC_SIZE: u64 = 16;

/// Outcome of trying to place a record in one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketInsert {
    /// Inserted into a free slot.
    Inserted,
    /// Key existed; value updated in place.
    Updated,
    /// No free slot.
    Full,
}

/// A decoded view of one bucket, produced by a single 256 B read.
#[derive(Debug, Clone)]
pub struct BucketSnapshot {
    /// Fingerprint per slot (0 = empty).
    pub fps: [u8; SLOTS],
    /// Records (valid only where `fps[i] != 0`).
    pub records: [(u64, u64); SLOTS],
}

impl BucketSnapshot {
    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.fps.iter().filter(|fp| **fp != 0).count()
    }

    /// Slot holding `key` if the fingerprint matches and the key compares
    /// equal.
    pub fn find(&self, fp: u8, key: u64) -> Option<usize> {
        (0..SLOTS).find(|&i| self.fps[i] == fp && self.records[i].0 == key)
    }

    /// First empty slot.
    pub fn free_slot(&self) -> Option<usize> {
        (0..SLOTS).find(|&i| self.fps[i] == 0)
    }

    /// Iterate live `(slot, key, value)` triples.
    pub fn live(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        (0..SLOTS)
            .filter(|&i| self.fps[i] != 0)
            .map(|i| (i, self.records[i].0, self.records[i].1))
    }
}

/// Read a whole bucket with one 256 B access (the PMEM-friendly probe).
pub fn load(region: &Region, bucket_off: u64) -> BucketSnapshot {
    let bytes = region.read(bucket_off, BUCKET_BYTES, AccessHint::Random);
    let mut fps = [0u8; SLOTS];
    fps.copy_from_slice(&bytes[..SLOTS]);
    let mut records = [(0u64, 0u64); SLOTS];
    for (i, rec) in records.iter_mut().enumerate() {
        let base = (REC_OFF + i as u64 * REC_SIZE) as usize;
        rec.0 = u64::from_le_bytes(bytes[base..base + 8].try_into().expect("8 bytes"));
        rec.1 = u64::from_le_bytes(bytes[base + 8..base + 16].try_into().expect("8 bytes"));
    }
    BucketSnapshot { fps, records }
}

/// Write + persist the record of `slot`, then its fingerprint — the
/// crash-consistent publication order.
pub fn publish(region: &mut Region, bucket_off: u64, slot: usize, fp: u8, key: u64, value: u64) {
    debug_assert!(slot < SLOTS);
    debug_assert_ne!(fp, 0);
    let rec_off = bucket_off + REC_OFF + slot as u64 * REC_SIZE;
    let mut rec = [0u8; 16];
    rec[..8].copy_from_slice(&key.to_le_bytes());
    rec[8..].copy_from_slice(&value.to_le_bytes());
    region
        .try_ntstore(rec_off, &rec, AccessHint::Random)
        .expect("record in bounds");
    region.sfence();
    region
        .try_ntstore(bucket_off + slot as u64, &[fp], AccessHint::Random)
        .expect("fingerprint in bounds");
    region.sfence();
}

/// Update the value of an existing slot in place (record overwrite is a
/// single ≤8-byte atomic-enough ntstore; the fingerprint stays valid).
pub fn update_value(region: &mut Region, bucket_off: u64, slot: usize, value: u64) {
    let val_off = bucket_off + REC_OFF + slot as u64 * REC_SIZE + 8;
    region
        .try_ntstore(val_off, &value.to_le_bytes(), AccessHint::Random)
        .expect("value in bounds");
    region.sfence();
}

/// Clear a slot (persisted fingerprint zero = tombstone-free removal).
pub fn clear_slot(region: &mut Region, bucket_off: u64, slot: usize) {
    region
        .try_ntstore(bucket_off + slot as u64, &[0u8], AccessHint::Random)
        .expect("fingerprint in bounds");
    region.sfence();
}

/// Insert or update `key` within this bucket only.
pub fn insert(region: &mut Region, bucket_off: u64, fp: u8, key: u64, value: u64) -> BucketInsert {
    let snap = load(region, bucket_off);
    if let Some(slot) = snap.find(fp, key) {
        update_value(region, bucket_off, slot, value);
        return BucketInsert::Updated;
    }
    match snap.free_slot() {
        Some(slot) => {
            publish(region, bucket_off, slot, fp, key, value);
            BucketInsert::Inserted
        }
        None => BucketInsert::Full,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use pmem_sim::topology::SocketId;
    use pmem_store::Namespace;

    fn region() -> Region {
        Namespace::devdax(SocketId(0), 1 << 20)
            .alloc_region(BUCKET_BYTES * 4)
            .unwrap()
    }

    #[test]
    fn publish_then_load_round_trips() {
        let mut r = region();
        publish(&mut r, 0, 3, 0xAB, 111, 222);
        let snap = load(&r, 0);
        assert_eq!(snap.fps[3], 0xAB);
        assert_eq!(snap.records[3], (111, 222));
        assert_eq!(snap.occupancy(), 1);
        assert_eq!(snap.find(0xAB, 111), Some(3));
        assert_eq!(snap.find(0xAB, 999), None);
        assert_eq!(snap.find(0xAC, 111), None);
    }

    #[test]
    fn insert_fills_update_and_reports_full() {
        let mut r = region();
        for k in 0..SLOTS as u64 {
            assert_eq!(insert(&mut r, 256, 7, k, k * 10), BucketInsert::Inserted);
        }
        assert_eq!(insert(&mut r, 256, 7, 3, 999), BucketInsert::Updated);
        assert_eq!(load(&r, 256).records[3].1, 999);
        assert_eq!(insert(&mut r, 256, 7, 10_000, 0), BucketInsert::Full);
        assert_eq!(load(&r, 256).occupancy(), SLOTS);
    }

    #[test]
    fn clear_slot_frees_space() {
        let mut r = region();
        publish(&mut r, 0, 0, 5, 1, 2);
        clear_slot(&mut r, 0, 0);
        let snap = load(&r, 0);
        assert_eq!(snap.occupancy(), 0);
        assert_eq!(snap.free_slot(), Some(0));
    }

    #[test]
    fn crash_between_record_and_fingerprint_hides_the_record() {
        // Simulate the torn insert by doing the steps manually.
        let mut r = region();
        let rec_off = 16;
        r.ntstore(rec_off, &42u64.to_le_bytes());
        r.sfence(); // record persisted …
        r.ntstore(0, &[0x99u8]); // … fingerprint written but NOT fenced
        r.crash();
        let snap = load(&r, 0);
        assert_eq!(snap.occupancy(), 0, "unfenced fingerprint must not survive");
    }

    #[test]
    fn published_records_survive_crashes() {
        let mut r = region();
        publish(&mut r, 0, 1, 9, 77, 88);
        r.crash();
        let snap = load(&r, 0);
        assert_eq!(snap.find(9, 77), Some(1));
        assert_eq!(snap.records[1].1, 88);
    }

    #[test]
    fn live_iterates_only_occupied_slots() {
        let mut r = region();
        publish(&mut r, 0, 0, 1, 10, 100);
        publish(&mut r, 0, 5, 2, 20, 200);
        let snap = load(&r, 0);
        let live: Vec<_> = snap.live().collect();
        assert_eq!(live, vec![(0, 10, 100), (5, 20, 200)]);
    }

    #[test]
    fn bucket_probe_costs_one_random_256b_read() {
        let r = region();
        let before = r.tracker().snapshot();
        let _ = load(&r, 0);
        let delta = r.tracker().snapshot().since(&before);
        assert_eq!(delta.read_ops, 1);
        assert_eq!(delta.rand_read_bytes, 256);
    }
}

//! A Dash segment: 64 regular buckets plus 4 stash buckets in one
//! contiguous, lock-protected PMEM region.
//!
//! Records live in their *home* bucket `b` or the probing neighbour
//! `(b + 1) % 64`; inserts go to the emptier of the two ("balanced
//! insert"), displace movable neighbours when both are full, and spill into
//! the stash as a last resort. Only when even the stash is full does the
//! table split the segment.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use pmem_store::{Namespace, Region, Result};

use crate::bucket::{self, BucketInsert, BUCKET_BYTES, SLOTS};
use crate::hash::{self, hash64};

/// Regular buckets per segment.
pub const BUCKETS: u32 = 64;
/// Stash (overflow) buckets per segment.
pub const STASH: u32 = 4;
/// Region bytes per segment.
pub const SEGMENT_BYTES: u64 = (BUCKETS + STASH) as u64 * BUCKET_BYTES;

/// Result of a segment-level insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentInsert {
    /// New record stored.
    Inserted,
    /// Existing key updated.
    Updated,
    /// Segment is full (even the stash): the table must split it.
    NeedsSplit,
}

/// Mutable state of a segment.
#[derive(Debug)]
pub struct SegmentInner {
    /// Backing PMEM region.
    pub region: Region,
    /// Extendible-hashing local depth.
    pub local_depth: u8,
    /// Live records in this segment.
    pub count: usize,
    /// Records currently living in stash buckets. Dash tracks stash
    /// occupancy in bucket metadata so negative lookups skip the stash
    /// entirely — without this, every miss costs four extra 256 B probes.
    pub stash_used: u32,
}

/// A lock-protected segment.
#[derive(Debug)]
pub struct Segment {
    inner: RwLock<SegmentInner>,
}

impl Segment {
    /// Allocate an empty segment with the given local depth.
    pub fn new(ns: &Namespace, local_depth: u8) -> Result<Self> {
        let region = ns.alloc_region(SEGMENT_BYTES)?;
        Ok(Segment {
            inner: RwLock::new(SegmentInner {
                region,
                local_depth,
                count: 0,
                stash_used: 0,
            }),
        })
    }

    /// Shared access to the inner state.
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, SegmentInner> {
        self.inner.read()
    }

    /// Exclusive access to the inner state.
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, SegmentInner> {
        self.inner.write()
    }
}

fn bucket_off(b: u32) -> u64 {
    b as u64 * BUCKET_BYTES
}

fn stash_off(s: u32) -> u64 {
    (BUCKETS + s) as u64 * BUCKET_BYTES
}

impl SegmentInner {
    /// Point lookup: home bucket, neighbour, then the stash — at most six
    /// 256 B probes, usually one.
    pub fn get(&self, h: u64, key: u64) -> Option<u64> {
        let fp = hash::fingerprint(h);
        let b = hash::bucket_index(h, BUCKETS);
        for off in [bucket_off(b), bucket_off((b + 1) % BUCKETS)] {
            let snap = bucket::load(&self.region, off);
            if let Some(slot) = snap.find(fp, key) {
                return Some(snap.records[slot].1);
            }
        }
        if self.stash_used > 0 {
            for s in 0..STASH {
                let snap = bucket::load(&self.region, stash_off(s));
                if let Some(slot) = snap.find(fp, key) {
                    return Some(snap.records[slot].1);
                }
            }
        }
        None
    }

    /// Insert or update.
    pub fn insert(&mut self, h: u64, key: u64, value: u64) -> SegmentInsert {
        let fp = hash::fingerprint(h);
        let b = hash::bucket_index(h, BUCKETS);
        let n = (b + 1) % BUCKETS;

        // Update in place if the key exists anywhere it may live.
        if let Some(outcome) = self.try_update(fp, key, value, b, n) {
            return outcome;
        }

        // Balanced insert: fill the emptier of home and neighbour.
        let (b_occ, n_occ) = (
            bucket::load(&self.region, bucket_off(b)).occupancy(),
            bucket::load(&self.region, bucket_off(n)).occupancy(),
        );
        let order = if b_occ <= n_occ { [b, n] } else { [n, b] };
        for target in order {
            if bucket::insert(&mut self.region, bucket_off(target), fp, key, value)
                == BucketInsert::Inserted
            {
                self.count += 1;
                return SegmentInsert::Inserted;
            }
        }

        // Displacement: make room in the home pair by moving a record to
        // *its* alternate bucket.
        for victim_bucket in [b, n] {
            if self.displace_one(victim_bucket)
                && bucket::insert(&mut self.region, bucket_off(victim_bucket), fp, key, value)
                    == BucketInsert::Inserted
            {
                self.count += 1;
                return SegmentInsert::Inserted;
            }
        }

        // Stash.
        for s in 0..STASH {
            if bucket::insert(&mut self.region, stash_off(s), fp, key, value)
                == BucketInsert::Inserted
            {
                self.count += 1;
                self.stash_used += 1;
                return SegmentInsert::Inserted;
            }
        }
        SegmentInsert::NeedsSplit
    }

    fn try_update(
        &mut self,
        fp: u8,
        key: u64,
        value: u64,
        b: u32,
        n: u32,
    ) -> Option<SegmentInsert> {
        for off in [bucket_off(b), bucket_off(n)] {
            let snap = bucket::load(&self.region, off);
            if let Some(slot) = snap.find(fp, key) {
                bucket::update_value(&mut self.region, off, slot, value);
                return Some(SegmentInsert::Updated);
            }
        }
        if self.stash_used > 0 {
            for s in 0..STASH {
                let snap = bucket::load(&self.region, stash_off(s));
                if let Some(slot) = snap.find(fp, key) {
                    bucket::update_value(&mut self.region, stash_off(s), slot, value);
                    return Some(SegmentInsert::Updated);
                }
            }
        }
        None
    }

    /// Try to move one record of `from` into that record's alternate
    /// bucket. Returns true if a slot was freed.
    fn displace_one(&mut self, from: u32) -> bool {
        let snap = bucket::load(&self.region, bucket_off(from));
        for (slot, key, value) in snap.live() {
            let h = hash64(key);
            let home = hash::bucket_index(h, BUCKETS);
            let alt = if home == from {
                (home + 1) % BUCKETS
            } else {
                home
            };
            if alt == from {
                continue;
            }
            let alt_snap = bucket::load(&self.region, bucket_off(alt));
            if let Some(free) = alt_snap.free_slot() {
                // Crash-safe move: publish the copy first, then clear the
                // original. A crash in between leaves a duplicate, which
                // lookups tolerate (same key/value) and splits dedupe.
                bucket::publish(
                    &mut self.region,
                    bucket_off(alt),
                    free,
                    hash::fingerprint(h),
                    key,
                    value,
                );
                bucket::clear_slot(&mut self.region, bucket_off(from), slot);
                return true;
            }
        }
        false
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, h: u64, key: u64) -> Option<u64> {
        let fp = hash::fingerprint(h);
        let b = hash::bucket_index(h, BUCKETS);
        for off in [bucket_off(b), bucket_off((b + 1) % BUCKETS)] {
            let snap = bucket::load(&self.region, off);
            if let Some(slot) = snap.find(fp, key) {
                let value = snap.records[slot].1;
                bucket::clear_slot(&mut self.region, off, slot);
                self.count -= 1;
                return Some(value);
            }
        }
        if self.stash_used > 0 {
            for s in 0..STASH {
                let snap = bucket::load(&self.region, stash_off(s));
                if let Some(slot) = snap.find(fp, key) {
                    let value = snap.records[slot].1;
                    bucket::clear_slot(&mut self.region, stash_off(s), slot);
                    self.count -= 1;
                    self.stash_used -= 1;
                    return Some(value);
                }
            }
        }
        None
    }

    /// All live records (for splits). Duplicates from interrupted
    /// displacements are removed.
    pub fn records(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.count);
        for bkt in 0..BUCKETS + STASH {
            let snap = bucket::load(&self.region, bkt as u64 * BUCKET_BYTES);
            for (_, k, v) in snap.live() {
                out.push((k, v));
            }
        }
        out.sort_unstable();
        out.dedup_by_key(|(k, _)| *k);
        out
    }

    /// Theoretical record capacity of a segment.
    pub fn capacity() -> usize {
        (BUCKETS + STASH) as usize * SLOTS
    }

    /// Rebuild a segment over an existing region — the post-crash remap
    /// path (e.g. a region materialized from a crash image). With `repair`
    /// set, interrupted displacements are swept first; the returned
    /// [`SegmentRecovery`] reports what the sweep found.
    pub fn recover(
        region: Region,
        local_depth: u8,
        repair: bool,
    ) -> (SegmentInner, SegmentRecovery) {
        let mut inner = SegmentInner {
            region,
            local_depth,
            count: 0,
            stash_used: 0,
        };
        let duplicates_repaired = if repair { inner.repair_duplicates() } else { 0 };
        inner.recount();
        let report = SegmentRecovery {
            duplicates_repaired,
            records: inner.count,
        };
        (inner, report)
    }

    /// Recompute `count` and `stash_used` from the persisted buckets (the
    /// in-memory counters die with the process; the buckets are the truth).
    pub fn recount(&mut self) {
        let mut count = 0usize;
        let mut stash_used = 0u32;
        for bkt in 0..BUCKETS + STASH {
            let occ = bucket::load(&self.region, bkt as u64 * BUCKET_BYTES).occupancy();
            count += occ;
            if bkt >= BUCKETS {
                stash_used += occ as u32;
            }
        }
        self.count = count;
        self.stash_used = stash_used;
    }

    /// Keys currently occupying more than one slot — the footprint a crash
    /// inside [`SegmentInner::insert`]'s displacement window leaves (copy
    /// published to the alternate bucket, original not yet cleared).
    pub fn raw_duplicates(&self) -> Vec<u64> {
        let mut occurrences: BTreeMap<u64, u32> = BTreeMap::new();
        for bkt in 0..BUCKETS + STASH {
            let snap = bucket::load(&self.region, bkt as u64 * BUCKET_BYTES);
            for (_, k, _) in snap.live() {
                *occurrences.entry(k).or_insert(0) += 1;
            }
        }
        occurrences
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(k, _)| k)
            .collect()
    }

    /// Sweep interrupted displacements: for every key occupying multiple
    /// slots, keep the copy `get`/update probing reaches first (the
    /// authoritative one — in-place updates land there) and persistently
    /// clear the rest. Without this sweep a duplicated key survives its own
    /// removal: `remove` clears only the first probe hit, so the stale copy
    /// resurrects deleted data. Returns the number of copies cleared.
    pub fn repair_duplicates(&mut self) -> usize {
        let mut cleared = 0usize;
        for key in self.raw_duplicates() {
            let h = hash64(key);
            let b = hash::bucket_index(h, BUCKETS);
            let mut offsets = vec![bucket_off(b), bucket_off((b + 1) % BUCKETS)];
            offsets.extend((0..STASH).map(stash_off));
            let mut kept = false;
            for off in offsets {
                let snap = bucket::load(&self.region, off);
                for (slot, k, _) in snap.live() {
                    if k != key {
                        continue;
                    }
                    if kept {
                        bucket::clear_slot(&mut self.region, off, slot);
                        cleared += 1;
                    } else {
                        kept = true;
                    }
                }
            }
        }
        cleared
    }
}

/// What a recovery sweep found in one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecovery {
    /// Stale duplicate copies persistently cleared.
    pub duplicates_repaired: usize,
    /// Live records after the sweep.
    pub records: usize,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use pmem_sim::topology::SocketId;

    fn segment() -> Segment {
        let ns = Namespace::devdax(SocketId(0), 4 << 20);
        Segment::new(&ns, 0).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let seg = segment();
        let mut inner = seg.write();
        for k in 0..100u64 {
            assert_eq!(inner.insert(hash64(k), k, k * 2), SegmentInsert::Inserted);
        }
        assert_eq!(inner.count, 100);
        for k in 0..100u64 {
            assert_eq!(inner.get(hash64(k), k), Some(k * 2));
        }
        assert_eq!(inner.get(hash64(500), 500), None);
        assert_eq!(inner.remove(hash64(7), 7), Some(14));
        assert_eq!(inner.get(hash64(7), 7), None);
        assert_eq!(inner.count, 99);
    }

    #[test]
    fn updates_do_not_grow_count() {
        let seg = segment();
        let mut inner = seg.write();
        inner.insert(hash64(1), 1, 10);
        assert_eq!(inner.insert(hash64(1), 1, 20), SegmentInsert::Updated);
        assert_eq!(inner.count, 1);
        assert_eq!(inner.get(hash64(1), 1), Some(20));
    }

    #[test]
    fn fills_to_a_healthy_load_factor_before_split() {
        let seg = segment();
        let mut inner = seg.write();
        let mut inserted = 0u32;
        for k in 0..(SegmentInner::capacity() as u64 * 2) {
            match inner.insert(hash64(k), k, k) {
                SegmentInsert::Inserted => inserted += 1,
                SegmentInsert::NeedsSplit => break,
                SegmentInsert::Updated => unreachable!("keys are distinct"),
            }
        }
        let load = inserted as f64 / SegmentInner::capacity() as f64;
        assert!(
            load > 0.65,
            "balanced insert + displacement + stash should reach ≥65 % load, got {load:.2}"
        );
        // Everything inserted must remain findable.
        for k in 0..inserted as u64 {
            assert_eq!(inner.get(hash64(k), k), Some(k), "lost key {k}");
        }
    }

    #[test]
    fn records_returns_everything_once() {
        let seg = segment();
        let mut inner = seg.write();
        for k in 0..50u64 {
            inner.insert(hash64(k), k, k + 1);
        }
        let recs = inner.records();
        assert_eq!(recs.len(), 50);
        assert!(recs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(recs.iter().all(|(k, v)| *v == k + 1));
    }

    /// The on-media state a crash at the displacement window
    /// (publish-to-alternate done, clear-of-original not) leaves behind:
    /// the same record live in both buckets of its home pair. This is the
    /// exact state the crash-state model checker reaches by accepting the
    /// copy's lines but not the clear (see `tests/crash_model.rs`).
    fn craft_interrupted_displacement(inner: &mut SegmentInner, key: u64, value: u64) {
        let h = hash64(key);
        assert_eq!(inner.insert(h, key, value), SegmentInsert::Inserted);
        let b = hash::bucket_index(h, BUCKETS);
        let n = (b + 1) % BUCKETS;
        let fp = hash::fingerprint(h);
        // Balanced insert put the record in one bucket of the home pair;
        // publish the displacement copy into the other.
        let to = if bucket::load(&inner.region, bucket_off(b))
            .find(fp, key)
            .is_some()
        {
            n
        } else {
            b
        };
        let free = bucket::load(&inner.region, bucket_off(to))
            .free_slot()
            .expect("room in the pair");
        bucket::publish(&mut inner.region, bucket_off(to), free, fp, key, value);
        // Crash here: the clear of the original never happened.
    }

    #[test]
    fn interrupted_displacement_resurrects_deleted_keys_without_repair() {
        let seg = segment();
        let mut inner = seg.write();
        craft_interrupted_displacement(&mut inner, 42, 4200);
        inner.recount();
        assert_eq!(inner.raw_duplicates(), vec![42]);
        let h = hash64(42);
        assert_eq!(inner.remove(h, 42), Some(4200));
        // The pre-repair bug, pinned: the stale copy answers lookups for a
        // key the caller just deleted.
        assert_eq!(
            inner.get(h, 42),
            Some(4200),
            "without the repair sweep the duplicate must resurrect (bug under test)"
        );
    }

    #[test]
    fn repair_sweep_keeps_exactly_one_copy_and_makes_removal_final() {
        let seg = segment();
        let mut inner = seg.write();
        craft_interrupted_displacement(&mut inner, 42, 4200);
        let repaired = inner.repair_duplicates();
        assert_eq!(repaired, 1, "one stale copy cleared");
        assert!(inner.raw_duplicates().is_empty());
        inner.recount();
        assert_eq!(inner.count, 1);
        let h = hash64(42);
        assert_eq!(
            inner.get(h, 42),
            Some(4200),
            "the surviving copy still answers"
        );
        assert_eq!(inner.remove(h, 42), Some(4200));
        assert_eq!(inner.get(h, 42), None, "removal is final after repair");
        // The sweep's clears are fenced: a crash right after repair cannot
        // bring the duplicate back.
        inner.region.crash();
        assert!(inner.raw_duplicates().is_empty());
    }

    #[test]
    fn recover_rebuilds_counters_from_the_region() {
        let ns = Namespace::devdax(SocketId(0), 4 << 20);
        let seg = Segment::new(&ns, 3).unwrap();
        let region = {
            let mut inner = seg.write();
            for k in 0..40u64 {
                inner.insert(hash64(k), k, k * 7);
            }
            craft_interrupted_displacement(&mut inner, 999, 111);
            // Steal the region, as a post-crash remap would.
            std::mem::replace(&mut inner.region, ns.alloc_region(64).unwrap())
        };
        let (recovered, report) = SegmentInner::recover(region, 3, true);
        assert_eq!(report.duplicates_repaired, 1);
        assert_eq!(report.records, 41);
        assert_eq!(recovered.count, 41);
        assert_eq!(recovered.local_depth, 3);
        for k in 0..40u64 {
            assert_eq!(recovered.get(hash64(k), k), Some(k * 7));
        }
        assert_eq!(recovered.get(hash64(999), 999), Some(111));
    }

    #[test]
    fn stash_absorbs_bucket_overflow() {
        // Collect real keys that all hash to home bucket 5, overflowing the
        // bucket + neighbour pair so the stash must absorb the rest.
        let colliders: Vec<u64> = (0..2_000_000u64)
            .filter(|k| crate::hash::bucket_index(hash64(*k), BUCKETS) == 5)
            .take(3 * SLOTS)
            .collect();
        assert_eq!(colliders.len(), 3 * SLOTS);
        let seg = segment();
        let mut inner = seg.write();
        for &k in &colliders {
            let r = inner.insert(hash64(k), k, k + 1);
            assert_eq!(r, SegmentInsert::Inserted, "stash should absorb key {k}");
        }
        for &k in &colliders {
            assert_eq!(inner.get(hash64(k), k), Some(k + 1));
        }
    }
}

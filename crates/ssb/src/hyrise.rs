//! The PMEM-unaware, Hyrise-like executor (paper §6.1).
//!
//! Hyrise executes operator-at-a-time: every operator **materializes** its
//! full intermediate result before the next operator starts. Combined with
//! unfiltered chained-hash join indexes, this produces exactly the traffic
//! mix that made PMEM-Hyrise 5.3× slower than DRAM-Hyrise in the paper:
//!
//! * full-table scans materializing large intermediates (sequential writes
//!   at PMEM's ~13 GB/s vs DRAM's ~49 GB/s),
//! * every intermediate re-read by the next operator,
//! * per-row probes into pointer-chasing chained hash tables — small,
//!   dependent random reads, the worst pattern for Optane ("hash-operations
//!   take over 90 % of the execution time", §6.1).
//!
//! The executor still produces bit-identical query answers to the aware
//! engine — only the physical execution differs.

use std::sync::atomic::{AtomicU64, Ordering};

use pmem_store::{AccessHint, Region, Result};

use crate::engine::{scan_fact, spill_result, GroupAgg, JoinIndex, OpCounters};
use crate::queries::{build_for_plan, PhaseTraffic, Plan, QueryOutcome, ShardIndexes};
use crate::storage::SsbStore;

/// Bytes per materialized intermediate tuple: the four join keys, the
/// aggregate value, and the four dimension payloads.
pub const INTERMEDIATE_ROW: u64 = 64;

/// A materialized intermediate tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Rec {
    partkey: u32,
    suppkey: u32,
    custkey: u32,
    orderdate: u32,
    value: i64,
    dp: u64,
    cp: u64,
    sp: u64,
    pp: u64,
}

impl Rec {
    fn encode(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.partkey.to_le_bytes());
        buf[4..8].copy_from_slice(&self.suppkey.to_le_bytes());
        buf[8..12].copy_from_slice(&self.custkey.to_le_bytes());
        buf[12..16].copy_from_slice(&self.orderdate.to_le_bytes());
        buf[16..24].copy_from_slice(&self.value.to_le_bytes());
        buf[24..32].copy_from_slice(&self.dp.to_le_bytes());
        buf[32..40].copy_from_slice(&self.cp.to_le_bytes());
        buf[40..48].copy_from_slice(&self.sp.to_le_bytes());
        buf[48..56].copy_from_slice(&self.pp.to_le_bytes());
        buf[56..64].fill(0);
    }

    fn decode(buf: &[u8]) -> Rec {
        Rec {
            partkey: u32::from_le_bytes(buf[0..4].try_into().expect("4")),
            suppkey: u32::from_le_bytes(buf[4..8].try_into().expect("4")),
            custkey: u32::from_le_bytes(buf[8..12].try_into().expect("4")),
            orderdate: u32::from_le_bytes(buf[12..16].try_into().expect("4")),
            value: i64::from_le_bytes(buf[16..24].try_into().expect("8")),
            dp: u64::from_le_bytes(buf[24..32].try_into().expect("8")),
            cp: u64::from_le_bytes(buf[32..40].try_into().expect("8")),
            sp: u64::from_le_bytes(buf[40..48].try_into().expect("8")),
            pp: u64::from_le_bytes(buf[48..56].try_into().expect("8")),
        }
    }
}

/// Materialize a batch of records into a fresh intermediate region.
fn materialize(store: &SsbStore, recs: &[Rec]) -> Result<Region> {
    let ns = &store.shards[0].intermediate_ns;
    let len = (recs.len() as u64).max(1) * INTERMEDIATE_ROW;
    let mut region = ns.alloc_region(len)?;
    let mut buf = vec![0u8; recs.len() * INTERMEDIATE_ROW as usize];
    for (i, r) in recs.iter().enumerate() {
        r.encode(&mut buf[i * INTERMEDIATE_ROW as usize..(i + 1) * INTERMEDIATE_ROW as usize]);
    }
    if !recs.is_empty() {
        region.try_ntstore(0, &buf, AccessHint::Sequential)?;
        region.sfence();
    }
    Ok(region)
}

/// Parallel chunked pass over an intermediate region. Returns the
/// per-thread output batches and the merged stage counters.
fn scan_intermediate<F>(
    region: &Region,
    count: u64,
    threads: u32,
    visit: F,
) -> (Vec<Vec<Rec>>, OpCounters)
where
    F: Fn(&Rec, &mut Vec<Rec>, &mut OpCounters) + Sync,
{
    const CHUNK: u64 = 1024;
    let cursor = AtomicU64::new(0);
    let chunks = count.div_ceil(CHUNK);
    let outs: Vec<(Vec<Rec>, OpCounters)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let cursor = &cursor;
                let visit = &visit;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut counters = OpCounters::default();
                    loop {
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= chunks {
                            break;
                        }
                        let start = chunk * CHUNK;
                        let n = CHUNK.min(count - start);
                        let bytes = region.read(
                            start * INTERMEDIATE_ROW,
                            n * INTERMEDIATE_ROW,
                            AccessHint::Sequential,
                        );
                        for i in 0..n as usize {
                            let rec = Rec::decode(
                                &bytes[i * INTERMEDIATE_ROW as usize
                                    ..(i + 1) * INTERMEDIATE_ROW as usize],
                            );
                            visit(&rec, &mut out, &mut counters);
                        }
                    }
                    (out, counters)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stage worker"))
            .collect()
    });
    let mut merged = OpCounters::default();
    let recs = outs
        .into_iter()
        .map(|(recs, c)| {
            merged.merge(&c);
            recs
        })
        .collect::<Vec<_>>();
    (recs, merged)
}

/// Execute a plan in the Hyrise-like operator-at-a-time fashion.
pub(crate) fn execute_unaware(store: &SsbStore, plan: &Plan, threads: u32) -> Result<QueryOutcome> {
    assert_eq!(store.shards.len(), 1, "the unaware engine is single-socket");
    let shard = &store.shards[0];
    let threads = threads.max(1);

    let fact0 = shard.fact_ns.tracker().snapshot();
    let dimidx0 = shard
        .dim_ns
        .tracker()
        .snapshot()
        .plus(&shard.index_ns.tracker().snapshot());
    let index_used0 = shard.index_ns.used();

    // ---- Build phase: full (unfiltered) chained indexes ----
    let indexes: ShardIndexes = build_for_plan(store, shard, plan)?;

    let build = shard
        .dim_ns
        .tracker()
        .snapshot()
        .plus(&shard.index_ns.tracker().snapshot())
        .since(&dimidx0);
    let index1 = shard.index_ns.tracker().snapshot();
    let index_bytes = shard.index_ns.used() - index_used0;
    let inter0 = shard.intermediate_ns.tracker().snapshot();

    let mut counters = OpCounters {
        build_inserts: indexes.inserts,
        ..OpCounters::default()
    };

    // ---- Stage 0: table scan, materialize survivors ----
    let scanned: Vec<Vec<Rec>> = scan_fact(
        &shard.fact,
        shard.fact_rows,
        threads,
        Vec::new,
        |out: &mut Vec<Rec>, row| {
            if (plan.row)(row) {
                out.push(Rec {
                    partkey: row.partkey,
                    suppkey: row.suppkey,
                    custkey: row.custkey,
                    orderdate: row.orderdate,
                    value: (plan.value)(row),
                    ..Rec::default()
                });
            }
        },
    )?;
    counters.tuples_scanned = shard.fact_rows;
    let mut current: Vec<Rec> = scanned.into_iter().flatten().collect();
    let mut region = materialize(store, &current)?;
    let mut released = Vec::new();

    // ---- One materializing probe stage per joined dimension ----
    type Stage = (
        fn(&ShardIndexes) -> &Option<JoinIndex>,
        Option<fn(u64) -> bool>,
        fn(&Rec) -> u64,
        fn(&mut Rec, u64),
    );
    let stages: [Stage; 4] = [
        (
            |i| &i.part,
            plan.part,
            |r| r.partkey as u64,
            |r, p| r.pp = p,
        ),
        (
            |i| &i.supp,
            plan.supp,
            |r| r.suppkey as u64,
            |r, p| r.sp = p,
        ),
        (
            |i| &i.cust,
            plan.cust,
            |r| r.custkey as u64,
            |r, p| r.cp = p,
        ),
        (
            |i| &i.date,
            plan.date,
            |r| r.orderdate as u64,
            |r, p| r.dp = p,
        ),
    ];

    for (select, pred, key_of, set_payload) in stages {
        let Some(pred) = pred else { continue };
        let idx = select(&indexes)
            .as_ref()
            .expect("index built for joined dim");
        let count = current.len() as u64;
        let (outs, stage_counters) = scan_intermediate(&region, count, threads, |rec, out, c| {
            c.probes += 1;
            if let Some(payload) = idx.get(key_of(rec)) {
                if pred(payload) {
                    let mut rec = *rec;
                    set_payload(&mut rec, payload);
                    out.push(rec);
                }
            }
        });
        counters.merge(&stage_counters);
        current = outs.into_iter().flatten().collect();
        released.push(region.len());
        region = materialize(store, &current)?;
    }

    // ---- Final aggregation over the last intermediate ----
    let count = current.len() as u64;
    let (aggs, _) = scan_intermediate(&region, count, threads, |rec, out, _| {
        // Reuse the record vec as a carrier; aggregation happens below to
        // keep the group map merge explicit.
        out.push(*rec);
    });
    let mut agg = GroupAgg::default();
    for recs in aggs {
        for rec in recs {
            agg.add((plan.group)(rec.dp, rec.cp, rec.sp, rec.pp), rec.value);
        }
    }
    counters.tuples_selected = count;
    counters.agg_updates = agg.updates;

    for len in released {
        shard.intermediate_ns.release(len);
    }
    shard.intermediate_ns.release(region.len());

    let probe = shard.index_ns.tracker().snapshot().since(&index1);
    let fact = shard.fact_ns.tracker().snapshot().since(&fact0);

    // Return the per-query index budget (regions die with `indexes` at the
    // end of this function), so benchmark loops can re-run indefinitely.
    shard.index_ns.release(index_bytes);

    let rows = agg.into_sorted();
    spill_result(&shard.intermediate_ns, &rows)?;
    let intermediate = shard.intermediate_ns.tracker().snapshot().since(&inter0);

    Ok(QueryOutcome {
        query: crate::queries::QueryId::Q1_1, // overwritten by caller
        rows,
        counters,
        traffic: PhaseTraffic {
            build,
            probe,
            fact,
            intermediate,
            index_bytes,
            index_bytes_by_dim: indexes.bytes_by_dim,
        },
        threads,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::queries::{plan_for, run_query, QueryId};
    use crate::storage::{EngineMode, StorageDevice};

    #[test]
    fn rec_round_trip() {
        let rec = Rec {
            partkey: 1,
            suppkey: 2,
            custkey: 3,
            orderdate: 19970101,
            value: -42,
            dp: 10,
            cp: 20,
            sp: 30,
            pp: 40,
        };
        let mut buf = [0u8; INTERMEDIATE_ROW as usize];
        rec.encode(&mut buf);
        assert_eq!(Rec::decode(&buf), rec);
    }

    #[test]
    fn unaware_executor_matches_aware_results() {
        let data = crate::datagen::generate(0.004, 31);
        let aware = crate::storage::SsbStore::load(
            &data,
            0.004,
            EngineMode::Aware,
            StorageDevice::PmemDevdax,
        )
        .unwrap();
        let unaware = crate::storage::SsbStore::load(
            &data,
            0.004,
            EngineMode::Unaware,
            StorageDevice::PmemFsdax,
        )
        .unwrap();
        for q in [QueryId::Q1_1, QueryId::Q2_1, QueryId::Q3_3, QueryId::Q4_2] {
            let a = run_query(&aware, q, 4).unwrap();
            let u = run_query(&unaware, q, 4).unwrap();
            assert_eq!(a.rows, u.rows, "{} diverges", q.name());
        }
    }

    #[test]
    fn unaware_executor_materializes_intermediates() {
        let store = crate::storage::SsbStore::generate_and_load(
            0.004,
            31,
            EngineMode::Unaware,
            StorageDevice::PmemFsdax,
        )
        .unwrap();
        store.reset_trackers();
        let plan = plan_for(QueryId::Q2_1);
        let outcome = execute_unaware(&store, &plan, 4).unwrap();
        // Stage 0 materializes every fact row (no row filter in Q2.1):
        // sequential intermediate writes at least rows × 64 B.
        let expected_stage0 = store.fact_rows() * INTERMEDIATE_ROW;
        assert!(
            outcome.traffic.intermediate.seq_write_bytes >= expected_stage0,
            "intermediates {} < stage0 {expected_stage0}",
            outcome.traffic.intermediate.seq_write_bytes
        );
        // And the intermediates are read back by the next stage.
        assert!(outcome.traffic.intermediate.seq_read_bytes >= expected_stage0);
        // Probes hit the chained index.
        assert!(outcome.counters.probes >= store.fact_rows());
    }
}

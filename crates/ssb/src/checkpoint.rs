//! A durable, crash-consistent checkpoint for columnar `lineorder` data.
//!
//! [`ColumnarFact`] is rebuilt from the generator on every start; this
//! module adds the missing durability story: tuples are checkpointed into a
//! single PMEM region with an A/B manifest, and [`CheckpointStore::open`]
//! recovers the durable prefix after a crash.
//!
//! Layout of the backing region:
//!
//! ```text
//! 0..64      manifest slot A ─┐ one 64 B cache line each, so manifest
//! 64..128    manifest slot B ─┘ publication is a single-line ntstore
//! 128..256   reserved
//! 256..      tuple data, 32 B per encoded ColTuple
//! ```
//!
//! A manifest names a sequence number, a row count, and an FNV-64 checksum
//! over exactly those rows' bytes, plus a self-checksum over its own
//! header. Appends follow the store stack's publication ordering: data is
//! ntstored and fenced *first*, then the manifest is ntstored to the
//! alternate slot and fenced. A crash between the two leaves the old
//! manifest in charge; the half-written batch beyond its row count is a
//! torn tail that recovery zeroes (durably), never surfaces.
//!
//! Recovery picks the highest-sequence manifest whose checksums hold,
//! durably seals any slot that fails validation, and truncates the torn
//! tail — all with fenced writes, so recovering twice (or crashing
//! immediately after recovery) reaches the same state.

use pmem_store::scrub::fnv64;
use pmem_store::{AccessHint, Namespace, Region, Result, StoreError};

use crate::columnar::ColTuple;

/// Bytes per encoded tuple (30 B of fields, padded to 32).
pub const TUPLE_BYTES: u64 = 32;
/// Byte offset of the tuple data area.
pub const DATA_OFF: u64 = 256;
/// Bytes per manifest slot (one cache line).
const MANIFEST_SLOT: u64 = 64;
/// Manifest magic ("SSBCKPT\1").
const MAGIC: u64 = 0x0153_5342_434B_5054;
/// Bytes of the manifest header covered by the self-checksum.
const MANIFEST_HDR: usize = 32;

/// FNV-64 offset basis (the running-checksum seed) — shared with the store
/// layer's scrubber so every integrity check in the stack speaks one hash.
const FNV_INIT: u64 = pmem_store::scrub::FNV_OFFSET;

/// Encode a tuple into its 32 B slot image.
pub fn encode_tuple(t: &ColTuple) -> [u8; TUPLE_BYTES as usize] {
    let mut buf = [0u8; TUPLE_BYTES as usize];
    buf[0..4].copy_from_slice(&t.orderdate.to_le_bytes());
    buf[4..8].copy_from_slice(&t.partkey.to_le_bytes());
    buf[8..12].copy_from_slice(&t.suppkey.to_le_bytes());
    buf[12..16].copy_from_slice(&t.custkey.to_le_bytes());
    buf[16] = t.quantity;
    buf[17] = t.discount;
    buf[18..22].copy_from_slice(&t.extendedprice.to_le_bytes());
    buf[22..26].copy_from_slice(&t.revenue.to_le_bytes());
    buf[26..30].copy_from_slice(&t.supplycost.to_le_bytes());
    buf
}

/// Decode a 32 B slot image back into a tuple.
pub fn decode_tuple(bytes: &[u8]) -> ColTuple {
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    ColTuple {
        orderdate: u32_at(0),
        partkey: u32_at(4),
        suppkey: u32_at(8),
        custkey: u32_at(12),
        quantity: bytes[16],
        discount: bytes[17],
        extendedprice: u32_at(18),
        revenue: u32_at(22),
        supplycost: u32_at(26),
    }
}

#[derive(Debug, Clone, Copy)]
struct Manifest {
    seq: u64,
    rows: u64,
    data_checksum: u64,
}

/// What [`CheckpointStore::open`] (or a crash-recovery pass) found and
/// repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRecovery {
    /// Durable rows recovered.
    pub rows: u64,
    /// Sequence number of the winning manifest (0 = none).
    pub seq: u64,
    /// Torn-tail bytes durably zeroed beyond the recovered rows.
    pub torn_bytes_zeroed: u64,
    /// Manifest slots that failed validation and were durably sealed.
    pub invalid_manifests_sealed: u32,
}

/// A crash-consistent columnar checkpoint over one PMEM region.
#[derive(Debug)]
pub struct CheckpointStore {
    region: Region,
    rows: u64,
    seq: u64,
    checksum: u64,
}

impl CheckpointStore {
    /// Create an empty checkpoint with room for `capacity_rows` tuples.
    pub fn create(ns: &Namespace, capacity_rows: u64) -> Result<Self> {
        if !ns.is_persistent() {
            return Err(StoreError::NotPersistent);
        }
        let region = ns.alloc_region(DATA_OFF + capacity_rows.max(1) * TUPLE_BYTES)?;
        Ok(CheckpointStore {
            region,
            rows: 0,
            seq: 0,
            checksum: FNV_INIT,
        })
    }

    /// Open an existing checkpoint region (e.g. remapped after a crash) and
    /// recover the durable prefix.
    pub fn open(region: Region) -> Result<(Self, CheckpointRecovery)> {
        if !region.is_persistent() {
            return Err(StoreError::NotPersistent);
        }
        let mut store = CheckpointStore {
            region,
            rows: 0,
            seq: 0,
            checksum: FNV_INIT,
        };
        let report = store.recover();
        Ok((store, report))
    }

    /// The backing region (for attaching persistence traces).
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Give up the backing region (e.g. to re-[`CheckpointStore::open`] it,
    /// modelling a restart, or to inject faults in crash tests).
    pub fn into_region(self) -> Region {
        self.region
    }

    /// Mutable access to the backing region for fault injection in tests —
    /// poisons land without the recovery pass `open` would run.
    #[cfg(any(test, feature = "testing"))]
    pub fn raw_region_mut(&mut self) -> &mut Region {
        &mut self.region
    }

    /// Durable rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Row capacity of the region.
    pub fn capacity_rows(&self) -> u64 {
        (self.region.len() - DATA_OFF) / TUPLE_BYTES
    }

    /// Append a batch of tuples and publish them atomically: data first
    /// (ntstore + sfence), then the manifest naming the new row count
    /// (ntstore to the alternate slot + sfence).
    pub fn append(&mut self, tuples: &[ColTuple]) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        if self.rows + tuples.len() as u64 > self.capacity_rows() {
            return Err(StoreError::OutOfSpace {
                requested: tuples.len() as u64 * TUPLE_BYTES,
                available: (self.capacity_rows() - self.rows) * TUPLE_BYTES,
            });
        }
        let mut buf = Vec::with_capacity(tuples.len() * TUPLE_BYTES as usize);
        for t in tuples {
            buf.extend_from_slice(&encode_tuple(t));
        }
        self.region.try_ntstore(
            DATA_OFF + self.rows * TUPLE_BYTES,
            &buf,
            AccessHint::Sequential,
        )?;
        self.region.sfence();

        self.rows += tuples.len() as u64;
        self.checksum = fnv64(self.checksum, &buf);
        self.seq += 1;
        let manifest = self.encode_manifest();
        self.region.try_ntstore(
            (self.seq % 2) * MANIFEST_SLOT,
            &manifest,
            AccessHint::Random,
        )?;
        self.region.sfence();
        Ok(())
    }

    /// Read every durable tuple back.
    pub fn read_all(&self) -> Vec<ColTuple> {
        (0..self.rows)
            .map(|i| {
                decode_tuple(self.region.read(
                    DATA_OFF + i * TUPLE_BYTES,
                    TUPLE_BYTES,
                    AccessHint::Sequential,
                ))
            })
            .collect()
    }

    /// Simulate a power loss, then recover.
    pub fn crash_and_recover(&mut self) -> CheckpointRecovery {
        self.region.crash();
        self.recover()
    }

    /// Re-verify the durable prefix against the manifest checksum with
    /// *checked* reads: `Ok(true)` = intact, `Ok(false)` = the bytes no
    /// longer hash to the published checksum, `Err(Poisoned)` = the
    /// checkpoint itself took a media error. Repair paths call this before
    /// trusting the checkpoint as a rebuild source.
    pub fn validate(&self) -> Result<bool> {
        if self.rows == 0 {
            return Ok(true);
        }
        let bytes =
            self.region
                .try_read(DATA_OFF, self.rows * TUPLE_BYTES, AccessHint::Sequential)?;
        Ok(fnv64(FNV_INIT, bytes) == self.checksum)
    }

    /// Read a contiguous row range with checked reads — the targeted fetch
    /// the repair path uses to rebuild one poisoned block without scanning
    /// the whole checkpoint.
    pub fn read_range(&self, start_row: u64, rows: u64) -> Result<Vec<ColTuple>> {
        if start_row.saturating_add(rows) > self.rows {
            return Err(StoreError::OutOfBounds {
                offset: start_row * TUPLE_BYTES,
                len: rows * TUPLE_BYTES,
                capacity: self.rows * TUPLE_BYTES,
            });
        }
        let bytes = self.region.try_read(
            DATA_OFF + start_row * TUPLE_BYTES,
            rows * TUPLE_BYTES,
            AccessHint::Sequential,
        )?;
        Ok(bytes
            .chunks(TUPLE_BYTES as usize)
            .map(decode_tuple)
            .collect())
    }

    fn encode_manifest(&self) -> [u8; MANIFEST_SLOT as usize] {
        let mut buf = [0u8; MANIFEST_SLOT as usize];
        buf[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..24].copy_from_slice(&self.rows.to_le_bytes());
        buf[24..32].copy_from_slice(&self.checksum.to_le_bytes());
        let self_sum = fnv64(FNV_INIT, &buf[..MANIFEST_HDR]);
        buf[32..40].copy_from_slice(&self_sum.to_le_bytes());
        buf
    }

    /// Parse a slot. `Ok(None)` = slot empty (all zero), `Err(())` = slot
    /// holds bytes that fail validation.
    fn parse_manifest(&self, slot: u64) -> std::result::Result<Option<Manifest>, ()> {
        let bytes = self
            .region
            .read(slot * MANIFEST_SLOT, MANIFEST_SLOT, AccessHint::Random);
        if bytes.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        if u64_at(0) != MAGIC {
            return Err(());
        }
        let self_sum = fnv64(FNV_INIT, &bytes[..MANIFEST_HDR]);
        if u64_at(32) != self_sum {
            return Err(());
        }
        let m = Manifest {
            seq: u64_at(8),
            rows: u64_at(16),
            data_checksum: u64_at(24),
        };
        if m.rows > self.capacity_rows() || m.seq == 0 {
            return Err(());
        }
        Ok(Some(m))
    }

    fn data_checksum(&self, rows: u64) -> u64 {
        if rows == 0 {
            return FNV_INIT;
        }
        fnv64(
            FNV_INIT,
            self.region
                .read(DATA_OFF, rows * TUPLE_BYTES, AccessHint::Sequential),
        )
    }

    /// Recovery proper: pick the best valid manifest, durably seal invalid
    /// slots, durably zero the torn tail. Every repair is fenced, so
    /// recovery is a fixpoint — running it again (or crashing right after
    /// it) changes nothing.
    fn recover(&mut self) -> CheckpointRecovery {
        let mut best: Option<Manifest> = None;
        let mut invalid_manifests_sealed = 0u32;
        let mut repaired = false;
        for slot in 0..2u64 {
            let parsed = self.parse_manifest(slot);
            let valid = match parsed {
                Ok(None) => true,
                Ok(Some(m)) => {
                    if self.data_checksum(m.rows) == m.data_checksum {
                        if best.is_none_or(|b| m.seq > b.seq) {
                            best = Some(m);
                        }
                        true
                    } else {
                        false
                    }
                }
                Err(()) => false,
            };
            if !valid {
                self.region
                    .try_ntstore(
                        slot * MANIFEST_SLOT,
                        &[0u8; MANIFEST_SLOT as usize],
                        AccessHint::Random,
                    )
                    .expect("manifest slot in bounds");
                invalid_manifests_sealed += 1;
                repaired = true;
            }
        }

        self.rows = best.map_or(0, |m| m.rows);
        self.seq = best.map_or(0, |m| m.seq);
        self.checksum = best.map_or(FNV_INIT, |m| m.data_checksum);

        // Truncate the torn tail: any non-zero byte beyond the durable rows
        // is a half-written batch the old manifest never covered.
        let mut torn_bytes_zeroed = 0u64;
        let tail_start = DATA_OFF + self.rows * TUPLE_BYTES;
        let tail_len = self.region.len() - tail_start;
        if tail_len > 0 {
            const CHUNK: u64 = 4096;
            let zeros = [0u8; CHUNK as usize];
            let mut off = tail_start;
            while off < tail_start + tail_len {
                let n = CHUNK.min(tail_start + tail_len - off);
                let dirty = self
                    .region
                    .read(off, n, AccessHint::Sequential)
                    .iter()
                    .any(|&b| b != 0);
                if dirty {
                    self.region
                        .try_ntstore(off, &zeros[..n as usize], AccessHint::Sequential)
                        .expect("tail in bounds");
                    torn_bytes_zeroed += n;
                    repaired = true;
                }
                off += n;
            }
        }
        if repaired {
            self.region.sfence();
        }
        CheckpointRecovery {
            rows: self.rows,
            seq: self.seq,
            torn_bytes_zeroed,
            invalid_manifests_sealed,
        }
    }
}

/// Checkpoint every tuple of a [`crate::columnar::ColumnarFact`] into a new
/// store (single-threaded scan keeps row order).
pub fn checkpoint_fact(
    ns: &Namespace,
    fact: &crate::columnar::ColumnarFact,
) -> Result<CheckpointStore> {
    let batches = fact.scan(&crate::columnar::Column::ALL, 1, Vec::new, |acc, t| {
        acc.push(*t)
    });
    let tuples: Vec<ColTuple> = batches.into_iter().flatten().collect();
    let mut store = CheckpointStore::create(ns, tuples.len() as u64)?;
    store.append(&tuples)?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use pmem_sim::topology::SocketId;

    fn tuple(i: u64) -> ColTuple {
        ColTuple {
            orderdate: 19930101 + i as u32,
            partkey: i as u32 * 3,
            suppkey: i as u32 * 5,
            custkey: i as u32 * 7,
            quantity: (i % 50) as u8,
            discount: (i % 10) as u8,
            extendedprice: i as u32 * 11,
            revenue: i as u32 * 13,
            supplycost: i as u32 * 17,
        }
    }

    fn store(capacity: u64) -> CheckpointStore {
        let ns = Namespace::devdax(SocketId(0), 16 << 20);
        CheckpointStore::create(&ns, capacity).unwrap()
    }

    #[test]
    fn tuple_encoding_round_trips() {
        for i in [0, 1, 7, 1000] {
            let t = tuple(i);
            assert_eq!(decode_tuple(&encode_tuple(&t)), t);
        }
    }

    #[test]
    fn append_read_and_survive_a_clean_crash() {
        let mut s = store(64);
        let batch: Vec<ColTuple> = (0..10).map(tuple).collect();
        s.append(&batch).unwrap();
        s.append(&(10..16).map(tuple).collect::<Vec<_>>()).unwrap();
        assert_eq!(s.rows(), 16);
        let report = s.crash_and_recover();
        assert_eq!(report.rows, 16);
        assert_eq!(report.seq, 2);
        assert_eq!(report.torn_bytes_zeroed, 0);
        assert_eq!(report.invalid_manifests_sealed, 0);
        let back = s.read_all();
        assert_eq!(back.len(), 16);
        for (i, t) in back.iter().enumerate() {
            assert_eq!(*t, tuple(i as u64));
        }
    }

    #[test]
    fn unpublished_batch_is_truncated_as_a_torn_tail() {
        let mut s = store(64);
        s.append(&(0..4).map(tuple).collect::<Vec<_>>()).unwrap();
        // Half an append: data fenced, manifest never written (the crash
        // window between the two publication fences).
        let stray: Vec<u8> = (4..8).flat_map(|i| encode_tuple(&tuple(i))).collect();
        s.region
            .try_ntstore(DATA_OFF + 4 * TUPLE_BYTES, &stray, AccessHint::Sequential)
            .unwrap();
        s.region.sfence();
        let report = s.crash_and_recover();
        assert_eq!(report.rows, 4, "unpublished rows must not surface");
        assert!(report.torn_bytes_zeroed > 0, "tail must be truncated");
        assert_eq!(s.read_all().len(), 4);
        // The zeroing was durable: a second pass finds a clean tail.
        let again = s.crash_and_recover();
        assert_eq!(again.rows, 4);
        assert_eq!(again.torn_bytes_zeroed, 0, "recovery is a fixpoint");
    }

    #[test]
    fn corrupted_manifest_slot_is_sealed_and_the_other_wins() {
        let mut s = store(64);
        s.append(&(0..3).map(tuple).collect::<Vec<_>>()).unwrap(); // seq 1 → slot 1
        s.append(&(3..5).map(tuple).collect::<Vec<_>>()).unwrap(); // seq 2 → slot 0
                                                                   // Corrupt slot 1 (the older manifest) with garbage.
        s.region
            .try_ntstore(MANIFEST_SLOT, &[0xABu8; 16], AccessHint::Random)
            .unwrap();
        s.region.sfence();
        let report = s.crash_and_recover();
        assert_eq!(report.rows, 5, "newest intact manifest must win");
        assert_eq!(report.invalid_manifests_sealed, 1);
        // Sealing was durable.
        assert_eq!(s.crash_and_recover().invalid_manifests_sealed, 0);
    }

    #[test]
    fn recovery_on_an_empty_region_is_empty() {
        let ns = Namespace::devdax(SocketId(0), 1 << 20);
        let region = ns.alloc_region(DATA_OFF + 4 * TUPLE_BYTES).unwrap();
        let (s, report) = CheckpointStore::open(region).unwrap();
        assert_eq!(report.rows, 0);
        assert_eq!(report.seq, 0);
        assert!(s.read_all().is_empty());
    }

    #[test]
    fn open_rejects_volatile_regions() {
        let ns = Namespace::dram(SocketId(0), 1 << 20);
        let region = ns.alloc_region(DATA_OFF + TUPLE_BYTES).unwrap();
        assert!(CheckpointStore::open(region).is_err());
        assert!(CheckpointStore::create(&ns, 4).is_err());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut s = store(4);
        assert!(s.append(&(0..4).map(tuple).collect::<Vec<_>>()).is_ok());
        assert!(matches!(
            s.append(&[tuple(9)]),
            Err(StoreError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn validate_and_read_range_see_poison_and_bounds() {
        let mut s = store(64);
        s.append(&(0..16).map(tuple).collect::<Vec<_>>()).unwrap();
        assert_eq!(s.validate(), Ok(true));
        assert_eq!(
            s.read_range(4, 3).unwrap(),
            (4..7).map(tuple).collect::<Vec<_>>()
        );
        assert!(matches!(
            s.read_range(10, 7),
            Err(StoreError::OutOfBounds { .. })
        ));
        assert!(s.read_range(16, 0).unwrap().is_empty());
        // A media error inside the durable prefix surfaces typed, both from
        // validate() and from a targeted range fetch.
        s.region.inject_poison(DATA_OFF + 5 * TUPLE_BYTES, 1);
        assert!(matches!(s.validate(), Err(StoreError::Poisoned { .. })));
        assert!(matches!(
            s.read_range(0, 16),
            Err(StoreError::Poisoned { .. })
        ));
    }

    #[test]
    fn checkpoint_fact_round_trips_the_columnar_table() {
        let data = crate::datagen::generate(0.001, 42);
        let ns = Namespace::devdax(SocketId(0), 64 << 20);
        let fact = crate::columnar::ColumnarFact::load(&ns, &data).unwrap();
        let store = checkpoint_fact(&ns, &fact).unwrap();
        assert_eq!(store.rows(), fact.rows());
        let back = store.read_all();
        assert_eq!(back.len() as u64, fact.rows());
        let rev: u64 = back.iter().map(|t| t.revenue as u64).sum();
        let expected: u64 = data.lineorder.iter().map(|l| l.revenue as u64).sum();
        assert_eq!(rev, expected);
    }
}

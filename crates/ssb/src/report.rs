//! Paper-facing SSB reports: Figure 14 (a: Hyrise-like, b: handcrafted)
//! and Table 1 (the Q2.1 optimization ladder), plus the SSD comparison and
//! the §7 price/performance note.
//!
//! Each report executes the real engine at a small scale factor and prices
//! the observed traffic at the paper's scale (sf 50 for Figure 14a, sf 100
//! for Figure 14b and Table 1) via [`timing`](crate::timing).

use pmem_sim::sched::Pinning;
use pmem_sim::Simulation;
use pmem_store::Result;

use crate::queries::{run_query, QueryId};
use crate::storage::{EngineMode, SsbStore, StorageDevice};
use crate::timing::{estimate, estimate_ssd, TimingConfig, TimingParams};

/// Simulated PMEM and DRAM seconds for one query.
#[derive(Debug, Clone, Copy)]
pub struct QueryTimes {
    /// Which query.
    pub query: QueryId,
    /// Simulated seconds on PMEM.
    pub pmem_seconds: f64,
    /// Simulated seconds on DRAM.
    pub dram_seconds: f64,
}

impl QueryTimes {
    /// PMEM/DRAM slowdown.
    pub fn ratio(&self) -> f64 {
        self.pmem_seconds / self.dram_seconds
    }
}

/// One reproduced half of Figure 14.
#[derive(Debug, Clone)]
pub struct SsbFigure {
    /// "fig14a" or "fig14b".
    pub id: &'static str,
    /// Per-query times.
    pub rows: Vec<QueryTimes>,
}

impl SsbFigure {
    /// Average PMEM/DRAM ratio across the 13 queries (the paper's headline
    /// 1.66× / 5.3× numbers).
    pub fn average_ratio(&self) -> f64 {
        self.rows.iter().map(QueryTimes::ratio).sum::<f64>() / self.rows.len() as f64
    }

    /// Worst (max) per-query ratio.
    pub fn max_ratio(&self) -> f64 {
        self.rows.iter().map(QueryTimes::ratio).fold(0.0, f64::max)
    }

    /// Best (min) per-query ratio.
    pub fn min_ratio(&self) -> f64 {
        self.rows
            .iter()
            .map(QueryTimes::ratio)
            .fold(f64::MAX, f64::min)
    }

    /// Average PMEM/DRAM ratio per query flight (1–4), the granularity of
    /// the paper's Figure 14 bars.
    pub fn flight_ratios(&self) -> [f64; 4] {
        let mut sums = [0.0f64; 4];
        let mut counts = [0u32; 4];
        for r in &self.rows {
            let f = r.query.flight() as usize - 1;
            sums[f] += r.ratio();
            counts[f] += 1;
        }
        let mut out = [0.0; 4];
        for f in 0..4 {
            out[f] = sums[f] / counts[f].max(1) as f64;
        }
        out
    }

    /// Aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "== {} ==\n{:>6} {:>12} {:>12} {:>8}\n",
            self.id, "query", "PMEM [s]", "DRAM [s]", "ratio"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>6} {:>12.2} {:>12.2} {:>8.2}\n",
                r.query.name(),
                r.pmem_seconds,
                r.dram_seconds,
                r.ratio()
            ));
        }
        out.push_str(&format!(
            "{:>6} {:>12} {:>12} {:>8.2}\n",
            "AVG",
            "",
            "",
            self.average_ratio()
        ));
        out
    }
}

/// Run all 13 queries in one mode and price them for PMEM and DRAM at the
/// target scale factor.
fn ssb_figure(
    id: &'static str,
    mode: EngineMode,
    run_sf: f64,
    target_sf: f64,
    run_threads: u32,
    seed: u64,
) -> Result<SsbFigure> {
    // Execute once on PMEM-class storage; traffic is device-independent.
    let device = match mode {
        EngineMode::Aware => StorageDevice::PmemFsdax, // §6.2: Dash needs fsdax
        EngineMode::Unaware => StorageDevice::PmemFsdax,
    };
    let store = SsbStore::generate_and_load(run_sf, seed, mode, device)?;
    let sim = Simulation::paper_default();
    let params = TimingParams::default();
    let (pmem_cfg, dram_cfg) = match mode {
        EngineMode::Aware => (
            TimingConfig::paper_aware(device).sf(run_sf, target_sf),
            TimingConfig::paper_aware(StorageDevice::Dram).sf(run_sf, target_sf),
        ),
        EngineMode::Unaware => (
            TimingConfig::paper_unaware(device).sf(run_sf, target_sf),
            TimingConfig::paper_unaware(StorageDevice::Dram).sf(run_sf, target_sf),
        ),
    };

    let mut rows = Vec::with_capacity(13);
    for q in QueryId::ALL {
        store.reset_trackers();
        let outcome = run_query(&store, q, run_threads)?;
        let pmem = estimate(&outcome, mode, &pmem_cfg, &sim, &params).total_seconds;
        let dram = estimate(&outcome, mode, &dram_cfg, &sim, &params).total_seconds;
        rows.push(QueryTimes {
            query: q,
            pmem_seconds: pmem,
            dram_seconds: dram,
        });
    }
    Ok(SsbFigure { id, rows })
}

/// Figure 14a: the PMEM-unaware (Hyrise-like) engine at sf 50.
/// Paper: PMEM 5.3× slower on average (2.5×–7.7×).
pub fn fig14a_unaware(run_sf: f64, run_threads: u32) -> Result<SsbFigure> {
    ssb_figure(
        "fig14a",
        EngineMode::Unaware,
        run_sf,
        50.0,
        run_threads,
        414,
    )
}

/// Figure 14b: the handcrafted PMEM-aware engine at sf 100.
/// Paper: PMEM 1.66× slower on average (best Q3.3 1.4×, worst Q1.3 3×).
pub fn fig14b_aware(run_sf: f64, run_threads: u32) -> Result<SsbFigure> {
    ssb_figure("fig14b", EngineMode::Aware, run_sf, 100.0, run_threads, 414)
}

/// One step of the Table 1 optimization ladder.
#[derive(Debug, Clone, Copy)]
pub struct LadderStep {
    /// Step label ("1 Thr.", "18 Thr.", "2-Socket", "NUMA", "Pinning").
    pub label: &'static str,
    /// Simulated PMEM seconds.
    pub pmem_seconds: f64,
    /// Simulated DRAM seconds.
    pub dram_seconds: f64,
}

/// Table 1: Q2.1 at sf 100 under the staged optimizations, plus the SSD
/// configuration (paper: 22.8 s) as a final reference row.
pub fn table1_ladder(run_sf: f64, run_threads: u32) -> Result<(Vec<LadderStep>, f64)> {
    let store =
        SsbStore::generate_and_load(run_sf, 414, EngineMode::Aware, StorageDevice::PmemFsdax)?;
    store.reset_trackers();
    let outcome = run_query(&store, QueryId::Q2_1, run_threads)?;
    let sim = Simulation::paper_default();
    let params = TimingParams::default();

    let steps: [(&'static str, u32, u8, Pinning); 5] = [
        ("1 Thr.", 1, 1, Pinning::Cores),
        ("18 Thr.", 18, 1, Pinning::Cores),
        ("2-Socket", 36, 2, Pinning::None),
        ("NUMA", 36, 2, Pinning::NumaRegion),
        ("Pinning", 36, 2, Pinning::Cores),
    ];
    let mut ladder = Vec::with_capacity(steps.len());
    for (label, threads, sockets, pinning) in steps {
        let pmem_cfg = TimingConfig::paper_aware(StorageDevice::PmemFsdax)
            .sf(run_sf, 100.0)
            .parallelism(threads, sockets)
            .pinning(pinning);
        let dram_cfg = TimingConfig::paper_aware(StorageDevice::Dram)
            .sf(run_sf, 100.0)
            .parallelism(threads, sockets)
            .pinning(pinning);
        ladder.push(LadderStep {
            label,
            pmem_seconds: estimate(&outcome, EngineMode::Aware, &pmem_cfg, &sim, &params)
                .total_seconds,
            dram_seconds: estimate(&outcome, EngineMode::Aware, &dram_cfg, &sim, &params)
                .total_seconds,
        });
    }

    let ssd_cfg = TimingConfig::paper_aware(StorageDevice::Dram)
        .sf(run_sf, 100.0)
        .parallelism(36, 2)
        .pinning(Pinning::Cores);
    let ssd = estimate_ssd(&outcome, EngineMode::Aware, &ssd_cfg, &sim, &params).total_seconds;
    Ok((ladder, ssd))
}

/// Scan-time projection of the columnar extension, per query.
#[derive(Debug, Clone, Copy)]
pub struct ColumnarRow {
    /// Which query.
    pub query: QueryId,
    /// Row-format scan seconds on PMEM (sf 100, both sockets).
    pub row_pmem: f64,
    /// Columnar scan seconds on PMEM.
    pub col_pmem: f64,
    /// Row-format scan seconds on DRAM.
    pub row_dram: f64,
    /// Columnar scan seconds on DRAM.
    pub col_dram: f64,
}

/// Columnar-extension experiment: scan traffic per query in the paper's
/// 128 B row format vs a column-projected layout, priced on PMEM and DRAM
/// at sf 100. The punchline: projected columnar scans on PMEM are faster
/// than full-row scans on DRAM — layout buys back more than the device
/// gap costs.
pub fn columnar_scan_report(target_sf: f64) -> Vec<ColumnarRow> {
    use pmem_sim::params::DeviceClass;
    use pmem_sim::workload::{Placement, WorkloadSpec};

    let sim = Simulation::paper_default();
    let rows = crate::datagen::cardinalities(target_sf).lineorder as f64;
    let bw = |device| {
        sim.evaluate_steady(
            &WorkloadSpec::seq_read(device, 4096, 18).placement(Placement::BothNear),
        )
        .total_bandwidth
        .bytes_per_sec()
    };
    let pmem = bw(DeviceClass::Pmem);
    let dram = bw(DeviceClass::Dram);

    crate::columnar::scan_comparisons()
        .into_iter()
        .map(|c| ColumnarRow {
            query: c.query,
            row_pmem: rows * c.row_bytes as f64 / pmem,
            col_pmem: rows * c.column_bytes as f64 / pmem,
            row_dram: rows * c.row_bytes as f64 / dram,
            col_dram: rows * c.column_bytes as f64 / dram,
        })
        .collect()
}

/// One configuration row of the ingest experiment.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// Configuration label.
    pub label: &'static str,
    /// Sustained ingest bandwidth.
    pub bandwidth_gib_s: f64,
    /// Seconds to ingest the target-sf fact table.
    pub seconds: f64,
}

/// Data-import experiment (§4's motivation: "an important feature of data
/// warehouses is an efficient data import"). Executes a real ingest at
/// `run_sf` (sequential ntstore + sfence through the store), then prices
/// the target-sf volume under write configurations ranging from naive to
/// the paper's best practice.
pub fn ingest_report(run_sf: f64, target_sf: f64) -> Result<Vec<IngestRow>> {
    use pmem_sim::params::DeviceClass;
    use pmem_sim::workload::{Pattern, Placement, WorkloadSpec};

    // Execute the load for real so the traffic signature is verified…
    let store =
        SsbStore::generate_and_load(run_sf, 414, EngineMode::Aware, StorageDevice::PmemDevdax)?;
    let snap = store.shards[0].fact_ns.tracker().snapshot();
    assert_eq!(snap.rand_write_bytes, 0, "ingest must be sequential");

    // …then price the paper-scale volume per configuration.
    let bytes =
        (crate::datagen::cardinalities(target_sf).lineorder * crate::schema::LINEORDER_ROW) as f64;
    let sim = Simulation::paper_default();
    let configs: [(&'static str, DeviceClass, u64, u32); 5] = [
        ("naive: 36 thr x 1 MB", DeviceClass::Pmem, 1 << 20, 18),
        ("36 thr x 4 KB", DeviceClass::Pmem, 4096, 18),
        ("BP: 6 thr x 4 KB", DeviceClass::Pmem, 4096, 6),
        ("BP: 4 thr x 4 KB", DeviceClass::Pmem, 4096, 4),
        ("DRAM: 18 thr x 4 KB", DeviceClass::Dram, 4096, 18),
    ];
    Ok(configs
        .iter()
        .map(|(label, device, access, threads_per_socket)| {
            let spec = WorkloadSpec::seq_write(*device, *access, *threads_per_socket)
                .placement(Placement::BothNear)
                .pattern(Pattern::SequentialIndividual);
            let bw = sim.evaluate_steady(&spec).total_bandwidth;
            IngestRow {
                label,
                bandwidth_gib_s: bw.gib_s(),
                seconds: bytes / bw.bytes_per_sec(),
            }
        })
        .collect())
}

/// §7 price/performance comparison.
#[derive(Debug, Clone, Copy)]
pub struct CostComparison {
    /// System PMEM capacity priced (1.5 TB).
    pub capacity_tb: f64,
    /// PMEM cost in USD (12 × $575 for 128 GB DIMMs).
    pub pmem_usd: f64,
    /// DRAM cost in USD (~$700 per 64 GB module).
    pub dram_usd: f64,
    /// Average SSB slowdown of PMEM vs DRAM.
    pub performance_ratio: f64,
}

impl CostComparison {
    /// The paper's numbers: $6 900 vs $16 800, 2.4× cost for 1.66× speed.
    pub fn paper(avg_ssb_ratio: f64) -> Self {
        CostComparison {
            capacity_tb: 1.5,
            pmem_usd: 12.0 * 575.0,
            dram_usd: 24.0 * 700.0,
            performance_ratio: avg_ssb_ratio,
        }
    }

    /// DRAM-cost / PMEM-cost (≈2.4×).
    pub fn cost_ratio(&self) -> f64 {
        self.dram_usd / self.pmem_usd
    }

    /// Whether PMEM wins on price/performance (cost ratio above the
    /// performance penalty).
    pub fn pmem_wins(&self) -> bool {
        self.cost_ratio() > self.performance_ratio
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    const RUN_SF: f64 = 0.01;

    #[test]
    fn fig14b_reproduces_the_aware_gap() {
        let fig = fig14b_aware(RUN_SF, 8).unwrap();
        assert_eq!(fig.rows.len(), 13);
        let avg = fig.average_ratio();
        assert!((1.2..2.6).contains(&avg), "aware avg ratio {avg}");
        assert!(fig.min_ratio() >= 1.0, "PMEM never beats DRAM");
        // QF1 queries are scan-bound: PMEM pays the full bandwidth gap.
        let q11 = &fig.rows[0];
        assert!(q11.ratio() > 1.2, "Q1.1 ratio {}", q11.ratio());
        let table = fig.to_table();
        assert!(table.contains("Q2.1") && table.contains("AVG"));
    }

    #[test]
    fn fig14a_reproduces_the_unaware_gap() {
        let fig = fig14a_unaware(RUN_SF, 8).unwrap();
        let avg = fig.average_ratio();
        assert!(avg > 2.2, "unaware avg ratio {avg}");
        // The unaware gap must be clearly larger than the aware gap.
        let aware = fig14b_aware(RUN_SF, 8).unwrap();
        assert!(
            avg > 1.4 * aware.average_ratio(),
            "unaware {avg} vs aware {}",
            aware.average_ratio()
        );
    }

    #[test]
    fn table1_ladder_is_monotone_and_lands_near_paper() {
        let (ladder, ssd) = table1_ladder(RUN_SF, 8).unwrap();
        assert_eq!(ladder.len(), 5);
        // Each optimization step improves PMEM time.
        for w in ladder.windows(2) {
            assert!(
                w[1].pmem_seconds < w[0].pmem_seconds * 1.02,
                "{} ({}) -> {} ({}) did not improve",
                w[0].label,
                w[0].pmem_seconds,
                w[1].label,
                w[1].pmem_seconds
            );
        }
        // Magnitudes: 1 thread in the hundreds of seconds, final single
        // digits (paper: 306.7 → 8.6 s).
        assert!(
            ladder[0].pmem_seconds > 100.0,
            "1-thread {}",
            ladder[0].pmem_seconds
        );
        assert!(
            ladder[4].pmem_seconds < 15.0,
            "final {}",
            ladder[4].pmem_seconds
        );
        // SSD configuration is slower than optimized PMEM by >2×
        // (paper: 22.8 s vs 8.6 s = 2.6×).
        let ratio = ssd / ladder[4].pmem_seconds;
        assert!((1.8..5.0).contains(&ratio), "SSD/PMEM ratio {ratio}");
    }

    #[test]
    fn flight_ratios_cover_all_four_flights() {
        let fig = fig14b_aware(RUN_SF, 8).unwrap();
        let flights = fig.flight_ratios();
        for (i, r) in flights.iter().enumerate() {
            assert!(*r >= 1.0, "flight {} ratio {r}", i + 1);
        }
        // QF1 (scan-bound) carries the widest gap in our reproduction.
        assert!(flights[0] >= flights[1] - 0.05);
    }

    #[test]
    fn columnar_pmem_scans_beat_row_dram_scans() {
        let rows = columnar_scan_report(100.0);
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(r.col_pmem < r.row_pmem / 5.0, "{}", r.query.name());
            // The extension headline: projected PMEM scan < full-row DRAM.
            assert!(
                r.col_pmem < r.row_dram,
                "{}: columnar PMEM {} vs row DRAM {}",
                r.query.name(),
                r.col_pmem,
                r.row_dram
            );
        }
        // QF1 magnitudes: 70 GB row scan ≈ 0.87 s, 5.5 GB projection ≈ 70 ms.
        let q11 = &rows[0];
        assert!((0.7..1.1).contains(&q11.row_pmem), "row {}", q11.row_pmem);
        assert!(q11.col_pmem < 0.1, "col {}", q11.col_pmem);
    }

    #[test]
    fn ingest_best_practice_beats_naive() {
        let rows = ingest_report(0.005, 100.0).unwrap();
        let find = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let naive = find("naive");
        let bp = find("BP: 6");
        assert!(
            bp.bandwidth_gib_s > 1.8 * naive.bandwidth_gib_s,
            "best practice {} vs naive {}",
            bp.bandwidth_gib_s,
            naive.bandwidth_gib_s
        );
        // 70 GB of sf-100 fact data at ~25 GB/s across two sockets ≈ 3 s.
        assert!((2.0..5.0).contains(&bp.seconds), "BP ingest {}", bp.seconds);
        // DRAM ingest is still several times faster (paper §4.2).
        let dram = find("DRAM");
        assert!(dram.bandwidth_gib_s > 2.5 * bp.bandwidth_gib_s);
    }

    #[test]
    fn cost_comparison_matches_section_7() {
        let cost = CostComparison::paper(1.66);
        assert!((cost.pmem_usd - 6900.0).abs() < 1.0);
        assert!((cost.dram_usd - 16800.0).abs() < 1.0);
        assert!((cost.cost_ratio() - 2.43).abs() < 0.05);
        assert!(cost.pmem_wins());
        assert!(!CostComparison::paper(3.0).pmem_wins());
    }
}

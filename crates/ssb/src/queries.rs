//! The 13 Star Schema Benchmark queries.
//!
//! Every query follows the paper's plan shape: build a hash index per
//! joined dimension (key → dictionary-encoded payload, like the paper's
//! Dash-based joins), then stream the fact table once, probing the indexes
//! per row, filtering on the probed payloads, and aggregating into
//! per-thread group maps. The **aware** engine pipelines scan+probe+agg
//! with Dash indexes across both sockets; the **unaware** engine (see
//! [`hyrise`](crate::hyrise)) materializes operator-at-a-time with chained
//! indexes on one socket.

use pmem_store::{Result, TrackerSnapshot};

use crate::engine::{
    build_index, date_payload, date_week, date_year, date_yearmonthnum, geo_city, geo_nation,
    geo_payload, geo_region, part_brand, part_category, part_mfgr, part_payload, scan_fact,
    spill_result, GroupAgg, JoinIndex, OpCounters,
};
use crate::schema::{
    city_of, DateDim, GeoDim, Lineorder, PartDim, Region, NATION_UNITED_KINGDOM,
    NATION_UNITED_STATES,
};
use crate::storage::{EngineMode, SocketShard, SsbStore};

/// Identifier of an SSB query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum QueryId {
    /// Query flight 1: scan-heavy revenue sums.
    Q1_1,
    /// Q1.2.
    Q1_2,
    /// Q1.3.
    Q1_3,
    /// Query flight 2: part × supplier joins grouped by year/brand.
    Q2_1,
    /// Q2.2.
    Q2_2,
    /// Q2.3.
    Q2_3,
    /// Query flight 3: customer × supplier geography joins.
    Q3_1,
    /// Q3.2.
    Q3_2,
    /// Q3.3.
    Q3_3,
    /// Q3.4.
    Q3_4,
    /// Query flight 4: profit queries over all four dimensions.
    Q4_1,
    /// Q4.2.
    Q4_2,
    /// Q4.3.
    Q4_3,
}

impl QueryId {
    /// All 13 queries in paper order.
    pub const ALL: [QueryId; 13] = [
        QueryId::Q1_1,
        QueryId::Q1_2,
        QueryId::Q1_3,
        QueryId::Q2_1,
        QueryId::Q2_2,
        QueryId::Q2_3,
        QueryId::Q3_1,
        QueryId::Q3_2,
        QueryId::Q3_3,
        QueryId::Q3_4,
        QueryId::Q4_1,
        QueryId::Q4_2,
        QueryId::Q4_3,
    ];

    /// Query flight (1–4).
    pub fn flight(self) -> u8 {
        match self {
            QueryId::Q1_1 | QueryId::Q1_2 | QueryId::Q1_3 => 1,
            QueryId::Q2_1 | QueryId::Q2_2 | QueryId::Q2_3 => 2,
            QueryId::Q3_1 | QueryId::Q3_2 | QueryId::Q3_3 | QueryId::Q3_4 => 3,
            _ => 4,
        }
    }

    /// Display name ("Q2.1").
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1_1 => "Q1.1",
            QueryId::Q1_2 => "Q1.2",
            QueryId::Q1_3 => "Q1.3",
            QueryId::Q2_1 => "Q2.1",
            QueryId::Q2_2 => "Q2.2",
            QueryId::Q2_3 => "Q2.3",
            QueryId::Q3_1 => "Q3.1",
            QueryId::Q3_2 => "Q3.2",
            QueryId::Q3_3 => "Q3.3",
            QueryId::Q3_4 => "Q3.4",
            QueryId::Q4_1 => "Q4.1",
            QueryId::Q4_2 => "Q4.2",
            QueryId::Q4_3 => "Q4.3",
        }
    }
}

/// Traffic observed during one query, split by phase and namespace group.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTraffic {
    /// Dimension-table scans + index writes during the build phase.
    pub build: TrackerSnapshot,
    /// Index traffic during the probe phase (random reads).
    pub probe: TrackerSnapshot,
    /// Fact-table traffic (sequential scan).
    pub fact: TrackerSnapshot,
    /// Intermediate/result traffic.
    pub intermediate: TrackerSnapshot,
    /// Bytes of index structures built (per query, summed over shards).
    pub index_bytes: u64,
    /// Index bytes split by dimension (date, cust, supp, part): the date
    /// table is sf-invariant, customer/supplier grow linearly, part grows
    /// logarithmically — scaling must respect that (timing model).
    pub index_bytes_by_dim: [u64; 4],
}

impl PhaseTraffic {
    /// All application-level bytes read across the phases (scan + build +
    /// probe + intermediate) — the read demand a serving scheduler has to
    /// price.
    pub fn read_bytes(&self) -> u64 {
        self.build.read_bytes()
            + self.probe.read_bytes()
            + self.fact.read_bytes()
            + self.intermediate.read_bytes()
    }

    /// All application-level bytes written across the phases (index build,
    /// aggregation spill).
    pub fn write_bytes(&self) -> u64 {
        self.build.write_bytes()
            + self.probe.write_bytes()
            + self.fact.write_bytes()
            + self.intermediate.write_bytes()
    }

    /// Bytes read by the fact-table scan alone — the part a shared scan
    /// amortizes across batched queries.
    pub fn fact_read_bytes(&self) -> u64 {
        self.fact.read_bytes()
    }
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Which query ran.
    pub query: QueryId,
    /// Sorted (group key, aggregate) rows; Q1.x return one row with key 0.
    pub rows: Vec<(u64, i64)>,
    /// Operator counters.
    pub counters: OpCounters,
    /// Phase traffic for the timing model.
    pub traffic: PhaseTraffic,
    /// Threads used.
    pub threads: u32,
}

/// Per-shard index set a query plan builds.
#[derive(Default)]
pub(crate) struct ShardIndexes {
    pub(crate) date: Option<JoinIndex>,
    pub(crate) cust: Option<JoinIndex>,
    pub(crate) supp: Option<JoinIndex>,
    pub(crate) part: Option<JoinIndex>,
    pub(crate) inserts: u64,
    /// Index bytes per dimension (date, cust, supp, part) — the timing
    /// model scales each by its own cardinality growth.
    pub(crate) bytes_by_dim: [u64; 4],
}

/// What one query needs, expressed as payload predicates. `None` means the
/// dimension is not joined at all.
pub(crate) struct Plan {
    pub(crate) date: Option<fn(u64) -> bool>,
    pub(crate) cust: Option<fn(u64) -> bool>,
    pub(crate) supp: Option<fn(u64) -> bool>,
    pub(crate) part: Option<fn(u64) -> bool>,
    /// Row-local predicate (quantity/discount filters of QF1).
    pub(crate) row: fn(&Lineorder) -> bool,
    /// Group key from (date, cust, supp, part) payloads (0 when unused).
    pub(crate) group: fn(u64, u64, u64, u64) -> u64,
    /// Aggregate value.
    pub(crate) value: fn(&Lineorder) -> i64,
}

fn always(_: u64) -> bool {
    true
}

fn no_row_filter(_: &Lineorder) -> bool {
    true
}

/// Build the join indexes a plan needs. Both engines index the *full*
/// dimension (key → payload), exactly like the paper's Dash-based joins:
/// predicates are evaluated on the probed payload. Only the index structure
/// differs per mode (Dash vs chained).
pub(crate) fn build_for_plan(
    store: &SsbStore,
    shard: &SocketShard,
    plan: &Plan,
) -> Result<ShardIndexes> {
    let mode = store.mode;
    let mut out = ShardIndexes::default();

    if plan.date.is_some() {
        let used0 = shard.index_ns.used();
        let (idx, n) = build_index(
            &shard.index_ns,
            &shard.dates,
            store.card.date as u64,
            store.card.date as usize,
            mode,
            DateDim::decode,
            |d| Some((d.datekey as u64, date_payload(d))),
        )?;
        out.date = Some(idx);
        out.inserts += n;
        out.bytes_by_dim[0] = shard.index_ns.used() - used0;
    }
    if plan.cust.is_some() {
        let used0 = shard.index_ns.used();
        let (idx, n) = build_index(
            &shard.index_ns,
            &shard.customers,
            store.card.customer as u64,
            store.card.customer as usize,
            mode,
            GeoDim::decode,
            |g| Some((g.key as u64, geo_payload(g))),
        )?;
        out.cust = Some(idx);
        out.inserts += n;
        out.bytes_by_dim[1] = shard.index_ns.used() - used0;
    }
    if plan.supp.is_some() {
        let used0 = shard.index_ns.used();
        let (idx, n) = build_index(
            &shard.index_ns,
            &shard.suppliers,
            store.card.supplier as u64,
            store.card.supplier as usize,
            mode,
            GeoDim::decode,
            |g| Some((g.key as u64, geo_payload(g))),
        )?;
        out.supp = Some(idx);
        out.inserts += n;
        out.bytes_by_dim[2] = shard.index_ns.used() - used0;
    }
    if plan.part.is_some() {
        let used0 = shard.index_ns.used();
        let (idx, n) = build_index(
            &shard.index_ns,
            &shard.parts,
            store.card.part as u64,
            store.card.part as usize,
            mode,
            PartDim::decode,
            |p| Some((p.partkey as u64, part_payload(p))),
        )?;
        out.part = Some(idx);
        out.inserts += n;
        out.bytes_by_dim[3] = shard.index_ns.used() - used0;
    }
    Ok(out)
}

/// Probe an optional index, returning `Some(payload)` if the row survives.
#[inline]
fn probe(
    idx: &Option<JoinIndex>,
    pred: Option<fn(u64) -> bool>,
    key: u64,
    counters: &mut OpCounters,
) -> Option<u64> {
    match (idx, pred) {
        (Some(idx), Some(pred)) => {
            counters.probes += 1;
            let payload = idx.get(key)?;
            pred(payload).then_some(payload)
        }
        _ => Some(0),
    }
}

fn execute_plan(store: &SsbStore, plan: &Plan, threads: u32) -> Result<QueryOutcome> {
    let threads = threads.max(1);
    let per_shard_threads = (threads / store.shards.len() as u32).max(1);

    let snap = |f: &dyn Fn(&SocketShard) -> TrackerSnapshot| -> TrackerSnapshot {
        store
            .shards
            .iter()
            .map(f)
            .fold(TrackerSnapshot::default(), |a, b| a.plus(&b))
    };
    let fact0 = snap(&|s| s.fact_ns.tracker().snapshot());
    let dimidx0 = snap(&|s| {
        s.dim_ns
            .tracker()
            .snapshot()
            .plus(&s.index_ns.tracker().snapshot())
    });
    let index_used0: u64 = store.shards.iter().map(|s| s.index_ns.used()).sum();

    // ---- Build phase (per shard, in parallel) ----
    let shard_indexes: Vec<ShardIndexes> = std::thread::scope(|scope| {
        let handles: Vec<_> = store
            .shards
            .iter()
            .map(|shard| scope.spawn(move || build_for_plan(store, shard, plan)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("build worker"))
            .collect::<Result<Vec<_>>>()
    })?;

    let build_traffic = snap(&|s| {
        s.dim_ns
            .tracker()
            .snapshot()
            .plus(&s.index_ns.tracker().snapshot())
    })
    .since(&dimidx0);
    let index1 = snap(&|s| s.index_ns.tracker().snapshot());
    let index_bytes: u64 =
        store.shards.iter().map(|s| s.index_ns.used()).sum::<u64>() - index_used0;

    // ---- Probe/scan phase (shards in parallel, threads per shard) ----
    let shard_results: Vec<(GroupAgg, OpCounters)> = std::thread::scope(|scope| {
        let handles: Vec<_> = store
            .shards
            .iter()
            .zip(shard_indexes.iter())
            .map(|(shard, indexes)| {
                scope.spawn(move || -> Result<(GroupAgg, OpCounters)> {
                    let accs = scan_fact(
                        &shard.fact,
                        shard.fact_rows,
                        per_shard_threads,
                        || (GroupAgg::default(), OpCounters::default()),
                        |(agg, counters), row| {
                            counters.tuples_scanned += 1;
                            if !(plan.row)(row) {
                                return;
                            }
                            let Some(pp) =
                                probe(&indexes.part, plan.part, row.partkey as u64, counters)
                            else {
                                return;
                            };
                            let Some(sp) =
                                probe(&indexes.supp, plan.supp, row.suppkey as u64, counters)
                            else {
                                return;
                            };
                            let Some(cp) =
                                probe(&indexes.cust, plan.cust, row.custkey as u64, counters)
                            else {
                                return;
                            };
                            let Some(dp) =
                                probe(&indexes.date, plan.date, row.orderdate as u64, counters)
                            else {
                                return;
                            };
                            counters.tuples_selected += 1;
                            agg.add((plan.group)(dp, cp, sp, pp), (plan.value)(row));
                        },
                    )?;
                    let mut agg = GroupAgg::default();
                    let mut counters = OpCounters::default();
                    for (a, c) in accs {
                        agg.merge(a);
                        counters.merge(&c);
                    }
                    Ok((agg, counters))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker"))
            .collect::<Result<Vec<_>>>()
    })?;

    let mut agg = GroupAgg::default();
    let mut counters = OpCounters::default();
    for (a, c) in shard_results {
        agg.merge(a);
        counters.merge(&c);
    }
    counters.agg_updates = agg.updates;
    counters.build_inserts = shard_indexes.iter().map(|s| s.inserts).sum();
    let mut index_bytes_by_dim = [0u64; 4];
    for si in &shard_indexes {
        for (total, bytes) in index_bytes_by_dim.iter_mut().zip(si.bytes_by_dim) {
            *total += bytes;
        }
    }

    let probe_traffic = snap(&|s| s.index_ns.tracker().snapshot()).since(&index1);
    let fact_traffic = snap(&|s| s.fact_ns.tracker().snapshot()).since(&fact0);

    let inter0 = snap(&|s| s.intermediate_ns.tracker().snapshot());
    let rows = agg.into_sorted();
    spill_result(&store.shards[0].intermediate_ns, &rows)?;
    let intermediate = snap(&|s| s.intermediate_ns.tracker().snapshot()).since(&inter0);

    // Return the index namespace budget: the indexes are per-query
    // structures and their regions die with `shard_indexes`, so repeated
    // query executions (benchmark loops) must not exhaust the namespace.
    for (shard, si) in store.shards.iter().zip(&shard_indexes) {
        shard.index_ns.release(si.bytes_by_dim.iter().sum());
    }
    drop(shard_indexes);

    Ok(QueryOutcome {
        query: QueryId::Q1_1, // overwritten by caller
        rows,
        counters,
        traffic: PhaseTraffic {
            build: build_traffic,
            probe: probe_traffic,
            fact: fact_traffic,
            intermediate,
            index_bytes,
            index_bytes_by_dim,
        },
        threads,
    })
}

/// Run one SSB query with the given total thread count. Dispatches to the
/// vectorized pipelined executor (aware mode) or the Hyrise-like
/// operator-at-a-time executor (unaware mode).
pub fn run_query(store: &SsbStore, query: QueryId, threads: u32) -> Result<QueryOutcome> {
    let plan = plan_for(query);
    let mut outcome = match store.mode {
        EngineMode::Aware => execute_plan(store, &plan, threads)?,
        EngineMode::Unaware => crate::hyrise::execute_unaware(store, &plan, threads)?,
    };
    outcome.query = query;
    Ok(outcome)
}

/// The plan (predicates, grouping, aggregate) of each query.
pub(crate) fn plan_for(query: QueryId) -> Plan {
    // Dictionary codes used by the predicates.
    const CAT_MFGR12: u8 = 2; // category_code(1, 2)
    const CAT_MFGR22: u8 = 7; // category_code(2, 2)
    const CAT_MFGR14: u8 = 4; // category_code(1, 4)

    match query {
        // -- QF1: date predicate + row filters, sum(extendedprice×discount)
        QueryId::Q1_1 => Plan {
            date: Some(|d| date_year(d) == 1993),
            cust: None,
            supp: None,
            part: None,
            row: |r| (1..=3).contains(&r.discount) && r.quantity < 25,
            group: |_, _, _, _| 0,
            value: |r| r.extendedprice as i64 * r.discount as i64,
        },
        QueryId::Q1_2 => Plan {
            date: Some(|d| date_yearmonthnum(d) == 199401),
            cust: None,
            supp: None,
            part: None,
            row: |r| (4..=6).contains(&r.discount) && (26..=35).contains(&r.quantity),
            group: |_, _, _, _| 0,
            value: |r| r.extendedprice as i64 * r.discount as i64,
        },
        QueryId::Q1_3 => Plan {
            date: Some(|d| date_year(d) == 1994 && date_week(d) == 6),
            cust: None,
            supp: None,
            part: None,
            row: |r| (5..=7).contains(&r.discount) && (26..=35).contains(&r.quantity),
            group: |_, _, _, _| 0,
            value: |r| r.extendedprice as i64 * r.discount as i64,
        },

        // -- QF2: part × supplier × date, group by (year, brand), sum(revenue)
        QueryId::Q2_1 => Plan {
            date: Some(always),
            cust: None,
            supp: Some(|s| geo_region(s) == Region::America as u8),
            part: Some(|p| part_category(p) == CAT_MFGR12),
            row: no_row_filter,
            group: |d, _, _, p| ((date_year(d) as u64) << 16) | part_brand(p) as u64,
            value: |r| r.revenue as i64,
        },
        QueryId::Q2_2 => Plan {
            date: Some(always),
            cust: None,
            supp: Some(|s| geo_region(s) == Region::Asia as u8),
            part: Some(|p| {
                let lo = PartDim::brand_code(CAT_MFGR22, 21);
                let hi = PartDim::brand_code(CAT_MFGR22, 28);
                (lo..=hi).contains(&part_brand(p))
            }),
            row: no_row_filter,
            group: |d, _, _, p| ((date_year(d) as u64) << 16) | part_brand(p) as u64,
            value: |r| r.revenue as i64,
        },
        QueryId::Q2_3 => Plan {
            date: Some(always),
            cust: None,
            supp: Some(|s| geo_region(s) == Region::Europe as u8),
            part: Some(|p| part_brand(p) == PartDim::brand_code(CAT_MFGR22, 21)),
            row: no_row_filter,
            group: |d, _, _, p| ((date_year(d) as u64) << 16) | part_brand(p) as u64,
            value: |r| r.revenue as i64,
        },

        // -- QF3: customer × supplier geography, sum(revenue)
        QueryId::Q3_1 => Plan {
            date: Some(|d| (1992..=1997).contains(&date_year(d))),
            cust: Some(|c| geo_region(c) == Region::Asia as u8),
            supp: Some(|s| geo_region(s) == Region::Asia as u8),
            part: None,
            row: no_row_filter,
            group: |d, c, s, _| {
                ((geo_nation(c) as u64) << 32)
                    | ((geo_nation(s) as u64) << 16)
                    | date_year(d) as u64
            },
            value: |r| r.revenue as i64,
        },
        QueryId::Q3_2 => Plan {
            date: Some(|d| (1992..=1997).contains(&date_year(d))),
            cust: Some(|c| geo_nation(c) == NATION_UNITED_STATES),
            supp: Some(|s| geo_nation(s) == NATION_UNITED_STATES),
            part: None,
            row: no_row_filter,
            group: |d, c, s, _| {
                ((geo_city(c) as u64) << 32) | ((geo_city(s) as u64) << 16) | date_year(d) as u64
            },
            value: |r| r.revenue as i64,
        },
        QueryId::Q3_3 => Plan {
            date: Some(|d| (1992..=1997).contains(&date_year(d))),
            cust: Some(q3_city_pred),
            supp: Some(q3_city_pred),
            part: None,
            row: no_row_filter,
            group: |d, c, s, _| {
                ((geo_city(c) as u64) << 32) | ((geo_city(s) as u64) << 16) | date_year(d) as u64
            },
            value: |r| r.revenue as i64,
        },
        QueryId::Q3_4 => Plan {
            date: Some(|d| date_yearmonthnum(d) == 199712),
            cust: Some(q3_city_pred),
            supp: Some(q3_city_pred),
            part: None,
            row: no_row_filter,
            group: |d, c, s, _| {
                ((geo_city(c) as u64) << 32) | ((geo_city(s) as u64) << 16) | date_year(d) as u64
            },
            value: |r| r.revenue as i64,
        },

        // -- QF4: all four dimensions, sum(revenue − supplycost)
        QueryId::Q4_1 => Plan {
            date: Some(always),
            cust: Some(|c| geo_region(c) == Region::America as u8),
            supp: Some(|s| geo_region(s) == Region::America as u8),
            part: Some(|p| part_mfgr(p) == 1 || part_mfgr(p) == 2),
            row: no_row_filter,
            group: |d, c, _, _| ((date_year(d) as u64) << 8) | geo_nation(c) as u64,
            value: |r| r.revenue as i64 - r.supplycost as i64,
        },
        QueryId::Q4_2 => Plan {
            date: Some(|d| date_year(d) == 1997 || date_year(d) == 1998),
            cust: Some(|c| geo_region(c) == Region::America as u8),
            supp: Some(|s| geo_region(s) == Region::America as u8),
            part: Some(|p| part_mfgr(p) == 1 || part_mfgr(p) == 2),
            row: no_row_filter,
            group: |d, _, s, p| {
                ((date_year(d) as u64) << 32)
                    | ((geo_nation(s) as u64) << 8)
                    | part_category(p) as u64
            },
            value: |r| r.revenue as i64 - r.supplycost as i64,
        },
        QueryId::Q4_3 => Plan {
            date: Some(|d| date_year(d) == 1997 || date_year(d) == 1998),
            cust: Some(|c| geo_region(c) == Region::America as u8),
            supp: Some(|s| geo_nation(s) == NATION_UNITED_STATES),
            part: Some(|p| part_category(p) == CAT_MFGR14),
            row: no_row_filter,
            group: |d, _, s, p| {
                ((date_year(d) as u64) << 32) | ((geo_city(s) as u64) << 16) | part_brand(p) as u64
            },
            value: |r| r.revenue as i64 - r.supplycost as i64,
        },
    }
}

/// Human-readable plan description (EXPLAIN): which dimensions are joined,
/// in probe order, with the row filter and the engine shape.
pub fn explain(query: QueryId, mode: EngineMode) -> String {
    let plan = plan_for(query);
    let mut dims = Vec::new();
    if plan.part.is_some() {
        dims.push("part");
    }
    if plan.supp.is_some() {
        dims.push("supplier");
    }
    if plan.cust.is_some() {
        dims.push("customer");
    }
    if plan.date.is_some() {
        dims.push("date");
    }
    let engine = match mode {
        EngineMode::Aware => "pipelined scan+probe+agg (Dash indexes, both sockets)",
        EngineMode::Unaware => "operator-at-a-time, materialized (chained indexes, 1 socket)",
    };
    let row_filter = matches!(query, QueryId::Q1_1 | QueryId::Q1_2 | QueryId::Q1_3);
    format!(
        "{name}: scan lineorder{filter} -> probe [{dims}] -> group-aggregate\n  engine: {engine}",
        name = query.name(),
        filter = if row_filter {
            " (with row predicate)"
        } else {
            ""
        },
        dims = dims.join(", "),
    )
}

/// Q3.3/Q3.4 city set: "UNITED KI1" or "UNITED KI5".
fn q3_city_pred(p: u64) -> bool {
    let c = geo_city(p);
    c == city_of(NATION_UNITED_KINGDOM, 1) || c == city_of(NATION_UNITED_KINGDOM, 5)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::storage::{SsbStore, StorageDevice};

    fn store(mode: EngineMode) -> SsbStore {
        SsbStore::generate_and_load(0.005, 21, mode, StorageDevice::PmemDevdax).unwrap()
    }

    #[test]
    fn q1_1_matches_reference() {
        let data = crate::datagen::generate(0.005, 21);
        let st =
            SsbStore::load(&data, 0.005, EngineMode::Aware, StorageDevice::PmemDevdax).unwrap();
        let outcome = run_query(&st, QueryId::Q1_1, 4).unwrap();
        let expected: i64 = data
            .lineorder
            .iter()
            .filter(|r| {
                (19930101..19940101).contains(&r.orderdate)
                    && (1..=3).contains(&r.discount)
                    && r.quantity < 25
            })
            .map(|r| r.extendedprice as i64 * r.discount as i64)
            .sum();
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.rows[0], (0, expected));
    }

    #[test]
    fn aware_and_unaware_agree_on_results() {
        // Same data, both engines: identical answers, different traffic.
        let data = crate::datagen::generate(0.005, 21);
        let aware =
            SsbStore::load(&data, 0.005, EngineMode::Aware, StorageDevice::PmemDevdax).unwrap();
        let unaware =
            SsbStore::load(&data, 0.005, EngineMode::Unaware, StorageDevice::PmemDevdax).unwrap();
        for q in [QueryId::Q2_1, QueryId::Q3_2, QueryId::Q4_1] {
            let a = run_query(&aware, q, 4).unwrap();
            let u = run_query(&unaware, q, 2).unwrap();
            assert_eq!(a.rows, u.rows, "{} results diverge", q.name());
        }
    }

    #[test]
    fn unaware_mode_has_the_hostile_traffic_signature() {
        let data = crate::datagen::generate(0.005, 21);
        let aware =
            SsbStore::load(&data, 0.005, EngineMode::Aware, StorageDevice::PmemDevdax).unwrap();
        let unaware =
            SsbStore::load(&data, 0.005, EngineMode::Unaware, StorageDevice::PmemDevdax).unwrap();
        let a = run_query(&aware, QueryId::Q2_1, 4).unwrap();
        let u = run_query(&unaware, QueryId::Q2_1, 4).unwrap();
        // Unaware (chained) index traffic is dominated by sub-cacheline
        // pointer chases; aware (Dash) probes are 256 B bucket loads.
        let mean_u =
            u.traffic.probe.rand_read_bytes as f64 / u.traffic.probe.read_ops.max(1) as f64;
        let mean_a =
            a.traffic.probe.rand_read_bytes as f64 / a.traffic.probe.read_ops.max(1) as f64;
        assert!(mean_u < 64.0, "unaware probe granule {mean_u}");
        assert!(
            (128.0..512.0).contains(&mean_a),
            "aware probe granule {mean_a}"
        );
        // The unaware engine materializes operator-at-a-time: large
        // intermediate write+read traffic the aware pipeline never creates.
        assert!(
            u.traffic.intermediate.seq_write_bytes
                > 50 * a.traffic.intermediate.seq_write_bytes.max(1),
            "unaware intermediates {} vs aware {}",
            u.traffic.intermediate.seq_write_bytes,
            a.traffic.intermediate.seq_write_bytes
        );
    }

    #[test]
    fn fact_scan_traffic_is_sequential_and_complete() {
        let st = store(EngineMode::Aware);
        let outcome = run_query(&st, QueryId::Q1_2, 8).unwrap();
        assert_eq!(outcome.traffic.fact.rand_read_bytes, 0);
        assert_eq!(
            outcome.traffic.fact.seq_read_bytes,
            st.fact_rows() * crate::schema::LINEORDER_ROW
        );
        assert_eq!(outcome.counters.tuples_scanned, st.fact_rows());
    }

    #[test]
    fn qf1_probes_only_date() {
        let st = store(EngineMode::Aware);
        let outcome = run_query(&st, QueryId::Q1_1, 4).unwrap();
        // Probes happen only for rows passing the row filter.
        assert!(outcome.counters.probes < outcome.counters.tuples_scanned / 2);
        assert!(outcome.traffic.index_bytes > 0);
    }

    #[test]
    fn group_counts_are_plausible() {
        let st = store(EngineMode::Aware);
        // Q2.1 groups by (year, brand): ≤ 7 years × 40 brands.
        let q21 = run_query(&st, QueryId::Q2_1, 4).unwrap();
        assert!(!q21.rows.is_empty());
        assert!(q21.rows.len() <= 7 * 40, "{} groups", q21.rows.len());
        // Q3.1 groups by (c_nation, s_nation, year): ≤ 5×5×6.
        let q31 = run_query(&st, QueryId::Q3_1, 4).unwrap();
        assert!(q31.rows.len() <= 150);
        // Q4.1 groups by (year, c_nation): ≤ 7×5.
        let q41 = run_query(&st, QueryId::Q4_1, 4).unwrap();
        assert!(q41.rows.len() <= 35);
    }

    #[test]
    fn all_thirteen_queries_run() {
        let st = store(EngineMode::Aware);
        for q in QueryId::ALL {
            let outcome = run_query(&st, q, 4).unwrap();
            assert_eq!(outcome.query, q);
            assert_eq!(
                outcome.counters.tuples_scanned,
                st.fact_rows(),
                "{}",
                q.name()
            );
        }
    }

    #[test]
    fn explain_describes_the_plan() {
        let text = explain(QueryId::Q2_1, EngineMode::Aware);
        assert!(text.contains("Q2.1"));
        assert!(text.contains("part, supplier, date"));
        assert!(!text.contains("customer"));
        assert!(text.contains("Dash"));
        let q1 = explain(QueryId::Q1_1, EngineMode::Unaware);
        assert!(q1.contains("row predicate"));
        assert!(q1.contains("materialized"));
        for q in QueryId::ALL {
            assert!(
                explain(q, EngineMode::Aware).contains("date"),
                "{}",
                q.name()
            );
        }
    }

    #[test]
    fn repeated_executions_do_not_exhaust_namespaces() {
        // Benchmark loops run the same query dozens of times on one store;
        // per-query index/intermediate budgets must be returned.
        let data = crate::datagen::generate(0.002, 21);
        for mode in [EngineMode::Aware, EngineMode::Unaware] {
            let st = SsbStore::load(&data, 0.002, mode, StorageDevice::PmemFsdax).unwrap();
            let used_after_first = {
                run_query(&st, QueryId::Q2_1, 2).unwrap();
                st.shards.iter().map(|s| s.index_ns.used()).sum::<u64>()
            };
            for _ in 0..30 {
                run_query(&st, QueryId::Q2_1, 2).unwrap();
            }
            let used_after_many: u64 = st.shards.iter().map(|s| s.index_ns.used()).sum();
            assert_eq!(
                used_after_first, used_after_many,
                "{mode:?}: index namespace budget leaked"
            );
        }
    }

    #[test]
    fn query_metadata() {
        assert_eq!(QueryId::Q1_1.flight(), 1);
        assert_eq!(QueryId::Q2_3.flight(), 2);
        assert_eq!(QueryId::Q3_4.flight(), 3);
        assert_eq!(QueryId::Q4_2.flight(), 4);
        assert_eq!(QueryId::Q4_2.name(), "Q4.2");
        assert_eq!(QueryId::ALL.len(), 13);
    }
}

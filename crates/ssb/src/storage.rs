//! Loading the generated SSB data into (simulated) device storage.
//!
//! The two execution modes mirror the paper's §6:
//!
//! * **Aware** (handcrafted, §6.2): the fact table is striped across the
//!   PMEM of both sockets, the small dimension tables are *replicated* on
//!   both sockets "to avoid far random access", and join indexes are built
//!   per socket — so every thread touches only near memory.
//! * **Unaware** (Hyrise-like, §6.1): everything lives on a single socket,
//!   there is no replication, and indexes are the PMEM-unaware chained
//!   table.
//!
//! Ingestion itself follows the write best practices: sequential
//! non-temporal stores in large chunks, fenced at the end of each table.

use std::sync::Arc;

use pmem_sim::topology::SocketId;
use pmem_store::{AccessHint, Namespace, Region, Result};

use crate::datagen::{cardinalities, Cardinalities, SsbData};
use crate::schema::{DIM_ROW, LINEORDER_ROW};

/// Execution mode (paper §6.1 vs §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// PMEM-aware handcrafted engine: dual-socket striping, replicated
    /// dimensions, Dash join indexes, pinned threads.
    Aware,
    /// PMEM-unaware engine (Hyrise stand-in): single socket, chained-hash
    /// join indexes, no NUMA awareness.
    Unaware,
}

/// Which device backs the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageDevice {
    /// App Direct PMEM via devdax.
    PmemDevdax,
    /// App Direct PMEM via fsdax (the paper's SSB runs use fsdax because
    /// Dash requires a filesystem interface, §6.2).
    PmemFsdax,
    /// DRAM (the contrast configuration).
    Dram,
}

impl StorageDevice {
    fn namespace(self, socket: SocketId, capacity: u64) -> Namespace {
        match self {
            StorageDevice::PmemDevdax => Namespace::devdax(socket, capacity),
            StorageDevice::PmemFsdax => Namespace::fsdax(socket, capacity),
            StorageDevice::Dram => Namespace::dram(socket, capacity),
        }
    }

    /// Device class for the timing model.
    pub fn device_class(self) -> pmem_sim::params::DeviceClass {
        match self {
            StorageDevice::Dram => pmem_sim::params::DeviceClass::Dram,
            _ => pmem_sim::params::DeviceClass::Pmem,
        }
    }
}

/// One socket's share of the database.
#[derive(Debug)]
pub struct SocketShard {
    /// The socket.
    pub socket: SocketId,
    /// Namespace holding the fact partition (tracked separately so scans
    /// are distinguishable from probes).
    pub fact_ns: Namespace,
    /// Namespace holding dimension tables.
    pub dim_ns: Namespace,
    /// Namespace join indexes are built in.
    pub index_ns: Namespace,
    /// Namespace for intermediates (aggregation state spill etc.).
    pub intermediate_ns: Namespace,
    /// Fact rows of this partition.
    pub fact_rows: u64,
    /// This partition of `lineorder`.
    pub fact: Arc<Region>,
    /// Replicated `date` table.
    pub dates: Arc<Region>,
    /// Replicated `customer` table.
    pub customers: Arc<Region>,
    /// Replicated `supplier` table.
    pub suppliers: Arc<Region>,
    /// Replicated `part` table.
    pub parts: Arc<Region>,
}

/// The loaded database.
#[derive(Debug)]
pub struct SsbStore {
    /// Execution mode it was loaded for.
    pub mode: EngineMode,
    /// Backing device.
    pub device: StorageDevice,
    /// One shard per participating socket (2 for Aware, 1 for Unaware).
    pub shards: Vec<SocketShard>,
    /// Cardinalities of the loaded data.
    pub card: Cardinalities,
    /// Scale factor.
    pub sf: f64,
}

/// Rows per ingest chunk (512 × 128 B = 64 KB writes — well above the 4 KB
/// best-practice minimum, and writers are few).
const INGEST_CHUNK_ROWS: usize = 512;

fn load_fact(ns: &Namespace, rows: &[crate::schema::Lineorder]) -> Result<Region> {
    let mut region = ns.alloc_region(rows.len() as u64 * LINEORDER_ROW)?;
    let mut buf = vec![0u8; INGEST_CHUNK_ROWS * LINEORDER_ROW as usize];
    for (chunk_idx, chunk) in rows.chunks(INGEST_CHUNK_ROWS).enumerate() {
        for (i, row) in chunk.iter().enumerate() {
            row.encode(&mut buf[i * LINEORDER_ROW as usize..(i + 1) * LINEORDER_ROW as usize]);
        }
        let offset = chunk_idx as u64 * (INGEST_CHUNK_ROWS as u64 * LINEORDER_ROW);
        region.try_ntstore(
            offset,
            &buf[..chunk.len() * LINEORDER_ROW as usize],
            AccessHint::Sequential,
        )?;
    }
    region.sfence();
    Ok(region)
}

fn load_dim<T, F>(ns: &Namespace, rows: &[T], encode: F) -> Result<Region>
where
    F: Fn(&T, &mut [u8]),
{
    let mut region = ns.alloc_region((rows.len() as u64).max(1) * DIM_ROW)?;
    let mut buf = vec![0u8; INGEST_CHUNK_ROWS * DIM_ROW as usize];
    for (chunk_idx, chunk) in rows.chunks(INGEST_CHUNK_ROWS).enumerate() {
        for (i, row) in chunk.iter().enumerate() {
            encode(
                row,
                &mut buf[i * DIM_ROW as usize..(i + 1) * DIM_ROW as usize],
            );
        }
        let offset = chunk_idx as u64 * (INGEST_CHUNK_ROWS as u64 * DIM_ROW);
        region.try_ntstore(
            offset,
            &buf[..chunk.len() * DIM_ROW as usize],
            AccessHint::Sequential,
        )?;
    }
    region.sfence();
    Ok(region)
}

impl SsbStore {
    /// Load `data` for the given mode and device.
    pub fn load(data: &SsbData, sf: f64, mode: EngineMode, device: StorageDevice) -> Result<Self> {
        let sockets: &[SocketId] = match mode {
            EngineMode::Aware => &[SocketId(0), SocketId(1)],
            EngineMode::Unaware => &[SocketId(0)],
        };
        let partitions = sockets.len();
        let rows_per_partition = data.lineorder.len().div_ceil(partitions);

        let dim_bytes: u64 =
            (data.dates.len() + data.customers.len() + data.suppliers.len() + data.parts.len())
                as u64
                * DIM_ROW;

        let mut shards = Vec::with_capacity(partitions);
        for (p, &socket) in sockets.iter().enumerate() {
            let start = p * rows_per_partition;
            let end = ((p + 1) * rows_per_partition).min(data.lineorder.len());
            let part_rows = &data.lineorder[start..end];

            let fact_ns =
                device.namespace(socket, part_rows.len() as u64 * LINEORDER_ROW + (1 << 20));
            let dim_ns = device.namespace(socket, dim_bytes * 2 + (1 << 20));
            // Index namespace: join indexes over the dimensions, generously
            // sized (Dash segments have slack).
            let index_ns = device.namespace(socket, (dim_bytes * 24).max(64 << 20));
            let intermediate_ns = device.namespace(socket, (64 << 20).max(dim_bytes));

            let fact = Arc::new(load_fact(&fact_ns, part_rows)?);
            let dates = Arc::new(load_dim(&dim_ns, &data.dates, |d, b| d.encode(b))?);
            let customers = Arc::new(load_dim(&dim_ns, &data.customers, |d, b| d.encode(b))?);
            let suppliers = Arc::new(load_dim(&dim_ns, &data.suppliers, |d, b| d.encode(b))?);
            let parts = Arc::new(load_dim(&dim_ns, &data.parts, |d, b| d.encode(b))?);

            shards.push(SocketShard {
                socket,
                fact_ns,
                dim_ns,
                index_ns,
                intermediate_ns,
                fact_rows: part_rows.len() as u64,
                fact,
                dates,
                customers,
                suppliers,
                parts,
            });
        }

        Ok(SsbStore {
            mode,
            device,
            shards,
            card: cardinalities(sf),
            sf,
        })
    }

    /// Convenience: generate + load in one step.
    pub fn generate_and_load(
        sf: f64,
        seed: u64,
        mode: EngineMode,
        device: StorageDevice,
    ) -> Result<Self> {
        let data = crate::datagen::generate(sf, seed);
        Self::load(&data, sf, mode, device)
    }

    /// Total fact rows across shards.
    pub fn fact_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.fact_rows).sum()
    }

    /// Reset every tracker (call after load so query accounting starts
    /// clean).
    pub fn reset_trackers(&self) {
        for shard in &self.shards {
            shard.fact_ns.tracker().reset();
            shard.dim_ns.tracker().reset();
            shard.index_ns.tracker().reset();
            shard.intermediate_ns.tracker().reset();
        }
    }

    /// Bytes of fact data ingested (for the ingest experiment).
    pub fn fact_bytes(&self) -> u64 {
        self.fact_rows() * LINEORDER_ROW
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::schema::Lineorder;

    fn tiny() -> SsbStore {
        SsbStore::generate_and_load(0.002, 11, EngineMode::Aware, StorageDevice::PmemDevdax)
            .unwrap()
    }

    #[test]
    fn aware_mode_stripes_across_two_sockets() {
        let store = tiny();
        assert_eq!(store.shards.len(), 2);
        assert_eq!(store.shards[0].socket, SocketId(0));
        assert_eq!(store.shards[1].socket, SocketId(1));
        let total: u64 = store.fact_rows();
        assert_eq!(total, store.card.lineorder);
        // Partitions are balanced within one chunk.
        let diff = store.shards[0]
            .fact_rows
            .abs_diff(store.shards[1].fact_rows);
        assert!(diff <= 1, "unbalanced partitions: {diff}");
    }

    #[test]
    fn unaware_mode_uses_one_socket() {
        let store =
            SsbStore::generate_and_load(0.002, 11, EngineMode::Unaware, StorageDevice::PmemFsdax)
                .unwrap();
        assert_eq!(store.shards.len(), 1);
        assert_eq!(store.fact_rows(), store.card.lineorder);
    }

    #[test]
    fn loaded_rows_decode_back() {
        let data = crate::datagen::generate(0.002, 11);
        let store =
            SsbStore::load(&data, 0.002, EngineMode::Aware, StorageDevice::PmemDevdax).unwrap();
        // First row of shard 0 is the first generated row.
        let bytes = store.shards[0]
            .fact
            .read(0, LINEORDER_ROW, AccessHint::Sequential);
        assert_eq!(Lineorder::decode(bytes), data.lineorder[0]);
        // First row of shard 1 is the row at the partition boundary.
        let boundary = store.shards[0].fact_rows as usize;
        let bytes = store.shards[1]
            .fact
            .read(0, LINEORDER_ROW, AccessHint::Sequential);
        assert_eq!(Lineorder::decode(bytes), data.lineorder[boundary]);
    }

    #[test]
    fn dimensions_are_replicated_per_shard() {
        let store = tiny();
        for shard in &store.shards {
            assert_eq!(shard.dates.len(), 2557 * DIM_ROW);
            assert_eq!(shard.parts.len(), store.card.part as u64 * DIM_ROW);
        }
    }

    #[test]
    fn ingest_is_sequential_and_persisted() {
        let store = tiny();
        for shard in &store.shards {
            let snap = shard.fact_ns.tracker().snapshot();
            assert_eq!(snap.rand_write_bytes, 0, "ingest must be sequential");
            assert_eq!(snap.seq_write_bytes, shard.fact_rows * LINEORDER_ROW);
            assert!(snap.sfences >= 1);
            assert!(shard.fact.is_persisted(0, shard.fact.len()));
        }
    }

    #[test]
    fn reset_trackers_clears_ingest_traffic() {
        let store = tiny();
        store.reset_trackers();
        for shard in &store.shards {
            assert_eq!(shard.fact_ns.tracker().snapshot().write_bytes(), 0);
        }
    }

    #[test]
    fn dram_store_is_not_persistent() {
        let store =
            SsbStore::generate_and_load(0.002, 11, EngineMode::Aware, StorageDevice::Dram).unwrap();
        assert!(!store.shards[0].fact.is_persistent());
    }
}

//! Store-wide media integrity: sealed checksums, a durable mirror, and
//! self-healing repair for the row-format fact table.
//!
//! [`crate::columnar`] already scrubs and repairs the columnar layout from
//! a [`crate::checkpoint::CheckpointStore`]. This module does the same for
//! the engine's primary 128 B row shards ([`SsbStore`]): at seal time every
//! shard's fact region gets per-block FNV checksums plus a byte-identical
//! durable mirror on PMEM; a scrub pass verifies the live region against
//! the sealed sums, and a repair pass rewrites poisoned or mismatched
//! blocks from the mirror (full-XPLine `ntstore`s clear the poison, exactly
//! like a device remap after a fresh write).
//!
//! [`apply_media_plan`] bridges the simulator's fault timeline into real
//! poisoned bytes: each [`MediaHit`] drawn by the seeded
//! [`FaultPlan`](pmem_sim::faults::FaultPlan) lands on the shard of its
//! socket, at a deterministic XPLine-aligned offset within the fact
//! region.

use std::sync::Arc;

use pmem_sim::faults::{FaultPlan, MediaHit};
use pmem_sim::topology::SocketId;
use pmem_store::scrub::{fnv64, BlockChecksums, ScrubReport, FNV_OFFSET, SCRUB_BLOCK};
use pmem_store::{AccessHint, Namespace, Region, Result, StoreError, XPLINE};

use crate::storage::SsbStore;

/// One shard's integrity state: sealed checksums over the live fact region
/// and a durable mirror to rebuild from.
#[derive(Debug)]
struct ShardIntegrity {
    socket: SocketId,
    /// Per-block FNV sums sealed over the fact region at seal time.
    checks: BlockChecksums,
    /// Namespace keeping the mirror alive.
    _mirror_ns: Namespace,
    /// Byte-identical durable copy of the fact region.
    mirror: Region,
    /// Whole-mirror FNV manifest — the mirror proves itself before it is
    /// trusted as a rebuild source.
    mirror_sum: u64,
}

/// Sealed integrity metadata for every shard of an [`SsbStore`].
#[derive(Debug)]
pub struct StoreIntegrity {
    shards: Vec<ShardIntegrity>,
}

/// What one [`StoreIntegrity::repair`] pass did, summed over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityRepair {
    /// Blocks rebuilt from the mirror and re-verified against the seal.
    pub blocks_repaired: u64,
    /// Bytes of `ntstore` traffic the rebuild cost.
    pub bytes_rewritten: u64,
    /// Blocks that could not be restored to a checksum-valid state.
    pub unrepairable: u64,
}

impl IntegrityRepair {
    /// Whether every bad block was restored.
    pub fn is_fully_repaired(&self) -> bool {
        self.unrepairable == 0
    }

    fn absorb(&mut self, other: IntegrityRepair) {
        self.blocks_repaired += other.blocks_repaired;
        self.bytes_rewritten += other.bytes_rewritten;
        self.unrepairable += other.unrepairable;
    }
}

impl StoreIntegrity {
    /// Seal checksums over every shard's fact region and capture a durable
    /// mirror of each on the same socket's PMEM (fsdax, so the mirror is
    /// persistent even when the store itself runs on DRAM).
    ///
    /// Call right after load, while the store is known-good.
    pub fn seal(store: &SsbStore) -> Result<StoreIntegrity> {
        let mut shards = Vec::with_capacity(store.shards.len());
        for shard in &store.shards {
            let bytes = shard.fact.untracked_slice();
            let checks = BlockChecksums::seal_bytes(bytes, SCRUB_BLOCK);
            let mirror_ns = Namespace::fsdax(shard.socket, shard.fact.len() + (1 << 20));
            let mut mirror = mirror_ns.alloc_region(shard.fact.len())?;
            if !bytes.is_empty() {
                mirror.try_ntstore(0, bytes, AccessHint::Sequential)?;
                mirror.sfence();
            }
            shards.push(ShardIntegrity {
                socket: shard.socket,
                checks,
                _mirror_ns: mirror_ns,
                mirror,
                mirror_sum: fnv64(FNV_OFFSET, bytes),
            });
        }
        Ok(StoreIntegrity { shards })
    }

    /// Scrub every shard's fact region against its sealed checksums.
    pub fn scrub(&self, store: &SsbStore) -> Vec<(SocketId, ScrubReport)> {
        self.shards
            .iter()
            .zip(store.shards.iter())
            .map(|(integ, shard)| (integ.socket, integ.checks.scrub(&shard.fact)))
            .collect()
    }

    /// Whether every shard currently verifies clean.
    pub fn is_clean(&self, store: &SsbStore) -> bool {
        self.scrub(store).iter().all(|(_, r)| r.is_clean())
    }

    /// Rebuild every poisoned or checksum-mismatched fact block from the
    /// durable mirror. The mirror is validated against its own manifest
    /// first; a poisoned or corrupt mirror fails with
    /// [`StoreError::Poisoned`] and the live region is left untouched.
    ///
    /// Requires exclusive ownership of the shard regions — no scan may be
    /// in flight (the scheduler quarantines the socket before calling).
    pub fn repair(&self, store: &mut SsbStore) -> Result<IntegrityRepair> {
        let mut total = IntegrityRepair::default();
        for (integ, shard) in self.shards.iter().zip(store.shards.iter_mut()) {
            let bad = integ.checks.scrub(&shard.fact).bad_blocks();
            if bad.is_empty() {
                continue;
            }
            integ.validate_mirror()?;
            let region = Arc::get_mut(&mut shard.fact).expect("no scan in flight during repair");
            total.absorb(repair_region(region, &integ.checks, &integ.mirror, &bad)?);
        }
        Ok(total)
    }
}

impl ShardIntegrity {
    fn validate_mirror(&self) -> Result<()> {
        let len = self.mirror.len();
        let mut sum = FNV_OFFSET;
        let mut off = 0;
        while off < len {
            let n = SCRUB_BLOCK.min(len - off);
            sum = fnv64(sum, self.mirror.try_read(off, n, AccessHint::Sequential)?);
            off += n;
        }
        if sum != self.mirror_sum {
            // The mirror no longer matches its manifest: silent corruption
            // in the rebuild source is as disqualifying as poison.
            return Err(StoreError::Poisoned { offset: 0, len });
        }
        Ok(())
    }
}

/// Rebuild `bad` blocks of `region` from `source` (a byte-identical copy),
/// verifying each rewritten block against the sealed `checks`. Shared by
/// the store repair path and the crash-model invariant client.
pub fn repair_region(
    region: &mut Region,
    checks: &BlockChecksums,
    source: &Region,
    bad: &[u64],
) -> Result<IntegrityRepair> {
    let mut repair = IntegrityRepair::default();
    for &block in bad {
        let (offset, len) = checks.block_range(block);
        let good = source
            .try_read(offset, len, AccessHint::Sequential)?
            .to_vec();
        region.try_ntstore(offset, &good, AccessHint::Sequential)?;
        repair.bytes_rewritten += len;
        if checks.verify_block(region, block)? {
            repair.blocks_repaired += 1;
        } else {
            repair.unrepairable += 1;
        }
    }
    region.sfence();
    Ok(repair)
}

/// One media hit as landed on a store: which shard took it and where.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedMedia {
    /// Simulated time of the hit.
    pub at: f64,
    /// Socket (== shard) the poison landed on.
    pub socket: SocketId,
    /// XPLine-aligned byte offset within the shard's fact region.
    pub offset: u64,
    /// Bytes poisoned.
    pub len: u64,
}

/// Land every media error the plan draws in `(after, until]` onto the
/// store's fact shards as real poisoned XPLines.
///
/// The hit's raw offset is folded into the shard's fact region
/// (`offset % len`, aligned down to an XPLine) so any seeded draw maps to
/// a valid deterministic location. Hits on sockets the store has no shard
/// for (Unaware mode runs a single socket) are skipped. Requires exclusive
/// ownership of the shard regions.
pub fn apply_media_plan(
    store: &mut SsbStore,
    plan: &FaultPlan,
    after: f64,
    until: f64,
) -> Vec<AppliedMedia> {
    let hits = plan.media_errors_in(after, until);
    let mut applied = Vec::with_capacity(hits.len());
    for hit in hits {
        if let Some(landed) = apply_media_hit(store, &hit) {
            applied.push(landed);
        }
    }
    applied
}

/// Land a single media hit; returns `None` when the store has no shard on
/// the hit's socket or the shard is empty.
pub fn apply_media_hit(store: &mut SsbStore, hit: &MediaHit) -> Option<AppliedMedia> {
    let shard = store.shards.iter_mut().find(|s| s.socket == hit.socket)?;
    let cap = shard.fact.len();
    if cap == 0 {
        return None;
    }
    let offset = (hit.offset % cap) / XPLINE * XPLINE;
    let len = hit.len().min(cap - offset);
    let region = Arc::get_mut(&mut shard.fact).expect("no scan in flight during media injection");
    if region.inject_poison(offset, len) == 0 {
        return None;
    }
    Some(AppliedMedia {
        at: hit.at,
        socket: hit.socket,
        offset,
        len,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::storage::{EngineMode, StorageDevice};
    use pmem_sim::faults::FaultScheduleConfig;

    fn store() -> SsbStore {
        SsbStore::generate_and_load(0.002, 11, EngineMode::Aware, StorageDevice::PmemDevdax)
            .unwrap()
    }

    #[test]
    fn seal_then_scrub_is_clean() {
        let store = store();
        let integ = StoreIntegrity::seal(&store).unwrap();
        assert!(integ.is_clean(&store));
        for ((_, report), shard) in integ.scrub(&store).iter().zip(store.shards.iter()) {
            assert!(report.blocks > 0);
            assert_eq!(report.bytes_scanned, shard.fact.len());
        }
    }

    #[test]
    fn poison_is_found_and_repaired_from_the_mirror() {
        let mut store = store();
        let integ = StoreIntegrity::seal(&store).unwrap();
        let before: Vec<u8> = store.shards[0].fact.untracked_slice().to_vec();

        Arc::get_mut(&mut store.shards[0].fact)
            .unwrap()
            .inject_poison(8192, 700);
        assert!(!integ.is_clean(&store));

        let repair = integ.repair(&mut store).unwrap();
        assert!(repair.is_fully_repaired());
        assert!(repair.blocks_repaired >= 1);
        assert!(integ.is_clean(&store));
        assert_eq!(store.shards[0].fact.untracked_slice(), &before[..]);

        // Idempotent: nothing left to do.
        assert_eq!(
            integ.repair(&mut store).unwrap(),
            IntegrityRepair::default()
        );
    }

    #[test]
    fn poisoned_mirror_refuses_to_repair() {
        let mut store = store();
        let mut integ = StoreIntegrity::seal(&store).unwrap();
        Arc::get_mut(&mut store.shards[0].fact)
            .unwrap()
            .inject_poison(0, 16);
        integ.shards[0].mirror.inject_poison(0, 16);
        assert!(matches!(
            integ.repair(&mut store),
            Err(StoreError::Poisoned { .. })
        ));
        // Live region untouched — still poisoned, awaiting a good source.
        assert!(!integ.is_clean(&store));
    }

    #[test]
    fn media_plan_lands_deterministic_aligned_hits() {
        let config = FaultScheduleConfig::with_media_errors(10.0, 4);
        let plan = FaultPlan::generate(2024, &config);
        let hits = plan.media_errors_in(0.0, 10.0);
        assert_eq!(hits.len(), 4);

        let mut a = store();
        let mut b = store();
        let landed_a = apply_media_plan(&mut a, &plan, 0.0, 10.0);
        let landed_b = apply_media_plan(&mut b, &plan, 0.0, 10.0);
        assert_eq!(landed_a, landed_b, "same seed, same poison placement");
        assert!(!landed_a.is_empty());
        for m in &landed_a {
            assert_eq!(m.offset % XPLINE, 0, "XPLine aligned");
            let shard = a.shards.iter().find(|s| s.socket == m.socket).unwrap();
            assert!(shard.fact.is_poisoned(m.offset, m.len));
        }
    }

    #[test]
    fn unaware_store_skips_hits_on_absent_sockets() {
        let config = FaultScheduleConfig::with_media_errors(10.0, 6);
        let plan = FaultPlan::generate(7, &config);
        let mut store =
            SsbStore::generate_and_load(0.002, 11, EngineMode::Unaware, StorageDevice::PmemFsdax)
                .unwrap();
        let landed = apply_media_plan(&mut store, &plan, 0.0, 10.0);
        for m in &landed {
            assert_eq!(m.socket, SocketId(0), "only socket 0 exists");
        }
        let skipped = plan
            .media_errors_in(0.0, 10.0)
            .iter()
            .filter(|h| h.socket != SocketId(0))
            .count();
        assert_eq!(landed.len() + skipped, 6);
    }
}

//! # pmem-ssb — the Star Schema Benchmark on simulated PMEM/DRAM
//!
//! Reproduces §6 of the paper: a dbgen-equivalent data generator, fixed-row
//! storage striped/replicated across the simulated dual-socket server, a
//! handcrafted PMEM-aware query engine plus a Hyrise-like PMEM-unaware
//! engine, all 13 SSB queries, and a timing model that converts executed
//! traffic into simulated device seconds (Figure 14 and Table 1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(clippy::unwrap_used)]

pub mod checkpoint;
pub mod columnar;
pub mod datagen;
pub mod engine;
pub mod hyrise;
pub mod integrity;
pub mod partition;
pub mod queries;
pub mod reference;
pub mod report;
pub mod schema;
pub mod storage;
pub mod timing;

pub use checkpoint::{CheckpointRecovery, CheckpointStore};
pub use engine::OpCounters;
pub use integrity::{apply_media_plan, IntegrityRepair, StoreIntegrity};
pub use queries::{run_query, PhaseTraffic, QueryId, QueryOutcome};
pub use storage::{EngineMode, SsbStore, StorageDevice};

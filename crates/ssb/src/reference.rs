//! Reference query evaluation: direct, single-threaded computation over
//! the generated data, used to cross-check the engines.
//!
//! Evaluation goes straight over `SsbData` with plain hash maps — no
//! regions, no indexes, no parallelism — but shares the query *plans*
//! (predicates, grouping, aggregates) with the engine, so a mismatch
//! pinpoints a defect in storage, index, scan, or merge machinery.

use std::collections::HashMap;

use crate::datagen::SsbData;
use crate::engine::{date_payload, geo_payload, part_payload, GroupAgg};
use crate::queries::{plan_for, QueryId};

/// Evaluate `query` directly over the generated data.
pub fn reference_query(data: &SsbData, query: QueryId) -> Vec<(u64, i64)> {
    let plan = plan_for(query);

    let dates: HashMap<u64, u64> = data
        .dates
        .iter()
        .map(|d| (d.datekey as u64, date_payload(d)))
        .collect();
    let customers: HashMap<u64, u64> = data
        .customers
        .iter()
        .map(|c| (c.key as u64, geo_payload(c)))
        .collect();
    let suppliers: HashMap<u64, u64> = data
        .suppliers
        .iter()
        .map(|s| (s.key as u64, geo_payload(s)))
        .collect();
    let parts: HashMap<u64, u64> = data
        .parts
        .iter()
        .map(|p| (p.partkey as u64, part_payload(p)))
        .collect();

    let lookup =
        |table: &HashMap<u64, u64>, pred: Option<fn(u64) -> bool>, key: u64| -> Option<u64> {
            match pred {
                None => Some(0),
                Some(pred) => {
                    let payload = *table.get(&key)?;
                    pred(payload).then_some(payload)
                }
            }
        };

    let mut agg = GroupAgg::default();
    for row in &data.lineorder {
        if !(plan.row)(row) {
            continue;
        }
        let Some(pp) = lookup(&parts, plan.part, row.partkey as u64) else {
            continue;
        };
        let Some(sp) = lookup(&suppliers, plan.supp, row.suppkey as u64) else {
            continue;
        };
        let Some(cp) = lookup(&customers, plan.cust, row.custkey as u64) else {
            continue;
        };
        let Some(dp) = lookup(&dates, plan.date, row.orderdate as u64) else {
            continue;
        };
        agg.add((plan.group)(dp, cp, sp, pp), (plan.value)(row));
    }
    agg.into_sorted()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::datagen::generate;
    use crate::queries::run_query;
    use crate::storage::{EngineMode, SsbStore, StorageDevice};

    #[test]
    fn engine_matches_reference_on_all_13_queries() {
        let data = generate(0.004, 99);
        let store =
            SsbStore::load(&data, 0.004, EngineMode::Aware, StorageDevice::PmemDevdax).unwrap();
        for q in QueryId::ALL {
            let engine = run_query(&store, q, 4).unwrap();
            let reference = reference_query(&data, q);
            assert_eq!(
                engine.rows,
                reference,
                "{} diverges from reference",
                q.name()
            );
        }
    }

    #[test]
    fn reference_is_deterministic() {
        let data = generate(0.002, 5);
        assert_eq!(
            reference_query(&data, QueryId::Q3_1),
            reference_query(&data, QueryId::Q3_1)
        );
    }

    #[test]
    fn selective_queries_return_fewer_groups() {
        let data = generate(0.01, 5);
        let q31 = reference_query(&data, QueryId::Q3_1).len();
        let q33 = reference_query(&data, QueryId::Q3_3).len();
        assert!(
            q33 <= q31,
            "Q3.3 ({q33}) should have ≤ groups than Q3.1 ({q31})"
        );
    }
}

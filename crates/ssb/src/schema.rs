//! Star Schema Benchmark schema (O'Neil et al.) in fixed-width row format.
//!
//! The paper's handcrafted implementation stores data "in a row format with
//! a custom schema in one file per table" and aligns all fields to 128 bytes
//! for the fact table ("slightly larger than the size of a tuple, < 10 %")
//! to avoid per-tuple parsing overhead. We mirror that: `lineorder` rows are
//! 128 B; the four dimension rows are 64 B. Low-cardinality strings
//! (region/nation/city, mfgr/category/brand, ship mode) are dictionary
//! encoded as integers, as any columnar or hand-tuned row engine would.

/// Bytes per `lineorder` row (paper §6.2: fields aligned to 128 B).
pub const LINEORDER_ROW: u64 = 128;
/// Bytes per dimension row.
pub const DIM_ROW: u64 = 64;

/// Region dictionary (SSB has exactly five regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Region {
    /// AMERICA
    America = 0,
    /// ASIA
    Asia = 1,
    /// EUROPE
    Europe = 2,
    /// AFRICA
    Africa = 3,
    /// MIDDLE EAST
    MiddleEast = 4,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 5] = [
        Region::America,
        Region::Asia,
        Region::Europe,
        Region::Africa,
        Region::MiddleEast,
    ];

    /// From a dictionary code.
    pub fn from_code(code: u8) -> Region {
        Region::ALL[code as usize % 5]
    }

    /// SSB string form.
    pub fn name(self) -> &'static str {
        match self {
            Region::America => "AMERICA",
            Region::Asia => "ASIA",
            Region::Europe => "EUROPE",
            Region::Africa => "AFRICA",
            Region::MiddleEast => "MIDDLE EAST",
        }
    }
}

/// Nations per region (SSB has 25 nations, 5 per region). Nation code
/// `n` belongs to region `n / 5`.
pub const NATIONS: u8 = 25;
/// Cities per nation (SSB: 10). City code `c` belongs to nation `c / 10`.
pub const CITIES_PER_NATION: u8 = 10;

/// Dictionary code of "UNITED STATES" (a nation of AMERICA).
pub const NATION_UNITED_STATES: u8 = 0;
/// Dictionary code of "UNITED KINGDOM" (a nation of EUROPE).
pub const NATION_UNITED_KINGDOM: u8 = 2 * 5;

/// The region a nation belongs to.
pub fn nation_region(nation: u8) -> Region {
    Region::from_code(nation / 5)
}

/// The nation a city belongs to.
pub fn city_nation(city: u16) -> u8 {
    (city / CITIES_PER_NATION as u16) as u8
}

/// City code for the `i`-th city of a nation (SSB city strings like
/// "UNITED KI1" are nation prefix + digit).
pub fn city_of(nation: u8, i: u8) -> u16 {
    nation as u16 * CITIES_PER_NATION as u16 + i as u16
}

/// One `lineorder` fact row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lineorder {
    /// Order key.
    pub orderkey: u64,
    /// Line number within the order (1–7).
    pub linenumber: u8,
    /// Foreign key into `part`.
    pub partkey: u32,
    /// Foreign key into `supplier`.
    pub suppkey: u32,
    /// Foreign key into `customer`.
    pub custkey: u32,
    /// Foreign key into `date` (yyyymmdd).
    pub orderdate: u32,
    /// Quantity (1–50).
    pub quantity: u8,
    /// Discount in percent (0–10).
    pub discount: u8,
    /// Tax (0–8).
    pub tax: u8,
    /// Extended price.
    pub extendedprice: u32,
    /// Total order price.
    pub ordtotalprice: u32,
    /// Revenue = extendedprice × (100 − discount) / 100.
    pub revenue: u32,
    /// Supply cost.
    pub supplycost: u32,
    /// Commit date (yyyymmdd).
    pub commitdate: u32,
    /// Ship mode dictionary code (7 modes).
    pub shipmode: u8,
}

impl Lineorder {
    /// Byte offset of `quantity` within a row (scans read single fields).
    pub const OFF_QUANTITY: u64 = 24;
    /// Byte offset of `discount`.
    pub const OFF_DISCOUNT: u64 = 25;
    /// Byte offset of `orderdate`.
    pub const OFF_ORDERDATE: u64 = 20;
    /// Byte offset of `extendedprice`.
    pub const OFF_EXTENDEDPRICE: u64 = 28;

    /// Serialize into a 128 B row.
    pub fn encode(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= LINEORDER_ROW as usize);
        buf[..LINEORDER_ROW as usize].fill(0);
        buf[0..8].copy_from_slice(&self.orderkey.to_le_bytes());
        buf[8..12].copy_from_slice(&self.partkey.to_le_bytes());
        buf[12..16].copy_from_slice(&self.suppkey.to_le_bytes());
        buf[16..20].copy_from_slice(&self.custkey.to_le_bytes());
        buf[20..24].copy_from_slice(&self.orderdate.to_le_bytes());
        buf[24] = self.quantity;
        buf[25] = self.discount;
        buf[26] = self.tax;
        buf[27] = self.linenumber;
        buf[28..32].copy_from_slice(&self.extendedprice.to_le_bytes());
        buf[32..36].copy_from_slice(&self.ordtotalprice.to_le_bytes());
        buf[36..40].copy_from_slice(&self.revenue.to_le_bytes());
        buf[40..44].copy_from_slice(&self.supplycost.to_le_bytes());
        buf[44..48].copy_from_slice(&self.commitdate.to_le_bytes());
        buf[48] = self.shipmode;
    }

    /// Deserialize from a 128 B row.
    pub fn decode(buf: &[u8]) -> Lineorder {
        debug_assert!(buf.len() >= LINEORDER_ROW as usize);
        Lineorder {
            orderkey: u64::from_le_bytes(buf[0..8].try_into().expect("8")),
            partkey: u32::from_le_bytes(buf[8..12].try_into().expect("4")),
            suppkey: u32::from_le_bytes(buf[12..16].try_into().expect("4")),
            custkey: u32::from_le_bytes(buf[16..20].try_into().expect("4")),
            orderdate: u32::from_le_bytes(buf[20..24].try_into().expect("4")),
            quantity: buf[24],
            discount: buf[25],
            tax: buf[26],
            linenumber: buf[27],
            extendedprice: u32::from_le_bytes(buf[28..32].try_into().expect("4")),
            ordtotalprice: u32::from_le_bytes(buf[32..36].try_into().expect("4")),
            revenue: u32::from_le_bytes(buf[36..40].try_into().expect("4")),
            supplycost: u32::from_le_bytes(buf[40..44].try_into().expect("4")),
            commitdate: u32::from_le_bytes(buf[44..48].try_into().expect("4")),
            shipmode: buf[48],
        }
    }
}

/// One `date` dimension row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DateDim {
    /// yyyymmdd key.
    pub datekey: u32,
    /// Calendar year (1992–1998).
    pub year: u16,
    /// Month (1–12).
    pub month: u8,
    /// Day of month.
    pub day: u8,
    /// yyyymm.
    pub yearmonthnum: u32,
    /// Week number within the year (1–53).
    pub weeknuminyear: u8,
    /// Day of week (0–6).
    pub dayofweek: u8,
    /// Day number within the year (1–366).
    pub daynuminyear: u16,
}

impl DateDim {
    /// Serialize into a 64 B row.
    pub fn encode(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= DIM_ROW as usize);
        buf[..DIM_ROW as usize].fill(0);
        buf[0..4].copy_from_slice(&self.datekey.to_le_bytes());
        buf[4..6].copy_from_slice(&self.year.to_le_bytes());
        buf[6] = self.month;
        buf[7] = self.day;
        buf[8..12].copy_from_slice(&self.yearmonthnum.to_le_bytes());
        buf[12] = self.weeknuminyear;
        buf[13] = self.dayofweek;
        buf[14..16].copy_from_slice(&self.daynuminyear.to_le_bytes());
    }

    /// Deserialize from a 64 B row.
    pub fn decode(buf: &[u8]) -> DateDim {
        DateDim {
            datekey: u32::from_le_bytes(buf[0..4].try_into().expect("4")),
            year: u16::from_le_bytes(buf[4..6].try_into().expect("2")),
            month: buf[6],
            day: buf[7],
            yearmonthnum: u32::from_le_bytes(buf[8..12].try_into().expect("4")),
            weeknuminyear: buf[12],
            dayofweek: buf[13],
            daynuminyear: u16::from_le_bytes(buf[14..16].try_into().expect("2")),
        }
    }
}

/// One `customer` or `supplier` dimension row (identical geography layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GeoDim {
    /// Primary key.
    pub key: u32,
    /// City dictionary code (0–249).
    pub city: u16,
    /// Nation dictionary code (0–24).
    pub nation: u8,
    /// Region dictionary code (0–4).
    pub region: u8,
    /// Market segment (customers) / unused (suppliers).
    pub mktsegment: u8,
}

impl GeoDim {
    /// Serialize into a 64 B row.
    pub fn encode(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= DIM_ROW as usize);
        buf[..DIM_ROW as usize].fill(0);
        buf[0..4].copy_from_slice(&self.key.to_le_bytes());
        buf[4..6].copy_from_slice(&self.city.to_le_bytes());
        buf[6] = self.nation;
        buf[7] = self.region;
        buf[8] = self.mktsegment;
    }

    /// Deserialize from a 64 B row.
    pub fn decode(buf: &[u8]) -> GeoDim {
        GeoDim {
            key: u32::from_le_bytes(buf[0..4].try_into().expect("4")),
            city: u16::from_le_bytes(buf[4..6].try_into().expect("2")),
            nation: buf[6],
            region: buf[7],
            mktsegment: buf[8],
        }
    }
}

/// One `part` dimension row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartDim {
    /// Primary key.
    pub partkey: u32,
    /// Manufacturer (1–5, "MFGR#m").
    pub mfgr: u8,
    /// Category (1–25, "MFGR#mc": mfgr m, digit c 1–5).
    pub category: u8,
    /// Brand (1–1000, 40 brands per category, "MFGR#mcbb").
    pub brand: u16,
    /// Size (1–50).
    pub size: u8,
    /// Color dictionary code.
    pub color: u8,
    /// Container dictionary code.
    pub container: u8,
}

impl PartDim {
    /// Serialize into a 64 B row.
    pub fn encode(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= DIM_ROW as usize);
        buf[..DIM_ROW as usize].fill(0);
        buf[0..4].copy_from_slice(&self.partkey.to_le_bytes());
        buf[4] = self.mfgr;
        buf[5] = self.category;
        buf[6..8].copy_from_slice(&self.brand.to_le_bytes());
        buf[8] = self.size;
        buf[9] = self.color;
        buf[10] = self.container;
    }

    /// Deserialize from a 64 B row.
    pub fn decode(buf: &[u8]) -> PartDim {
        PartDim {
            partkey: u32::from_le_bytes(buf[0..4].try_into().expect("4")),
            mfgr: buf[4],
            category: buf[5],
            brand: u16::from_le_bytes(buf[6..8].try_into().expect("2")),
            size: buf[8],
            color: buf[9],
            container: buf[10],
        }
    }

    /// Category code from mfgr `m` (1–5) and category digit `c` (1–5):
    /// "MFGR#mc" → (m−1)×5 + c, i.e. 1–25.
    pub fn category_code(mfgr: u8, cat_digit: u8) -> u8 {
        (mfgr - 1) * 5 + cat_digit
    }

    /// Brand code from a category code (1–25) and brand digit (1–40):
    /// "MFGR#mcbb" → (category−1)×40 + b, i.e. 1–1000.
    pub fn brand_code(category: u8, brand_digit: u8) -> u16 {
        (category as u16 - 1) * 40 + brand_digit as u16
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn lineorder_round_trip() {
        let lo = Lineorder {
            orderkey: 123456789,
            linenumber: 3,
            partkey: 42,
            suppkey: 7,
            custkey: 99,
            orderdate: 19940215,
            quantity: 25,
            discount: 4,
            tax: 2,
            extendedprice: 123456,
            ordtotalprice: 999999,
            revenue: 118518,
            supplycost: 555,
            commitdate: 19940301,
            shipmode: 5,
        };
        let mut buf = [0u8; LINEORDER_ROW as usize];
        lo.encode(&mut buf);
        assert_eq!(Lineorder::decode(&buf), lo);
        // Field offsets line up with the encoded layout.
        assert_eq!(buf[Lineorder::OFF_QUANTITY as usize], 25);
        assert_eq!(buf[Lineorder::OFF_DISCOUNT as usize], 4);
    }

    #[test]
    fn dimension_round_trips() {
        let d = DateDim {
            datekey: 19930406,
            year: 1993,
            month: 4,
            day: 6,
            yearmonthnum: 199304,
            weeknuminyear: 14,
            dayofweek: 2,
            daynuminyear: 96,
        };
        let mut buf = [0u8; DIM_ROW as usize];
        d.encode(&mut buf);
        assert_eq!(DateDim::decode(&buf), d);

        let g = GeoDim {
            key: 77,
            city: 205,
            nation: 20,
            region: 4,
            mktsegment: 3,
        };
        g.encode(&mut buf);
        assert_eq!(GeoDim::decode(&buf), g);

        let p = PartDim {
            partkey: 1234,
            mfgr: 2,
            category: 8,
            brand: 300,
            size: 12,
            color: 9,
            container: 4,
        };
        p.encode(&mut buf);
        assert_eq!(PartDim::decode(&buf), p);
    }

    #[test]
    fn geography_hierarchy_is_consistent() {
        for nation in 0..NATIONS {
            let region = nation_region(nation);
            assert_eq!(region as u8, nation / 5);
            for i in 0..CITIES_PER_NATION {
                assert_eq!(city_nation(city_of(nation, i)), nation);
            }
        }
        assert_eq!(nation_region(NATION_UNITED_STATES), Region::America);
        assert_eq!(nation_region(NATION_UNITED_KINGDOM), Region::Europe);
    }

    #[test]
    fn part_code_hierarchy() {
        // MFGR#12 = mfgr 1, category digit 2.
        let cat = PartDim::category_code(1, 2);
        assert_eq!(cat, 2);
        assert_eq!(PartDim::category_code(5, 5), 25);
        // MFGR#2221 = category "MFGR#22" (mfgr 2, digit 2), brand 21.
        let cat22 = PartDim::category_code(2, 2);
        let brand = PartDim::brand_code(cat22, 21);
        assert_eq!(brand, (cat22 as u16 - 1) * 40 + 21);
        assert!(PartDim::brand_code(25, 40) <= 1000);
    }

    #[test]
    fn region_names_and_codes() {
        assert_eq!(Region::from_code(0), Region::America);
        assert_eq!(Region::from_code(7), Region::Europe); // mod 5
        assert_eq!(Region::Asia.name(), "ASIA");
    }
}

//! Query-engine building blocks: parallel chunked scans, filtered hash-join
//! index builds, and grouped aggregation.
//!
//! The engine follows the paper's handcrafted design: scans stream each
//! socket's fact partition in large individual chunks with threads pinned
//! near their data; joins build a (filtered) hash index per dimension and
//! probe it during the fact scan; aggregates accumulate into per-thread
//! hash maps merged at the end.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem_dash::{ChainedTable, DashTable, KvIndex};
use pmem_store::{AccessHint, Namespace, Region, Result};

use crate::schema::{DateDim, GeoDim, Lineorder, PartDim, DIM_ROW, LINEORDER_ROW};
use crate::storage::EngineMode;

/// Rows per scan chunk: 512 × 128 B = 64 KB sequential reads, comfortably
/// in the flat region of the read-bandwidth curves.
pub const SCAN_CHUNK_ROWS: u64 = 512;

/// Counters a query execution accumulates beyond the namespace trackers.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpCounters {
    /// Fact tuples visited.
    pub tuples_scanned: u64,
    /// Tuples surviving all predicates/joins.
    pub tuples_selected: u64,
    /// Index probes issued.
    pub probes: u64,
    /// Aggregate-state updates.
    pub agg_updates: u64,
    /// Index build inserts.
    pub build_inserts: u64,
}

impl OpCounters {
    /// Merge another counter set.
    pub fn merge(&mut self, other: &OpCounters) {
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_selected += other.tuples_selected;
        self.probes += other.probes;
        self.agg_updates += other.agg_updates;
        self.build_inserts += other.build_inserts;
    }
}

/// A join index: either PMEM-aware (Dash) or unaware (chained), per the
/// execution mode.
#[allow(clippy::large_enum_variant)] // two long-lived variants per query
pub enum JoinIndex {
    /// Dash extendible hashing (paper §6.2).
    Dash(Box<DashTable>),
    /// PMEM-unaware chained hashing (paper §6.1 / Hyrise).
    Chained(ChainedTable),
}

impl JoinIndex {
    /// Probe for a key.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        match self {
            JoinIndex::Dash(t) => t.get(key),
            JoinIndex::Chained(t) => t.get(key),
        }
    }

    /// Insert a record.
    fn insert(&self, key: u64, value: u64) -> Result<()> {
        match self {
            JoinIndex::Dash(t) => t.insert(key, value),
            JoinIndex::Chained(t) => t.insert(key, value),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            JoinIndex::Dash(t) => t.len(),
            JoinIndex::Chained(t) => t.len(),
        }
    }

    /// Whether the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Build a join index over a dimension region. `decode` parses one row;
/// `entry` maps it to `Some((key, payload))` if it passes the build-side
/// filter (the paper's aware engine pushes dimension predicates into the
/// build so probe misses filter fact rows).
pub fn build_index<T, D, E>(
    ns: &Namespace,
    dim: &Region,
    row_count: u64,
    capacity_hint: usize,
    mode: EngineMode,
    decode: D,
    entry: E,
) -> Result<(JoinIndex, u64)>
where
    D: Fn(&[u8]) -> T,
    E: Fn(&T) -> Option<(u64, u64)>,
{
    let index = match mode {
        EngineMode::Aware => {
            JoinIndex::Dash(Box::new(DashTable::with_capacity(ns, capacity_hint)?))
        }
        EngineMode::Unaware => JoinIndex::Chained(ChainedTable::with_capacity(ns, capacity_hint)?),
    };
    let mut inserts = 0u64;
    let chunk_rows = SCAN_CHUNK_ROWS;
    let mut row = 0u64;
    while row < row_count {
        let n = chunk_rows.min(row_count - row);
        let bytes = dim.read(row * DIM_ROW, n * DIM_ROW, AccessHint::Sequential);
        for i in 0..n as usize {
            let t = decode(&bytes[i * DIM_ROW as usize..(i + 1) * DIM_ROW as usize]);
            if let Some((key, value)) = entry(&t) {
                index.insert(key, value)?;
                inserts += 1;
            }
        }
        row += n;
    }
    Ok((index, inserts))
}

/// Scan a fact partition with `threads` workers. Each worker claims 64 KB
/// chunks from a shared cursor (individual sequential streams), decodes the
/// rows, and feeds them to its own accumulator.
///
/// Reads are checked: a chunk that intersects a poisoned XPLine aborts the
/// scan with [`StoreError::Poisoned`](pmem_store::StoreError) instead of
/// consuming corrupt rows, so query results are never silently wrong. The
/// serving layer catches the typed error, quarantines and repairs the
/// range, and retries the query.
pub fn scan_fact<A, F>(
    fact: &Arc<Region>,
    rows: u64,
    threads: u32,
    make_acc: impl Fn() -> A + Sync,
    visit: F,
) -> Result<Vec<A>>
where
    A: Send,
    F: Fn(&mut A, &Lineorder) + Sync,
{
    let threads = threads.max(1);
    let cursor = AtomicU64::new(0);
    let total_chunks = rows.div_ceil(SCAN_CHUNK_ROWS);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads as usize);
        for _ in 0..threads {
            let fact = Arc::clone(fact);
            let cursor = &cursor;
            let make_acc = &make_acc;
            let visit = &visit;
            handles.push(scope.spawn(move || {
                let mut acc = make_acc();
                loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= total_chunks {
                        break;
                    }
                    let start_row = chunk * SCAN_CHUNK_ROWS;
                    let n = SCAN_CHUNK_ROWS.min(rows - start_row);
                    let bytes = fact.try_read(
                        start_row * LINEORDER_ROW,
                        n * LINEORDER_ROW,
                        AccessHint::Sequential,
                    )?;
                    for i in 0..n as usize {
                        let row = Lineorder::decode(
                            &bytes[i * LINEORDER_ROW as usize..(i + 1) * LINEORDER_ROW as usize],
                        );
                        visit(&mut acc, &row);
                    }
                }
                Ok(acc)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker"))
            .collect()
    })
}

/// A per-thread grouped aggregation accumulator.
#[derive(Debug, Default)]
pub struct GroupAgg {
    groups: HashMap<u64, i64>,
    /// Updates performed (for the CPU model).
    pub updates: u64,
}

impl GroupAgg {
    /// Add `value` to group `key`.
    #[inline]
    pub fn add(&mut self, key: u64, value: i64) {
        *self.groups.entry(key).or_insert(0) += value;
        self.updates += 1;
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: GroupAgg) {
        for (k, v) in other.groups {
            *self.groups.entry(k).or_insert(0) += v;
        }
        self.updates += other.updates;
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Sorted (key, sum) rows — the deterministic query result.
    pub fn into_sorted(self) -> Vec<(u64, i64)> {
        let mut rows: Vec<(u64, i64)> = self.groups.into_iter().collect();
        rows.sort_unstable();
        rows
    }
}

/// Spill a result set to the intermediate namespace as the final
/// materialization step (sequential 16 B rows), mirroring the paper's
/// intermediate-result writes.
pub fn spill_result(ns: &Namespace, rows: &[(u64, i64)]) -> Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    let mut region = ns.alloc_region(rows.len() as u64 * 16)?;
    let mut buf = Vec::with_capacity(rows.len() * 16);
    for (k, v) in rows {
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    region.try_ntstore(0, &buf, AccessHint::Sequential)?;
    region.sfence();
    ns.release(rows.len() as u64 * 16);
    Ok(())
}

// ---- Join payload packing -------------------------------------------------

/// Pack a geography dimension into an index payload.
pub fn geo_payload(g: &GeoDim) -> u64 {
    (g.city as u64) | ((g.nation as u64) << 16) | ((g.region as u64) << 24)
}

/// City from a geography payload.
pub fn geo_city(p: u64) -> u16 {
    (p & 0xFFFF) as u16
}

/// Nation from a geography payload.
pub fn geo_nation(p: u64) -> u8 {
    ((p >> 16) & 0xFF) as u8
}

/// Region from a geography payload.
pub fn geo_region(p: u64) -> u8 {
    ((p >> 24) & 0xFF) as u8
}

/// Pack a part dimension into an index payload.
pub fn part_payload(p: &PartDim) -> u64 {
    (p.brand as u64) | ((p.category as u64) << 16) | ((p.mfgr as u64) << 24)
}

/// Brand from a part payload.
pub fn part_brand(p: u64) -> u16 {
    (p & 0xFFFF) as u16
}

/// Category from a part payload.
pub fn part_category(p: u64) -> u8 {
    ((p >> 16) & 0xFF) as u8
}

/// Manufacturer from a part payload.
pub fn part_mfgr(p: u64) -> u8 {
    ((p >> 24) & 0xFF) as u8
}

/// Pack a date dimension into an index payload.
pub fn date_payload(d: &DateDim) -> u64 {
    (d.year as u64) | ((d.weeknuminyear as u64) << 16) | ((d.yearmonthnum as u64) << 32)
}

/// Year from a date payload.
pub fn date_year(p: u64) -> u16 {
    (p & 0xFFFF) as u16
}

/// Week-in-year from a date payload.
pub fn date_week(p: u64) -> u8 {
    ((p >> 16) & 0xFF) as u8
}

/// yyyymm from a date payload.
pub fn date_yearmonthnum(p: u64) -> u32 {
    (p >> 32) as u32
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::storage::{SsbStore, StorageDevice};
    use pmem_sim::topology::SocketId;

    #[test]
    fn payload_round_trips() {
        let g = GeoDim {
            key: 1,
            city: 205,
            nation: 20,
            region: 4,
            mktsegment: 0,
        };
        let p = geo_payload(&g);
        assert_eq!(geo_city(p), 205);
        assert_eq!(geo_nation(p), 20);
        assert_eq!(geo_region(p), 4);

        let part = PartDim {
            partkey: 9,
            mfgr: 3,
            category: 14,
            brand: 533,
            ..Default::default()
        };
        let p = part_payload(&part);
        assert_eq!(part_brand(p), 533);
        assert_eq!(part_category(p), 14);
        assert_eq!(part_mfgr(p), 3);

        let d = DateDim {
            datekey: 19970601,
            year: 1997,
            weeknuminyear: 22,
            yearmonthnum: 199706,
            ..Default::default()
        };
        let p = date_payload(&d);
        assert_eq!(date_year(p), 1997);
        assert_eq!(date_week(p), 22);
        assert_eq!(date_yearmonthnum(p), 199706);
    }

    #[test]
    fn filtered_index_build_only_keeps_matches() {
        let store =
            SsbStore::generate_and_load(0.002, 5, EngineMode::Aware, StorageDevice::PmemDevdax)
                .unwrap();
        let shard = &store.shards[0];
        let (index, inserts) = build_index(
            &shard.index_ns,
            &shard.parts,
            store.card.part as u64,
            store.card.part as usize,
            EngineMode::Aware,
            PartDim::decode,
            |p| (p.category == 12).then(|| (p.partkey as u64, part_payload(p))),
        )
        .unwrap();
        assert_eq!(index.len() as u64, inserts);
        // Roughly 1/25 of parts have a given category.
        let frac = inserts as f64 / store.card.part as f64;
        assert!((0.01..0.1).contains(&frac), "category selectivity {frac}");
    }

    #[test]
    fn scan_fact_visits_every_row_once() {
        let store =
            SsbStore::generate_and_load(0.002, 5, EngineMode::Aware, StorageDevice::PmemDevdax)
                .unwrap();
        let shard = &store.shards[0];
        let counts = scan_fact(
            &shard.fact,
            shard.fact_rows,
            4,
            || 0u64,
            |acc, _row| *acc += 1,
        )
        .unwrap();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, shard.fact_rows);
    }

    #[test]
    fn scan_fact_decodes_real_rows() {
        let data = crate::datagen::generate(0.002, 5);
        let store =
            SsbStore::load(&data, 0.002, EngineMode::Unaware, StorageDevice::PmemDevdax).unwrap();
        let shard = &store.shards[0];
        let sums = scan_fact(
            &shard.fact,
            shard.fact_rows,
            3,
            || 0u64,
            |acc, row| *acc += row.revenue as u64,
        )
        .unwrap();
        let expected: u64 = data.lineorder.iter().map(|l| l.revenue as u64).sum();
        assert_eq!(sums.iter().sum::<u64>(), expected);
    }

    #[test]
    fn group_agg_merges_and_sorts() {
        let mut a = GroupAgg::default();
        a.add(2, 10);
        a.add(1, 5);
        let mut b = GroupAgg::default();
        b.add(2, 7);
        b.add(3, 1);
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.updates, 4);
        assert_eq!(a.into_sorted(), vec![(1, 5), (2, 17), (3, 1)]);
    }

    #[test]
    fn spill_result_accounts_sequential_writes() {
        let ns = pmem_store::Namespace::devdax(SocketId(0), 1 << 20);
        spill_result(&ns, &[(1, 2), (3, 4)]).unwrap();
        let snap = ns.tracker().snapshot();
        assert_eq!(snap.seq_write_bytes, 32);
        spill_result(&ns, &[]).unwrap(); // no-op
        assert_eq!(ns.tracker().snapshot().seq_write_bytes, 32);
    }
}

//! NUMA-aware partitioning schemes — the future work §3.5 defers to
//! ("we plan to investigate such PMEM-aware partitioning schemes").
//!
//! Best Practice #4 requires data to be striped across sockets such that
//! threads only touch near PMEM. That works "when providing optimal
//! partitions is possible", which the paper notes is "generally hard to
//! achieve, e.g., due to skewed data" (§6.2). This module implements the
//! standard schemes, measures their balance, and prices the imbalance: the
//! slowest socket gates the scan, and any row landing on the wrong socket
//! turns a 40 GB/s near read into a 33 GB/s (warm) far read.

use pmem_sim::params::DeviceClass;
use pmem_sim::workload::{Placement, WorkloadSpec};
use pmem_sim::Simulation;

use crate::schema::{Lineorder, LINEORDER_ROW};

/// A partitioning scheme for fact rows across `sockets` partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Contiguous chunks in row order (what `SsbStore::load` does).
    RoundRobinChunks,
    /// Hash of the order key.
    HashOrderKey,
    /// Hash of the customer key — co-locates a customer's rows, which is
    /// exactly what skews under a hot customer.
    HashCustomer,
}

impl Scheme {
    /// All schemes.
    pub const ALL: [Scheme; 3] = [
        Scheme::RoundRobinChunks,
        Scheme::HashOrderKey,
        Scheme::HashCustomer,
    ];

    /// Partition index for a row.
    pub fn partition_of(self, row_index: u64, row: &Lineorder, sockets: u32) -> u32 {
        match self {
            Scheme::RoundRobinChunks => ((row_index / 512) % sockets as u64) as u32,
            Scheme::HashOrderKey => (pmem_dash::hash::hash64(row.orderkey) % sockets as u64) as u32,
            Scheme::HashCustomer => {
                (pmem_dash::hash::hash64(row.custkey as u64) % sockets as u64) as u32
            }
        }
    }

    /// Short label.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::RoundRobinChunks => "round-robin chunks",
            Scheme::HashOrderKey => "hash(orderkey)",
            Scheme::HashCustomer => "hash(custkey)",
        }
    }
}

/// Balance metrics of a partitioning.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Rows per partition.
    pub rows: Vec<u64>,
    /// max/mean row-count ratio (1.0 = perfect balance).
    pub imbalance: f64,
    /// Estimated scan seconds with this partitioning (slowest socket
    /// gates; each socket reads its own partition near).
    pub scan_seconds: f64,
    /// Scan seconds under perfect balance, for comparison.
    pub balanced_seconds: f64,
}

impl PartitionReport {
    /// Relative slowdown caused by imbalance.
    pub fn skew_penalty(&self) -> f64 {
        self.scan_seconds / self.balanced_seconds
    }
}

/// Partition `rows` under `scheme` and price the resulting scan.
pub fn evaluate_scheme(
    sim: &Simulation,
    rows: &[Lineorder],
    scheme: Scheme,
    sockets: u32,
    threads_per_socket: u32,
) -> PartitionReport {
    let mut counts = vec![0u64; sockets as usize];
    for (i, row) in rows.iter().enumerate() {
        counts[scheme.partition_of(i as u64, row, sockets) as usize] += 1;
    }
    let total: u64 = counts.iter().sum();
    let mean = total as f64 / sockets as f64;
    let max = *counts.iter().max().unwrap_or(&0) as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };

    // Each socket streams its partition from near PMEM; the query finishes
    // when the largest partition does.
    let near = sim
        .evaluate_steady(&WorkloadSpec::seq_read(
            DeviceClass::Pmem,
            4096,
            threads_per_socket,
        ))
        .total_bandwidth
        .bytes_per_sec();
    let scan_seconds = max * LINEORDER_ROW as f64 / near;
    let balanced_seconds = mean * LINEORDER_ROW as f64 / near;

    PartitionReport {
        scheme,
        rows: counts,
        imbalance,
        scan_seconds,
        balanced_seconds,
    }
}

/// Price a *misplaced* workload: `far_fraction` of the rows live on the
/// wrong socket, so their reads cross the UPI at the warm far rate instead
/// of the near rate. Returns (seconds, slowdown vs all-near).
pub fn misplacement_penalty(
    sim: &Simulation,
    total_rows: u64,
    far_fraction: f64,
    threads_per_socket: u32,
) -> (f64, f64) {
    let near_bw = sim
        .evaluate_steady(&WorkloadSpec::seq_read(
            DeviceClass::Pmem,
            4096,
            threads_per_socket,
        ))
        .total_bandwidth
        .bytes_per_sec();
    let far_bw = sim
        .evaluate_steady(
            &WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, threads_per_socket)
                .placement(Placement::FAR),
        )
        .total_bandwidth
        .bytes_per_sec();
    let bytes = total_rows as f64 * LINEORDER_ROW as f64 / 2.0; // per socket
    let seconds = bytes * (1.0 - far_fraction) / near_bw + bytes * far_fraction / far_bw;
    let all_near = bytes / near_bw;
    (seconds, seconds / all_near)
}

/// Inject customer skew into generated rows: `hot_fraction` of all rows are
/// rewritten to reference customer 1 (a "whale" account), the classic
/// pattern that breaks hash(custkey) partitioning.
pub fn inject_customer_skew(rows: &mut [Lineorder], hot_fraction: f64) {
    let every = (1.0 / hot_fraction.clamp(1e-6, 1.0)).round().max(1.0) as usize;
    for (i, row) in rows.iter_mut().enumerate() {
        if i % every == 0 {
            row.custkey = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::datagen::generate;

    fn rows() -> Vec<Lineorder> {
        generate(0.01, 33).lineorder
    }

    #[test]
    fn uniform_data_balances_under_every_scheme() {
        let sim = Simulation::paper_default();
        let rows = rows();
        for scheme in Scheme::ALL {
            let report = evaluate_scheme(&sim, &rows, scheme, 2, 18);
            assert_eq!(report.rows.iter().sum::<u64>(), rows.len() as u64);
            // At SF 0.01 there are only ~300 distinct customers, so a
            // 2-way hash split has ~3% one-sigma imbalance purely from
            // binomial variance; 1.07 tolerates that while still being far
            // below what injected skew produces (>1.3).
            assert!(
                report.imbalance < 1.07,
                "{}: imbalance {}",
                scheme.name(),
                report.imbalance
            );
            assert!(report.skew_penalty() < 1.07);
        }
    }

    #[test]
    fn customer_skew_breaks_hash_custkey_but_not_round_robin() {
        let sim = Simulation::paper_default();
        let mut rows = rows();
        inject_customer_skew(&mut rows, 0.4); // 40 % of rows hit customer 1
        let rr = evaluate_scheme(&sim, &rows, Scheme::RoundRobinChunks, 2, 18);
        let hc = evaluate_scheme(&sim, &rows, Scheme::HashCustomer, 2, 18);
        assert!(rr.imbalance < 1.05, "round-robin stays balanced");
        assert!(
            hc.imbalance > 1.25,
            "hash(custkey) must skew: {}",
            hc.imbalance
        );
        assert!(hc.skew_penalty() > 1.2);
        assert!(hc.scan_seconds > rr.scan_seconds);
    }

    #[test]
    fn misplacement_costs_track_the_far_read_gap() {
        let sim = Simulation::paper_default();
        let (_, none) = misplacement_penalty(&sim, 6_000_000, 0.0, 18);
        let (_, half) = misplacement_penalty(&sim, 6_000_000, 0.5, 18);
        let (_, all) = misplacement_penalty(&sim, 6_000_000, 1.0, 18);
        assert!((none - 1.0).abs() < 1e-9);
        assert!(none < half && half < all);
        // All-far ≈ 40/33 ≈ 1.22× slower (warm).
        assert!((1.1..1.4).contains(&all), "all-far penalty {all}");
    }

    #[test]
    fn skew_injection_is_proportional() {
        let mut rows = rows();
        let n = rows.len();
        inject_customer_skew(&mut rows, 0.25);
        let hot = rows.iter().filter(|r| r.custkey == 1).count();
        let frac = hot as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "hot fraction {frac}");
    }
}

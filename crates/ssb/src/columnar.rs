//! Columnar fact-table storage — the "future system design" the paper's
//! introduction motivates.
//!
//! The handcrafted engine (like the paper's) stores 128 B rows and streams
//! whole rows even when a query touches four fields. A column store reads
//! only the referenced columns: Q1.1 touches 10 bytes per tuple instead of
//! 128 — a 12.8× reduction in scan traffic that matters far more on PMEM's
//! 40 GB/s than on DRAM's 185 GB/s. This module provides a columnar layout
//! for `lineorder`, a column-projected parallel scan, and the per-query
//! scan-byte comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem_store::{AccessHint, Namespace, Region, Result};

use crate::datagen::SsbData;
use crate::queries::QueryId;
use crate::schema::LINEORDER_ROW;

/// The `lineorder` columns the SSB queries reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Column {
    /// Order date key (u32).
    OrderDate,
    /// Part foreign key (u32).
    PartKey,
    /// Supplier foreign key (u32).
    SuppKey,
    /// Customer foreign key (u32).
    CustKey,
    /// Quantity (u8).
    Quantity,
    /// Discount (u8).
    Discount,
    /// Extended price (u32).
    ExtendedPrice,
    /// Revenue (u32).
    Revenue,
    /// Supply cost (u32).
    SupplyCost,
}

impl Column {
    /// All stored columns.
    pub const ALL: [Column; 9] = [
        Column::OrderDate,
        Column::PartKey,
        Column::SuppKey,
        Column::CustKey,
        Column::Quantity,
        Column::Discount,
        Column::ExtendedPrice,
        Column::Revenue,
        Column::SupplyCost,
    ];

    /// Bytes per value.
    pub fn width(self) -> u64 {
        match self {
            Column::Quantity | Column::Discount => 1,
            _ => 4,
        }
    }

    /// Columns referenced by a query (scan side only).
    pub fn for_query(query: QueryId) -> &'static [Column] {
        use Column::*;
        match query {
            QueryId::Q1_1 | QueryId::Q1_2 | QueryId::Q1_3 => {
                &[OrderDate, Quantity, Discount, ExtendedPrice]
            }
            QueryId::Q2_1 | QueryId::Q2_2 | QueryId::Q2_3 => {
                &[OrderDate, PartKey, SuppKey, Revenue]
            }
            QueryId::Q3_1 | QueryId::Q3_2 | QueryId::Q3_3 | QueryId::Q3_4 => {
                &[OrderDate, CustKey, SuppKey, Revenue]
            }
            QueryId::Q4_1 | QueryId::Q4_2 | QueryId::Q4_3 => {
                &[OrderDate, PartKey, SuppKey, CustKey, Revenue, SupplyCost]
            }
        }
    }

    /// Bytes per tuple for a column set.
    pub fn tuple_bytes(columns: &[Column]) -> u64 {
        columns.iter().map(|c| c.width()).sum()
    }
}

/// One tuple's projected values (unreferenced columns are zero).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ColTuple {
    /// Order date key.
    pub orderdate: u32,
    /// Part key.
    pub partkey: u32,
    /// Supplier key.
    pub suppkey: u32,
    /// Customer key.
    pub custkey: u32,
    /// Quantity.
    pub quantity: u8,
    /// Discount.
    pub discount: u8,
    /// Extended price.
    pub extendedprice: u32,
    /// Revenue.
    pub revenue: u32,
    /// Supply cost.
    pub supplycost: u32,
}

/// A columnar `lineorder` partition: one region per column.
#[derive(Debug)]
pub struct ColumnarFact {
    rows: u64,
    columns: Vec<(Column, Arc<Region>)>,
}

impl ColumnarFact {
    /// Load all columns of `data` into `ns`.
    pub fn load(ns: &Namespace, data: &SsbData) -> Result<Self> {
        let rows = data.lineorder.len() as u64;
        let mut columns = Vec::with_capacity(Column::ALL.len());
        for column in Column::ALL {
            let width = column.width();
            let mut region = ns.alloc_region(rows.max(1) * width)?;
            let mut buf = Vec::with_capacity((rows * width) as usize);
            for lo in &data.lineorder {
                match column {
                    Column::OrderDate => buf.extend_from_slice(&lo.orderdate.to_le_bytes()),
                    Column::PartKey => buf.extend_from_slice(&lo.partkey.to_le_bytes()),
                    Column::SuppKey => buf.extend_from_slice(&lo.suppkey.to_le_bytes()),
                    Column::CustKey => buf.extend_from_slice(&lo.custkey.to_le_bytes()),
                    Column::Quantity => buf.push(lo.quantity),
                    Column::Discount => buf.push(lo.discount),
                    Column::ExtendedPrice => buf.extend_from_slice(&lo.extendedprice.to_le_bytes()),
                    Column::Revenue => buf.extend_from_slice(&lo.revenue.to_le_bytes()),
                    Column::SupplyCost => buf.extend_from_slice(&lo.supplycost.to_le_bytes()),
                }
            }
            if !buf.is_empty() {
                region.try_ntstore(0, &buf, AccessHint::Sequential)?;
                region.sfence();
            }
            columns.push((column, Arc::new(region)));
        }
        Ok(ColumnarFact { rows, columns })
    }

    /// Stored rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    fn region(&self, column: Column) -> &Arc<Region> {
        &self
            .columns
            .iter()
            .find(|(c, _)| *c == column)
            .expect("column stored")
            .1
    }

    /// Parallel projected scan: stream only `projection`, assembling
    /// [`ColTuple`]s chunk by chunk. Returns the per-thread accumulators.
    pub fn scan<A, F>(
        &self,
        projection: &[Column],
        threads: u32,
        make_acc: impl Fn() -> A + Sync,
        visit: F,
    ) -> Vec<A>
    where
        A: Send,
        F: Fn(&mut A, &ColTuple) + Sync,
    {
        const CHUNK: u64 = 4096; // rows per chunk: 16 KB per u32 column
        let cursor = AtomicU64::new(0);
        let chunks = self.rows.div_ceil(CHUNK);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| {
                    let cursor = &cursor;
                    let make_acc = &make_acc;
                    let visit = &visit;
                    scope.spawn(move || {
                        let mut acc = make_acc();
                        let mut tuples: Vec<ColTuple> = Vec::new();
                        loop {
                            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                            if chunk >= chunks {
                                break;
                            }
                            let start = chunk * CHUNK;
                            let n = CHUNK.min(self.rows - start);
                            tuples.clear();
                            tuples.resize(n as usize, ColTuple::default());
                            for &column in projection {
                                let width = column.width();
                                let bytes = self.region(column).read(
                                    start * width,
                                    n * width,
                                    AccessHint::Sequential,
                                );
                                fill_column(column, bytes, &mut tuples);
                            }
                            for t in &tuples {
                                visit(&mut acc, t);
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker"))
                .collect()
        })
    }
}

fn fill_column(column: Column, bytes: &[u8], tuples: &mut [ColTuple]) {
    let width = column.width() as usize;
    for (i, t) in tuples.iter_mut().enumerate() {
        let chunk = &bytes[i * width..(i + 1) * width];
        let u32v = || u32::from_le_bytes(chunk.try_into().expect("4"));
        match column {
            Column::OrderDate => t.orderdate = u32v(),
            Column::PartKey => t.partkey = u32v(),
            Column::SuppKey => t.suppkey = u32v(),
            Column::CustKey => t.custkey = u32v(),
            Column::Quantity => t.quantity = chunk[0],
            Column::Discount => t.discount = chunk[0],
            Column::ExtendedPrice => t.extendedprice = u32v(),
            Column::Revenue => t.revenue = u32v(),
            Column::SupplyCost => t.supplycost = u32v(),
        }
    }
}

/// Scan-byte comparison of the row format against a column store, per
/// query — the quantitative case for columnar PMEM scans.
#[derive(Debug, Clone, Copy)]
pub struct ScanComparison {
    /// Which query.
    pub query: QueryId,
    /// Bytes per tuple in the 128 B row format.
    pub row_bytes: u64,
    /// Bytes per tuple in the columnar projection.
    pub column_bytes: u64,
}

impl ScanComparison {
    /// Row/column scan-traffic ratio (the columnar speed-up bound for
    /// scan-dominated queries).
    pub fn reduction(&self) -> f64 {
        self.row_bytes as f64 / self.column_bytes as f64
    }
}

/// Per-query scan comparison for all 13 queries.
pub fn scan_comparisons() -> Vec<ScanComparison> {
    QueryId::ALL
        .iter()
        .map(|&query| ScanComparison {
            query,
            row_bytes: LINEORDER_ROW,
            column_bytes: Column::tuple_bytes(Column::for_query(query)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::generate;
    use pmem_sim::topology::SocketId;

    fn setup() -> (SsbData, ColumnarFact, Namespace) {
        let data = generate(0.003, 77);
        let ns = Namespace::devdax(SocketId(0), 64 << 20);
        let fact = ColumnarFact::load(&ns, &data).unwrap();
        (data, fact, ns)
    }

    #[test]
    fn projected_scan_reconstructs_column_values() {
        let (data, fact, _ns) = setup();
        assert_eq!(fact.rows(), data.lineorder.len() as u64);
        let sums = fact.scan(
            &[Column::Revenue, Column::Quantity],
            4,
            || (0u64, 0u64),
            |acc, t| {
                acc.0 += t.revenue as u64;
                acc.1 += t.quantity as u64;
            },
        );
        let (rev, qty) = sums.into_iter().fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(
            rev,
            data.lineorder.iter().map(|l| l.revenue as u64).sum::<u64>()
        );
        assert_eq!(
            qty,
            data.lineorder
                .iter()
                .map(|l| l.quantity as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn q1_1_on_columnar_matches_the_reference() {
        let (data, fact, _ns) = setup();
        let partials = fact.scan(
            Column::for_query(QueryId::Q1_1),
            4,
            || 0i64,
            |acc, t| {
                if (19930101..19940101).contains(&t.orderdate)
                    && (1..=3).contains(&t.discount)
                    && t.quantity < 25
                {
                    *acc += t.extendedprice as i64 * t.discount as i64;
                }
            },
        );
        let total: i64 = partials.iter().sum();
        let reference = crate::reference::reference_query(&data, QueryId::Q1_1);
        assert_eq!(total, reference[0].1);
    }

    #[test]
    fn projected_scan_reads_only_the_projection() {
        let (_data, fact, ns) = setup();
        ns.tracker().reset();
        let projection = Column::for_query(QueryId::Q1_1);
        let _ = fact.scan(projection, 2, || (), |_, _| {});
        let snap = ns.tracker().snapshot();
        let expected = fact.rows() * Column::tuple_bytes(projection);
        assert_eq!(snap.seq_read_bytes, expected, "exactly the projection");
        assert_eq!(snap.rand_read_bytes, 0);
        // 10 B per tuple instead of 128.
        assert_eq!(Column::tuple_bytes(projection), 10);
    }

    #[test]
    fn scan_comparisons_show_large_reductions() {
        let comps = scan_comparisons();
        assert_eq!(comps.len(), 13);
        for c in &comps {
            assert!(
                c.reduction() >= 5.0,
                "{}: only {:.1}x",
                c.query.name(),
                c.reduction()
            );
            assert!(c.column_bytes <= 24);
        }
        // QF1 is the most column-frugal flight.
        let q11 = comps.iter().find(|c| c.query == QueryId::Q1_1).unwrap();
        assert!((q11.reduction() - 128.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn column_widths_are_consistent() {
        assert_eq!(Column::Quantity.width(), 1);
        assert_eq!(Column::Revenue.width(), 4);
        assert_eq!(Column::tuple_bytes(&Column::ALL), 30);
    }
}

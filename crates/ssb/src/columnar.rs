//! Columnar fact-table storage — the "future system design" the paper's
//! introduction motivates.
//!
//! The handcrafted engine (like the paper's) stores 128 B rows and streams
//! whole rows even when a query touches four fields. A column store reads
//! only the referenced columns: Q1.1 touches 10 bytes per tuple instead of
//! 128 — a 12.8× reduction in scan traffic that matters far more on PMEM's
//! 40 GB/s than on DRAM's 185 GB/s. This module provides a columnar layout
//! for `lineorder`, a column-projected parallel scan, and the per-query
//! scan-byte comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem_store::scrub::{BlockChecksums, ScrubReport, SCRUB_BLOCK};
use pmem_store::{AccessHint, Namespace, Region, Result, StoreError};

use crate::checkpoint::CheckpointStore;
use crate::datagen::SsbData;
use crate::queries::QueryId;
use crate::schema::LINEORDER_ROW;

/// The `lineorder` columns the SSB queries reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Column {
    /// Order date key (u32).
    OrderDate,
    /// Part foreign key (u32).
    PartKey,
    /// Supplier foreign key (u32).
    SuppKey,
    /// Customer foreign key (u32).
    CustKey,
    /// Quantity (u8).
    Quantity,
    /// Discount (u8).
    Discount,
    /// Extended price (u32).
    ExtendedPrice,
    /// Revenue (u32).
    Revenue,
    /// Supply cost (u32).
    SupplyCost,
}

impl Column {
    /// All stored columns.
    pub const ALL: [Column; 9] = [
        Column::OrderDate,
        Column::PartKey,
        Column::SuppKey,
        Column::CustKey,
        Column::Quantity,
        Column::Discount,
        Column::ExtendedPrice,
        Column::Revenue,
        Column::SupplyCost,
    ];

    /// Bytes per value.
    pub fn width(self) -> u64 {
        match self {
            Column::Quantity | Column::Discount => 1,
            _ => 4,
        }
    }

    /// Stable identity of the column as a buffer-pool heat object (its
    /// position in [`Column::ALL`]).
    pub fn object_id(self) -> u64 {
        Column::ALL
            .iter()
            .position(|&c| c == self)
            .unwrap_or_default() as u64
    }

    /// Columns referenced by a query (scan side only).
    pub fn for_query(query: QueryId) -> &'static [Column] {
        use Column::*;
        match query {
            QueryId::Q1_1 | QueryId::Q1_2 | QueryId::Q1_3 => {
                &[OrderDate, Quantity, Discount, ExtendedPrice]
            }
            QueryId::Q2_1 | QueryId::Q2_2 | QueryId::Q2_3 => {
                &[OrderDate, PartKey, SuppKey, Revenue]
            }
            QueryId::Q3_1 | QueryId::Q3_2 | QueryId::Q3_3 | QueryId::Q3_4 => {
                &[OrderDate, CustKey, SuppKey, Revenue]
            }
            QueryId::Q4_1 | QueryId::Q4_2 | QueryId::Q4_3 => {
                &[OrderDate, PartKey, SuppKey, CustKey, Revenue, SupplyCost]
            }
        }
    }

    /// Bytes per tuple for a column set.
    pub fn tuple_bytes(columns: &[Column]) -> u64 {
        columns.iter().map(|c| c.width()).sum()
    }
}

/// One tuple's projected values (unreferenced columns are zero).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ColTuple {
    /// Order date key.
    pub orderdate: u32,
    /// Part key.
    pub partkey: u32,
    /// Supplier key.
    pub suppkey: u32,
    /// Customer key.
    pub custkey: u32,
    /// Quantity.
    pub quantity: u8,
    /// Discount.
    pub discount: u8,
    /// Extended price.
    pub extendedprice: u32,
    /// Revenue.
    pub revenue: u32,
    /// Supply cost.
    pub supplycost: u32,
}

/// A columnar `lineorder` partition: one region per column, with per-block
/// FNV checksums sealed at load time so chunks can be verified and — when a
/// media error poisons them — rebuilt from a durable [`CheckpointStore`].
#[derive(Debug)]
pub struct ColumnarFact {
    rows: u64,
    columns: Vec<(Column, Arc<Region>)>,
    /// Per-column block checksums, parallel to `columns`.
    checks: Vec<BlockChecksums>,
}

impl ColumnarFact {
    /// Load all columns of `data` into `ns`, sealing per-block checksums
    /// over each column as it lands (from the staging buffer, so sealing
    /// adds no device reads).
    pub fn load(ns: &Namespace, data: &SsbData) -> Result<Self> {
        let rows = data.lineorder.len() as u64;
        let mut columns = Vec::with_capacity(Column::ALL.len());
        let mut checks = Vec::with_capacity(Column::ALL.len());
        for column in Column::ALL {
            let width = column.width();
            let mut region = ns.alloc_region(rows.max(1) * width)?;
            let mut buf = Vec::with_capacity((rows * width) as usize);
            for lo in &data.lineorder {
                match column {
                    Column::OrderDate => buf.extend_from_slice(&lo.orderdate.to_le_bytes()),
                    Column::PartKey => buf.extend_from_slice(&lo.partkey.to_le_bytes()),
                    Column::SuppKey => buf.extend_from_slice(&lo.suppkey.to_le_bytes()),
                    Column::CustKey => buf.extend_from_slice(&lo.custkey.to_le_bytes()),
                    Column::Quantity => buf.push(lo.quantity),
                    Column::Discount => buf.push(lo.discount),
                    Column::ExtendedPrice => buf.extend_from_slice(&lo.extendedprice.to_le_bytes()),
                    Column::Revenue => buf.extend_from_slice(&lo.revenue.to_le_bytes()),
                    Column::SupplyCost => buf.extend_from_slice(&lo.supplycost.to_le_bytes()),
                }
            }
            if !buf.is_empty() {
                region.try_ntstore(0, &buf, AccessHint::Sequential)?;
                region.sfence();
            }
            checks.push(BlockChecksums::seal_bytes(
                region.untracked_slice(),
                SCRUB_BLOCK,
            ));
            columns.push((column, Arc::new(region)));
        }
        Ok(ColumnarFact {
            rows,
            columns,
            checks,
        })
    }

    /// Stored rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Inject an uncorrectable media error into one column's region (test /
    /// fault-plan hook). Requires exclusive ownership of the region — no
    /// scan may be in flight. Returns the number of newly poisoned XPLines.
    pub fn inject_poison(&mut self, column: Column, offset: u64, len: u64) -> u64 {
        let region = self
            .columns
            .iter_mut()
            .find(|(c, _)| *c == column)
            .map(|(_, r)| r)
            .expect("column stored");
        Arc::get_mut(region)
            .expect("no scan in flight during poison injection")
            .inject_poison(offset, len)
    }

    /// Scrub every column against its sealed checksums, returning one
    /// report per column (in [`Column::ALL`] order).
    pub fn scrub(&self) -> Vec<(Column, ScrubReport)> {
        self.columns
            .iter()
            .zip(self.checks.iter())
            .map(|((column, region), checks)| (*column, checks.scrub(region)))
            .collect()
    }

    /// Rebuild every poisoned or checksum-mismatched block from the durable
    /// checkpoint, XPLine by XPLine: the checkpoint is validated first
    /// (reusing `checkpoint.rs`'s manifest checksum), the block's row range
    /// is fetched with checked reads, re-encoded into column format, and
    /// rewritten with `ntstore` — which clears the poison — then verified
    /// against the sealed checksum.
    ///
    /// Fails with [`StoreError::Poisoned`] if the checkpoint itself is
    /// poisoned over the needed rows (nothing left to rebuild from), and
    /// with [`StoreError::OutOfBounds`] if the checkpoint holds fewer rows
    /// than this table.
    pub fn repair_from_checkpoint(&mut self, ckpt: &CheckpointStore) -> Result<ColumnarRepair> {
        if ckpt.rows() < self.rows {
            return Err(StoreError::OutOfBounds {
                offset: 0,
                len: self.rows,
                capacity: ckpt.rows(),
            });
        }
        if !ckpt.validate()? {
            // The checkpoint's own bytes no longer match its manifest: it
            // cannot be trusted as a rebuild source.
            return Err(StoreError::Poisoned { offset: 0, len: 0 });
        }
        let mut repair = ColumnarRepair::default();
        for ((column, region), checks) in self.columns.iter_mut().zip(self.checks.iter()) {
            let width = column.width();
            let bad = checks.scrub(region).bad_blocks();
            if bad.is_empty() {
                continue;
            }
            let region = Arc::get_mut(region).expect("no scan in flight during repair");
            for block in bad {
                let (offset, blen) = checks.block_range(block);
                // Block boundaries are multiples of the column width (the
                // 4 KiB scrub block divides evenly by widths 1 and 4), so a
                // block maps to a whole row range.
                let row0 = offset / width;
                let nrows = blen.div_ceil(width).min(self.rows.saturating_sub(row0));
                let tuples = ckpt.read_range(row0, nrows)?;
                let mut good = Vec::with_capacity(blen as usize);
                for t in &tuples {
                    match column {
                        Column::OrderDate => good.extend_from_slice(&t.orderdate.to_le_bytes()),
                        Column::PartKey => good.extend_from_slice(&t.partkey.to_le_bytes()),
                        Column::SuppKey => good.extend_from_slice(&t.suppkey.to_le_bytes()),
                        Column::CustKey => good.extend_from_slice(&t.custkey.to_le_bytes()),
                        Column::Quantity => good.push(t.quantity),
                        Column::Discount => good.push(t.discount),
                        Column::ExtendedPrice => {
                            good.extend_from_slice(&t.extendedprice.to_le_bytes())
                        }
                        Column::Revenue => good.extend_from_slice(&t.revenue.to_le_bytes()),
                        Column::SupplyCost => good.extend_from_slice(&t.supplycost.to_le_bytes()),
                    }
                }
                // Pad to the full block when the region has slack beyond
                // rows * width (rows == 0 placeholder regions).
                good.resize(blen as usize, 0);
                region.try_ntstore(offset, &good, AccessHint::Sequential)?;
                repair.bytes_rewritten += blen;
                if checks.verify_block(region, block)? {
                    repair.blocks_repaired += 1;
                } else {
                    repair.unrepairable += 1;
                }
            }
            region.sfence();
        }
        Ok(repair)
    }

    /// Copy every column into `ns`, producing an independent replica of
    /// this partition (the peer-shard copy the cluster keeps). The copy
    /// goes through tracked reads and `ntstore` writes, so replication
    /// traffic is priced on both namespaces, and the replica seals its
    /// own checksums over the landed bytes.
    ///
    /// Fails with [`StoreError::Poisoned`] if any source column holds a
    /// poisoned or checksum-mismatched block — a dirty table must be
    /// repaired before it may serve as a replication source.
    pub fn replicate_to(&self, ns: &Namespace) -> Result<ColumnarFact> {
        let mut columns = Vec::with_capacity(self.columns.len());
        let mut checks = Vec::with_capacity(self.columns.len());
        for ((column, region), check) in self.columns.iter().zip(self.checks.iter()) {
            if !check.scrub(region).is_clean() {
                return Err(StoreError::Poisoned { offset: 0, len: 0 });
            }
            let len = region.len();
            let bytes = region.try_read(0, len, AccessHint::Sequential)?.to_vec();
            let mut copy = ns.alloc_region(len)?;
            if !bytes.is_empty() {
                copy.try_ntstore(0, &bytes, AccessHint::Sequential)?;
                copy.sfence();
            }
            checks.push(BlockChecksums::seal_bytes(
                copy.untracked_slice(),
                SCRUB_BLOCK,
            ));
            columns.push((*column, Arc::new(copy)));
        }
        Ok(ColumnarFact {
            rows: self.rows,
            columns,
            checks,
        })
    }

    /// Rebuild every poisoned or checksum-mismatched block from a *remote
    /// replica* of the same partition — the cluster counterpart of
    /// [`ColumnarFact::repair_from_checkpoint`]. The replica is scrubbed
    /// first; a dirty replica is refused with [`StoreError::Poisoned`]
    /// before anything is rewritten (this table stays untouched, awaiting
    /// a good source). Each bad block's byte range is read from the
    /// replica's matching column with checked reads, rewritten here with
    /// `ntstore` (clearing the poison), and verified against this table's
    /// sealed checksum — so a repaired block is byte-exact by
    /// construction, and a divergent replica shows up as `unrepairable`
    /// rather than silent corruption.
    ///
    /// Fails with [`StoreError::OutOfBounds`] if the replica holds fewer
    /// rows than this table.
    pub fn repair_from_replica(&mut self, replica: &ColumnarFact) -> Result<ColumnarRepair> {
        if replica.rows() < self.rows {
            return Err(StoreError::OutOfBounds {
                offset: 0,
                len: self.rows,
                capacity: replica.rows(),
            });
        }
        if replica.scrub().iter().any(|(_, r)| !r.is_clean()) {
            // The rebuild source itself is dirty: refuse loudly.
            return Err(StoreError::Poisoned { offset: 0, len: 0 });
        }
        let mut repair = ColumnarRepair::default();
        for ((column, region), checks) in self.columns.iter_mut().zip(self.checks.iter()) {
            let bad = checks.scrub(region).bad_blocks();
            if bad.is_empty() {
                continue;
            }
            let source = replica.region(*column);
            let region = Arc::get_mut(region).expect("no scan in flight during repair");
            for block in bad {
                let (offset, blen) = checks.block_range(block);
                let good = source.try_read(offset, blen, AccessHint::Sequential)?;
                region.try_ntstore(offset, good, AccessHint::Sequential)?;
                repair.bytes_rewritten += blen;
                if checks.verify_block(region, block)? {
                    repair.blocks_repaired += 1;
                } else {
                    repair.unrepairable += 1;
                }
            }
            region.sfence();
        }
        Ok(repair)
    }

    /// Anti-entropy hash exchange: recompute this table's per-block
    /// content hashes from its *current* bytes and compare them against
    /// the replica's sealed checksums, block by block. A block diverges
    /// when it no longer reads (`Poisoned`) or its hash disagrees with
    /// the replica's sum. Only the hash tables cross the wire (8 bytes
    /// per [`SCRUB_BLOCK`] both ways, see [`BlockDiff::hash_bytes`]) —
    /// the data itself ships later, and only for the divergent blocks
    /// ([`ColumnarFact::apply_diff`]).
    ///
    /// Fails with [`StoreError::OutOfBounds`] if the replica holds fewer
    /// rows than this table.
    pub fn diff_blocks(&self, replica: &ColumnarFact) -> Result<BlockDiff> {
        if replica.rows() < self.rows {
            return Err(StoreError::OutOfBounds {
                offset: 0,
                len: self.rows,
                capacity: replica.rows(),
            });
        }
        let mut diff = BlockDiff::default();
        for (((column, region), checks), theirs) in self
            .columns
            .iter()
            .zip(self.checks.iter())
            .zip(replica.checks.iter())
        {
            let mut divergent = Vec::new();
            for block in 0..checks.blocks() {
                diff.blocks_examined += 1;
                // Both sides ship their 8-byte sum for this block.
                diff.hash_bytes += 16;
                let (offset, n) = checks.block_range(block);
                let diverges = match region.try_read(offset, n, AccessHint::Sequential) {
                    Err(_) => true, // unreadable here — must be re-shipped
                    Ok(bytes) => {
                        pmem_store::scrub::fnv64(pmem_store::scrub::FNV_OFFSET, bytes)
                            != theirs.block_sum(block)
                    }
                };
                if diverges {
                    divergent.push(block);
                }
            }
            if !divergent.is_empty() {
                diff.per_column.push((*column, divergent));
            }
        }
        Ok(diff)
    }

    /// Ship the divergent blocks of `diff` from `replica` into this
    /// table: each block is read from the replica with checked reads and
    /// rewritten here with `ntstore` (clearing poison), the
    /// [`ColumnarFact::repair_from_replica`]-style verified copy. A
    /// replica block that cannot be read is *refused* — counted
    /// `unrepairable`, this table's block left untouched — never written
    /// blind.
    ///
    /// With `verify` on, every landed block is checked against this
    /// table's sealed checksum, and a final scrub pass re-fetches any
    /// block that went bad *after* the diff was computed (media errors
    /// land mid-catch-up too); [`AntiEntropyReport::clean`] then reports
    /// the verified end state. With `verify` off the copy is trusted
    /// blindly — `clean` claims success without evidence, which is
    /// exactly the regression the chaos fuzzer exists to catch.
    pub fn apply_diff(
        &mut self,
        replica: &ColumnarFact,
        diff: &BlockDiff,
        verify: bool,
    ) -> Result<AntiEntropyReport> {
        if replica.rows() < self.rows {
            return Err(StoreError::OutOfBounds {
                offset: 0,
                len: self.rows,
                capacity: replica.rows(),
            });
        }
        let mut report = AntiEntropyReport {
            blocks_examined: diff.blocks_examined,
            hash_bytes_exchanged: diff.hash_bytes,
            ..AntiEntropyReport::default()
        };
        for (column, blocks) in &diff.per_column {
            self.ship_blocks(replica, *column, blocks, verify, &mut report)?;
        }
        if verify {
            // Catch-all pass: blocks that diverged after the hash
            // exchange (or failed their landing check) are re-fetched.
            for pass in 0..2 {
                let bad: Vec<(Column, Vec<u64>)> = self
                    .columns
                    .iter()
                    .zip(self.checks.iter())
                    .map(|((c, region), checks)| (*c, checks.scrub(region).bad_blocks()))
                    .filter(|(_, bad)| !bad.is_empty())
                    .collect();
                if bad.is_empty() {
                    break;
                }
                if pass == 1 {
                    // Still dirty after a re-fetch: the replica cannot
                    // supply good bytes. Refuse to claim success.
                    break;
                }
                for (column, blocks) in &bad {
                    report.refetched_blocks += blocks.len() as u64;
                    self.ship_blocks(replica, *column, blocks, true, &mut report)?;
                }
            }
            report.clean = self
                .columns
                .iter()
                .zip(self.checks.iter())
                .all(|((_, region), checks)| checks.scrub(region).is_clean());
        } else {
            // Verification disabled: the protocol asserts cleanliness it
            // never checked.
            report.clean = true;
        }
        Ok(report)
    }

    /// One-shot incremental anti-entropy: hash exchange, then verified
    /// shipping of only the divergent blocks. See
    /// [`ColumnarFact::diff_blocks`] / [`ColumnarFact::apply_diff`].
    pub fn catch_up_from_replica(
        &mut self,
        replica: &ColumnarFact,
        verify: bool,
    ) -> Result<AntiEntropyReport> {
        let diff = self.diff_blocks(replica)?;
        self.apply_diff(replica, &diff, verify)
    }

    fn ship_blocks(
        &mut self,
        replica: &ColumnarFact,
        column: Column,
        blocks: &[u64],
        verify: bool,
        report: &mut AntiEntropyReport,
    ) -> Result<()> {
        let source = replica.region(column).clone();
        let (region, checks) = self
            .columns
            .iter_mut()
            .zip(self.checks.iter())
            .find(|((c, _), _)| *c == column)
            .map(|((_, r), checks)| (r, checks))
            .expect("column stored");
        let region = Arc::get_mut(region).expect("no scan in flight during catch-up");
        for &block in blocks {
            let (offset, n) = checks.block_range(block);
            let good = match source.try_read(offset, n, AccessHint::Sequential) {
                Ok(bytes) => bytes,
                Err(_) => {
                    // The replica's copy of this block is itself bad:
                    // refuse rather than launder unverifiable bytes.
                    report.unrepairable += 1;
                    continue;
                }
            };
            region.try_ntstore(offset, good, AccessHint::Sequential)?;
            report.blocks_shipped += 1;
            report.bytes_shipped += n;
            if verify && !checks.verify_block(region, block).unwrap_or(false) {
                report.unrepairable += 1;
            }
        }
        region.sfence();
        Ok(())
    }

    /// FNV-1a content hash over every column's bytes (untracked — a
    /// fingerprint for byte-exactness assertions, not device traffic).
    pub fn content_hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for (_, region) in &self.columns {
            for &byte in region.untracked_slice() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// Total bytes across all column regions.
    pub fn total_bytes(&self) -> u64 {
        self.columns.iter().map(|(_, r)| r.len()).sum()
    }

    fn region(&self, column: Column) -> &Arc<Region> {
        &self
            .columns
            .iter()
            .find(|(c, _)| *c == column)
            .expect("column stored")
            .1
    }

    /// Parallel projected scan: stream only `projection`, assembling
    /// [`ColTuple`]s chunk by chunk. Returns the per-thread accumulators.
    pub fn scan<A, F>(
        &self,
        projection: &[Column],
        threads: u32,
        make_acc: impl Fn() -> A + Sync,
        visit: F,
    ) -> Vec<A>
    where
        A: Send,
        F: Fn(&mut A, &ColTuple) + Sync,
    {
        const CHUNK: u64 = 4096; // rows per chunk: 16 KB per u32 column
        let cursor = AtomicU64::new(0);
        let chunks = self.rows.div_ceil(CHUNK);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| {
                    let cursor = &cursor;
                    let make_acc = &make_acc;
                    let visit = &visit;
                    scope.spawn(move || {
                        let mut acc = make_acc();
                        let mut tuples: Vec<ColTuple> = Vec::new();
                        loop {
                            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                            if chunk >= chunks {
                                break;
                            }
                            let start = chunk * CHUNK;
                            let n = CHUNK.min(self.rows - start);
                            tuples.clear();
                            tuples.resize(n as usize, ColTuple::default());
                            for &column in projection {
                                let width = column.width();
                                let bytes = self.region(column).read(
                                    start * width,
                                    n * width,
                                    AccessHint::Sequential,
                                );
                                fill_column(column, bytes, &mut tuples);
                            }
                            for t in &tuples {
                                visit(&mut acc, t);
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker"))
                .collect()
        })
    }

    /// Bytes one column occupies.
    pub fn column_bytes(&self, column: Column) -> u64 {
        self.rows * column.width()
    }

    /// Like [`ColumnarFact::scan`], but every 4 KB column page is routed
    /// through the DRAM hot tier: hits read the buffer frame (DRAM
    /// traffic), misses stream from the PMEM column region and may fill a
    /// frame. Before scanning, the projection's heat is reported to the
    /// pool and admission is replanned, so repeated scans of hot columns
    /// migrate into DRAM while cold columns keep streaming from PMEM.
    ///
    /// Chunk byte offsets are 4 KB-aligned by construction (4096-row
    /// chunks × 1- or 4-byte columns), so one buffer page never spans a
    /// chunk boundary and concurrent workers share frames cleanly.
    pub fn scan_buffered<A, F>(
        &self,
        pool: &pmem_buffer::BufferPool,
        projection: &[Column],
        threads: u32,
        make_acc: impl Fn() -> A + Sync,
        visit: F,
    ) -> Result<Vec<A>>
    where
        A: Send,
        F: Fn(&mut A, &ColTuple) + Sync,
    {
        const CHUNK: u64 = 4096; // rows per chunk, as in `scan`
        for &column in projection {
            let bytes = self.column_bytes(column);
            pool.observe(column.object_id(), bytes, bytes);
        }
        pool.replan();
        let cursor = AtomicU64::new(0);
        let chunks = self.rows.div_ceil(CHUNK);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| {
                    let cursor = &cursor;
                    let make_acc = &make_acc;
                    let visit = &visit;
                    scope.spawn(move || -> Result<A> {
                        let mut acc = make_acc();
                        let mut tuples: Vec<ColTuple> = Vec::new();
                        let mut buf: Vec<u8> = Vec::new();
                        loop {
                            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                            if chunk >= chunks {
                                break;
                            }
                            let start = chunk * CHUNK;
                            let n = CHUNK.min(self.rows - start);
                            tuples.clear();
                            tuples.resize(n as usize, ColTuple::default());
                            for &column in projection {
                                let width = column.width();
                                let region = self.region(column);
                                let mut off = start * width;
                                let end = off + n * width;
                                buf.clear();
                                while off < end {
                                    let page_len = (end - off).min(pmem_buffer::FRAME_BYTES);
                                    pool.read_through(
                                        pmem_buffer::PageKey {
                                            object: column.object_id(),
                                            page: off / pmem_buffer::FRAME_BYTES,
                                        },
                                        region,
                                        off,
                                        page_len,
                                        &mut buf,
                                    )?;
                                    off += page_len;
                                }
                                fill_column(column, &buf, &mut tuples);
                            }
                            for t in &tuples {
                                visit(&mut acc, t);
                            }
                        }
                        Ok(acc)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker"))
                .collect()
        })
    }
}

/// What one [`ColumnarFact::repair_from_checkpoint`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnarRepair {
    /// Blocks rebuilt from the checkpoint and verified against their
    /// sealed checksum.
    pub blocks_repaired: u64,
    /// Bytes rewritten (ntstore traffic the repair cost).
    pub bytes_rewritten: u64,
    /// Blocks that could not be restored to a checksum-valid state.
    pub unrepairable: u64,
}

impl ColumnarRepair {
    /// Whether every bad block was restored.
    pub fn is_fully_repaired(&self) -> bool {
        self.unrepairable == 0
    }
}

/// The outcome of an anti-entropy hash exchange
/// ([`ColumnarFact::diff_blocks`]): which blocks of which columns
/// diverge between a rejoining table and its replica, plus the wire
/// cost of finding out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockDiff {
    /// Divergent blocks per column, in [`Column::ALL`] order; columns
    /// with no divergence are omitted.
    pub per_column: Vec<(Column, Vec<u64>)>,
    /// Blocks compared across all columns.
    pub blocks_examined: u64,
    /// Bytes of checksums exchanged (8 per block each way).
    pub hash_bytes: u64,
}

impl BlockDiff {
    /// Total divergent blocks across all columns.
    pub fn divergent_blocks(&self) -> u64 {
        self.per_column.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Whether the two copies agreed everywhere.
    pub fn is_empty(&self) -> bool {
        self.per_column.is_empty()
    }
}

/// The outcome of an incremental anti-entropy catch-up
/// ([`ColumnarFact::apply_diff`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AntiEntropyReport {
    /// Blocks compared during the hash exchange.
    pub blocks_examined: u64,
    /// Checksum bytes exchanged to find the divergence.
    pub hash_bytes_exchanged: u64,
    /// Divergent blocks shipped from the replica.
    pub blocks_shipped: u64,
    /// Data bytes shipped (the incremental transfer the protocol exists
    /// to keep small).
    pub bytes_shipped: u64,
    /// Blocks the final verification pass had to fetch a second time
    /// (they went bad after the hash exchange).
    pub refetched_blocks: u64,
    /// Blocks that could not be restored to a checksum-valid state (a
    /// bad replica source, or a landing check that kept failing).
    pub unrepairable: u64,
    /// Whether the table ended the catch-up clean. Verified by a final
    /// scrub when verification is on; *asserted without evidence* when
    /// verification is off.
    pub clean: bool,
}

impl AntiEntropyReport {
    /// Whether the catch-up may hand the shard back: nothing
    /// unrepairable and the end state (claims to be) clean.
    pub fn is_fully_caught_up(&self) -> bool {
        self.unrepairable == 0 && self.clean
    }
}

fn fill_column(column: Column, bytes: &[u8], tuples: &mut [ColTuple]) {
    let width = column.width() as usize;
    for (i, t) in tuples.iter_mut().enumerate() {
        let chunk = &bytes[i * width..(i + 1) * width];
        let u32v = || u32::from_le_bytes(chunk.try_into().expect("4"));
        match column {
            Column::OrderDate => t.orderdate = u32v(),
            Column::PartKey => t.partkey = u32v(),
            Column::SuppKey => t.suppkey = u32v(),
            Column::CustKey => t.custkey = u32v(),
            Column::Quantity => t.quantity = chunk[0],
            Column::Discount => t.discount = chunk[0],
            Column::ExtendedPrice => t.extendedprice = u32v(),
            Column::Revenue => t.revenue = u32v(),
            Column::SupplyCost => t.supplycost = u32v(),
        }
    }
}

/// Scan-byte comparison of the row format against a column store, per
/// query — the quantitative case for columnar PMEM scans.
#[derive(Debug, Clone, Copy)]
pub struct ScanComparison {
    /// Which query.
    pub query: QueryId,
    /// Bytes per tuple in the 128 B row format.
    pub row_bytes: u64,
    /// Bytes per tuple in the columnar projection.
    pub column_bytes: u64,
}

impl ScanComparison {
    /// Row/column scan-traffic ratio (the columnar speed-up bound for
    /// scan-dominated queries).
    pub fn reduction(&self) -> f64 {
        self.row_bytes as f64 / self.column_bytes as f64
    }
}

/// Per-query scan comparison for all 13 queries.
pub fn scan_comparisons() -> Vec<ScanComparison> {
    QueryId::ALL
        .iter()
        .map(|&query| ScanComparison {
            query,
            row_bytes: LINEORDER_ROW,
            column_bytes: Column::tuple_bytes(Column::for_query(query)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::datagen::generate;
    use pmem_sim::topology::SocketId;

    fn setup() -> (SsbData, ColumnarFact, Namespace) {
        let data = generate(0.003, 77);
        let ns = Namespace::devdax(SocketId(0), 64 << 20);
        let fact = ColumnarFact::load(&ns, &data).unwrap();
        (data, fact, ns)
    }

    #[test]
    fn projected_scan_reconstructs_column_values() {
        let (data, fact, _ns) = setup();
        assert_eq!(fact.rows(), data.lineorder.len() as u64);
        let sums = fact.scan(
            &[Column::Revenue, Column::Quantity],
            4,
            || (0u64, 0u64),
            |acc, t| {
                acc.0 += t.revenue as u64;
                acc.1 += t.quantity as u64;
            },
        );
        let (rev, qty) = sums.into_iter().fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(
            rev,
            data.lineorder.iter().map(|l| l.revenue as u64).sum::<u64>()
        );
        assert_eq!(
            qty,
            data.lineorder
                .iter()
                .map(|l| l.quantity as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn q1_1_on_columnar_matches_the_reference() {
        let (data, fact, _ns) = setup();
        let partials = fact.scan(
            Column::for_query(QueryId::Q1_1),
            4,
            || 0i64,
            |acc, t| {
                if (19930101..19940101).contains(&t.orderdate)
                    && (1..=3).contains(&t.discount)
                    && t.quantity < 25
                {
                    *acc += t.extendedprice as i64 * t.discount as i64;
                }
            },
        );
        let total: i64 = partials.iter().sum();
        let reference = crate::reference::reference_query(&data, QueryId::Q1_1);
        assert_eq!(total, reference[0].1);
    }

    #[test]
    fn projected_scan_reads_only_the_projection() {
        let (_data, fact, ns) = setup();
        ns.tracker().reset();
        let projection = Column::for_query(QueryId::Q1_1);
        let _ = fact.scan(projection, 2, || (), |_, _| {});
        let snap = ns.tracker().snapshot();
        let expected = fact.rows() * Column::tuple_bytes(projection);
        assert_eq!(snap.seq_read_bytes, expected, "exactly the projection");
        assert_eq!(snap.rand_read_bytes, 0);
        // 10 B per tuple instead of 128.
        assert_eq!(Column::tuple_bytes(projection), 10);
    }

    #[test]
    fn scan_comparisons_show_large_reductions() {
        let comps = scan_comparisons();
        assert_eq!(comps.len(), 13);
        for c in &comps {
            assert!(
                c.reduction() >= 5.0,
                "{}: only {:.1}x",
                c.query.name(),
                c.reduction()
            );
            assert!(c.column_bytes <= 24);
        }
        // QF1 is the most column-frugal flight.
        let q11 = comps.iter().find(|c| c.query == QueryId::Q1_1).unwrap();
        assert!((q11.reduction() - 128.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn load_seals_clean_checksums_for_every_column() {
        let (_data, fact, _ns) = setup();
        for (column, report) in fact.scrub() {
            assert!(report.is_clean(), "{column:?} dirty at load");
            assert!(report.blocks > 0);
        }
    }

    #[test]
    fn poisoned_chunks_are_rebuilt_from_the_checkpoint() {
        let (_data, mut fact, ns) = setup();
        let ckpt = crate::checkpoint::checkpoint_fact(&ns, &fact).unwrap();
        let before = run_q11(&fact);

        // Poison two blocks of the revenue column and one of orderdate.
        fact.inject_poison(Column::Revenue, 4096, 16);
        fact.inject_poison(Column::Revenue, 12_288, 300);
        fact.inject_poison(Column::OrderDate, 0, 16);
        let dirty: u64 = fact
            .scrub()
            .iter()
            .map(|(_, r)| r.poisoned.len() as u64)
            .sum();
        assert_eq!(dirty, 3, "three poisoned blocks across two columns");

        let repair = fact.repair_from_checkpoint(&ckpt).unwrap();
        assert_eq!(repair.blocks_repaired, 3);
        assert!(repair.is_fully_repaired());
        assert!(repair.bytes_rewritten >= 3 * 4096);
        for (_, report) in fact.scrub() {
            assert!(report.is_clean());
        }
        // The repaired table computes exactly what it did before the error.
        assert_eq!(run_q11(&fact), before);

        // Repair is idempotent: a second pass finds nothing to do.
        let again = fact.repair_from_checkpoint(&ckpt).unwrap();
        assert_eq!(again, ColumnarRepair::default());
    }

    #[test]
    fn repair_refuses_a_poisoned_checkpoint() {
        let (_data, mut fact, ns) = setup();
        let mut ckpt = crate::checkpoint::checkpoint_fact(&ns, &fact).unwrap();
        fact.inject_poison(Column::Revenue, 0, 16);
        // The rebuild source itself takes a media error: repair must refuse
        // loudly rather than write garbage into the table.
        ckpt.raw_region_mut()
            .inject_poison(crate::checkpoint::DATA_OFF, 16);
        assert!(matches!(
            fact.repair_from_checkpoint(&ckpt),
            Err(StoreError::Poisoned { .. })
        ));
        // The table is untouched: still poisoned, awaiting a good source.
        assert!(fact.scrub().iter().any(|(_, r)| !r.poisoned.is_empty()));
    }

    /// Q1.1 aggregate; the per-worker partials depend on thread scheduling,
    /// so only the sum is comparable across runs.
    fn run_q11(fact: &ColumnarFact) -> i64 {
        fact.scan(
            Column::for_query(QueryId::Q1_1),
            4,
            || 0i64,
            |acc, t| {
                if (19930101..19940101).contains(&t.orderdate)
                    && (1..=3).contains(&t.discount)
                    && t.quantity < 25
                {
                    *acc += t.extendedprice as i64 * t.discount as i64;
                }
            },
        )
        .into_iter()
        .sum()
    }

    #[test]
    fn replicate_to_is_byte_exact_and_priced() {
        let (_data, fact, _ns) = setup();
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        peer.tracker().reset();
        let replica = fact.replicate_to(&peer).unwrap();
        assert_eq!(replica.rows(), fact.rows());
        assert_eq!(replica.content_hash(), fact.content_hash(), "byte-exact");
        assert_eq!(run_q11(&replica), run_q11(&fact));
        for (column, report) in replica.scrub() {
            assert!(report.is_clean(), "{column:?} dirty after replication");
        }
        // Replication traffic lands on the replica's namespace.
        let snap = peer.tracker().snapshot();
        assert!(snap.write_bytes() >= fact.total_bytes());
    }

    #[test]
    fn poisoned_blocks_are_rebuilt_from_the_replica() {
        let (_data, mut fact, _ns) = setup();
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let replica = fact.replicate_to(&peer).unwrap();
        let before = run_q11(&fact);
        let hash_before = fact.content_hash();

        fact.inject_poison(Column::Revenue, 4096, 16);
        fact.inject_poison(Column::ExtendedPrice, 8192, 300);
        fact.inject_poison(Column::Quantity, 0, 16);
        let dirty: u64 = fact
            .scrub()
            .iter()
            .map(|(_, r)| r.poisoned.len() as u64)
            .sum();
        assert!(dirty >= 3, "poison landed");

        let repair = fact.repair_from_replica(&replica).unwrap();
        assert!(repair.is_fully_repaired());
        assert!(repair.blocks_repaired >= 3);
        for (_, report) in fact.scrub() {
            assert!(report.is_clean());
        }
        assert_eq!(fact.content_hash(), hash_before, "byte-exact rebuild");
        assert_eq!(run_q11(&fact), before);

        // Idempotent: a clean table has nothing left to repair.
        let again = fact.repair_from_replica(&replica).unwrap();
        assert_eq!(again, ColumnarRepair::default());
    }

    #[test]
    fn replica_repair_refuses_a_poisoned_replica() {
        let (_data, mut fact, _ns) = setup();
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let mut replica = fact.replicate_to(&peer).unwrap();
        fact.inject_poison(Column::Revenue, 0, 16);
        // The replica takes its own media error: it cannot serve as a
        // rebuild source, and the table must stay untouched.
        replica.inject_poison(Column::Revenue, 0, 1);
        assert!(matches!(
            fact.repair_from_replica(&replica),
            Err(StoreError::Poisoned { .. })
        ));
        assert!(fact.scrub().iter().any(|(_, r)| !r.poisoned.is_empty()));
        // A dirty table likewise refuses to be a replication source.
        let other = Namespace::devdax(SocketId(0), 64 << 20);
        assert!(matches!(
            fact.replicate_to(&other),
            Err(StoreError::Poisoned { .. })
        ));
    }

    #[test]
    fn replica_repair_requires_enough_rows() {
        let (_data, mut fact, _ns) = setup();
        let small = generate(0.001, 5);
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let short = ColumnarFact::load(&peer, &small).unwrap();
        assert!(short.rows() < fact.rows());
        assert!(matches!(
            fact.repair_from_replica(&short),
            Err(StoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn column_widths_are_consistent() {
        assert_eq!(Column::Quantity.width(), 1);
        assert_eq!(Column::Revenue.width(), 4);
        assert_eq!(Column::tuple_bytes(&Column::ALL), 30);
    }

    #[test]
    fn anti_entropy_ships_only_divergent_blocks() {
        let (_data, mut fact, _ns) = setup();
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let replica = fact.replicate_to(&peer).unwrap();
        let hash_before = fact.content_hash();

        // Identical copies diverge nowhere, and a no-op catch-up ships
        // nothing.
        let clean = fact.diff_blocks(&replica).unwrap();
        assert!(clean.is_empty());
        assert_eq!(clean.divergent_blocks(), 0);
        let noop = fact.apply_diff(&replica, &clean, true).unwrap();
        assert_eq!(noop.bytes_shipped, 0);
        assert!(noop.is_fully_caught_up());

        // Two media errors in different columns: the diff names exactly
        // those blocks, and the shipped bytes are a tiny fraction of the
        // table.
        fact.inject_poison(Column::Revenue, 4096, 16);
        fact.inject_poison(Column::OrderDate, 0, 16);
        let diff = fact.diff_blocks(&replica).unwrap();
        assert_eq!(diff.divergent_blocks(), 2);
        assert_eq!(diff.hash_bytes, 16 * diff.blocks_examined);
        let report = fact.apply_diff(&replica, &diff, true).unwrap();
        assert_eq!(report.blocks_shipped, 2);
        assert!(report.is_fully_caught_up() && report.clean);
        assert!(
            report.bytes_shipped <= 2 * SCRUB_BLOCK,
            "incremental, not a full copy: {} bytes",
            report.bytes_shipped
        );
        assert!(report.bytes_shipped * 10 < fact.total_bytes());
        assert_eq!(fact.content_hash(), hash_before, "byte-exact catch-up");
        for (_, r) in fact.scrub() {
            assert!(r.is_clean());
        }
    }

    #[test]
    fn poison_landing_mid_catch_up_is_refetched_or_refused_never_served() {
        let (_data, mut fact, _ns) = setup();
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let replica = fact.replicate_to(&peer).unwrap();
        fact.inject_poison(Column::Revenue, 4096, 16);
        let diff = fact.diff_blocks(&replica).unwrap();
        // A second media error lands *after* the hash exchange: the diff
        // does not name it.
        fact.inject_poison(Column::Quantity, 0, 8);

        // Verified catch-up: the final scrub pass finds the late block
        // and re-fetches it — the table still ends byte-exact.
        let report = fact.apply_diff(&replica, &diff, true).unwrap();
        assert!(report.refetched_blocks >= 1, "late poison re-fetched");
        assert!(report.is_fully_caught_up());
        assert_eq!(fact.content_hash(), replica.content_hash());

        // Unverified catch-up (the planted regression): the same late
        // poison is silently handed back — the report *claims* clean
        // while the table is dirty.
        fact.inject_poison(Column::Revenue, 8192, 16);
        let diff = fact.diff_blocks(&replica).unwrap();
        fact.inject_poison(Column::Quantity, 4096, 8);
        let blind = fact.apply_diff(&replica, &diff, false).unwrap();
        assert!(blind.clean && blind.is_fully_caught_up(), "blind trust");
        assert!(
            fact.scrub().iter().any(|(_, r)| !r.is_clean()),
            "…but the shard is dirty: the bug verification exists to stop"
        );
        // Clean up with a verified pass and confirm byte-exactness again.
        let repair = fact.catch_up_from_replica(&replica, true).unwrap();
        assert!(repair.is_fully_caught_up());
        assert_eq!(fact.content_hash(), replica.content_hash());
    }

    #[test]
    fn catch_up_refuses_a_bad_replica_block() {
        let (_data, mut fact, _ns) = setup();
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let mut replica = fact.replicate_to(&peer).unwrap();
        fact.inject_poison(Column::Revenue, 4096, 16);
        // The replica's copy of the very block we need is itself bad.
        replica.inject_poison(Column::Revenue, 4096, 1);
        let report = fact.catch_up_from_replica(&replica, true).unwrap();
        assert!(report.unrepairable >= 1, "bad source refused");
        assert!(!report.is_fully_caught_up(), "hand-back must be refused");
        // Unlike `repair_from_replica` (whole-source scrub up front),
        // anti-entropy refuses per block — but never serves the bad one.
        assert!(fact.scrub().iter().any(|(_, r)| !r.is_clean()));
    }

    #[test]
    fn diff_requires_enough_rows() {
        let (_data, fact, _ns) = setup();
        let small = generate(0.001, 5);
        let peer = Namespace::devdax(SocketId(1), 64 << 20);
        let short = ColumnarFact::load(&peer, &small).unwrap();
        assert!(matches!(
            fact.diff_blocks(&short),
            Err(StoreError::OutOfBounds { .. })
        ));
    }
}

//! SSB data generator (`dbgen` equivalent).
//!
//! Deterministic (seeded) generation of the star schema at a given scale
//! factor: sf 1 = 6 million `lineorder` rows, 30 000 customers, 2 000
//! suppliers, 200 000 parts, and one `date` row per calendar day of
//! 1992-01-01 … 1998-12-31. Value distributions follow the SSB spec closely
//! enough to reproduce the published query selectivities (uniform discount
//! 0–10, quantity 1–50, 5-region geography, the MFGR part hierarchy, …).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::{DateDim, GeoDim, Lineorder, PartDim, CITIES_PER_NATION, NATIONS};

/// Row counts for a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// `lineorder` rows (6 M × sf).
    pub lineorder: u64,
    /// `customer` rows (30 k × sf).
    pub customer: u32,
    /// `supplier` rows (2 k × sf).
    pub supplier: u32,
    /// `part` rows (200 k × (1 + ⌊log₂ sf⌋), linear below sf 1).
    pub part: u32,
    /// `date` rows (the 7-year calendar).
    pub date: u32,
}

/// Number of days in the SSB calendar (1992-01-01 … 1998-12-31; 1992 and
/// 1996 are leap years).
pub const CALENDAR_DAYS: u32 = 2557;

/// Compute SSB cardinalities for `sf` (fractional sf scales linearly, with
/// floors so tiny test databases stay usable).
pub fn cardinalities(sf: f64) -> Cardinalities {
    assert!(sf > 0.0, "scale factor must be positive");
    let part = if sf >= 1.0 {
        200_000.0 * (1.0 + sf.log2().floor())
    } else {
        (200_000.0 * sf).max(200.0)
    };
    Cardinalities {
        lineorder: (6_000_000.0 * sf).max(100.0) as u64,
        customer: (30_000.0 * sf).max(50.0) as u32,
        supplier: (2_000.0 * sf).max(20.0) as u32,
        part: part as u32,
        date: CALENDAR_DAYS,
    }
}

/// A fully generated SSB database (in host memory, before loading into the
/// store).
#[derive(Debug, Clone)]
pub struct SsbData {
    /// The fact table.
    pub lineorder: Vec<Lineorder>,
    /// `date` dimension.
    pub dates: Vec<DateDim>,
    /// `customer` dimension.
    pub customers: Vec<GeoDim>,
    /// `supplier` dimension.
    pub suppliers: Vec<GeoDim>,
    /// `part` dimension.
    pub parts: Vec<PartDim>,
}

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u16, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => unreachable!("month {month}"),
    }
}

/// Generate the 7-year SSB calendar.
pub fn generate_dates() -> Vec<DateDim> {
    let mut out = Vec::with_capacity(CALENDAR_DAYS as usize);
    // 1992-01-01 was a Wednesday (dayofweek 3 with Sunday = 0).
    let mut dow = 3u8;
    for year in 1992u16..=1998 {
        let mut daynum = 0u16;
        for month in 1u8..=12 {
            for day in 1..=days_in_month(year, month) {
                daynum += 1;
                out.push(DateDim {
                    datekey: year as u32 * 10_000 + month as u32 * 100 + day as u32,
                    year,
                    month,
                    day,
                    yearmonthnum: year as u32 * 100 + month as u32,
                    weeknuminyear: ((daynum - 1) / 7 + 1) as u8,
                    dayofweek: dow,
                    daynuminyear: daynum,
                });
                dow = (dow + 1) % 7;
            }
        }
    }
    out
}

fn generate_geo(rng: &mut StdRng, count: u32) -> Vec<GeoDim> {
    (1..=count)
        .map(|key| {
            let nation = rng.gen_range(0..NATIONS);
            let city = nation as u16 * CITIES_PER_NATION as u16
                + rng.gen_range(0..CITIES_PER_NATION) as u16;
            GeoDim {
                key,
                city,
                nation,
                region: nation / 5,
                mktsegment: rng.gen_range(0..5),
            }
        })
        .collect()
}

fn generate_parts(rng: &mut StdRng, count: u32) -> Vec<PartDim> {
    (1..=count)
        .map(|partkey| {
            let mfgr = rng.gen_range(1..=5u8);
            let category = PartDim::category_code(mfgr, rng.gen_range(1..=5u8));
            let brand = PartDim::brand_code(category, rng.gen_range(1..=40u8));
            PartDim {
                partkey,
                mfgr,
                category,
                brand,
                size: rng.gen_range(1..=50),
                color: rng.gen_range(0..92),
                container: rng.gen_range(0..40),
            }
        })
        .collect()
}

/// Generate the whole database for `sf`, deterministically from `seed`.
pub fn generate(sf: f64, seed: u64) -> SsbData {
    let card = cardinalities(sf);
    let mut rng = StdRng::seed_from_u64(seed);

    let dates = generate_dates();
    let customers = generate_geo(&mut rng, card.customer);
    let suppliers = generate_geo(&mut rng, card.supplier);
    let parts = generate_parts(&mut rng, card.part);

    let mut lineorder = Vec::with_capacity(card.lineorder as usize);
    let mut orderkey = 0u64;
    while (lineorder.len() as u64) < card.lineorder {
        orderkey += 1;
        let lines = rng.gen_range(1..=7u8);
        let custkey = rng.gen_range(1..=card.customer);
        let date = &dates[rng.gen_range(0..dates.len())];
        let ordtotalprice: u32 = rng.gen_range(10_000..500_000);
        for linenumber in 1..=lines {
            if (lineorder.len() as u64) >= card.lineorder {
                break;
            }
            let quantity = rng.gen_range(1..=50u8);
            let discount = rng.gen_range(0..=10u8);
            let extendedprice: u32 = rng.gen_range(100..100_000);
            let revenue = (extendedprice as u64 * (100 - discount as u64) / 100) as u32;
            // Commit date a few days after the order date (same calendar).
            let commit = &dates[(date.daynuminyear as usize + (date.year as usize - 1992) * 366)
                .min(dates.len() - 1)
                .saturating_sub(1)];
            lineorder.push(Lineorder {
                orderkey,
                linenumber,
                partkey: rng.gen_range(1..=card.part),
                suppkey: rng.gen_range(1..=card.supplier),
                custkey,
                orderdate: date.datekey,
                quantity,
                discount,
                tax: rng.gen_range(0..=8),
                extendedprice,
                ordtotalprice,
                revenue,
                supplycost: rng.gen_range(100..1_000),
                commitdate: commit.datekey,
                shipmode: rng.gen_range(0..7),
            });
        }
    }

    SsbData {
        lineorder,
        dates,
        customers,
        suppliers,
        parts,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::schema::nation_region;

    #[test]
    fn calendar_has_2557_days_with_correct_leap_handling() {
        let dates = generate_dates();
        assert_eq!(dates.len(), CALENDAR_DAYS as usize);
        assert!(dates.iter().any(|d| d.datekey == 19920229), "1992 is leap");
        assert!(dates.iter().any(|d| d.datekey == 19960229), "1996 is leap");
        assert!(!dates.iter().any(|d| d.datekey == 19930229));
        assert!(!dates.iter().any(|d| d.datekey == 19980229));
        // Keys strictly increasing, years span 1992–1998.
        assert!(dates.windows(2).all(|w| w[0].datekey < w[1].datekey));
        assert_eq!(dates.first().unwrap().datekey, 19920101);
        assert_eq!(dates.last().unwrap().datekey, 19981231);
        // Week numbers stay in 1..=53.
        assert!(dates.iter().all(|d| (1..=53).contains(&d.weeknuminyear)));
    }

    #[test]
    fn cardinalities_match_ssb_scaling() {
        let c1 = cardinalities(1.0);
        assert_eq!(c1.lineorder, 6_000_000);
        assert_eq!(c1.customer, 30_000);
        assert_eq!(c1.supplier, 2_000);
        assert_eq!(c1.part, 200_000);
        // Part count grows logarithmically.
        assert_eq!(cardinalities(4.0).part, 600_000);
        assert_eq!(cardinalities(100.0).part, 1_400_000);
        // sf 100 → 600 M facts (the paper's handcrafted config).
        assert_eq!(cardinalities(100.0).lineorder, 600_000_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(a.lineorder, b.lineorder);
        assert_eq!(a.parts, b.parts);
        let c = generate(0.001, 8);
        assert_ne!(a.lineorder, c.lineorder, "seed must matter");
    }

    #[test]
    fn foreign_keys_are_valid() {
        let data = generate(0.01, 42);
        let card = cardinalities(0.01);
        assert_eq!(data.lineorder.len() as u64, card.lineorder);
        for lo in &data.lineorder {
            assert!((1..=card.customer).contains(&lo.custkey));
            assert!((1..=card.supplier).contains(&lo.suppkey));
            assert!((1..=card.part).contains(&lo.partkey));
            assert!((19920101..=19981231).contains(&lo.orderdate));
            assert!((1..=50).contains(&lo.quantity));
            assert!(lo.discount <= 10);
            let expect = (lo.extendedprice as u64 * (100 - lo.discount as u64) / 100) as u32;
            assert_eq!(lo.revenue, expect);
        }
    }

    #[test]
    fn q1_1_selectivity_is_near_spec() {
        // year = 1993 (1/7), discount 1–3 (3/11), quantity < 25 (24/50)
        // → ≈ 1.87 % of rows.
        let data = generate(0.05, 1);
        let hits = data
            .lineorder
            .iter()
            .filter(|lo| {
                (19930101..19940101).contains(&lo.orderdate)
                    && (1..=3).contains(&lo.discount)
                    && lo.quantity < 25
            })
            .count();
        let frac = hits as f64 / data.lineorder.len() as f64;
        assert!((0.012..0.027).contains(&frac), "Q1.1 selectivity {frac}");
    }

    #[test]
    fn geography_and_part_hierarchies_hold() {
        let data = generate(0.01, 3);
        for c in data.customers.iter().chain(&data.suppliers) {
            assert_eq!(c.region, c.nation / 5);
            assert_eq!(c.city / 10, c.nation as u16);
            assert_eq!(nation_region(c.nation) as u8, c.region);
        }
        for p in &data.parts {
            assert!((1..=5).contains(&p.mfgr));
            let mfgr_of_cat = (p.category - 1) / 5 + 1;
            assert_eq!(mfgr_of_cat, p.mfgr);
            let cat_of_brand = ((p.brand - 1) / 40 + 1) as u8;
            assert_eq!(cat_of_brand, p.category);
        }
    }

    #[test]
    fn orders_group_one_to_seven_lines() {
        let data = generate(0.01, 9);
        let mut lines_per_order = std::collections::HashMap::new();
        for lo in &data.lineorder {
            *lines_per_order.entry(lo.orderkey).or_insert(0u32) += 1;
        }
        assert!(lines_per_order.values().all(|n| (1..=7).contains(n)));
        let avg = data.lineorder.len() as f64 / lines_per_order.len() as f64;
        assert!((2.0..6.0).contains(&avg), "avg lines/order {avg}");
    }
}

//! Timing model: executed traffic → simulated device seconds.
//!
//! A query execution produces byte-exact traffic (tracker deltas per phase)
//! and operator counters. This module prices that work on a device using
//! the [`pmem-sim`](pmem_sim) bandwidth model:
//!
//! * sequential fact-scan bytes at the sequential-read curve,
//! * index-probe bytes at the random-access curve for the observed probe
//!   granule, attenuated by a last-level-cache model (probes into a tiny
//!   date index are nearly free; probes into a multi-GB index are not),
//! * a *dependent-chase latency* path for the unaware engine's chained
//!   probes (each hop is a serialized loaded-latency access — the paper's
//!   "hash operations take over 90 % of the execution time"),
//! * intermediate materialization at the sequential-write curve,
//! * a CPU cost model overlapped with the memory pipeline.
//!
//! Traffic can be *scaled* to a larger scale factor: all byte counts and
//! operator counts grow linearly in sf, so a run at sf 0.05 can be priced
//! as the paper's sf 100 (`TimingConfig::scale`). Absolute seconds land
//! within ~2× of the paper's testbed; EXPERIMENTS.md tracks per-anchor
//! deviations. Ratios (PMEM/DRAM, optimization steps) are the target.

use pmem_sim::params::DeviceClass;

use crate::datagen::cardinalities;
use pmem_sim::sched::Pinning;
use pmem_sim::workload::{AccessKind, Placement, WorkloadSpec};
use pmem_sim::{Bandwidth, Simulation};

use crate::queries::QueryOutcome;
use crate::storage::{EngineMode, StorageDevice};

/// Calibration constants of the timing model.
#[derive(Debug, Clone)]
pub struct TimingParams {
    /// CPU cost per scanned fact tuple (decode + predicate), ns.
    pub cpu_scan_ns: f64,
    /// CPU cost per index probe (hash + compare), ns.
    pub cpu_probe_ns: f64,
    /// CPU cost per aggregation update, ns.
    pub cpu_agg_ns: f64,
    /// CPU cost per index-build insert, ns.
    pub cpu_insert_ns: f64,
    /// CPU cost per materialized intermediate tuple (unaware engine), ns.
    pub cpu_materialize_ns: f64,
    /// Multiplier on CPU work for the unaware engine (operator-at-a-time
    /// interpretation overhead).
    pub unaware_cpu_factor: f64,
    /// Loaded latency of one dependent random PMEM access under full
    /// concurrency (chained-hash pointer chase), seconds.
    pub pmem_chase_latency: f64,
    /// Loaded latency of one dependent random DRAM access, seconds.
    pub dram_chase_latency: f64,
    /// Last-level cache per socket (Xeon Gold 5220S: 24.75 MB).
    pub l3_bytes_per_socket: f64,
    /// Miss-rate floor for cache-resident indexes.
    pub cached_miss_floor: f64,
    /// Memory-bandwidth factor applied when threads are not pinned at all
    /// (milder than the raw-bandwidth collapse: query threads also compute).
    pub unpinned_mem_penalty: f64,
    /// Fraction of the smaller of (memory, CPU) time NOT hidden by
    /// overlap, as a function floor; overlap improves with threads.
    pub overlap_floor: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            cpu_scan_ns: 25.0,
            cpu_probe_ns: 60.0,
            cpu_agg_ns: 30.0,
            cpu_insert_ns: 200.0,
            cpu_materialize_ns: 20.0,
            unaware_cpu_factor: 2.5,
            pmem_chase_latency: 1.3e-6,
            dram_chase_latency: 0.13e-6,
            l3_bytes_per_socket: 24.75 * 1024.0 * 1024.0,
            cached_miss_floor: 0.15,
            unpinned_mem_penalty: 0.78,
            overlap_floor: 0.25,
        }
    }
}

/// Hardware/placement configuration a run is priced for.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Target device.
    pub device: StorageDevice,
    /// Total threads.
    pub threads: u32,
    /// Sockets participating (1 or 2).
    pub sockets: u8,
    /// Pinning strategy.
    pub pinning: Pinning,
    /// Scale factor the query actually executed at.
    pub run_sf: f64,
    /// Scale factor to price the traffic at (the paper uses sf 100 for the
    /// handcrafted engine and sf 50 for Hyrise).
    pub target_sf: f64,
}

impl TimingConfig {
    /// Paper §6.2 configuration: 36 threads pinned across both sockets.
    pub fn paper_aware(device: StorageDevice) -> Self {
        TimingConfig {
            device,
            threads: 36,
            sockets: 2,
            pinning: Pinning::Cores,
            run_sf: 1.0,
            target_sf: 1.0,
        }
    }

    /// Paper §6.1 configuration: Hyrise on a single socket.
    pub fn paper_unaware(device: StorageDevice) -> Self {
        TimingConfig {
            device,
            threads: 18,
            sockets: 1,
            pinning: Pinning::NumaRegion,
            run_sf: 1.0,
            target_sf: 1.0,
        }
    }

    /// Price traffic executed at `run_sf` as if it ran at `target_sf`.
    /// Fact-driven traffic scales by `target/run`; per-dimension index
    /// sizes scale by their own SSB cardinality growth.
    pub fn sf(mut self, run_sf: f64, target_sf: f64) -> Self {
        self.run_sf = run_sf;
        self.target_sf = target_sf;
        self
    }

    /// Fact-traffic scale factor.
    pub fn fact_scale(&self) -> f64 {
        self.target_sf / self.run_sf
    }

    /// Per-dimension growth factors (date, customer, supplier, part).
    pub fn dim_scales(&self) -> [f64; 4] {
        let run = cardinalities(self.run_sf);
        let target = cardinalities(self.target_sf);
        [
            1.0, // the calendar is sf-invariant
            target.customer as f64 / run.customer as f64,
            target.supplier as f64 / run.supplier as f64,
            target.part as f64 / run.part as f64,
        ]
    }

    /// Set threads/sockets.
    pub fn parallelism(mut self, threads: u32, sockets: u8) -> Self {
        self.threads = threads;
        self.sockets = sockets;
        self
    }

    /// Set pinning.
    pub fn pinning(mut self, pinning: Pinning) -> Self {
        self.pinning = pinning;
        self
    }
}

/// Per-component simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBreakdown {
    /// Fact scan.
    pub scan_seconds: f64,
    /// Index probes (bandwidth or latency path, whichever binds).
    pub probe_seconds: f64,
    /// Index build.
    pub build_seconds: f64,
    /// Intermediate materialization + result writes.
    pub intermediate_seconds: f64,
    /// CPU work.
    pub cpu_seconds: f64,
    /// Overlapped total.
    pub total_seconds: f64,
}

/// Fraction of the whole query that waited on memory (the paper measured
/// Q2.1 "memory bound over 70 % of the time").
impl TimingBreakdown {
    /// Memory time / total.
    pub fn memory_bound_fraction(&self) -> f64 {
        let mem = self.scan_seconds.max(self.probe_seconds)
            + self.build_seconds
            + self.intermediate_seconds;
        (mem / self.total_seconds).min(1.0)
    }
}

fn placement(sockets: u8) -> Placement {
    if sockets >= 2 {
        Placement::BothNear
    } else {
        Placement::NEAR
    }
}

fn seq_read_bw(sim: &Simulation, device: DeviceClass, cfg: &TimingConfig) -> Bandwidth {
    let per_socket = (cfg.threads / cfg.sockets as u32).max(1);
    let spec = WorkloadSpec::seq_read(device, 4096, per_socket)
        .placement(placement(cfg.sockets))
        .pinning(Pinning::NumaRegion);
    sim.evaluate_steady(&spec).total_bandwidth
}

/// Seconds to stream a scan whose traffic split across the two lanes of a
/// hybrid tier: `pmem_bytes` missed the DRAM buffer (priced at the PMEM
/// sequential-read curve), `dram_bytes` hit it (priced at the DRAM curve).
/// Both lanes use the same thread/socket configuration; the effective rate
/// is the harmonic mix of the two (see [`pmem_sim::tiered_rate`]).
pub fn tiered_scan_seconds(
    sim: &Simulation,
    cfg: &TimingConfig,
    pmem_bytes: u64,
    dram_bytes: u64,
) -> f64 {
    let total = pmem_bytes + dram_bytes;
    if total == 0 {
        return 0.0;
    }
    let hit = dram_bytes as f64 / total as f64;
    let rate = pmem_sim::tiered_rate(
        seq_read_bw(sim, DeviceClass::Pmem, cfg),
        seq_read_bw(sim, DeviceClass::Dram, cfg),
        hit,
    );
    rate.time_for_bytes(total)
}

fn seq_write_bw(sim: &Simulation, device: DeviceClass, cfg: &TimingConfig) -> Bandwidth {
    // Writers follow Best Practice #2: at most ~6 per socket.
    let per_socket = (cfg.threads / cfg.sockets as u32).clamp(1, 6);
    let spec = WorkloadSpec::seq_write(device, 4096, per_socket)
        .placement(placement(cfg.sockets))
        .pinning(Pinning::NumaRegion);
    sim.evaluate_steady(&spec).total_bandwidth
}

fn rand_read_bw(
    sim: &Simulation,
    device: DeviceClass,
    cfg: &TimingConfig,
    granule: u64,
    region: u64,
) -> Bandwidth {
    let per_socket = (cfg.threads / cfg.sockets as u32).max(1);
    let spec = WorkloadSpec::random(
        device,
        AccessKind::Read,
        granule.max(8),
        per_socket,
        region.max(1 << 20),
    )
    .placement(placement(cfg.sockets))
    .pinning(Pinning::NumaRegion);
    sim.evaluate_steady(&spec).total_bandwidth
}

fn rand_write_bw(
    sim: &Simulation,
    device: DeviceClass,
    cfg: &TimingConfig,
    granule: u64,
) -> Bandwidth {
    let per_socket = (cfg.threads / cfg.sockets as u32).clamp(1, 6);
    let spec = WorkloadSpec::random(
        device,
        AccessKind::Write,
        granule.max(64),
        per_socket,
        1 << 30,
    )
    .placement(placement(cfg.sockets))
    .pinning(Pinning::NumaRegion);
    sim.evaluate_steady(&spec).total_bandwidth
}

/// Price one executed query on a device configuration.
pub fn estimate(
    outcome: &QueryOutcome,
    mode: EngineMode,
    cfg: &TimingConfig,
    sim: &Simulation,
    params: &TimingParams,
) -> TimingBreakdown {
    let scale = cfg.fact_scale().max(f64::MIN_POSITIVE);
    let dim_scales = cfg.dim_scales();
    let t = &outcome.traffic;
    // SSD keeps only the base table on the device; indexes and
    // intermediates live in DRAM (the paper's "traditional" setup, §6.2).
    let (scan_dev, side_dev) = match cfg.device {
        StorageDevice::Dram => (DeviceClass::Dram, DeviceClass::Dram),
        StorageDevice::PmemDevdax | StorageDevice::PmemFsdax => {
            (DeviceClass::Pmem, DeviceClass::Pmem)
        }
    };
    let _ = side_dev;
    let device = scan_dev;

    // ---- Fact scan ----
    let mut scan_seconds =
        (t.fact.seq_read_bytes as f64 * scale) / seq_read_bw(sim, device, cfg).bytes_per_sec();
    // fsdax minor page faults on the scanned range (§2.3: 5–10 % slower).
    if cfg.device == StorageDevice::PmemFsdax {
        let pages = (t.fact.seq_read_bytes as f64 * scale) / (2u64 << 20) as f64;
        scan_seconds += pages * pmem_membench_fault_cost();
    }

    // ---- Probes ----
    let probe_bytes = (t.probe.rand_read_bytes + t.probe.seq_read_bytes) as f64 * scale;
    let probe_ops = t.probe.read_ops as f64 * scale;
    let granule = (t.probe.rand_read_bytes + t.probe.seq_read_bytes)
        .checked_div(t.probe.read_ops)
        .map_or(64, |g| g.max(8));
    // Scaled per-socket index size: each dimension grows by its own
    // cardinality factor (the date index never grows; `part` grows ~log sf).
    let index_bytes: f64 = t
        .index_bytes_by_dim
        .iter()
        .zip(dim_scales)
        .map(|(b, s)| *b as f64 * s)
        .sum::<f64>()
        / cfg.sockets as f64;
    let miss = cache_miss_rate(index_bytes, params);
    let bw_path = probe_bytes * miss
        / rand_read_bw(sim, device, cfg, granule, (index_bytes as u64).max(1 << 20))
            .bytes_per_sec();
    let probe_seconds = if mode == EngineMode::Unaware {
        // Dependent pointer chasing: each read op serializes one loaded
        // latency; threads chase independently.
        let lat = match device {
            DeviceClass::Pmem => params.pmem_chase_latency,
            _ => params.dram_chase_latency,
        };
        let lat_path = probe_ops * miss * lat / cfg.threads.max(1) as f64;
        bw_path.max(lat_path)
    } else {
        bw_path
    };

    // ---- Build ----
    // Build traffic is dimension-driven: scale it by the byte-weighted mean
    // of the per-dimension growth factors.
    let dim_total: f64 = t.index_bytes_by_dim.iter().map(|b| *b as f64).sum();
    let build_scale = if dim_total > 0.0 {
        t.index_bytes_by_dim
            .iter()
            .zip(dim_scales)
            .map(|(b, s)| *b as f64 * s)
            .sum::<f64>()
            / dim_total
    } else {
        1.0
    };
    let build_reads = (t.build.seq_read_bytes + t.build.rand_read_bytes) as f64 * build_scale;
    let build_writes = (t.build.seq_write_bytes + t.build.rand_write_bytes) as f64 * build_scale;
    let build_seconds = build_reads / seq_read_bw(sim, device, cfg).bytes_per_sec()
        + build_writes / rand_write_bw(sim, device, cfg, 256).bytes_per_sec();

    // ---- Intermediates ----
    let inter_writes =
        (t.intermediate.seq_write_bytes + t.intermediate.rand_write_bytes) as f64 * scale;
    let inter_reads =
        (t.intermediate.seq_read_bytes + t.intermediate.rand_read_bytes) as f64 * scale;
    let intermediate_seconds = inter_writes / seq_write_bw(sim, device, cfg).bytes_per_sec()
        + inter_reads / seq_read_bw(sim, device, cfg).bytes_per_sec();

    // ---- CPU ----
    let c = &outcome.counters;
    let materialized = (t.intermediate.seq_write_bytes / 64) as f64;
    let mut cpu_ns = (c.tuples_scanned as f64 * params.cpu_scan_ns
        + c.probes as f64 * params.cpu_probe_ns
        + c.agg_updates as f64 * params.cpu_agg_ns
        + materialized * params.cpu_materialize_ns)
        * scale
        + c.build_inserts as f64 * params.cpu_insert_ns * build_scale;
    if mode == EngineMode::Unaware {
        cpu_ns *= params.unaware_cpu_factor;
    }
    // Explicit core pinning avoids migrations and hyperthread cache
    // conflicts relative to NUMA-region pinning (§4.3) — a small CPU-side
    // win that gives Table 1 its final "Pinning" step.
    let cpu_pin_eff = if cfg.pinning == Pinning::Cores {
        0.95
    } else {
        1.0
    };
    let cpu_seconds = cpu_ns * cpu_pin_eff / 1e9 / cfg.threads.max(1) as f64;

    // ---- Compose ----
    let unpinned = if cfg.pinning == Pinning::None {
        1.0 / params.unpinned_mem_penalty
    } else {
        1.0
    };
    let mem = (scan_seconds.max(probe_seconds) + build_seconds + intermediate_seconds) * unpinned;
    // CPU/memory overlap improves with threads (a single thread serializes
    // dependent work almost completely).
    let kappa = params.overlap_floor + (1.0 - params.overlap_floor) / cfg.threads.max(1) as f64;
    let total_seconds = mem.max(cpu_seconds) + kappa * mem.min(cpu_seconds);

    TimingBreakdown {
        scan_seconds: scan_seconds * unpinned,
        probe_seconds: probe_seconds * unpinned,
        build_seconds,
        intermediate_seconds,
        cpu_seconds,
        total_seconds,
    }
}

/// fsdax minor-fault cost per 2 MB page (shared constant with membench).
fn pmem_membench_fault_cost() -> f64 {
    4e-6
}

/// Price a query on the "traditional" NVMe-SSD configuration of §6.2: the
/// base table is scanned from the SSD while hash indexes and intermediates
/// stay in DRAM. The paper measured Q2.1 at 22.8 s this way — 2.6× slower
/// than PMEM without using any DRAM for the table.
pub fn estimate_ssd(
    outcome: &QueryOutcome,
    mode: EngineMode,
    cfg: &TimingConfig,
    sim: &Simulation,
    params: &TimingParams,
) -> TimingBreakdown {
    // Everything except the scan is DRAM-priced.
    let dram_cfg = TimingConfig {
        device: StorageDevice::Dram,
        ..cfg.clone()
    };
    let mut bd = estimate(outcome, mode, &dram_cfg, sim, params);
    // Re-price the scan against the SSD's sequential-read bandwidth.
    let spec = WorkloadSpec::seq_read(DeviceClass::Ssd, 4096, cfg.threads);
    let ssd_bw = sim.evaluate_steady(&spec).total_bandwidth.bytes_per_sec();
    let scan = outcome.traffic.fact.seq_read_bytes as f64 * cfg.fact_scale() / ssd_bw;
    let mem = scan.max(bd.probe_seconds) + bd.build_seconds + bd.intermediate_seconds;
    let kappa = params.overlap_floor + (1.0 - params.overlap_floor) / cfg.threads.max(1) as f64;
    bd.scan_seconds = scan;
    bd.total_seconds = mem.max(bd.cpu_seconds) + kappa * mem.min(bd.cpu_seconds);
    bd
}

/// Cache miss rate for probes into an index of `size` bytes.
fn cache_miss_rate(size: f64, params: &TimingParams) -> f64 {
    let l3 = params.l3_bytes_per_socket;
    if size <= l3 {
        params.cached_miss_floor
    } else {
        params.cached_miss_floor + (1.0 - params.cached_miss_floor) * (1.0 - l3 / size)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::queries::{run_query, QueryId};
    use crate::storage::SsbStore;

    const SF: f64 = 0.01;

    fn aware_outcome(q: QueryId) -> QueryOutcome {
        let store =
            SsbStore::generate_and_load(SF, 77, EngineMode::Aware, StorageDevice::PmemFsdax)
                .unwrap();
        store.reset_trackers();
        run_query(&store, q, 8).unwrap()
    }

    fn price(outcome: &QueryOutcome, mode: EngineMode, device: StorageDevice) -> f64 {
        let sim = Simulation::paper_default();
        let cfg = match mode {
            EngineMode::Aware => TimingConfig::paper_aware(device).sf(SF, 100.0),
            EngineMode::Unaware => TimingConfig::paper_unaware(device).sf(SF, 100.0),
        };
        estimate(outcome, mode, &cfg, &sim, &TimingParams::default()).total_seconds
    }

    #[test]
    fn qf1_lands_near_the_paper_seconds() {
        // Paper §6.2: QF1 ≈ 1.3 s on PMEM, ≈ 0.5 s on DRAM at sf 100.
        let outcome = aware_outcome(QueryId::Q1_1);
        let pmem = price(&outcome, EngineMode::Aware, StorageDevice::PmemDevdax);
        let dram = price(&outcome, EngineMode::Aware, StorageDevice::Dram);
        assert!((0.6..2.6).contains(&pmem), "QF1 PMEM {pmem}");
        assert!((0.25..1.3).contains(&dram), "QF1 DRAM {dram}");
        assert!(pmem > dram, "PMEM must be slower");
    }

    #[test]
    fn aware_pmem_dram_ratio_is_moderate() {
        // Paper: handcrafted PMEM is 1.66× DRAM on average (1.4–3.0).
        let outcome = aware_outcome(QueryId::Q2_1);
        let pmem = price(&outcome, EngineMode::Aware, StorageDevice::PmemDevdax);
        let dram = price(&outcome, EngineMode::Aware, StorageDevice::Dram);
        let ratio = pmem / dram;
        assert!((1.2..3.2).contains(&ratio), "aware ratio {ratio}");
    }

    #[test]
    fn unaware_ratio_is_much_larger_than_aware() {
        let data = crate::datagen::generate(SF, 77);
        let aware = SsbStore::load(&data, SF, EngineMode::Aware, StorageDevice::PmemFsdax).unwrap();
        let unaware =
            SsbStore::load(&data, SF, EngineMode::Unaware, StorageDevice::PmemFsdax).unwrap();
        aware.reset_trackers();
        unaware.reset_trackers();
        let a = run_query(&aware, QueryId::Q2_1, 8).unwrap();
        let u = run_query(&unaware, QueryId::Q2_1, 8).unwrap();
        let aware_ratio = price(&a, EngineMode::Aware, StorageDevice::PmemDevdax)
            / price(&a, EngineMode::Aware, StorageDevice::Dram);
        let unaware_ratio = price(&u, EngineMode::Unaware, StorageDevice::PmemFsdax)
            / price(&u, EngineMode::Unaware, StorageDevice::Dram);
        assert!(
            unaware_ratio > 1.5 * aware_ratio,
            "unaware {unaware_ratio} vs aware {aware_ratio}"
        );
        assert!(unaware_ratio > 2.5, "unaware ratio {unaware_ratio}");
    }

    #[test]
    fn fsdax_is_slightly_slower_than_devdax() {
        let outcome = aware_outcome(QueryId::Q1_1);
        let devdax = price(&outcome, EngineMode::Aware, StorageDevice::PmemDevdax);
        let fsdax = price(&outcome, EngineMode::Aware, StorageDevice::PmemFsdax);
        assert!(fsdax > devdax, "fsdax {fsdax} ≤ devdax {devdax}");
        assert!(fsdax < devdax * 1.25, "fsdax penalty too large");
    }

    #[test]
    fn more_threads_reduce_simulated_time() {
        let outcome = aware_outcome(QueryId::Q2_1);
        let sim = Simulation::paper_default();
        let p = TimingParams::default();
        let t1 = estimate(
            &outcome,
            EngineMode::Aware,
            &TimingConfig::paper_aware(StorageDevice::PmemDevdax)
                .sf(SF, 100.0)
                .parallelism(1, 1),
            &sim,
            &p,
        )
        .total_seconds;
        let t18 = estimate(
            &outcome,
            EngineMode::Aware,
            &TimingConfig::paper_aware(StorageDevice::PmemDevdax)
                .sf(SF, 100.0)
                .parallelism(18, 1),
            &sim,
            &p,
        )
        .total_seconds;
        let t36 = estimate(
            &outcome,
            EngineMode::Aware,
            &TimingConfig::paper_aware(StorageDevice::PmemDevdax)
                .sf(SF, 100.0)
                .parallelism(36, 2),
            &sim,
            &p,
        )
        .total_seconds;
        assert!(t1 > 5.0 * t18, "1 thread {t1} vs 18 threads {t18}");
        assert!(t18 > t36, "18 threads {t18} vs 2-socket {t36}");
        // Table 1 magnitude: 1 thread in the hundreds of seconds.
        assert!((120.0..500.0).contains(&t1), "1-thread Q2.1 {t1}");
    }

    #[test]
    fn q2_1_is_memory_bound() {
        // §6.2: "the benchmark is memory bound over 70 % of the time".
        let outcome = aware_outcome(QueryId::Q2_1);
        let sim = Simulation::paper_default();
        let bd = estimate(
            &outcome,
            EngineMode::Aware,
            &TimingConfig::paper_aware(StorageDevice::PmemDevdax).sf(SF, 100.0),
            &sim,
            &TimingParams::default(),
        );
        assert!(
            bd.memory_bound_fraction() > 0.5,
            "memory-bound fraction {}",
            bd.memory_bound_fraction()
        );
    }

    #[test]
    fn unpinned_execution_is_slower() {
        let outcome = aware_outcome(QueryId::Q2_1);
        let sim = Simulation::paper_default();
        let p = TimingParams::default();
        let pinned = estimate(
            &outcome,
            EngineMode::Aware,
            &TimingConfig::paper_aware(StorageDevice::PmemDevdax).sf(SF, 100.0),
            &sim,
            &p,
        )
        .total_seconds;
        let unpinned = estimate(
            &outcome,
            EngineMode::Aware,
            &TimingConfig::paper_aware(StorageDevice::PmemDevdax)
                .sf(SF, 100.0)
                .pinning(Pinning::None),
            &sim,
            &p,
        )
        .total_seconds;
        assert!(unpinned > pinned);
    }
}

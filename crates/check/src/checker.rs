//! Crash-state enumeration and invariant checking.

use std::collections::HashSet;

use pmem_sim::topology::SocketId;
use pmem_store::{AccessHint, Namespace, PersistEvent, Region};

use crate::model;

/// Enumeration bounds. Epochs whose WPQ-pending line count exceeds
/// [`CheckerConfig::max_enum_lines`] are *sampled* instead of exhaustively
/// enumerated; the report records every such epoch so truncated coverage
/// is never silent.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Exhaustive enumeration bound: up to `2^max_enum_lines` subsets.
    pub max_enum_lines: usize,
    /// Subsets drawn (empty and full always included) for oversized epochs.
    pub sample_budget: usize,
    /// Seed for the sampling fallback; the same seed always draws the same
    /// subsets.
    pub seed: u64,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            max_enum_lines: 10,
            sample_budget: 256,
            seed: 0x1DEA_C4A5,
        }
    }
}

/// One reachable crash state handed to the verifier.
#[derive(Debug)]
pub struct CrashState<'a> {
    /// The fence epoch the crash falls into.
    pub epoch: usize,
    /// The persisted bytes a restart would find.
    pub image: &'a [u8],
    /// The WPQ lines the iMC accepted before power was cut.
    pub accepted_lines: &'a [u64],
    /// Client marks whose effects are guaranteed durable.
    pub durable_marks: &'a [u64],
    /// Client marks whose effects may or may not be durable.
    pub possible_marks: &'a [u64],
}

/// A crash state whose recovery broke an invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Epoch of the offending state.
    pub epoch: usize,
    /// Accepted WPQ lines of the offending state.
    pub accepted_lines: Vec<u64>,
    /// What the verifier reported.
    pub detail: String,
}

/// Per-epoch coverage accounting.
#[derive(Debug, Clone, Copy)]
pub struct EpochCoverage {
    /// Epoch index.
    pub epoch: usize,
    /// WPQ-pending lines at the closing fence (after no-op dedup).
    pub wpq_lines: usize,
    /// Whether all `2^wpq_lines` subsets were enumerated; `false` means
    /// the seeded-sampling fallback was used.
    pub exhaustive: bool,
    /// Distinct states this epoch contributed.
    pub states: usize,
}

/// Outcome of a checking run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Distinct crash states verified (after content dedup).
    pub states_explored: usize,
    /// States skipped because an identical (image, marks) state was
    /// already verified.
    pub duplicate_states: usize,
    /// Coverage per epoch, in trace order.
    pub epochs: Vec<EpochCoverage>,
    /// All invariant violations found.
    pub violations: Vec<Violation>,
    /// Whether the input trace overflowed its buffer (results would be
    /// meaningless; the checker refuses to run — see [`CrashChecker::check`]).
    pub trace_truncated: bool,
}

impl CheckReport {
    /// Whether every explored state passed every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && !self.trace_truncated
    }

    /// Epochs that fell back to sampling.
    pub fn sampled_epochs(&self) -> Vec<usize> {
        self.epochs
            .iter()
            .filter(|e| !e.exhaustive)
            .map(|e| e.epoch)
            .collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let sampled = self.sampled_epochs();
        let coverage = if sampled.is_empty() {
            "exhaustive".to_string()
        } else {
            format!("{} epoch(s) sampled {:?}", sampled.len(), sampled)
        };
        format!(
            "{} states across {} epochs ({} duplicates skipped, {}): {}",
            self.states_explored,
            self.epochs.len(),
            self.duplicate_states,
            coverage,
            if self.passed() {
                "no violations".to_string()
            } else {
                format!("{} VIOLATION(S)", self.violations.len())
            }
        )
    }
}

/// SplitMix64: the deterministic stream behind the sampling fallback.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv64(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= *b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn state_key(image: &[u8], durable: &[u64], possible: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fnv64(&mut h, image);
    for m in durable.iter().chain(possible) {
        fnv64(&mut h, &m.to_le_bytes());
    }
    fnv64(&mut h, &(durable.len() as u64).to_le_bytes());
    h
}

/// The model checker: trace in, verified crash states out.
#[derive(Debug, Default, Clone)]
pub struct CrashChecker {
    config: CheckerConfig,
}

impl CrashChecker {
    /// A checker with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// A checker with explicit bounds.
    pub fn with_config(config: CheckerConfig) -> Self {
        CrashChecker { config }
    }

    /// Enumerate the ADR-reachable crash states of `trace` over a
    /// `region_len`-byte region and call `verify` on each distinct one.
    /// `verify` returns `Err(detail)` when recovery from that state breaks
    /// an invariant.
    ///
    /// Determinism: identical traces and config yield the identical state
    /// sequence and therefore identical reports. If the trace buffer
    /// overflowed, no states are explored and the report fails.
    pub fn check<F>(&self, trace: &[PersistEvent], region_len: u64, mut verify: F) -> CheckReport
    where
        F: FnMut(&CrashState<'_>) -> Result<(), String>,
    {
        self.check_events(trace, region_len, false, &mut verify)
    }

    /// [`CrashChecker::check`] over a still-attached
    /// [`pmem_store::PersistenceTrace`], honouring its truncation flag.
    pub fn check_trace<F>(
        &self,
        trace: &pmem_store::PersistenceTrace,
        region_len: u64,
        mut verify: F,
    ) -> CheckReport
    where
        F: FnMut(&CrashState<'_>) -> Result<(), String>,
    {
        self.check_events(
            &trace.snapshot(),
            region_len,
            trace.truncated(),
            &mut verify,
        )
    }

    fn check_events<F>(
        &self,
        trace: &[PersistEvent],
        region_len: u64,
        truncated: bool,
        verify: &mut F,
    ) -> CheckReport
    where
        F: FnMut(&CrashState<'_>) -> Result<(), String>,
    {
        let mut report = CheckReport {
            states_explored: 0,
            duplicate_states: 0,
            epochs: Vec::new(),
            violations: Vec::new(),
            trace_truncated: truncated,
        };
        if truncated {
            return report;
        }
        let epochs = model::replay(trace, region_len);
        let mut seen: HashSet<u64> = HashSet::new();
        for epoch in &epochs {
            let n = epoch.changed.len();
            let exhaustive = n <= self.config.max_enum_lines;
            let mut states = 0usize;
            let mut visit = |mask: &[bool], report: &mut CheckReport| {
                let image = epoch.image_for(mask);
                let key = state_key(&image, &epoch.durable_marks, &epoch.possible_marks);
                if !seen.insert(key) {
                    report.duplicate_states += 1;
                    return;
                }
                let accepted: Vec<u64> = mask
                    .iter()
                    .zip(&epoch.changed)
                    .filter(|(chosen, _)| **chosen)
                    .map(|(_, (line, _))| *line)
                    .collect();
                let state = CrashState {
                    epoch: epoch.index,
                    image: &image,
                    accepted_lines: &accepted,
                    durable_marks: &epoch.durable_marks,
                    possible_marks: &epoch.possible_marks,
                };
                states += 1;
                report.states_explored += 1;
                if let Err(detail) = verify(&state) {
                    report.violations.push(Violation {
                        epoch: epoch.index,
                        accepted_lines: accepted,
                        detail,
                    });
                }
            };
            if exhaustive {
                for subset in 0u64..(1u64 << n) {
                    let mask: Vec<bool> = (0..n).map(|i| subset & (1 << i) != 0).collect();
                    visit(&mask, &mut report);
                }
            } else {
                // Seeded sampling: empty and full subsets always, the rest
                // drawn from a per-epoch deterministic stream.
                let mut rng = self.config.seed ^ (epoch.index as u64).wrapping_mul(0x9E37);
                visit(&vec![false; n], &mut report);
                visit(&vec![true; n], &mut report);
                for _ in 0..self.config.sample_budget.saturating_sub(2) {
                    let mask: Vec<bool> = (0..n).map(|_| splitmix(&mut rng) & 1 == 1).collect();
                    visit(&mask, &mut report);
                }
            }
            report.epochs.push(EpochCoverage {
                epoch: epoch.index,
                wpq_lines: n,
                exhaustive,
                states,
            });
        }
        report
    }
}

/// Materialize a crash image into a fresh persistent region, so recovery
/// code can run against it exactly as it would against remapped PMEM after
/// a restart. The image is written with `ntstore` + `sfence`, so the
/// region's persisted state equals `image` byte for byte.
pub fn materialize(image: &[u8]) -> Region {
    let ns = Namespace::devdax(SocketId(0), image.len().max(64) as u64);
    let mut region = ns
        .alloc_region(image.len() as u64)
        .expect("namespace sized to the image");
    if !image.is_empty() {
        region
            .try_ntstore(0, image, AccessHint::Sequential)
            .expect("image fits the region");
        region.sfence();
    }
    region
}

/// Shorthand for the "recovery is a fixpoint" invariant: crash the
/// recovered region (dropping anything recovery forgot to fence) and
/// report whether `probe` observes the same value before and after.
pub fn recovery_is_durable<T: PartialEq>(
    region: &mut Region,
    mut probe: impl FnMut(&Region) -> T,
) -> bool {
    let before = probe(region);
    region.crash();
    probe(region) == before
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // unwrap in tests is fine

    use super::*;

    fn nt(offset: u64, data: &[u8]) -> PersistEvent {
        PersistEvent::NtStore {
            offset,
            data: data.to_vec(),
        }
    }

    #[test]
    fn enumerates_all_subsets_of_a_small_epoch() {
        // Two changed lines in one epoch: 4 subsets + the clean tail state
        // (which dedups against the full subset? no — the tail's base has
        // both lines applied, equal to the full-subset image, so it does).
        let trace = vec![nt(0, b"a"), nt(64, b"b"), PersistEvent::Sfence];
        let checker = CrashChecker::new();
        let mut images = Vec::new();
        let report = checker.check(&trace, 128, |state| {
            images.push((state.image[0], state.image[64]));
            Ok(())
        });
        assert!(report.passed());
        assert_eq!(report.states_explored, 4);
        assert_eq!(report.duplicate_states, 1, "clean tail == full subset");
        assert!(images.contains(&(0, 0)));
        assert!(images.contains(&(b'a', 0)));
        assert!(images.contains(&(0, b'b')));
        assert!(images.contains(&(b'a', b'b')));
    }

    #[test]
    fn reports_are_deterministic() {
        let trace: Vec<PersistEvent> = (0..40)
            .flat_map(|i| vec![nt(i * 64, &[i as u8 + 1]), PersistEvent::Mark(i)])
            .chain([PersistEvent::Sfence])
            .collect();
        let checker = CrashChecker::with_config(CheckerConfig {
            max_enum_lines: 4,
            sample_budget: 64,
            seed: 7,
        });
        let run = |_: ()| {
            let mut keys = Vec::new();
            let report = checker.check(&trace, 64 * 64, |s| {
                keys.push(state_key(s.image, s.durable_marks, s.possible_marks));
                Ok(())
            });
            (keys, report.states_explored, report.sampled_epochs())
        };
        let (k1, n1, s1) = run(());
        let (k2, n2, s2) = run(());
        assert_eq!(k1, k2, "identical traces must enumerate identical states");
        assert_eq!(n1, n2);
        assert_eq!(s1, vec![0], "the 40-line epoch must be flagged as sampled");
        assert_eq!(s2, vec![0]);
    }

    #[test]
    fn oversized_epochs_fall_back_to_sampling_and_say_so() {
        let trace: Vec<PersistEvent> = (0..20)
            .map(|i| nt(i * 64, &[0xFF]))
            .chain([PersistEvent::Sfence])
            .collect();
        let checker = CrashChecker::with_config(CheckerConfig {
            max_enum_lines: 8,
            sample_budget: 32,
            seed: 1,
        });
        let report = checker.check(&trace, 20 * 64, |_| Ok(()));
        assert!(!report.epochs[0].exhaustive);
        assert_eq!(report.sampled_epochs(), vec![0]);
        assert!(report.states_explored <= 32 + 1);
        assert!(report.states_explored >= 3, "empty, full, and samples");
        assert!(report.summary().contains("sampled"));
    }

    #[test]
    fn violations_carry_the_offending_state() {
        let trace = vec![nt(0, b"x"), PersistEvent::Sfence];
        let report = CrashChecker::new().check(&trace, 64, |state| {
            if state.image[0] == b'x' {
                Err("x persisted".into())
            } else {
                Ok(())
            }
        });
        assert!(!report.passed());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].accepted_lines, vec![0]);
        assert!(report.summary().contains("VIOLATION"));
    }

    #[test]
    fn truncated_traces_are_refused() {
        let trace = pmem_store::PersistenceTrace::shared(1);
        trace.record(nt(0, b"a"));
        trace.record(PersistEvent::Sfence); // dropped: capacity 1
        let report = CrashChecker::new().check_trace(&trace, 64, |_| Ok(()));
        assert!(report.trace_truncated);
        assert_eq!(report.states_explored, 0);
        assert!(!report.passed());
    }

    #[test]
    fn materialized_images_survive_crashes() {
        let mut image = vec![0u8; 256];
        image[100] = 42;
        let mut region = materialize(&image);
        region.crash();
        assert_eq!(region.read(100, 1, AccessHint::Random), &[42]);
        assert!(region.is_persistent());
    }

    #[test]
    fn recovery_is_durable_detects_unfenced_repairs() {
        let mut region = materialize(&[0u8; 128]);
        region.write(0, b"volatile"); // never fenced
        assert!(!recovery_is_durable(&mut region, |r| r
            .read(0, 8, AccessHint::Random)
            .to_vec()));
        let mut region = materialize(&[7u8; 128]);
        assert!(recovery_is_durable(&mut region, |r| r
            .read(0, 8, AccessHint::Random)
            .to_vec()));
    }
}

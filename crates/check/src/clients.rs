//! Checking drivers for the storage stack's recovery paths.
//!
//! Each driver runs a traced workload against one client, then asks the
//! [`CrashChecker`] to enumerate the reachable crash states and verifies the
//! client's recovery invariants on every one:
//!
//! * **no lost committed data** — operations marked before the crash epoch
//!   must be observable after recovery,
//! * **no resurrected uncommitted data** — recovery must surface only data
//!   the workload actually wrote (torn/unpublished writes are dropped, not
//!   repaired into existence),
//! * **recovery idempotence** — crashing again immediately after recovery
//!   and recovering again must reach the same state (recovery durably
//!   persists its own repairs).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use pmem_dash::hash::{bucket_index, hash64};
use pmem_dash::segment::{Segment, SegmentInner, SegmentInsert, BUCKETS};
use pmem_ssb::checkpoint::CheckpointStore;
use pmem_ssb::columnar::ColTuple;
use pmem_store::{PersistenceTrace, WorkerLog};

use crate::checker::{materialize, CheckReport, CrashChecker};

/// Default trace capacity for the drivers: generous for the workloads here,
/// and overflow is loud (the checker refuses truncated traces).
pub const TRACE_CAPACITY: usize = 1 << 20;

fn log_payload(i: u64) -> Vec<u8> {
    // Lengths sweep 16..~216 bytes so payload epochs span one to four WPQ
    // lines — the subset space stays exhaustive but non-trivial.
    format!(
        "log-record-{i:04}-{}",
        "x".repeat(((i * 37) % 200) as usize)
    )
    .into_bytes()
}

/// Trace `appends` worker-log appends and model-check recovery from every
/// reachable crash state. Mark `i` commits append `i`.
pub fn check_worker_log(checker: &CrashChecker, appends: u64) -> CheckReport {
    let ns = pmem_store::Namespace::devdax(pmem_sim::topology::SocketId(0), 16 << 20);
    let mut log = WorkerLog::create(&ns, appends.max(1) * 2).expect("devdax namespace");
    let trace = PersistenceTrace::shared(TRACE_CAPACITY);
    log.region().attach_persist_trace(Arc::clone(&trace));
    for i in 0..appends {
        log.append(&log_payload(i)).expect("log sized for workload");
        trace.mark(i);
    }
    log.region().detach_persist_trace();
    let region_len = log.region().len();

    checker.check_trace(&trace, region_len, |state| {
        let region = materialize(state.image);
        let recovered = WorkerLog::open(region).map_err(|e| format!("open failed: {e}"))?;
        // Mark `i` is recorded after append `i`'s publishing fence, so a
        // durable mark proves the append it names was fully fenced first.
        let durable = state.durable_marks.len() as u64;
        // No lost committed data: every append marked before the crash
        // epoch must be back, intact, at its index.
        if recovered.len() < durable {
            return Err(format!(
                "lost committed appends: {} recovered < {durable} committed",
                recovered.len()
            ));
        }
        // No resurrected data: nothing beyond what the workload ever
        // attempted, and every surfaced record must be byte-exact.
        if recovered.len() > appends {
            return Err(format!(
                "resurrected appends: {} recovered > {appends} ever attempted",
                recovered.len()
            ));
        }
        for i in 0..recovered.len() {
            let got = recovered
                .read(i)
                .ok_or_else(|| format!("slot {i} unreadable"))?;
            if got != log_payload(i) {
                return Err(format!("slot {i} corrupted after recovery"));
            }
        }
        // Idempotence: crash straight after recovery; the durable prefix
        // and sealed frontier must be unchanged.
        let mut reopened =
            WorkerLog::open(materialize(state.image)).map_err(|e| format!("open failed: {e}"))?;
        let first = reopened.len();
        let again = reopened.crash_and_recover();
        if again != first {
            return Err(format!(
                "recovery not idempotent: {first} records, then {again} after re-crash"
            ));
        }
        Ok(())
    })
}

/// One operation of the Dash segment workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DashOp {
    /// Insert or update `key` with `value`.
    Insert(u64, u64),
    /// Remove `key`.
    Remove(u64),
}

fn apply_dash(ops: &[DashOp]) -> BTreeMap<u64, u64> {
    let mut map = BTreeMap::new();
    for op in ops {
        match *op {
            DashOp::Insert(k, v) => {
                map.insert(k, v);
            }
            DashOp::Remove(k) => {
                map.remove(&k);
            }
        }
    }
    map
}

/// A workload guaranteed to exercise the displacement window at
/// `dash::segment`'s publish-copy-then-clear-original move: a key homed in
/// bucket 6 is planted first, bucket pair 5/6 is filled with colliders, and
/// one more collider forces the planted key to be displaced into bucket 7.
/// Ordinary inserts, an in-place update, and removes ride along so all
/// three operation kinds are checked.
pub fn dash_workload() -> Vec<DashOp> {
    let planted = (0u64..)
        .find(|&k| bucket_index(hash64(k), BUCKETS) == 6)
        .expect("some key homes in bucket 6");
    let colliders: Vec<u64> = (0u64..)
        .filter(|&k| k != planted && bucket_index(hash64(k), BUCKETS) == 5)
        .take(2 * pmem_dash::bucket::SLOTS)
        .collect();
    let ordinary: Vec<u64> = (0u64..)
        .filter(|&k| k != planted && !(5..=7).contains(&bucket_index(hash64(k), BUCKETS)))
        .take(6)
        .collect();
    let mut ops = Vec::new();
    ops.push(DashOp::Insert(planted, planted.wrapping_mul(10)));
    for &k in &colliders {
        ops.push(DashOp::Insert(k, k.wrapping_mul(10)));
    }
    for &k in &ordinary {
        ops.push(DashOp::Insert(k, k.wrapping_mul(10)));
    }
    // In-place update and removes (one collider, one ordinary key).
    ops.push(DashOp::Insert(ordinary[0], 777));
    ops.push(DashOp::Remove(colliders[0]));
    ops.push(DashOp::Remove(ordinary[1]));
    ops
}

/// Run the Dash segment workload under tracing and model-check recovery
/// from every reachable crash state. With `repair` unset, recovery skips
/// the duplicate sweep — the checker then demonstrably flags the
/// displacement-window duplicate (a removed key that stays visible).
pub fn check_dash_segment(checker: &CrashChecker, repair: bool) -> CheckReport {
    let ns = pmem_store::Namespace::devdax(pmem_sim::topology::SocketId(0), 4 << 20);
    let seg = Segment::new(&ns, 0).expect("devdax namespace");
    let ops = dash_workload();
    let trace = PersistenceTrace::shared(TRACE_CAPACITY);
    let region_len;
    {
        let mut inner = seg.write();
        inner.region.attach_persist_trace(Arc::clone(&trace));
        for (seq, op) in ops.iter().enumerate() {
            match *op {
                DashOp::Insert(k, v) => {
                    let r = inner.insert(hash64(k), k, v);
                    assert_ne!(r, SegmentInsert::NeedsSplit, "workload fits one segment");
                }
                DashOp::Remove(k) => {
                    inner.remove(hash64(k), k);
                }
            }
            trace.mark(seq as u64);
        }
        inner.region.detach_persist_trace();
        region_len = inner.region.len();
    }
    // Every key the workload ever wrote, with every value it ever bound —
    // the "explainable data" set for the resurrection check.
    let mut ever: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for op in &ops {
        if let DashOp::Insert(k, v) = *op {
            ever.entry(k).or_default().insert(v);
        }
    }

    checker.check_trace(&trace, region_len, |state| {
        let (mut inner, _) = SegmentInner::recover(materialize(state.image), 0, repair);
        let durable = state.durable_marks.len();
        let committed = apply_dash(&ops[..durable]);
        let later = &ops[durable..];

        // No lost committed data: a key the committed prefix leaves live
        // must answer with its committed value — or with the effect of an
        // uncommitted later operation that may have partially persisted.
        for (&k, &v) in &committed {
            let mut allowed: BTreeSet<u64> = BTreeSet::new();
            allowed.insert(v);
            let mut none_ok = false;
            for op in later {
                match *op {
                    DashOp::Insert(k2, v2) if k2 == k => {
                        allowed.insert(v2);
                    }
                    DashOp::Remove(k2) if k2 == k => none_ok = true,
                    _ => {}
                }
            }
            match inner.get(hash64(k), k) {
                Some(v2) if allowed.contains(&v2) => {}
                None if none_ok => {}
                other => {
                    return Err(format!(
                        "committed key {k}: recovered {other:?}, allowed {allowed:?}"
                    ))
                }
            }
        }
        // No resurrected deletions: a key whose last committed operation
        // removed it may only reappear through an uncommitted later insert.
        for op in &ops[..durable] {
            if let DashOp::Remove(k) = *op {
                if committed.contains_key(&k) {
                    continue; // re-inserted later in the committed prefix
                }
                let reinserted: BTreeSet<u64> = later
                    .iter()
                    .filter_map(|op| match *op {
                        DashOp::Insert(k2, v2) if k2 == k => Some(v2),
                        _ => None,
                    })
                    .collect();
                match inner.get(hash64(k), k) {
                    None => {}
                    Some(v2) if reinserted.contains(&v2) => {}
                    Some(v2) => {
                        return Err(format!(
                            "committed removal of key {k} undone: recovered {v2}"
                        ))
                    }
                }
            }
        }
        // No resurrected unknown data: everything live must be a key/value
        // the workload actually wrote at some point.
        for (k, v) in inner.records() {
            if !ever.get(&k).is_some_and(|vals| vals.contains(&v)) {
                return Err(format!("resurrected record ({k}, {v}) never written"));
            }
        }
        // Removal finality: removing any live key must make it invisible.
        // An interrupted displacement breaks exactly this — the stale
        // duplicate answers lookups for a key the caller just deleted.
        let live: Vec<u64> = inner.records().iter().map(|(k, _)| *k).collect();
        for k in live {
            let h = hash64(k);
            if inner.remove(h, k).is_some() && inner.get(h, k).is_some() {
                return Err(format!(
                    "key {k} resurrected after removal (stale duplicate copy)"
                ));
            }
        }
        // Idempotence: recovery's repairs must be durable — crashing right
        // after recovery must change nothing.
        let (mut second, _) = SegmentInner::recover(materialize(state.image), 0, repair);
        let before = second.records();
        second.region.crash();
        second.recount();
        if second.records() != before {
            return Err("recovery repairs were not durably persisted".to_string());
        }
        Ok(())
    })
}

fn checkpoint_tuple(i: u64) -> ColTuple {
    ColTuple {
        orderdate: 19940101 + i as u32,
        partkey: i as u32 * 3 + 1,
        suppkey: i as u32 * 5 + 1,
        custkey: i as u32 * 7 + 1,
        quantity: (i % 50) as u8,
        discount: (i % 11) as u8,
        extendedprice: i as u32 * 11 + 1,
        revenue: i as u32 * 13 + 1,
        supplycost: i as u32 * 17 + 1,
    }
}

/// Rows appended per checkpoint batch (5 × 32 B spans three to four WPQ
/// lines per data epoch).
pub const CHECKPOINT_BATCH: u64 = 5;

/// Trace `batches` checkpoint appends against the SSB columnar checkpoint
/// and model-check recovery from every reachable crash state. Mark `b`
/// commits batch `b`.
pub fn check_ssb_checkpoint(checker: &CrashChecker, batches: u64) -> CheckReport {
    let ns = pmem_store::Namespace::devdax(pmem_sim::topology::SocketId(0), 16 << 20);
    let mut store =
        CheckpointStore::create(&ns, batches * CHECKPOINT_BATCH).expect("devdax namespace");
    let trace = PersistenceTrace::shared(TRACE_CAPACITY);
    store.region().attach_persist_trace(Arc::clone(&trace));
    let expected: Vec<ColTuple> = (0..batches * CHECKPOINT_BATCH)
        .map(checkpoint_tuple)
        .collect();
    for b in 0..batches {
        let start = (b * CHECKPOINT_BATCH) as usize;
        store
            .append(&expected[start..start + CHECKPOINT_BATCH as usize])
            .expect("store sized for workload");
        trace.mark(b);
    }
    store.region().detach_persist_trace();
    let region_len = store.region().len();

    checker.check_trace(&trace, region_len, |state| {
        let (recovered, report) = CheckpointStore::open(materialize(state.image))
            .map_err(|e| format!("open failed: {e}"))?;
        let durable = state.durable_marks.len() as u64;
        // Batch atomicity: recovery lands exactly on a batch boundary, at
        // or beyond every committed batch, never beyond what was attempted.
        if report.rows % CHECKPOINT_BATCH != 0 {
            return Err(format!(
                "recovered {} rows — not a batch boundary",
                report.rows
            ));
        }
        let recovered_batches = report.rows / CHECKPOINT_BATCH;
        if recovered_batches < durable {
            return Err(format!(
                "lost committed batches: {recovered_batches} recovered < {durable} committed"
            ));
        }
        if recovered_batches > batches {
            return Err(format!(
                "resurrected batches: {recovered_batches} recovered > {batches} attempted"
            ));
        }
        // Content must be byte-exact for the recovered prefix.
        let back = recovered.read_all();
        if back[..] != expected[..report.rows as usize] {
            return Err(format!(
                "recovered rows corrupted (first {} rows)",
                report.rows
            ));
        }
        // Idempotence: recovery already sealed and truncated; a second
        // crash+recovery finds nothing left to repair.
        let (mut again, _) = CheckpointStore::open(materialize(state.image))
            .map_err(|e| format!("open failed: {e}"))?;
        let second = again.crash_and_recover();
        if second.rows != report.rows
            || second.torn_bytes_zeroed != 0
            || second.invalid_manifests_sealed != 0
        {
            return Err(format!(
                "recovery not a fixpoint: first {report:?}, second {second:?}"
            ));
        }
        Ok(())
    })
}

/// Model-check the media-repair invariant across crash states: **repair
/// never alters checksum-valid committed data**.
///
/// For every reachable crash state of the checkpoint workload: recover the
/// checkpoint, copy its surviving bytes into a working region, seal
/// per-block checksums and a pristine mirror, land a deterministic media
/// error (derived from the state's durable mark count, so every state
/// poisons a different spot), then run the shared
/// [`pmem_ssb::integrity::repair_region`] path and verify that repair (a)
/// restores the region byte-for-byte, (b) scrubs clean afterwards, and (c)
/// is a no-op the second time — i.e. it only ever rewrites poisoned or
/// mismatched blocks and leaves checksum-valid data untouched.
pub fn check_media_repair(checker: &CrashChecker, batches: u64) -> CheckReport {
    use pmem_ssb::integrity::repair_region;
    use pmem_store::scrub::{BlockChecksums, SCRUB_BLOCK};
    use pmem_store::{AccessHint, XPLINE};

    let ns = pmem_store::Namespace::devdax(pmem_sim::topology::SocketId(0), 16 << 20);
    let mut store =
        CheckpointStore::create(&ns, batches * CHECKPOINT_BATCH).expect("devdax namespace");
    let trace = PersistenceTrace::shared(TRACE_CAPACITY);
    store.region().attach_persist_trace(Arc::clone(&trace));
    let expected: Vec<ColTuple> = (0..batches * CHECKPOINT_BATCH)
        .map(checkpoint_tuple)
        .collect();
    for b in 0..batches {
        let start = (b * CHECKPOINT_BATCH) as usize;
        store
            .append(&expected[start..start + CHECKPOINT_BATCH as usize])
            .expect("store sized for workload");
        trace.mark(b);
    }
    store.region().detach_persist_trace();
    let region_len = store.region().len();

    checker.check_trace(&trace, region_len, |state| {
        let (recovered, _) = CheckpointStore::open(materialize(state.image))
            .map_err(|e| format!("open failed: {e}"))?;
        let committed = recovered.region().untracked_slice().to_vec();
        if committed.is_empty() {
            return Ok(());
        }
        let len = committed.len() as u64;
        let scratch = pmem_store::Namespace::devdax(pmem_sim::topology::SocketId(0), 16 << 20);
        let mut work = scratch
            .alloc_region(len)
            .map_err(|e| format!("alloc: {e}"))?;
        let mut mirror = scratch
            .alloc_region(len)
            .map_err(|e| format!("alloc: {e}"))?;
        work.try_ntstore(0, &committed, AccessHint::Sequential)
            .map_err(|e| format!("copy: {e}"))?;
        mirror
            .try_ntstore(0, &committed, AccessHint::Sequential)
            .map_err(|e| format!("copy: {e}"))?;
        work.sfence();
        mirror.sfence();
        let checks = BlockChecksums::seal_bytes(&committed, SCRUB_BLOCK);

        // A different deterministic poison placement per crash state.
        let durable = state.durable_marks.len() as u64;
        let lines = len.div_ceil(XPLINE);
        let offset = (durable.wrapping_mul(37) + 13) % lines * XPLINE;
        let span = XPLINE * (1 + durable % 3);
        if work.inject_poison(offset, span) == 0 {
            return Err(format!("poison at {offset} did not land"));
        }

        let bad = checks.scrub(&work).bad_blocks();
        if bad.is_empty() {
            return Err("scrub missed the injected poison".to_string());
        }
        let repair = repair_region(&mut work, &checks, &mirror, &bad)
            .map_err(|e| format!("repair failed: {e}"))?;
        if !repair.is_fully_repaired() {
            return Err(format!("unrepairable blocks: {}", repair.unrepairable));
        }
        // Repair must restore the committed bytes exactly — in particular
        // it must not have altered any block that was checksum-valid.
        if work.untracked_slice() != &committed[..] {
            return Err("repair altered checksum-valid committed data".to_string());
        }
        if !checks.scrub(&work).is_clean() {
            return Err("region not clean after repair".to_string());
        }
        // Idempotence: a second pass finds nothing to rewrite.
        let again = checks.scrub(&work).bad_blocks();
        if !again.is_empty() {
            return Err(format!("second scrub still dirty: {again:?}"));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // unwrap in tests is fine

    use super::*;

    #[test]
    fn worker_log_recovery_passes_the_model_checker() {
        let report = check_worker_log(&CrashChecker::new(), 6);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(report.states_explored >= 6 * 4, "{}", report.summary());
        assert!(report.sampled_epochs().is_empty());
    }

    #[test]
    fn dash_workload_exercises_a_displacement() {
        // The workload must actually reach the publish/clear window it is
        // designed to pin — verify the planted key ends up displaced.
        let ns = pmem_store::Namespace::devdax(pmem_sim::topology::SocketId(0), 4 << 20);
        let seg = Segment::new(&ns, 0).unwrap();
        let mut inner = seg.write();
        let planted = (0u64..)
            .find(|&k| bucket_index(hash64(k), BUCKETS) == 6)
            .unwrap();
        for op in dash_workload() {
            match op {
                DashOp::Insert(k, v) => {
                    inner.insert(hash64(k), k, v);
                }
                DashOp::Remove(k) => {
                    inner.remove(hash64(k), k);
                }
            }
        }
        // Displaced out of its home bucket, still reachable, no duplicate.
        let snap = pmem_dash::bucket::load(&inner.region, 6 * pmem_dash::bucket::BUCKET_BYTES);
        assert!(
            snap.live().all(|(_, k, _)| k != planted),
            "planted key must have been displaced out of bucket 6"
        );
        assert_eq!(
            inner.get(hash64(planted), planted),
            Some(planted.wrapping_mul(10))
        );
        assert!(inner.raw_duplicates().is_empty());
    }

    #[test]
    fn dash_recovery_with_repair_passes_the_model_checker() {
        let report = check_dash_segment(&CrashChecker::new(), true);
        assert!(report.passed(), "{:#?}", report.violations);
    }

    #[test]
    fn checkpoint_recovery_passes_the_model_checker() {
        let report = check_ssb_checkpoint(&CrashChecker::new(), 4);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(report.states_explored >= 4 * 4, "{}", report.summary());
    }

    #[test]
    fn media_repair_never_alters_committed_data_in_any_crash_state() {
        let report = check_media_repair(&CrashChecker::new(), 4);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(report.states_explored >= 4 * 4, "{}", report.summary());
    }
}

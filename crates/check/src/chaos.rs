//! The compositional chaos fuzzer: seeded random fault schedules over
//! the full serve/cluster stack, standing-invariant checks on every run,
//! and deterministic shrinking of any failure to a minimal reproducer.
//!
//! Where the crash model checker ([`crate::checker`]) enumerates *one*
//! fault axis exhaustively (every ADR-reachable crash state of one
//! trace), the chaos fuzzer samples the *composition* axis: media
//! poison, whole-socket power loss, fail-slow, link jitter, and
//! blackout/rejoin, stacked in one schedule
//! ([`pmem_sim::chaos::ChaosSchedule`]) and run through
//! [`pmem_cluster::Cluster::run_chaos`]. Invariants checked per run
//! ([`pmem_cluster::ChaosReport::violations`]):
//!
//! * **zero committed-data loss** — the guarded scatter-gather aggregate
//!   matches the committed reference with no unreachable rows,
//! * **no unverified hand-back** — a rejoined primary never serves
//!   blocks that fail their sealed checksums,
//! * **exactly one partial per key range**,
//! * **the retry ledger drains** — every submitted job reaches a
//!   terminal record,
//! * **bounded p99 inflation** — tail latency stays under the
//!   fault-window + deadline + queue-slack bound.
//!
//! A failing schedule is delta-debugged by
//! [`pmem_sim::chaos::shrink`]: greedily drop events while the failure
//! reproduces, to a 1-minimal reproducer. The whole campaign is seeded —
//! same seed, same schedules, same verdicts, same shrink.

use pmem_cluster::{ChaosReport, Cluster, ClusterConfig};
use pmem_sim::chaos::{shrink, ChaosConfig, ChaosSchedule};
use pmem_sim::rng::splitmix64;
use pmem_store::Result;

/// Sub-seed salt separating the campaign's schedule stream from every
/// other consumer of the master seed.
const CAMPAIGN_SALT: u64 = 0x6368616f73; // "chaos"

/// Shape of one fuzz campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosFuzzConfig {
    /// Master seed: schedules are drawn from `splitmix64(seed ^ i)`.
    pub seed: u64,
    /// Schedules to run.
    pub schedules: u32,
    /// Shards in the cluster under test.
    pub shards: u32,
    /// Whether the anti-entropy catch-up verifies landed blocks. `false`
    /// plants the regression the fuzzer must rediscover.
    pub verify_catch_up: bool,
    /// Per-schedule fault shape.
    pub faults: ChaosConfig,
}

impl ChaosFuzzConfig {
    /// The CI-smoke shape: a small cluster (3 shards at a miniature
    /// scale factor lives in [`ClusterConfig::demo`]) and a bounded
    /// schedule budget.
    pub fn smoke(seed: u64, schedules: u32) -> Self {
        let shards = 3;
        ChaosFuzzConfig {
            seed,
            schedules,
            shards,
            verify_catch_up: true,
            faults: ChaosConfig::demo(shards as usize, 0.06),
        }
    }

    /// The planted-regression shape: identical campaign, verification
    /// disabled.
    pub fn without_verification(mut self) -> Self {
        self.verify_catch_up = false;
        self
    }

    /// The schedule the campaign's `i`-th iteration runs.
    pub fn schedule(&self, i: u32) -> ChaosSchedule {
        ChaosSchedule::generate(
            splitmix64(self.seed ^ CAMPAIGN_SALT ^ u64::from(i)),
            &self.faults,
        )
    }
}

/// One failing schedule with its violations.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Campaign iteration that failed.
    pub iteration: u32,
    /// The failing schedule as generated (pre-shrink).
    pub schedule: ChaosSchedule,
    /// Invariant violations the run reported.
    pub violations: Vec<String>,
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Schedules actually run.
    pub schedules_run: u32,
    /// Total fault events across all schedules.
    pub events_run: u64,
    /// Schedules that included a blackout/rejoin arc.
    pub rejoin_arcs: u32,
    /// The healthy-cluster p99 the tail-inflation bound is relative to.
    pub healthy_p99: f64,
    /// Every schedule that violated a standing invariant.
    pub failures: Vec<ChaosFailure>,
}

impl FuzzOutcome {
    /// True when every schedule upheld every invariant.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Build the cluster one fuzz campaign runs against. One build serves
/// the whole campaign: [`Cluster::run_chaos`] restores clean state
/// (verified repairs, no leftover replicas) between schedules.
pub fn build_cluster(cfg: &ChaosFuzzConfig) -> Result<Cluster> {
    let mut ccfg = ClusterConfig::demo(cfg.shards, cfg.seed);
    ccfg.sf = 0.001;
    ccfg.horizon = cfg.faults.horizon;
    Cluster::build(ccfg)
}

/// Run the campaign: `cfg.schedules` seeded schedules through
/// [`Cluster::run_chaos`], collecting every invariant violation.
pub fn fuzz_cluster(cfg: &ChaosFuzzConfig) -> Result<FuzzOutcome> {
    let mut cluster = build_cluster(cfg)?;
    let healthy_p99 = cluster.run_healthy()?.e2e.p99;
    let mut outcome = FuzzOutcome {
        schedules_run: 0,
        events_run: 0,
        rejoin_arcs: 0,
        healthy_p99,
        failures: Vec::new(),
    };
    for i in 0..cfg.schedules {
        let schedule = cfg.schedule(i);
        let report = cluster.run_chaos(&schedule, cfg.verify_catch_up)?;
        outcome.schedules_run += 1;
        outcome.events_run += schedule.len() as u64;
        if report.blackout.is_some() {
            outcome.rejoin_arcs += 1;
        }
        let violations = report.violations(healthy_p99);
        if !violations.is_empty() {
            outcome.failures.push(ChaosFailure {
                iteration: i,
                schedule,
                violations,
            });
        }
    }
    Ok(outcome)
}

/// Re-run one schedule and report whether it still violates an
/// invariant. Schedules that fail to *run* (a propagated store error)
/// count as non-failing for shrinking purposes: the shrinker must stay
/// on the original failure, not wander onto a different crash.
fn still_fails(
    cluster: &mut Cluster,
    schedule: &ChaosSchedule,
    verify: bool,
    healthy_p99: f64,
) -> bool {
    match cluster.run_chaos(schedule, verify) {
        Ok(report) => !report.violations(healthy_p99).is_empty(),
        Err(_) => false,
    }
}

/// Delta-debug a failing schedule to a 1-minimal reproducer: greedily
/// drop events while the invariant violation still reproduces. Returns
/// the shrunk schedule and the violations it still trips.
pub fn shrink_failure(
    cfg: &ChaosFuzzConfig,
    failure: &ChaosFailure,
) -> Result<(ChaosSchedule, Vec<String>)> {
    let mut cluster = build_cluster(cfg)?;
    let healthy_p99 = cluster.run_healthy()?.e2e.p99;
    let minimal = shrink(&failure.schedule, |s| {
        still_fails(&mut cluster, s, cfg.verify_catch_up, healthy_p99)
    });
    let report = cluster.run_chaos(&minimal, cfg.verify_catch_up)?;
    Ok((minimal, report.violations(healthy_p99)))
}

/// Run one schedule against a fresh campaign cluster (the reproducer
/// entry point: paste a seed + event list, get the report back).
pub fn run_one(cfg: &ChaosFuzzConfig, schedule: &ChaosSchedule) -> Result<ChaosReport> {
    let mut cluster = build_cluster(cfg)?;
    cluster.run_chaos(schedule, cfg.verify_catch_up)
}

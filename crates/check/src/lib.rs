//! # pmem-crashmc — systematic crash-state model checking for the storage stack
//!
//! A deterministic model checker for crash consistency, driven by the
//! persistence traces [`pmem_store::Region`] records (see
//! [`pmem_store::PersistenceTrace`]). The pipeline:
//!
//! 1. **Trace.** A checked run attaches a trace to its region; every
//!    store/ntstore/clwb/sfence (plus client [`PersistEvent::Mark`]s naming
//!    committed operations) lands in order in the trace.
//! 2. **Replay.** [`model::replay`] cuts the trace into fence-delimited
//!    [`model::Epoch`]s under ADR semantics: dirty (never-flushed) lines are
//!    always lost, WPQ-pending (ntstore'd or clwb'ed) lines may each have
//!    been accepted or not when power was cut.
//! 3. **Enumerate.** [`CrashChecker`] walks every subset of each epoch's
//!    pending lines (no-op lines dropped, states deduplicated by content),
//!    falling back to seeded sampling — loudly, via
//!    [`CheckReport::sampled_epochs`] — when an epoch exceeds the bound.
//! 4. **Verify.** Each distinct state is [`materialize`]d into a fresh
//!    persistent region, recovery runs against it, and caller-supplied
//!    invariants are checked: committed data survives, uncommitted data is
//!    never resurrected, and recovery is idempotent ([`recovery_is_durable`]).
//!
//! [`clients`] packages those drivers for the stack's three recovery paths:
//! the worker log, the Dash hash table, and the SSB columnar checkpoint.
//!
//! [`chaos`] is the crate's second leg: where the crash checker
//! enumerates one fault axis exhaustively, the chaos fuzzer samples
//! *compositions* of faults (media poison + power loss + fail-slow +
//! link jitter + blackout/rejoin) over the full cluster stack, checks
//! the standing robustness invariants on every seeded schedule, and
//! shrinks any failure to a minimal reproducer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(clippy::unwrap_used)]

pub mod chaos;
pub mod checker;
pub mod clients;
pub mod model;

pub use chaos::{fuzz_cluster, shrink_failure, ChaosFuzzConfig, FuzzOutcome};
pub use checker::{
    materialize, recovery_is_durable, CheckReport, CheckerConfig, CrashChecker, CrashState,
    EpochCoverage, Violation,
};
pub use model::{replay, Epoch};
pub use pmem_store::{PersistEvent, PersistenceTrace};

//! Replaying a persistence trace into fence-delimited crash epochs.
//!
//! The replay mirrors the ADR semantics `pmem_store::Region` enforces:
//!
//! * a regular store makes its cache lines *dirty* (a crash always loses
//!   them — the model, like the region, has no spontaneous evictions),
//! * `clwb` moves dirty lines onto the WPQ path ("pending"),
//! * `ntstore` puts lines onto the WPQ path directly,
//! * `sfence` accepts every pending line into the WPQ — persistent.
//!
//! Between two fences, the iMC may have accepted *any subset* of the
//! pending lines before power was cut. An [`Epoch`] therefore captures the
//! persisted base image at its start plus the pending lines (with the
//! content the closing fence would persist); the checker enumerates the
//! subsets. Lines whose pending content equals the base content are
//! dropped up front — accepting them changes nothing, so keeping them
//! would only inflate the subset space with duplicate states.

use std::collections::BTreeSet;

use pmem_store::region::CACHE_LINE;
use pmem_store::PersistEvent;

/// One inter-fence window of a traced run.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Position in the fence order (0 = before the first fence).
    pub index: usize,
    /// The persisted image at epoch start: everything earlier fences
    /// accepted.
    pub base: Vec<u8>,
    /// WPQ-pending lines at the closing fence, as `(line, content)` with
    /// `content` the full cache line the fence would persist. Sorted by
    /// line; no-op lines (content == base) removed.
    pub changed: Vec<(u64, Vec<u8>)>,
    /// Marks recorded strictly before this epoch: their effects were
    /// fenced, so they survive any crash inside this epoch.
    pub durable_marks: Vec<u64>,
    /// Marks recorded inside this epoch: their effects may or may not have
    /// been accepted.
    pub possible_marks: Vec<u64>,
}

impl Epoch {
    /// The crash image reached when the iMC accepted exactly the changed
    /// lines selected by `mask` (bit `i` = `changed[i]`).
    pub fn image_for(&self, mask: &[bool]) -> Vec<u8> {
        let mut image = self.base.clone();
        for (chosen, (line, content)) in mask.iter().zip(&self.changed) {
            if *chosen {
                let start = (*line * CACHE_LINE) as usize;
                let end = (start + content.len()).min(image.len());
                image[start..end].copy_from_slice(&content[..end - start]);
            }
        }
        image
    }
}

fn line_range(line: u64, len: usize) -> (usize, usize) {
    let start = (line * CACHE_LINE) as usize;
    let end = (start + CACHE_LINE as usize).min(len);
    (start, end)
}

fn lines_of(offset: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = offset / CACHE_LINE;
    let last = (offset + len.max(1) - 1) / CACHE_LINE;
    first..=last
}

/// Replay `trace` over a `region_len`-byte region that starts zeroed (the
/// state `Namespace::alloc_region` hands out) and cut it into epochs. The
/// final, fence-less tail of the trace forms the last epoch, so a trace
/// that ends on a fence contributes one extra "clean shutdown" epoch with
/// no pending lines.
pub fn replay(trace: &[PersistEvent], region_len: u64) -> Vec<Epoch> {
    let len = region_len as usize;
    let mut data = vec![0u8; len];
    let mut shadow = vec![0u8; len];
    let mut dirty: BTreeSet<u64> = BTreeSet::new();
    let mut pending: BTreeSet<u64> = BTreeSet::new();
    let mut durable_marks: Vec<u64> = Vec::new();
    let mut current_marks: Vec<u64> = Vec::new();
    let mut epochs = Vec::new();

    let close_epoch = |index: usize,
                       shadow: &[u8],
                       data: &[u8],
                       pending: &BTreeSet<u64>,
                       durable_marks: &[u64],
                       current_marks: &[u64]| {
        let mut changed = Vec::new();
        for &line in pending {
            let (start, end) = line_range(line, len);
            if start >= len {
                continue;
            }
            if data[start..end] != shadow[start..end] {
                changed.push((line, data[start..end].to_vec()));
            }
        }
        Epoch {
            index,
            base: shadow.to_vec(),
            changed,
            durable_marks: durable_marks.to_vec(),
            possible_marks: current_marks.to_vec(),
        }
    };

    for event in trace {
        match event {
            PersistEvent::Store {
                offset,
                data: bytes,
            } => {
                let start = *offset as usize;
                data[start..start + bytes.len()].copy_from_slice(bytes);
                for line in lines_of(*offset, bytes.len() as u64) {
                    pending.remove(&line);
                    dirty.insert(line);
                }
            }
            PersistEvent::NtStore {
                offset,
                data: bytes,
            } => {
                let start = *offset as usize;
                data[start..start + bytes.len()].copy_from_slice(bytes);
                for line in lines_of(*offset, bytes.len() as u64) {
                    dirty.remove(&line);
                    pending.insert(line);
                }
            }
            PersistEvent::Clwb { offset, len: l } => {
                for line in lines_of(*offset, *l) {
                    if dirty.remove(&line) {
                        pending.insert(line);
                    }
                }
            }
            PersistEvent::Sfence => {
                epochs.push(close_epoch(
                    epochs.len(),
                    &shadow,
                    &data,
                    &pending,
                    &durable_marks,
                    &current_marks,
                ));
                for &line in &pending {
                    let (start, end) = line_range(line, len);
                    if start < len {
                        shadow[start..end].copy_from_slice(&data[start..end]);
                    }
                }
                pending.clear();
                durable_marks.append(&mut current_marks);
            }
            PersistEvent::Mark(id) => current_marks.push(*id),
        }
    }
    // The tail after the last fence: a crash here may still accept any
    // subset of whatever is pending.
    epochs.push(close_epoch(
        epochs.len(),
        &shadow,
        &data,
        &pending,
        &durable_marks,
        &current_marks,
    ));
    epochs
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // unwrap in tests is fine

    use super::*;

    fn nt(offset: u64, data: &[u8]) -> PersistEvent {
        PersistEvent::NtStore {
            offset,
            data: data.to_vec(),
        }
    }

    #[test]
    fn fences_delimit_epochs_and_promote_marks() {
        let trace = vec![
            nt(0, b"aaaa"),
            PersistEvent::Mark(1),
            PersistEvent::Sfence,
            nt(64, b"bbbb"),
            PersistEvent::Mark(2),
            PersistEvent::Sfence,
        ];
        let epochs = replay(&trace, 256);
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].changed.len(), 1);
        assert_eq!(epochs[0].possible_marks, vec![1]);
        assert!(epochs[0].durable_marks.is_empty());
        assert_eq!(epochs[1].changed[0].0, 1);
        assert_eq!(epochs[1].durable_marks, vec![1]);
        assert_eq!(epochs[1].possible_marks, vec![2]);
        // Clean-shutdown tail: nothing pending, everything durable.
        assert!(epochs[2].changed.is_empty());
        assert_eq!(epochs[2].durable_marks, vec![1, 2]);
    }

    #[test]
    fn unflushed_cached_stores_never_appear_as_pending() {
        let trace = vec![
            PersistEvent::Store {
                offset: 0,
                data: b"dirty".to_vec(),
            },
            PersistEvent::Sfence,
        ];
        let epochs = replay(&trace, 128);
        assert!(epochs[0].changed.is_empty(), "dirty lines cannot persist");
    }

    #[test]
    fn clwb_moves_dirty_lines_onto_the_wpq_path() {
        let trace = vec![
            PersistEvent::Store {
                offset: 0,
                data: b"flushed".to_vec(),
            },
            PersistEvent::Clwb { offset: 0, len: 7 },
            PersistEvent::Sfence,
        ];
        let epochs = replay(&trace, 128);
        assert_eq!(epochs[0].changed.len(), 1);
        assert_eq!(&epochs[0].changed[0].1[..7], b"flushed");
    }

    #[test]
    fn noop_lines_are_dropped_from_the_subset_space() {
        let trace = vec![
            nt(0, b"same"),
            PersistEvent::Sfence,
            nt(0, b"same"), // re-writing identical content
            nt(64, b"new!"),
            PersistEvent::Sfence,
        ];
        let epochs = replay(&trace, 256);
        assert_eq!(
            epochs[1].changed.len(),
            1,
            "identical re-write is a no-op line"
        );
        assert_eq!(epochs[1].changed[0].0, 1);
    }

    #[test]
    fn image_for_applies_exactly_the_selected_lines() {
        let trace = vec![nt(0, b"xx"), nt(64, b"yy"), PersistEvent::Sfence];
        let epochs = replay(&trace, 192);
        let e = &epochs[0];
        assert_eq!(e.changed.len(), 2);
        let none = e.image_for(&[false, false]);
        assert_eq!(&none[..2], &[0, 0]);
        let first = e.image_for(&[true, false]);
        assert_eq!(&first[..2], b"xx");
        assert_eq!(&first[64..66], &[0, 0]);
        let both = e.image_for(&[true, true]);
        assert_eq!(&both[64..66], b"yy");
    }
}

//! Deterministic fault injection for the simulated machine.
//!
//! The paper's bandwidth model assumes a healthy server, but the mechanisms
//! it calibrates — per-DIMM write-combining buffers, RPQ/WPQ queues, UPI
//! capacity — are exactly what degrades in production. Optane DIMMs
//! thermally throttle their write path, a DIMM can drop out of the
//! interleave set, the UPI link loses lanes, and queues stall for bursts at
//! a time (the early-evaluation studies report all four). This module
//! expresses those degradations as a *seeded, deterministic* schedule so
//! resilience experiments are exactly reproducible: the same seed always
//! yields the same fault timeline.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s. Consumers fold the
//! events active at a virtual time `t` into a [`MachineFaultState`] — a pair
//! of per-socket read/write bandwidth scale factors plus a UPI capacity
//! scale — via [`FaultPlan::state_at`], and chop their simulation steps at
//! [`FaultPlan::next_transition_after`] so rates stay piecewise-constant.
//! Power-loss events are instantaneous and surfaced separately through
//! [`FaultPlan::power_losses_in`]; the storage layer maps them onto
//! `Region::crash`. Media errors — Optane's third failure class, an
//! uncorrectable error poisoning a 256 B XPLine-aligned range — are likewise
//! instantaneous and surfaced through [`FaultPlan::media_errors_in`]; the
//! storage layer maps them onto `Region::inject_poison` and the scrubber
//! repairs them from durable checkpoints.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::topology::{Machine, SocketId};

/// Bandwidth scale applied to a socket while one of its iMC queues is
/// stalled: the queue drains almost nothing, but forward progress never
/// fully stops (retries trickle through), which keeps simulated completion
/// times finite.
pub const STALL_SCALE: f64 = 0.05;

/// Media (poison) granularity of an Optane DIMM: one 256 B XPLine. Injected
/// media errors are aligned to this boundary, matching the device's
/// error-reporting granularity.
pub const XPLINE_BYTES: u64 = 256;

/// One kind of injected hardware degradation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Thermal write throttling on one socket's DIMMs: the WPQ drain rate —
    /// and with it the achievable write bandwidth — is scaled by `factor`.
    WriteThrottle {
        /// Socket whose DIMMs throttle.
        socket: SocketId,
        /// WPQ drain-rate scale in `(0, 1)`.
        factor: f64,
    },
    /// `dimms` DIMMs of one socket's interleave set stop serving traffic.
    /// Both read and write bandwidth shrink with the lost channel share.
    DimmDropout {
        /// Socket losing DIMMs.
        socket: SocketId,
        /// Number of DIMMs lost (clamped below the socket's channel count).
        dimms: u8,
    },
    /// The UPI link degrades (lane failure / retraining): cross-socket
    /// capacity is scaled by `factor`.
    UpiDegrade {
        /// Remaining fraction of UPI capacity in `(0, 1)`.
        factor: f64,
    },
    /// A transient RPQ/WPQ stall burst on one socket: both directions drop
    /// to [`STALL_SCALE`] for the duration.
    QueueStall {
        /// Socket whose iMC queues stall.
        socket: SocketId,
    },
    /// A sustained machine-wide service-rate degradation ("fail-slow"):
    /// every socket's read *and* write bandwidth is scaled by `factor`
    /// for the window. This is the gray-failure unit — thermal
    /// throttling, a misbehaving firmware background task, a saturated
    /// CPU — where the machine keeps answering, just 10× slower, and
    /// nothing binary (heartbeats, connects) ever trips. Composable
    /// with the blackout event stack in [`crate::fleet`].
    FailSlow {
        /// Remaining fraction of the machine's service rate in `(0, 1)`.
        factor: f64,
    },
    /// An instantaneous power-loss event on one socket. Carries no duration;
    /// the storage layer replays it as `Region::crash` (unfenced lines are
    /// lost) and the serving layer fails the jobs running there.
    PowerLoss {
        /// Socket that loses power.
        socket: SocketId,
    },
    /// An instantaneous uncorrectable media error on one socket: `lines`
    /// consecutive 256 B XPLines starting at byte `offset` (relative to the
    /// socket's poisoned address space) become poisoned. Like power loss it
    /// carries no duration and never alters bandwidth rates; the storage
    /// layer maps it onto `Region::inject_poison` and consumers see
    /// `StoreError::Poisoned` until a scrub/repair pass rewrites the lines.
    MediaError {
        /// Socket whose DIMM takes the media error.
        socket: SocketId,
        /// Byte offset of the first poisoned XPLine ([`XPLINE_BYTES`]-aligned).
        offset: u64,
        /// Number of consecutive XPLines poisoned.
        lines: u32,
    },
}

impl FaultKind {
    /// The socket this fault degrades, if it is socket-local.
    pub fn socket(&self) -> Option<SocketId> {
        match *self {
            FaultKind::WriteThrottle { socket, .. }
            | FaultKind::DimmDropout { socket, .. }
            | FaultKind::QueueStall { socket }
            | FaultKind::PowerLoss { socket }
            | FaultKind::MediaError { socket, .. } => Some(socket),
            FaultKind::UpiDegrade { .. } | FaultKind::FailSlow { .. } => None,
        }
    }
}

/// A fault with its active window `[start, end)` in virtual seconds.
/// Power-loss events are instantaneous: `end == start`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time the fault begins.
    pub start: f64,
    /// Virtual time the fault clears (equal to `start` for power loss).
    pub end: f64,
    /// What degrades.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the fault's window covers time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether this is an instantaneous power-loss event.
    pub fn is_power_loss(&self) -> bool {
        matches!(self.kind, FaultKind::PowerLoss { .. })
    }

    /// Whether this is an instantaneous media-error (poison) event.
    pub fn is_media_error(&self) -> bool {
        matches!(self.kind, FaultKind::MediaError { .. })
    }
}

/// Bandwidth scale factors for one socket at a point in virtual time.
/// `1.0` is healthy; multiple active faults multiply together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketFaultState {
    /// Scale on the socket's achievable read bandwidth.
    pub read_scale: f64,
    /// Scale on the socket's achievable write bandwidth (WPQ drain rate).
    pub write_scale: f64,
}

impl SocketFaultState {
    /// A healthy socket: both scales at 1.0.
    pub const HEALTHY: SocketFaultState = SocketFaultState {
        read_scale: 1.0,
        write_scale: 1.0,
    };

    /// Whether any meaningful degradation applies.
    pub fn is_degraded(&self) -> bool {
        self.read_scale < 0.999 || self.write_scale < 0.999
    }

    fn apply(&mut self, kind: &FaultKind, machine: &Machine) {
        match *kind {
            FaultKind::WriteThrottle { factor, .. } => {
                self.write_scale *= factor.clamp(0.0, 1.0);
            }
            FaultKind::DimmDropout { dimms, .. } => {
                let channels = machine.channels_per_socket().max(1);
                let lost = dimms.min(channels - 1);
                let share = f64::from(channels - lost) / f64::from(channels);
                self.read_scale *= share;
                self.write_scale *= share;
            }
            FaultKind::QueueStall { .. } => {
                self.read_scale *= STALL_SCALE;
                self.write_scale *= STALL_SCALE;
            }
            FaultKind::UpiDegrade { .. }
            | FaultKind::FailSlow { .. }
            | FaultKind::PowerLoss { .. }
            | FaultKind::MediaError { .. } => {}
        }
    }
}

impl Default for SocketFaultState {
    fn default() -> Self {
        SocketFaultState::HEALTHY
    }
}

/// The machine-wide fault state at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineFaultState {
    /// Per-socket degradation (index = `SocketId.0`).
    pub sockets: [SocketFaultState; 2],
    /// Remaining fraction of UPI capacity (1.0 = healthy link).
    pub upi_scale: f64,
}

impl MachineFaultState {
    /// A fully healthy machine.
    pub const HEALTHY: MachineFaultState = MachineFaultState {
        sockets: [SocketFaultState::HEALTHY, SocketFaultState::HEALTHY],
        upi_scale: 1.0,
    };

    /// The fault state of one socket.
    pub fn socket(&self, socket: SocketId) -> SocketFaultState {
        self.sockets[socket.0 as usize % 2]
    }

    /// Whether anything on the machine is degraded.
    pub fn is_degraded(&self) -> bool {
        self.upi_scale < 0.999 || self.sockets.iter().any(|s| s.is_degraded())
    }

    /// Mean read-path scale across both sockets — the service rate a
    /// scan (or a health probe pricing one) sees on this machine, since
    /// the query plane reads partitions resident on either socket.
    pub fn service_scale(&self) -> f64 {
        (self.sockets[0].read_scale + self.sockets[1].read_scale) / 2.0
    }
}

impl Default for MachineFaultState {
    fn default() -> Self {
        MachineFaultState::HEALTHY
    }
}

/// Shape of a generated fault schedule: how many of each fault kind to
/// draw and over what horizon. All draws come from one seeded generator,
/// so a `(seed, config)` pair fully determines the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScheduleConfig {
    /// Virtual-time horizon the faults are scattered over, in seconds.
    pub horizon: f64,
    /// Concentrate socket-local faults on this socket instead of drawing
    /// the victim uniformly. Useful for experiments that contrast a
    /// degraded socket against a healthy peer.
    pub victim: Option<SocketId>,
    /// Number of thermal write-throttling windows.
    pub write_throttles: u32,
    /// Range the throttle factor is drawn from.
    pub throttle_factor: (f64, f64),
    /// Number of DIMM-dropout windows (1–2 DIMMs each).
    pub dimm_dropouts: u32,
    /// Number of UPI degradation windows.
    pub upi_degrades: u32,
    /// Range the UPI capacity factor is drawn from.
    pub upi_factor: (f64, f64),
    /// Number of transient queue-stall bursts.
    pub stall_bursts: u32,
    /// Range a stall burst's duration is drawn from, in seconds.
    pub stall_duration: (f64, f64),
    /// Number of instantaneous power-loss events.
    pub power_losses: u32,
    /// Number of instantaneous media-error (poison) events. Defaults to 0
    /// so schedules generated before media errors existed keep their exact
    /// timelines; integrity experiments opt in explicitly.
    pub media_errors: u32,
    /// Byte span of the per-socket address space media-error offsets are
    /// drawn from. Consumers reduce the offset modulo their region length,
    /// so this only needs to be large enough to spread draws out.
    pub media_span: u64,
    /// Maximum number of consecutive XPLines one media error poisons
    /// (drawn uniformly from `1..=media_lines_max`).
    pub media_lines_max: u32,
    /// Number of sustained machine-wide fail-slow windows. Defaults to 0
    /// so schedules generated before the gray-failure plane existed keep
    /// their exact timelines; gray experiments opt in explicitly.
    pub fail_slows: u32,
    /// Range the fail-slow service-rate factor is drawn from.
    pub fail_slow_factor: (f64, f64),
}

impl FaultScheduleConfig {
    /// A moderately hostile default over the given horizon: a couple of
    /// throttle windows, one dropout, one UPI degradation, a few stall
    /// bursts, and one power loss.
    pub fn over(horizon: f64) -> Self {
        FaultScheduleConfig {
            horizon,
            victim: None,
            write_throttles: 2,
            throttle_factor: (0.1, 0.4),
            dimm_dropouts: 1,
            upi_degrades: 1,
            upi_factor: (0.3, 0.7),
            stall_bursts: 3,
            stall_duration: (0.01, 0.05),
            power_losses: 1,
            media_errors: 0,
            media_span: 64 << 20,
            media_lines_max: 4,
            fail_slows: 0,
            fail_slow_factor: (0.05, 0.25),
        }
    }

    /// The hostile default plus `count` media errors — the opt-in used by
    /// integrity experiments.
    pub fn with_media_errors(horizon: f64, count: u32) -> Self {
        FaultScheduleConfig {
            media_errors: count,
            ..FaultScheduleConfig::over(horizon)
        }
    }

    /// The hostile default plus `count` fail-slow windows — the opt-in
    /// used by gray-failure experiments.
    pub fn with_fail_slows(horizon: f64, count: u32) -> Self {
        FaultScheduleConfig {
            fail_slows: count,
            ..FaultScheduleConfig::over(horizon)
        }
    }
}

impl Default for FaultScheduleConfig {
    fn default() -> Self {
        FaultScheduleConfig::over(1.0)
    }
}

/// A deterministic schedule of fault events over virtual time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a healthy machine forever.
    pub fn none() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Build a plan from explicit events (sorted by start time).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.start.total_cmp(&b.start));
        FaultPlan { events }
    }

    /// Generate a schedule from a seed. Identical `(seed, config)` pairs
    /// produce identical plans — the seed drives a [`SmallRng`] and every
    /// draw happens in a fixed order.
    pub fn generate(seed: u64, config: &FaultScheduleConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let horizon = config.horizon.max(1e-6);
        let mut events = Vec::new();

        let victim = |rng: &mut SmallRng| {
            config
                .victim
                .unwrap_or_else(|| SocketId(if rng.gen_bool(0.5) { 0 } else { 1 }))
        };
        let range = |rng: &mut SmallRng, (lo, hi): (f64, f64)| {
            if hi > lo {
                rng.gen_range(lo..hi)
            } else {
                lo
            }
        };

        for _ in 0..config.write_throttles {
            let socket = victim(&mut rng);
            let factor = range(&mut rng, config.throttle_factor);
            let start = rng.gen_range(0.0..horizon * 0.5);
            let len = rng.gen_range(horizon * 0.2..horizon * 0.6);
            events.push(FaultEvent {
                start,
                end: (start + len).min(horizon),
                kind: FaultKind::WriteThrottle { socket, factor },
            });
        }
        for _ in 0..config.dimm_dropouts {
            let socket = victim(&mut rng);
            let dimms = if rng.gen_bool(0.7) { 1 } else { 2 };
            let start = rng.gen_range(0.0..horizon * 0.7);
            let len = rng.gen_range(horizon * 0.1..horizon * 0.3);
            events.push(FaultEvent {
                start,
                end: (start + len).min(horizon),
                kind: FaultKind::DimmDropout { socket, dimms },
            });
        }
        for _ in 0..config.upi_degrades {
            let factor = range(&mut rng, config.upi_factor);
            let start = rng.gen_range(0.0..horizon * 0.7);
            let len = rng.gen_range(horizon * 0.1..horizon * 0.4);
            events.push(FaultEvent {
                start,
                end: (start + len).min(horizon),
                kind: FaultKind::UpiDegrade { factor },
            });
        }
        for _ in 0..config.stall_bursts {
            let socket = victim(&mut rng);
            let start = rng.gen_range(0.0..horizon * 0.9);
            let len = range(&mut rng, config.stall_duration);
            events.push(FaultEvent {
                start,
                end: (start + len).min(horizon),
                kind: FaultKind::QueueStall { socket },
            });
        }
        for _ in 0..config.power_losses {
            let socket = victim(&mut rng);
            let at = rng.gen_range(horizon * 0.1..horizon * 0.9);
            events.push(FaultEvent {
                start: at,
                end: at,
                kind: FaultKind::PowerLoss { socket },
            });
        }
        // Media errors draw last so pre-existing schedules (media_errors == 0)
        // keep byte-identical event streams for a given seed.
        let span_lines = (config.media_span / XPLINE_BYTES).max(1);
        for _ in 0..config.media_errors {
            let socket = victim(&mut rng);
            let offset = rng.gen_range(0..span_lines) * XPLINE_BYTES;
            let lines = rng.gen_range(1..=config.media_lines_max.max(1));
            let at = rng.gen_range(horizon * 0.1..horizon * 0.9);
            events.push(FaultEvent {
                start: at,
                end: at,
                kind: FaultKind::MediaError {
                    socket,
                    offset,
                    lines,
                },
            });
        }

        // Fail-slow windows draw after media errors for the same reason
        // media errors draw after everything else: appending keeps the
        // non-fail-slow prefix of a seed's event stream byte-identical
        // when a config opts in.
        for _ in 0..config.fail_slows {
            let factor = range(&mut rng, config.fail_slow_factor);
            let start = rng.gen_range(0.0..horizon * 0.7);
            let len = rng.gen_range(horizon * 0.2..horizon * 0.6);
            events.push(FaultEvent {
                start,
                end: (start + len).min(horizon),
                kind: FaultKind::FailSlow { factor },
            });
        }

        Self::from_events(events)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Fold the events active at time `t` into a machine-wide fault state.
    /// The `machine` supplies the channel count that prices DIMM dropouts.
    pub fn state_at(&self, machine: &Machine, t: f64) -> MachineFaultState {
        let mut state = MachineFaultState::HEALTHY;
        for event in &self.events {
            if !event.active_at(t) {
                continue;
            }
            if let FaultKind::UpiDegrade { factor } = event.kind {
                state.upi_scale *= factor.clamp(0.0, 1.0);
            } else if let FaultKind::FailSlow { factor } = event.kind {
                let f = factor.clamp(0.0, 1.0);
                for socket in &mut state.sockets {
                    socket.read_scale *= f;
                    socket.write_scale *= f;
                }
            } else if let Some(socket) = event.kind.socket() {
                state.sockets[socket.0 as usize % 2].apply(&event.kind, machine);
            }
        }
        state
    }

    /// The earliest event boundary (start or end) strictly after `t`, if
    /// any. Simulation loops chop their steps here so rates stay
    /// piecewise-constant within a step.
    pub fn next_transition_after(&self, t: f64) -> Option<f64> {
        self.events
            .iter()
            .flat_map(|e| [e.start, e.end])
            .filter(|&b| b > t)
            .min_by(f64::total_cmp)
    }

    /// Power-loss events with `after < time <= until`, in time order.
    pub fn power_losses_in(&self, after: f64, until: f64) -> Vec<(f64, SocketId)> {
        let mut losses: Vec<(f64, SocketId)> = self
            .events
            .iter()
            .filter(|e| e.is_power_loss() && e.start > after && e.start <= until)
            .filter_map(|e| e.kind.socket().map(|s| (e.start, s)))
            .collect();
        losses.sort_by(|a, b| a.0.total_cmp(&b.0));
        losses
    }

    /// Media-error events with `after < time <= until`, in time order.
    pub fn media_errors_in(&self, after: f64, until: f64) -> Vec<MediaHit> {
        let mut hits: Vec<MediaHit> = self
            .events
            .iter()
            .filter(|e| e.start > after && e.start <= until)
            .filter_map(|e| match e.kind {
                FaultKind::MediaError {
                    socket,
                    offset,
                    lines,
                } => Some(MediaHit {
                    at: e.start,
                    socket,
                    offset,
                    lines,
                }),
                _ => None,
            })
            .collect();
        hits.sort_by(|a, b| a.at.total_cmp(&b.at));
        hits
    }
}

/// One materialized media-error event, as surfaced by
/// [`FaultPlan::media_errors_in`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaHit {
    /// Virtual time the poison lands.
    pub at: f64,
    /// Socket whose DIMM takes the error.
    pub socket: SocketId,
    /// Byte offset of the first poisoned XPLine.
    pub offset: u64,
    /// Number of consecutive XPLines poisoned.
    pub lines: u32,
}

impl MediaHit {
    /// Total poisoned span in bytes.
    pub fn len(&self) -> u64 {
        u64::from(self.lines.max(1)) * XPLINE_BYTES
    }

    /// Whether the hit poisons nothing (never true for generated plans).
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::paper_default()
    }

    #[test]
    fn identical_seeds_reproduce_identical_timelines() {
        let cfg = FaultScheduleConfig::over(2.0);
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultScheduleConfig::over(2.0);
        assert_ne!(FaultPlan::generate(1, &cfg), FaultPlan::generate(2, &cfg));
    }

    #[test]
    fn empty_plan_is_always_healthy() {
        let plan = FaultPlan::none();
        let state = plan.state_at(&machine(), 0.5);
        assert_eq!(state, MachineFaultState::HEALTHY);
        assert!(!state.is_degraded());
        assert_eq!(plan.next_transition_after(0.0), None);
        assert!(plan.power_losses_in(0.0, 100.0).is_empty());
    }

    #[test]
    fn write_throttle_scales_only_writes() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 1.0,
            end: 2.0,
            kind: FaultKind::WriteThrottle {
                socket: SocketId(0),
                factor: 0.25,
            },
        }]);
        let m = machine();
        assert!(!plan.state_at(&m, 0.5).is_degraded(), "before the window");
        let during = plan.state_at(&m, 1.5);
        let s0 = during.socket(SocketId(0));
        assert!((s0.write_scale - 0.25).abs() < 1e-12);
        assert!((s0.read_scale - 1.0).abs() < 1e-12);
        assert!(!during.socket(SocketId(1)).is_degraded(), "peer is healthy");
        assert!(!plan.state_at(&m, 2.0).is_degraded(), "window is half-open");
    }

    #[test]
    fn dimm_dropout_prices_the_lost_channel_share() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 0.0,
            end: 1.0,
            kind: FaultKind::DimmDropout {
                socket: SocketId(1),
                dimms: 2,
            },
        }]);
        let s1 = plan.state_at(&machine(), 0.5).socket(SocketId(1));
        // 6 channels per socket, 2 lost -> 4/6 of the bandwidth remains.
        assert!((s1.read_scale - 4.0 / 6.0).abs() < 1e-12);
        assert!((s1.write_scale - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn dropout_never_zeroes_a_socket() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 0.0,
            end: 1.0,
            kind: FaultKind::DimmDropout {
                socket: SocketId(0),
                dimms: 200,
            },
        }]);
        let s0 = plan.state_at(&machine(), 0.5).socket(SocketId(0));
        assert!(s0.read_scale > 0.0, "at least one channel survives");
    }

    #[test]
    fn queue_stall_collapses_both_directions() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 0.0,
            end: 0.1,
            kind: FaultKind::QueueStall {
                socket: SocketId(0),
            },
        }]);
        let s0 = plan.state_at(&machine(), 0.05).socket(SocketId(0));
        assert!((s0.read_scale - STALL_SCALE).abs() < 1e-12);
        assert!((s0.write_scale - STALL_SCALE).abs() < 1e-12);
    }

    #[test]
    fn concurrent_faults_multiply() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                start: 0.0,
                end: 1.0,
                kind: FaultKind::WriteThrottle {
                    socket: SocketId(0),
                    factor: 0.5,
                },
            },
            FaultEvent {
                start: 0.0,
                end: 1.0,
                kind: FaultKind::DimmDropout {
                    socket: SocketId(0),
                    dimms: 3,
                },
            },
        ]);
        let s0 = plan.state_at(&machine(), 0.5).socket(SocketId(0));
        assert!((s0.write_scale - 0.5 * 0.5).abs() < 1e-12);
        assert!((s0.read_scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn upi_degrade_is_machine_wide() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 0.0,
            end: 1.0,
            kind: FaultKind::UpiDegrade { factor: 0.4 },
        }]);
        let state = plan.state_at(&machine(), 0.5);
        assert!((state.upi_scale - 0.4).abs() < 1e-12);
        assert!(state.is_degraded());
        assert!(!state.socket(SocketId(0)).is_degraded());
    }

    #[test]
    fn transitions_come_back_in_order() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                start: 0.5,
                end: 1.5,
                kind: FaultKind::QueueStall {
                    socket: SocketId(0),
                },
            },
            FaultEvent {
                start: 1.0,
                end: 2.0,
                kind: FaultKind::UpiDegrade { factor: 0.5 },
            },
        ]);
        assert_eq!(plan.next_transition_after(0.0), Some(0.5));
        assert_eq!(plan.next_transition_after(0.5), Some(1.0));
        assert_eq!(plan.next_transition_after(1.0), Some(1.5));
        assert_eq!(plan.next_transition_after(1.5), Some(2.0));
        assert_eq!(plan.next_transition_after(2.0), None);
    }

    #[test]
    fn power_losses_report_in_half_open_windows() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                start: 0.3,
                end: 0.3,
                kind: FaultKind::PowerLoss {
                    socket: SocketId(1),
                },
            },
            FaultEvent {
                start: 0.7,
                end: 0.7,
                kind: FaultKind::PowerLoss {
                    socket: SocketId(0),
                },
            },
        ]);
        assert_eq!(
            plan.power_losses_in(0.0, 0.5),
            vec![(0.3, SocketId(1))],
            "only the first loss falls in (0, 0.5]"
        );
        assert_eq!(plan.power_losses_in(0.3, 1.0), vec![(0.7, SocketId(0))]);
        assert!(plan.power_losses_in(0.7, 1.0).is_empty());
        // Power losses never alter the rate state.
        assert!(!plan.state_at(&machine(), 0.3).is_degraded());
    }

    #[test]
    fn victim_config_concentrates_socket_faults() {
        let cfg = FaultScheduleConfig {
            victim: Some(SocketId(0)),
            ..FaultScheduleConfig::over(2.0)
        };
        let plan = FaultPlan::generate(7, &cfg);
        for event in plan.events() {
            if let Some(socket) = event.kind.socket() {
                assert_eq!(socket, SocketId(0));
            }
        }
    }

    #[test]
    fn media_errors_are_opt_in_and_deterministic() {
        let horizon = 2.0;
        // Default config draws zero media events, so plans generated before
        // the fault kind existed keep their exact timelines.
        let base = FaultPlan::generate(42, &FaultScheduleConfig::over(horizon));
        assert!(base.media_errors_in(0.0, horizon).is_empty());

        let cfg = FaultScheduleConfig::with_media_errors(horizon, 5);
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a, b, "same seed, same poison timeline");
        assert_eq!(a.media_errors_in(0.0, horizon).len(), 5);

        // Media draws are appended after every pre-existing draw, so the
        // non-media prefix of the event stream is unchanged by opting in.
        let strip = |plan: &FaultPlan| {
            plan.events()
                .iter()
                .filter(|e| !e.is_media_error())
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a), strip(&base));
    }

    #[test]
    fn media_hits_are_aligned_instantaneous_and_rate_neutral() {
        let cfg = FaultScheduleConfig::with_media_errors(1.0, 8);
        let plan = FaultPlan::generate(7, &cfg);
        let m = machine();
        // Media events never alter the rate state: stripping them from the
        // plan leaves state_at unchanged at every hit instant.
        let stripped = FaultPlan::from_events(
            plan.events()
                .iter()
                .filter(|e| !e.is_media_error())
                .copied()
                .collect(),
        );
        for hit in plan.media_errors_in(0.0, 1.0) {
            assert_eq!(hit.offset % XPLINE_BYTES, 0, "XPLine aligned");
            assert!(hit.lines >= 1 && u64::from(hit.lines) <= cfg.media_lines_max.into());
            assert!(hit.offset < cfg.media_span);
            assert_eq!(hit.len(), u64::from(hit.lines) * XPLINE_BYTES);
            assert_eq!(plan.state_at(&m, hit.at), stripped.state_at(&m, hit.at));
        }
        // Half-open window semantics match power losses.
        let all = plan.media_errors_in(0.0, 1.0);
        let first = all[0];
        assert!(plan.media_errors_in(first.at, 1.0).len() < all.len());
        for pair in all.windows(2) {
            assert!(pair[0].at <= pair[1].at, "time ordered");
        }
    }

    #[test]
    fn media_error_event_is_never_rate_active() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 0.5,
            end: 0.5,
            kind: FaultKind::MediaError {
                socket: SocketId(1),
                offset: 4096,
                lines: 2,
            },
        }]);
        assert!(!plan.state_at(&machine(), 0.5).is_degraded());
        assert_eq!(
            plan.media_errors_in(0.0, 1.0),
            vec![MediaHit {
                at: 0.5,
                socket: SocketId(1),
                offset: 4096,
                lines: 2,
            }]
        );
        assert!(plan.media_errors_in(0.5, 1.0).is_empty(), "half-open");
        assert!(plan.power_losses_in(0.0, 1.0).is_empty());
    }

    #[test]
    fn fail_slow_scales_both_sockets_both_directions() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            start: 0.2,
            end: 0.8,
            kind: FaultKind::FailSlow { factor: 0.1 },
        }]);
        let m = machine();
        assert!(!plan.state_at(&m, 0.1).is_degraded(), "before the window");
        let during = plan.state_at(&m, 0.5);
        for socket in [SocketId(0), SocketId(1)] {
            let s = during.socket(socket);
            assert!((s.read_scale - 0.1).abs() < 1e-12, "reads slow 10x");
            assert!((s.write_scale - 0.1).abs() < 1e-12, "writes slow 10x");
        }
        assert!((during.service_scale() - 0.1).abs() < 1e-12);
        assert!((during.upi_scale - 1.0).abs() < 1e-12, "link untouched");
        // The machine is degraded but *alive*: never anywhere near the
        // blackout collapse, which is what makes the failure gray.
        assert!(during.service_scale() > 0.05);
        assert!(!plan.state_at(&m, 0.8).is_degraded(), "window is half-open");
        assert_eq!(FaultKind::FailSlow { factor: 0.1 }.socket(), None);
    }

    #[test]
    fn fail_slow_composes_with_socket_faults() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                start: 0.0,
                end: 1.0,
                kind: FaultKind::FailSlow { factor: 0.5 },
            },
            FaultEvent {
                start: 0.0,
                end: 1.0,
                kind: FaultKind::WriteThrottle {
                    socket: SocketId(0),
                    factor: 0.5,
                },
            },
        ]);
        let state = plan.state_at(&machine(), 0.5);
        let s0 = state.socket(SocketId(0));
        assert!((s0.write_scale - 0.25).abs() < 1e-12, "factors multiply");
        assert!((s0.read_scale - 0.5).abs() < 1e-12);
        assert!((state.service_scale() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fail_slows_are_opt_in_and_deterministic() {
        let horizon = 2.0;
        // Default config draws zero fail-slow windows, so plans generated
        // before the kind existed keep their exact timelines.
        let base = FaultPlan::generate(42, &FaultScheduleConfig::over(horizon));
        assert!(!base
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::FailSlow { .. })));

        let cfg = FaultScheduleConfig::with_fail_slows(horizon, 3);
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a, b, "same seed, same gray timeline");
        let slows: Vec<_> = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::FailSlow { .. }))
            .collect();
        assert_eq!(slows.len(), 3);
        for e in &slows {
            assert!(e.end > e.start, "fail-slow is sustained, never a point");
            if let FaultKind::FailSlow { factor } = e.kind {
                assert!((0.05..0.25).contains(&factor));
            }
        }
        // Fail-slow draws are appended after every pre-existing draw, so
        // the rest of the event stream is unchanged by opting in.
        let strip = |plan: &FaultPlan| {
            plan.events()
                .iter()
                .filter(|e| !matches!(e.kind, FaultKind::FailSlow { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a), strip(&base));
    }

    #[test]
    fn generated_events_respect_the_horizon() {
        let cfg = FaultScheduleConfig::over(3.0);
        let plan = FaultPlan::generate(99, &cfg);
        for event in plan.events() {
            assert!(event.start >= 0.0 && event.start <= 3.0);
            assert!(event.end >= event.start && event.end <= 3.0);
        }
        // Sorted by start.
        for pair in plan.events().windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }
}

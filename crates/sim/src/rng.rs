//! The workspace's one seeded-PRNG helper: the splitmix64 finalizer.
//!
//! Every subsystem that needs deterministic sub-seeding or a cheap
//! uniform stream — arrival processes, fleet fault plans, Zipf access
//! traces, shard routing, retry jitter — uses the same mixing function
//! so a single experiment seed fans out into mutually independent but
//! individually reproducible streams. Until this module existed the
//! finalizer was copy-pasted per crate; the copies had already started
//! to drift in style (if not yet in bits). This is now the only
//! implementation; the old call sites re-export it.
//!
//! The constants are Steele et al.'s SplitMix64 (JDK 8
//! `SplittableRandom`). They must never change: shard placement
//! (`pmem-cluster`), per-machine fault seeds (`pmem-sim::fleet`) and
//! per-tenant arrival sub-seeds (`pmem-serve`) all persist decisions
//! derived from these exact bits, and tests pin the resulting layouts.

/// splitmix64 — one round of the SplitMix64 output mix over `x`.
///
/// Uniform, stateless, invertible; equally usable as a hash finalizer
/// (key → shard), a sub-seed deriver (`seed ^ splitmix64(id)`), or the
/// transition function of a tiny PRNG (feed the output back in).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A caller-owned splitmix64 stream: the two-line idiom
/// (`state = splitmix64(state); use state`) with a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`. Identical seeds replay identically.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Next uniform f64 in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_outputs_never_drift() {
        // Shard layouts, fleet seeds and arrival sub-seeds are derived
        // from these exact bits; pin the first few outputs.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(splitmix64(0xdead_beef), 0x4adf_b90f_68c9_eb9b);
    }

    #[test]
    fn stream_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");

        let mut r = SplitMix64::new(42);
        let mean: f64 = (0..4096).map(|_| r.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean, got {mean}");
        let mut s = SplitMix64::new(42);
        assert!((0..64).all(|_| (0.0..1.0).contains(&s.next_f64())));
    }
}

//! Random access bandwidth (paper §5.2, Figures 12–13).
//!
//! Random reads lose prefetching and random writes lose write-combining, so
//! both top out at ~2/3 of their sequential peaks for large accesses.
//! Sub-256 B accesses additionally pay Optane's XPLine read/write
//! amplification. On DRAM the dominant effect is the *region size*: a 2 GB
//! allocation lives on one NUMA node and can only use half the channels.

use crate::bandwidth::Bandwidth;
use crate::params::{DeviceClass, SystemParams};
use crate::sched::ThreadLayout;
use crate::workload::WorkloadSpec;

use super::thread_demand;

/// Random read bandwidth.
pub(crate) fn read(
    params: &SystemParams,
    spec: &WorkloadSpec,
    region_bytes: u64,
    layout: &ThreadLayout,
) -> Bandwidth {
    let a = spec.access_size;
    match spec.device {
        DeviceClass::Pmem => {
            let seq_peak = params
                .optane
                .media_read_per_dimm
                .scale(params.machine.channels_per_socket() as f64);
            // PMEM is interleaved at 4 KB across all channels regardless of
            // region size (§5.2), so only the access size matters.
            let cap = seq_peak.scale(pmem_read_size_frac(params, a));
            // Hyperthreading *helps* random reads (more outstanding misses
            // hide the latency), unlike sequential reads.
            let per_thread = params
                .optane
                .per_thread_seq_read
                .scale(0.4 * (a as f64 / 4096.0).powf(0.3).clamp(0.15, 1.0));
            let demand = thread_demand(
                per_thread,
                spec.threads,
                params.machine.cores_per_socket as u32,
                0.7,
            );
            demand.min(cap).scale(layout.sched_efficiency)
        }
        DeviceClass::Dram => {
            let channel_frac = dram_channel_fraction(params, region_bytes);
            let spread = region_bytes > params.dram.node_spread_threshold;
            let large_region_frac = if spread {
                params.dram.random_large_region_frac
            } else {
                1.0
            };
            let cap = params
                .dram
                .socket_seq_read
                .scale(channel_frac * large_region_frac * dram_size_frac(a));
            let per_thread = params.dram.per_thread_seq_read.scale(0.5);
            let demand = thread_demand(
                per_thread,
                spec.threads,
                params.machine.cores_per_socket as u32,
                0.7,
            );
            demand.min(cap).scale(layout.sched_efficiency)
        }
        DeviceClass::Ssd => {
            let cap = params
                .ssd
                .rand_read_4k
                .scale((a as f64 / 4096.0).clamp(0.1, 1.28));
            Bandwidth::from_gib_s(0.25 * spec.threads as f64)
                .min(cap)
                .min(params.ssd.seq_read)
        }
    }
}

/// Random write bandwidth.
pub(crate) fn write(
    params: &SystemParams,
    spec: &WorkloadSpec,
    region_bytes: u64,
    layout: &ThreadLayout,
) -> Bandwidth {
    let a = spec.access_size;
    match spec.device {
        DeviceClass::Pmem => {
            let seq_peak = params
                .optane
                .media_write_per_dimm
                .scale(params.machine.channels_per_socket() as f64);
            let cap = seq_peak.scale(pmem_write_size_frac(params, a));
            // Same thread behaviour as sequential writes: 4–6 threads peak,
            // more threads thrash the write-combining buffer.
            let ramp = (spec.threads as f64 / 4.0).min(1.0);
            let over = spec.threads.saturating_sub(6) as f64;
            let decay = 1.0 / (1.0 + 0.05 * over);
            cap.scale(ramp * decay * layout.sched_efficiency)
        }
        DeviceClass::Dram => {
            let channel_frac = dram_channel_fraction(params, region_bytes);
            // "the access size has little impact on the DRAM bandwidth and
            // more threads achieve higher bandwidths".
            let size = 0.8 + 0.2 * (a as f64 / 4096.0).min(1.0);
            let cap = params.dram.socket_seq_write.scale(channel_frac * size);
            let demand = thread_demand(
                params.dram.per_thread_seq_write.scale(0.5),
                spec.threads,
                params.machine.cores_per_socket as u32,
                0.7,
            );
            demand.min(cap).scale(layout.sched_efficiency)
        }
        DeviceClass::Ssd => Bandwidth::from_gib_s(0.2 * spec.threads as f64)
            .min(params.ssd.seq_write)
            .scale((a as f64 / 4096.0).clamp(0.1, 1.0)),
    }
}

/// PMEM random-read fraction of the sequential peak, by access size.
fn pmem_read_size_frac(params: &SystemParams, a: u64) -> f64 {
    let xp = params.optane.xpline_bytes;
    if a >= 4096 {
        params.optane.random_read_large_frac
    } else if a >= xp {
        // Interpolate 0.5 → 2/3 between 256 B and 4 KB (log scale).
        let t = ((a as f64 / xp as f64).log2() / 4.0).clamp(0.0, 1.0);
        params.optane.random_read_small_frac
            + t * (params.optane.random_read_large_frac - params.optane.random_read_small_frac)
    } else {
        // Sub-XPLine reads are amplified: a 64 B read still moves 256 B of
        // media.
        (a as f64 / xp as f64) * 1.1 * params.optane.random_read_small_frac
    }
}

/// PMEM random-write fraction of the sequential peak, by access size.
fn pmem_write_size_frac(params: &SystemParams, a: u64) -> f64 {
    let xp = params.optane.xpline_bytes;
    if a >= 4096 {
        params.optane.random_write_large_frac
    } else if a >= xp {
        let t = ((a as f64 / xp as f64).log2() / 4.0).clamp(0.0, 1.0);
        0.45 + t * (params.optane.random_write_large_frac - 0.45)
    } else {
        (a as f64 / xp as f64) * 0.45
    }
}

/// DRAM random access below 4 KB does not reach the channel peak (§5.2:
/// DRAM "does not reach its peak bandwidth until 4 KB").
fn dram_size_frac(a: u64) -> f64 {
    if a >= 4096 {
        1.0
    } else if a >= 256 {
        let t = ((a as f64 / 256.0).log2() / 4.0).clamp(0.0, 1.0);
        0.5 + 0.5 * t
    } else {
        (a as f64 / 256.0) * 0.5
    }
}

/// Fraction of the socket's channels serving a DRAM region: small regions
/// are allocated on a single NUMA node (3 of 6 channels).
fn dram_channel_fraction(params: &SystemParams, region_bytes: u64) -> f64 {
    if region_bytes <= params.dram.node_spread_threshold {
        params.dram.small_region_channel_frac
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{BandwidthModel, CoherenceView};
    use crate::workload::{AccessKind, WorkloadSpec};

    const REGION_2G: u64 = 2 << 30;
    const REGION_90G: u64 = 90 << 30;

    fn bw(spec: &WorkloadSpec) -> f64 {
        BandwidthModel::paper_default()
            .bandwidth(spec, CoherenceView::WARM)
            .gib_s()
    }

    fn rr(device: DeviceClass, a: u64, t: u32, region: u64) -> f64 {
        bw(&WorkloadSpec::random(
            device,
            AccessKind::Read,
            a,
            t,
            region,
        ))
    }

    fn rw(device: DeviceClass, a: u64, t: u32, region: u64) -> f64 {
        bw(&WorkloadSpec::random(
            device,
            AccessKind::Write,
            a,
            t,
            region,
        ))
    }

    // ---- Figure 12: random reads ----

    #[test]
    fn pmem_random_read_large_is_two_thirds_of_sequential() {
        let seq = bw(&WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 36));
        let rand = rr(DeviceClass::Pmem, 4096, 36, REGION_2G);
        let ratio = rand / seq;
        assert!((0.58..0.75).contains(&ratio), "random/seq {ratio}");
    }

    #[test]
    fn pmem_random_read_256b_loses_about_half_of_the_random_maximum() {
        // §5.2 gives two anchors for small random reads (≈50 % of sequential
        // and a 4× DRAM advantage at 512 B); they reconcile against the
        // *random* maximum — see `OptaneParams::random_read_small_frac`.
        let rand_max = rr(DeviceClass::Pmem, 4096, 36, REGION_2G);
        let rand = rr(DeviceClass::Pmem, 256, 36, REGION_2G);
        let ratio = rand / rand_max;
        assert!(
            (0.45..0.70).contains(&ratio),
            "256B/4K random ratio {ratio}"
        );
    }

    #[test]
    fn hyperthreading_improves_pmem_random_reads() {
        // §5.2: "hyperthreading improves the PMEM bandwidth, unlike
        // sequential reads".
        let b18 = rr(DeviceClass::Pmem, 256, 18, REGION_2G);
        let b36 = rr(DeviceClass::Pmem, 256, 36, REGION_2G);
        assert!(b36 > b18, "36T ({b36}) should beat 18T ({b18})");
    }

    #[test]
    fn pmem_random_read_sub_xpline_pays_amplification() {
        let b64 = rr(DeviceClass::Pmem, 64, 36, REGION_2G);
        let b256 = rr(DeviceClass::Pmem, 256, 36, REGION_2G);
        assert!(b64 < 0.5 * b256, "64 B ({b64}) far below 256 B ({b256})");
    }

    #[test]
    fn dram_small_region_uses_half_the_channels() {
        // 2 GB region on one NUMA node: ~50 % of sequential peak at ≥4 KB.
        let b = rr(DeviceClass::Dram, 4096, 36, REGION_2G);
        assert!((45.0..55.0).contains(&b), "DRAM 2G random {b}");
    }

    #[test]
    fn dram_large_region_nearly_reaches_sequential() {
        // §5.2: "This scaling reaches 90 % of DRAM's sequential performance".
        let b = rr(DeviceClass::Dram, 4096, 36, REGION_90G);
        assert!((82.0..95.0).contains(&b), "DRAM 90G random {b}");
    }

    #[test]
    fn dram_is_about_4x_pmem_at_512b_on_large_regions() {
        let d = rr(DeviceClass::Dram, 512, 36, REGION_90G);
        let p = rr(DeviceClass::Pmem, 512, 36, REGION_90G);
        let ratio = d / p;
        assert!((2.8..5.5).contains(&ratio), "DRAM/PMEM at 512 B {ratio}");
    }

    #[test]
    fn region_size_does_not_matter_for_pmem() {
        let small = rr(DeviceClass::Pmem, 4096, 36, REGION_2G);
        let large = rr(DeviceClass::Pmem, 4096, 36, REGION_90G);
        assert!((small - large).abs() < 1e-9);
    }

    // ---- Figure 13: random writes ----

    #[test]
    fn pmem_random_write_peaks_at_two_thirds_of_sequential_peak() {
        let peak = [1u32, 2, 4, 6, 8, 18, 24, 36]
            .iter()
            .map(|t| rw(DeviceClass::Pmem, 4096, *t, REGION_2G))
            .fold(0.0, f64::max);
        assert!((7.5..9.5).contains(&peak), "random write peak {peak}");
    }

    #[test]
    fn pmem_random_write_prefers_4_to_6_threads() {
        let b4 = rw(DeviceClass::Pmem, 4096, 4, REGION_2G);
        let b6 = rw(DeviceClass::Pmem, 4096, 6, REGION_2G);
        let b36 = rw(DeviceClass::Pmem, 4096, 36, REGION_2G);
        assert!(b4.max(b6) > b36, "4–6T ({b4}/{b6}) beat 36T ({b36})");
    }

    #[test]
    fn larger_access_improves_pmem_random_writes() {
        let b256 = rw(DeviceClass::Pmem, 256, 6, REGION_2G);
        let b4k = rw(DeviceClass::Pmem, 4096, 6, REGION_2G);
        assert!(b4k > b256, "4 KB ({b4k}) > 256 B ({b256})");
    }

    #[test]
    fn dram_random_writes_scale_with_threads() {
        let b4 = rw(DeviceClass::Dram, 4096, 4, REGION_2G);
        let b36 = rw(DeviceClass::Dram, 4096, 36, REGION_2G);
        assert!(b36 > b4, "DRAM random writes scale: {b4} -> {b36}");
    }

    #[test]
    fn dram_random_write_size_has_little_impact() {
        let b256 = rw(DeviceClass::Dram, 256, 18, REGION_2G);
        let b4k = rw(DeviceClass::Dram, 4096, 18, REGION_2G);
        assert!(b4k / b256 < 1.4, "little size impact: {b256} vs {b4k}");
    }

    #[test]
    fn ssd_random_read_is_bounded_by_device() {
        let b = rr(DeviceClass::Ssd, 4096, 18, REGION_2G);
        assert!(b <= 3.2 && b > 1.0, "SSD random read {b}");
    }
}

//! Sequential read bandwidth (paper §3, Figures 3–6).

use crate::bandwidth::Bandwidth;
use crate::coherence::MappingState;
use crate::params::{DeviceClass, SystemParams};
use crate::sched::ThreadLayout;
use crate::workload::{Pattern, WorkloadSpec};

use super::layout_demand;

/// Sequential read bandwidth for one socket's worth of threads reading one
/// socket's memory.
pub(crate) fn sequential(
    params: &SystemParams,
    spec: &WorkloadSpec,
    layout: &ThreadLayout,
    far: bool,
    mapping: MappingState,
) -> Bandwidth {
    match spec.device {
        DeviceClass::Ssd => ssd(params, spec.threads),
        DeviceClass::Pmem | DeviceClass::Dram => {
            if layout.migrating {
                return unpinned(params, spec);
            }
            let near = near_socket(params, spec, layout);
            if !far {
                near
            } else {
                far_socket(params, spec, near, mapping)
            }
        }
    }
}

/// SSD sequential reads ramp with queue depth and cap at the device's rated
/// sequential bandwidth.
fn ssd(params: &SystemParams, threads: u32) -> Bandwidth {
    Bandwidth::from_gib_s(0.9 * threads as f64).min(params.ssd.seq_read)
}

/// Near-socket sequential reads: the composition of per-thread demand, DIMM
/// coverage, prefetcher behaviour and hyperthread effects.
fn near_socket(params: &SystemParams, spec: &WorkloadSpec, layout: &ThreadLayout) -> Bandwidth {
    let (per_thread, socket_peak) = match spec.device {
        DeviceClass::Pmem => (
            params.optane.per_thread_seq_read,
            params
                .optane
                .media_read_per_dimm
                .scale(params.machine.channels_per_socket() as f64),
        ),
        DeviceClass::Dram => (params.dram.per_thread_seq_read, params.dram.socket_seq_read),
        DeviceClass::Ssd => unreachable!("handled by caller"),
    };

    // Hyperthread siblings share execution resources: they add little read
    // demand and, with the prefetcher polluting the shared L2, they lower
    // the achievable ceiling (§3.2).
    let ht_weight = 0.35;
    let demand = layout_demand(params, per_thread, spec.threads, layout, ht_weight);

    let coverage_frac = match spec.device {
        // DRAM channel parallelism is reached with tiny bursts; no coverage
        // penalty for sequential access.
        DeviceClass::Dram => 1.0,
        _ => coverage_fraction(params, spec),
    };

    let prefetch = prefetch_efficiency(params, spec);
    let ht_eff = hyperthread_efficiency(params, spec, layout);

    demand
        .min(socket_peak.scale(coverage_frac * prefetch))
        .scale(ht_eff * layout.sched_efficiency)
}

/// Fraction of the socket's DIMM parallelism the in-flight read window
/// keeps busy (§3.1).
fn coverage_fraction(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    let il = params.machine.interleave_map();
    let dimms = il.dimms as f64;
    match spec.pattern {
        Pattern::SequentialGrouped => {
            // One global stream: the active region is the threads' combined
            // in-flight window sliding over the interleave map. A pipeline
            // factor of ~4 accounts for requests queued ahead in the RPQs.
            let window = spec.threads as u64 * spec.access_size * 4;
            let covered = (window as f64 / il.stripe as f64).clamp(1.0, dimms);
            // 4 KB-aligned accesses distribute threads perfectly onto DIMM
            // boundaries; unaligned sizes straddle stripes and lose a bit.
            let align = if spec.access_size.is_multiple_of(il.stripe) {
                1.0
            } else {
                0.85
            };
            (covered / dimms) * align
        }
        Pattern::SequentialIndividual => {
            // Independent streams at random stripe phases: balls-into-bins
            // coverage with a per-thread window that is independent of the
            // per-call access size — which is exactly why Figure 3b is flat.
            let window = params.optane.read_window_bytes * 2;
            il.expected_coverage(spec.threads, window.max(spec.access_size)) / dimms
        }
        Pattern::Random { .. } => 1.0, // random handled elsewhere
    }
}

/// L2 prefetcher model (§3.1–3.2): enabled it boosts streams but collapses
/// on 1–2 KB grouped strides; disabled, small thread counts lose out.
fn prefetch_efficiency(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    let grouped = matches!(spec.pattern, Pattern::SequentialGrouped);
    if params.cpu.l2_prefetcher {
        if grouped && (1024..4096).contains(&spec.access_size) {
            params.cpu.prefetch_pathology_eff
        } else {
            1.0
        }
    } else {
        // No pathological dip without the prefetcher — the curve is flat
        // above 256 B (§3.1 "a more constant bandwidth").
        1.0
    }
}

/// Hyperthreading interacts with the prefetcher (§3.2): with prefetching,
/// sibling threads pollute the shared L2; without it, 36 threads reach the
/// peak but low thread counts lose the prefetch benefit.
fn hyperthread_efficiency(
    params: &SystemParams,
    spec: &WorkloadSpec,
    layout: &ThreadLayout,
) -> f64 {
    let using_ht = layout.hyperthreads > 0;
    if params.cpu.l2_prefetcher {
        if !using_ht {
            return 1.0;
        }
        let full_ht = spec.threads >= params.machine.logical_cores_per_socket() as u32;
        let aligned = spec
            .access_size
            .is_multiple_of(params.machine.interleave_bytes);
        let individual = matches!(spec.pattern, Pattern::SequentialIndividual);
        // "36 threads achieve peak performance for certain access sizes":
        // fully-loaded siblings run in lockstep on aligned or independent
        // streams; partial hyperthreading (24, 32) always pays.
        if full_ht && (aligned || individual) {
            1.0
        } else {
            params.cpu.hyperthread_read_eff
        }
    } else {
        if spec.threads < 8 {
            params.cpu.no_prefetch_low_thread_eff
        } else {
            1.0 // >18 threads benefit from the quiet L2
        }
    }
}

/// Far (cross-socket) reads: warm runs are UPI-payload-bound; the first
/// multi-threaded touch pays coherence remapping (§3.4).
fn far_socket(
    params: &SystemParams,
    spec: &WorkloadSpec,
    near_equivalent: Bandwidth,
    mapping: MappingState,
) -> Bandwidth {
    // Warm far reads are UPI-payload-bound on both devices: the paper's
    // ~33 GB/s is the ~30 GB/s payload capacity plus request pipelining.
    // Sweeping the metadata fraction therefore moves this cap directly.
    let warm_cap = params.upi.payload_per_direction().scale(1.1);
    match mapping {
        MappingState::Warm => near_equivalent.min(warm_cap),
        MappingState::Cold => {
            if spec.device == DeviceClass::Dram {
                // DRAM shows the NUMA effects "albeit slightly weaker": a
                // mild first-touch discount instead of a collapse.
                return near_equivalent.min(warm_cap).scale(0.85);
            }
            cold_far_curve(params, spec.threads)
        }
    }
}

/// The cold far-read curve of Figure 5: peaks at ~8 GB/s around 4 threads
/// and *decreases* with more threads as remapping contention grows.
fn cold_far_curve(params: &SystemParams, threads: u32) -> Bandwidth {
    let peak = params
        .coherence
        .warm_far_read_cap
        .scale(params.coherence.cold_far_read_frac / 0.825); // ≈8 GB/s
    let ramp = Bandwidth::from_gib_s(2.6 * threads as f64).min(peak);
    let over = threads.saturating_sub(params.coherence.cold_peak_threads) as f64;
    ramp.scale(1.0 / (1.0 + 0.02 * over))
}

/// Unpinned threads migrate across sockets and churn the coherence mapping:
/// bandwidth behaves like a perpetually cold far access, peaking ~9 GB/s
/// (Figure 4 "None").
fn unpinned(params: &SystemParams, spec: &WorkloadSpec) -> Bandwidth {
    let dram = spec.device == DeviceClass::Dram;
    let peak = if dram { 40.0 } else { 9.0 };
    let per_thread = if dram { 6.0 } else { 2.2 };
    let ramp =
        Bandwidth::from_gib_s(per_thread * spec.threads as f64).min(Bandwidth::from_gib_s(peak));
    let over = spec.threads.saturating_sub(8) as f64;
    let churn = 1.0 / (1.0 + 0.015 * over);
    let _ = params;
    ramp.scale(churn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{BandwidthModel, CoherenceView};
    use crate::params::DeviceClass;
    use crate::sched::Pinning;
    use crate::workload::{Pattern, Placement, WorkloadSpec};

    fn bw(spec: &WorkloadSpec) -> f64 {
        BandwidthModel::paper_default()
            .bandwidth(spec, CoherenceView::WARM)
            .gib_s()
    }

    fn bw_cold(spec: &WorkloadSpec) -> f64 {
        BandwidthModel::paper_default()
            .bandwidth(spec, CoherenceView::COLD)
            .gib_s()
    }

    fn grouped(access: u64, threads: u32) -> WorkloadSpec {
        WorkloadSpec::seq_read(DeviceClass::Pmem, access, threads)
            .pattern(Pattern::SequentialGrouped)
    }

    fn individual(access: u64, threads: u32) -> WorkloadSpec {
        WorkloadSpec::seq_read(DeviceClass::Pmem, access, threads)
    }

    // ---- Figure 3a: grouped access ----

    #[test]
    fn grouped_64b_36_threads_is_about_12() {
        let b = bw(&grouped(64, 36));
        assert!((9.0..15.0).contains(&b), "grouped 64B/36T: {b}");
    }

    #[test]
    fn grouped_4k_peaks_at_the_global_maximum() {
        let b4k = bw(&grouped(4096, 18));
        assert!((37.0..43.0).contains(&b4k), "grouped 4K/18T: {b4k}");
        // 4 KB is a global maximum across access sizes (§3.1).
        for access in [64, 256, 1024, 2048, 65536] {
            assert!(
                bw(&grouped(access, 18)) <= b4k + 1e-9,
                "access {access} should not beat 4 KB"
            );
        }
    }

    #[test]
    fn grouped_has_the_1k_2k_prefetcher_dip() {
        let b256 = bw(&grouped(256, 36));
        let b1k = bw(&grouped(1024, 36));
        let b2k = bw(&grouped(2048, 36));
        let b4k = bw(&grouped(4096, 36));
        assert!(b1k < b256, "1 KB ({b1k}) should dip below 256 B ({b256})");
        assert!(b2k < b4k * 0.7, "2 KB ({b2k}) well below 4 KB ({b4k})");
    }

    #[test]
    fn disabling_the_prefetcher_removes_the_dip() {
        let mut params = SystemParams::paper_default();
        params.cpu.l2_prefetcher = false;
        let m = BandwidthModel::new(params);
        let b1k = m.bandwidth(&grouped(1024, 18), CoherenceView::WARM).gib_s();
        let b256 = m.bandwidth(&grouped(256, 18), CoherenceView::WARM).gib_s();
        assert!(
            b1k >= b256 * 0.95,
            "without prefetcher 1 KB ({b1k}) ≈ 256 B ({b256})"
        );
        // But low thread counts get worse (§3.2).
        let low_off = m
            .bandwidth(&individual(4096, 4), CoherenceView::WARM)
            .gib_s();
        let low_on = bw(&individual(4096, 4));
        assert!(low_off < low_on);
    }

    // ---- Figure 3b: individual access ----

    #[test]
    fn individual_is_flat_across_access_sizes() {
        // "The maximum individual spans only 3 GB" across sizes at a fixed
        // high thread count.
        let values: Vec<f64> = [64u64, 256, 1024, 4096, 16384, 65536]
            .iter()
            .map(|a| bw(&individual(*a, 18)))
            .collect();
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 4.0, "individual spread {min}..{max}");
        assert!(max > 37.0);
    }

    #[test]
    fn eight_threads_reach_about_85_percent_of_peak() {
        let b8 = bw(&individual(4096, 8));
        let b18 = bw(&individual(4096, 18));
        let ratio = b8 / b18;
        assert!((0.75..0.95).contains(&ratio), "8T/18T ratio {ratio}");
    }

    #[test]
    fn reads_scale_monotonically_up_to_physical_cores() {
        let mut last = 0.0;
        for t in [1, 4, 8, 16, 18] {
            let b = bw(&individual(4096, t));
            assert!(b >= last, "thread {t}: {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn partial_hyperthreading_does_not_beat_18_threads() {
        let b18 = bw(&individual(4096, 18));
        let b24 = bw(&individual(4096, 24));
        assert!(b24 <= b18 + 1e-9, "24T ({b24}) must not beat 18T ({b18})");
    }

    #[test]
    fn single_thread_lands_in_yang_et_al_range() {
        let b = bw(&individual(4096, 1));
        assert!((2.0..6.5).contains(&b), "1 thread {b}");
    }

    // ---- Figure 4: pinning ----

    #[test]
    fn pinning_ordering_none_lt_numa_le_cores() {
        let cores = bw(&individual(4096, 24).pinning(Pinning::Cores));
        let numa = bw(&individual(4096, 24).pinning(Pinning::NumaRegion));
        let none = bw(&individual(4096, 24).pinning(Pinning::None));
        assert!(
            none < numa * 0.5,
            "None ({none}) drastically below NUMA ({numa})"
        );
        assert!(numa <= cores + 1e-9, "NUMA ({numa}) ≤ Cores ({cores})");
    }

    #[test]
    fn unpinned_reads_peak_near_9() {
        let peak = [1u32, 4, 8, 18, 24, 36]
            .iter()
            .map(|t| bw(&individual(4096, *t).pinning(Pinning::None)))
            .fold(0.0, f64::max);
        assert!((7.0..11.0).contains(&peak), "None peak {peak}");
    }

    #[test]
    fn equal_bandwidth_for_numa_and_cores_below_18_threads() {
        // §3.3: "exactly the same bandwidth" without oversubscription.
        let numa = bw(&individual(4096, 18).pinning(Pinning::NumaRegion));
        let cores = bw(&individual(4096, 18).pinning(Pinning::Cores));
        assert!((numa - cores).abs() < 1e-9);
    }

    // ---- Figure 5: NUMA effects ----

    #[test]
    fn cold_far_read_collapses_to_about_8() {
        let peak = [1u32, 4, 8, 18, 24, 36]
            .iter()
            .map(|t| bw_cold(&individual(4096, *t).placement(Placement::FAR)))
            .fold(0.0, f64::max);
        assert!((6.5..10.0).contains(&peak), "cold far peak {peak}");
    }

    #[test]
    fn cold_far_read_peaks_at_4_threads_not_18() {
        let b4 = bw_cold(&individual(4096, 4).placement(Placement::FAR));
        let b18 = bw_cold(&individual(4096, 18).placement(Placement::FAR));
        let b36 = bw_cold(&individual(4096, 36).placement(Placement::FAR));
        assert!(b4 >= b18, "cold far: 4T ({b4}) ≥ 18T ({b18})");
        assert!(b18 > b36, "cold far declines with threads");
    }

    #[test]
    fn warm_far_read_is_about_33() {
        let b = bw(&individual(4096, 18).placement(Placement::FAR));
        assert!((30.0..35.0).contains(&b), "warm far {b}");
    }

    #[test]
    fn near_beats_far_by_factor_5_when_cold() {
        let near = bw(&individual(4096, 18));
        let far = bw_cold(&individual(4096, 18).placement(Placement::FAR));
        let ratio = near / far;
        assert!((3.5..7.0).contains(&ratio), "near/cold-far {ratio}");
    }

    // ---- Figure 6: DRAM ----

    #[test]
    fn dram_near_read_is_about_100() {
        let b = bw(&WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18));
        assert!((92.0..108.0).contains(&b), "DRAM near {b}");
    }

    #[test]
    fn dram_far_read_is_about_33() {
        let b = bw(&WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18).placement(Placement::FAR));
        assert!((30.0..36.0).contains(&b), "DRAM far {b}");
    }

    #[test]
    fn dram_both_near_reaches_185() {
        let b =
            bw(&WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18).placement(Placement::BothNear));
        assert!((180.0..205.0).contains(&b), "DRAM 2-near {b}");
    }

    // ---- SSD ----

    #[test]
    fn ssd_sequential_read_caps_at_rated_bandwidth() {
        let b = bw(&WorkloadSpec::seq_read(DeviceClass::Ssd, 4096, 18));
        assert!((3.0..3.4).contains(&b), "SSD read {b}");
    }
}

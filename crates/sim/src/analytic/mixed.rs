//! Concurrent read/write workloads on the same PMEM DIMMs (paper §5.1,
//! Figure 11).
//!
//! Reads and writes share iMC queues and media. Because a write occupies the
//! media roughly three times as long per byte as a read, capacity is shared
//! in *utilization* units (read GB/s against the 40 GB/s read peak, write
//! GB/s against the 13 GB/s write peak), with a shared efficiency that
//! degrades as contending threads are added. A single write thread already
//! knocks 30-thread reads from ~31 down to ~26 GB/s.

use crate::bandwidth::Bandwidth;
use crate::coherence::MappingState;
use crate::params::{DeviceClass, SystemParams};
use crate::sched;
use crate::workload::{MixedSpec, WorkloadSpec};

use super::{read, write};

/// Result of a mixed-workload evaluation: the two sides' achieved rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedEvaluation {
    /// Aggregate read bandwidth across all reader threads.
    pub read: Bandwidth,
    /// Aggregate write bandwidth across all writer threads.
    pub write: Bandwidth,
}

impl MixedEvaluation {
    /// Combined bandwidth. The paper notes this never exceeds the
    /// non-contended maximum *read* bandwidth for any combination.
    pub fn total(&self) -> Bandwidth {
        self.read + self.write
    }
}

pub(crate) fn evaluate(params: &SystemParams, spec: &MixedSpec) -> MixedEvaluation {
    let read_solo = solo(params, spec, /*write=*/ false);
    let write_solo = solo(params, spec, /*write=*/ true);

    if spec.read_threads == 0 || spec.write_threads == 0 {
        return MixedEvaluation {
            read: read_solo,
            write: write_solo,
        };
    }

    let (read_peak, write_peak) = peaks(params, spec.device);

    // Shared-capacity efficiency: contending threads interrupt the 256 B
    // buffer locality and keep the WPQs occupied.
    let m = &params.mixed;
    let (eta, prefetch_split) = match spec.device {
        DeviceClass::Pmem => (
            (m.base_efficiency
                - m.per_read_thread_penalty * spec.read_threads as f64
                - m.per_write_thread_penalty * spec.write_threads as f64)
                .clamp(m.min_efficiency, 1.0),
            m.second_read_stream_eff,
        ),
        // "The read/write imbalance is considerably smaller on DRAM and
        // therefore this effect is only moderately observable."
        DeviceClass::Dram => (
            (m.base_efficiency
                - 0.5 * m.per_read_thread_penalty * spec.read_threads as f64
                - 0.4 * m.per_write_thread_penalty * spec.write_threads as f64)
                .clamp(m.min_efficiency, 1.0),
            1.0,
        ),
        DeviceClass::Ssd => (0.9, 1.0),
    };

    let read_demand = read_solo.scale(prefetch_split);
    let util = read_demand.bytes_per_sec() / read_peak.bytes_per_sec()
        + write_solo.bytes_per_sec() / write_peak.bytes_per_sec();
    let scale = if util > eta { eta / util } else { 1.0 };

    MixedEvaluation {
        read: read_demand.scale(scale),
        write: write_solo.scale(scale),
    }
}

/// What one side would achieve alone with its own thread count.
fn solo(params: &SystemParams, spec: &MixedSpec, write_side: bool) -> Bandwidth {
    let threads = if write_side {
        spec.write_threads
    } else {
        spec.read_threads
    };
    if threads == 0 {
        return Bandwidth::ZERO;
    }
    let wl = if write_side {
        WorkloadSpec::seq_write(spec.device, spec.access_size, threads)
    } else {
        WorkloadSpec::seq_read(spec.device, spec.access_size, threads)
    }
    .pinning(spec.pinning);
    let layout = sched::layout(
        &params.machine,
        spec.pinning,
        crate::topology::SocketId(0),
        threads,
        params.cpu.numa_region_oversub_eff,
    );
    if write_side {
        write::sequential(
            params,
            &wl,
            &layout,
            /*far=*/ false,
            MappingState::Warm,
        )
    } else {
        read::sequential(
            params,
            &wl,
            &layout,
            /*far=*/ false,
            MappingState::Warm,
        )
    }
}

/// Device read/write utilization denominators.
fn peaks(params: &SystemParams, device: DeviceClass) -> (Bandwidth, Bandwidth) {
    match device {
        DeviceClass::Pmem => (
            params
                .optane
                .media_read_per_dimm
                .scale(params.machine.channels_per_socket() as f64),
            params
                .optane
                .media_write_per_dimm
                .scale(params.machine.channels_per_socket() as f64),
        ),
        DeviceClass::Dram => (params.dram.socket_seq_read, params.dram.socket_seq_write),
        DeviceClass::Ssd => (params.ssd.seq_read, params.ssd.seq_write),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::BandwidthModel;

    fn eval(w: u32, r: u32) -> MixedEvaluation {
        BandwidthModel::paper_default().mixed(&MixedSpec::paper(DeviceClass::Pmem, w, r))
    }

    #[test]
    fn thirty_readers_alone_reach_about_31() {
        let e = eval(0, 30);
        let b = e.read.gib_s();
        assert!((29.0..36.0).contains(&b), "solo 30R {b}");
        assert_eq!(e.write, Bandwidth::ZERO);
    }

    #[test]
    fn one_writer_drops_30_reader_bandwidth_to_about_26() {
        // §5.1: "Adding a single write thread to the 30 read threads already
        // reduces the achieved read bandwidth to ~26 GB/s".
        let solo = eval(0, 30).read.gib_s();
        let with_writer = eval(1, 30).read.gib_s();
        assert!(
            (23.0..28.5).contains(&with_writer),
            "30R+1W read {with_writer}"
        );
        assert!(
            with_writer < solo - 2.0,
            "visible drop: {solo} -> {with_writer}"
        );
    }

    #[test]
    fn six_writers_drop_reads_to_about_45_percent() {
        let solo = eval(0, 30).read.gib_s();
        let contended = eval(6, 30).read.gib_s();
        let frac = contended / solo;
        assert!((0.35..0.55).contains(&frac), "6W read fraction {frac}");
    }

    #[test]
    fn thirty_readers_drop_writes_to_about_40_percent() {
        // §5.1: "when running with 30 read threads the write bandwidth drops
        // to just above ~40 % of the maximum bandwidth".
        let w_max = eval(6, 0).write.gib_s().max(eval(4, 0).write.gib_s());
        let w = eval(4, 30).write.gib_s();
        let frac = w / w_max;
        assert!((0.32..0.55).contains(&frac), "4W/30R write fraction {frac}");
    }

    #[test]
    fn writes_are_initially_resilient() {
        // §5.1: 4 writers + 1 reader ≈ 12 GB/s, "nearly matching the maximum
        // write bandwidth".
        let solo = eval(4, 0).write.gib_s();
        let contended = eval(4, 1).write.gib_s();
        assert!(
            contended > 0.85 * solo,
            "4W+1R write {contended} vs solo {solo}"
        );
    }

    #[test]
    fn combined_bandwidth_never_exceeds_read_only_maximum() {
        let read_max = eval(0, 30).read.gib_s().max(eval(0, 18).read.gib_s());
        for (w, r) in [(1u32, 30u32), (4, 18), (4, 30), (6, 18), (6, 30), (1, 8)] {
            let e = eval(w, r);
            assert!(
                e.total().gib_s() <= read_max + 0.5,
                "{w}W/{r}R total {} exceeds read max {read_max}",
                e.total().gib_s()
            );
        }
    }

    #[test]
    fn more_read_threads_hurt_writes_and_vice_versa() {
        assert!(eval(4, 30).write.gib_s() < eval(4, 8).write.gib_s());
        assert!(eval(6, 18).read.gib_s() < eval(1, 18).read.gib_s());
    }

    #[test]
    fn dram_interference_gap_is_smaller() {
        let pmem_solo = eval(0, 30).read.gib_s();
        let pmem_mixed = eval(1, 30).read.gib_s();
        let pmem_drop = 1.0 - pmem_mixed / pmem_solo;

        let m = BandwidthModel::paper_default();
        let dram_solo = m
            .mixed(&MixedSpec::paper(DeviceClass::Dram, 0, 30))
            .read
            .gib_s();
        let dram_mixed = m
            .mixed(&MixedSpec::paper(DeviceClass::Dram, 1, 30))
            .read
            .gib_s();
        let dram_drop = 1.0 - dram_mixed / dram_solo;

        assert!(
            dram_drop < pmem_drop,
            "DRAM drop {dram_drop} should be below PMEM drop {pmem_drop}"
        );
    }
}

//! The closed-form steady-state bandwidth model.
//!
//! Every curve in the paper's Figures 3–13 is the composition of a small set
//! of mechanisms. This module implements each mechanism as a function of the
//! [`crate::params::SystemParams`] calibration constants and
//! composes them per workload:
//!
//! 1. **Per-thread issue rate** — a core sustains only a bounded number of
//!    outstanding cache-line transfers, so few threads cannot saturate the
//!    DIMMs (reads need ≥16 threads, writes only ~4).
//! 2. **DIMM coverage** — the 4 KB interleave map decides how many of the
//!    six DIMMs the in-flight window of all threads keeps busy. Grouped
//!    small accesses pile onto one DIMM; individual streams cover all six.
//! 3. **CPU prefetcher** — helps sequential reads, collapses at 1–2 KB
//!    grouped strides, and pollutes the shared L2 of hyperthread pairs.
//! 4. **Write-combining buffer** — merges 64 B stores into 256 B XPLines;
//!    too much in-flight write footprint forces partial flushes and write
//!    amplification (the Figure 8 "boomerang").
//! 5. **UPI** — far traffic is capped by ~30 GB/s payload per direction and
//!    pays the coherence-remapping warm-up on first touch.
//! 6. **Mixed interference** — reads and writes share iMC/media capacity in
//!    utilization units with an efficiency that sinks as writers are added.
//!
//! The submodules hold the per-operation composition; this module exposes
//! [`BandwidthModel`].

mod mixed;
mod random;
mod read;
mod write;

pub use mixed::MixedEvaluation;

use crate::bandwidth::Bandwidth;
use crate::coherence::MappingState;
use crate::params::{DeviceClass, SystemParams};
use crate::sched::{self, ThreadLayout};
use crate::topology::SocketId;
use crate::workload::{AccessKind, MixedSpec, Pattern, Placement, WorkloadSpec};

/// Closed-form bandwidth model over a parameter set.
#[derive(Debug, Clone, Default)]
pub struct BandwidthModel {
    params: SystemParams,
}

/// How warm the coherence mapping is for each socket participating in a
/// far access. Produced by the stateful [`Simulation`](crate::Simulation)
/// wrapper; `Warm` everywhere when evaluating statelessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceView {
    /// Mapping state for socket 0's accesses.
    pub socket0: MappingState,
    /// Mapping state for socket 1's accesses.
    pub socket1: MappingState,
}

impl CoherenceView {
    /// Everything warm — steady-state behaviour.
    pub const WARM: CoherenceView = CoherenceView {
        socket0: MappingState::Warm,
        socket1: MappingState::Warm,
    };

    /// Everything cold — first touch from both sockets.
    pub const COLD: CoherenceView = CoherenceView {
        socket0: MappingState::Cold,
        socket1: MappingState::Cold,
    };

    /// State for a given socket.
    pub fn for_socket(&self, s: SocketId) -> MappingState {
        if s.0 == 0 {
            self.socket0
        } else {
            self.socket1
        }
    }
}

impl BandwidthModel {
    /// Model over the given parameters.
    pub fn new(params: SystemParams) -> Self {
        BandwidthModel { params }
    }

    /// Model over the paper-default parameters.
    pub fn paper_default() -> Self {
        Self::new(SystemParams::paper_default())
    }

    /// Access the parameter set.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Steady-state bandwidth of a single-kind workload (read-only or
    /// write-only). `coherence` supplies warm/cold mapping states for far
    /// access; pass [`CoherenceView::WARM`] for steady state.
    pub fn bandwidth(&self, spec: &WorkloadSpec, coherence: CoherenceView) -> Bandwidth {
        // Single-socket machines have no second socket to place on: every
        // placement degenerates to near access.
        if self.params.machine.sockets < 2 && spec.placement != Placement::NEAR {
            let near = WorkloadSpec {
                placement: Placement::NEAR,
                ..spec.clone()
            };
            return self.bandwidth(&near, coherence);
        }
        match spec.placement {
            Placement::Single { cpu, mem } => {
                self.single_socket(spec, cpu, mem, coherence.for_socket(cpu))
            }
            Placement::BothNear => {
                // Linear speedup: both sockets independently hit their near
                // memory; no UPI traffic at all (§3.5 case iii). PMEM scales
                // fully (2×40 ≈ 80 GB/s); DRAM shows a small dual-socket
                // efficiency loss (paper measured 185, not 200 GB/s).
                let s0 = self.single_socket(spec, SocketId(0), SocketId(0), MappingState::Warm);
                let s1 = self.single_socket(spec, SocketId(1), SocketId(1), MappingState::Warm);
                let eff = if spec.device == DeviceClass::Dram {
                    0.925
                } else {
                    1.0
                };
                (s0 + s1).scale(eff)
            }
            Placement::BothFar => self.both_far(spec, coherence),
            Placement::Contended => self.contended(spec, coherence),
        }
    }

    /// Concurrent read/write bandwidth on the same socket and DIMMs
    /// (Figure 11).
    pub fn mixed(&self, spec: &MixedSpec) -> MixedEvaluation {
        mixed::evaluate(&self.params, spec)
    }

    fn single_socket(
        &self,
        spec: &WorkloadSpec,
        cpu: SocketId,
        mem: SocketId,
        mapping: MappingState,
    ) -> Bandwidth {
        let layout = sched::layout(
            &self.params.machine,
            spec.pinning,
            mem,
            spec.threads,
            self.params.cpu.numa_region_oversub_eff,
        );
        let far = cpu != mem;
        match (spec.kind, &spec.pattern) {
            (AccessKind::Read, Pattern::Random { region_bytes }) => {
                random::read(&self.params, spec, *region_bytes, &layout)
            }
            (AccessKind::Write, Pattern::Random { region_bytes }) => {
                random::write(&self.params, spec, *region_bytes, &layout)
            }
            (AccessKind::Read, _) => read::sequential(&self.params, spec, &layout, far, mapping),
            (AccessKind::Write, _) => write::sequential(&self.params, spec, &layout, far, mapping),
        }
    }

    /// Both sockets access their far memory: every byte crosses the UPI in
    /// one direction or the other, so both directions saturate and total
    /// bandwidth flattens well below 2× near (§3.5 case iv, §4.5 case v).
    fn both_far(&self, spec: &WorkloadSpec, coherence: CoherenceView) -> Bandwidth {
        let s0 = self.single_socket(
            spec,
            SocketId(0),
            SocketId(1),
            coherence.for_socket(SocketId(0)),
        );
        let s1 = self.single_socket(
            spec,
            SocketId(1),
            SocketId(0),
            coherence.for_socket(SocketId(1)),
        );
        let raw = s0 + s1;
        match spec.kind {
            AccessKind::Read => {
                // Bidirectional traffic costs extra arbitration; the paper
                // measured ~50 GB/s PMEM / ~60 GB/s DRAM against a naive
                // 2×33 = 66 GB/s.
                let per_dir = match spec.device {
                    DeviceClass::Dram => Bandwidth::from_gib_s(30.0),
                    _ => Bandwidth::from_gib_s(25.0),
                };
                raw.min(per_dir.scale(2.0))
            }
            AccessKind::Write => {
                // Far writes are latency- not UPI-bandwidth-bound; two far
                // writers scale to ~2× single far with a small discount.
                raw.scale(0.93)
            }
        }
    }

    /// Socket 0 near + socket 1 far on the *same* memory: coherence
    /// ping-pong plus RPQ/WPQ pollution. PMEM collapses; DRAM roughly
    /// matches its both-far performance (§3.5 case v, §4.5 case iii).
    fn contended(&self, spec: &WorkloadSpec, _coherence: CoherenceView) -> Bandwidth {
        let near = self.single_socket(spec, SocketId(0), SocketId(0), MappingState::Warm);
        let far = self.single_socket(spec, SocketId(1), SocketId(0), MappingState::Warm);
        let sum = near + far;
        match (spec.device, spec.kind) {
            (DeviceClass::Pmem, AccessKind::Read) => {
                // "yields a very low bandwidth on PMEM": the coherence
                // writes turn the workload into a mixed read/write stream
                // and interrupt the 256 B buffer locality.
                sum.min(Bandwidth::from_gib_s(12.0))
                    .scale(contention_ramp(spec.threads))
            }
            (DeviceClass::Pmem, AccessKind::Write) => {
                // Figure 10 case iii peaks around 8 GB/s — worse than near-
                // only writing.
                sum.min(Bandwidth::from_gib_s(8.0))
                    .scale(contention_ramp(spec.threads))
            }
            (_, AccessKind::Read) => {
                // DRAM: "nearly achieving the performance of only far access
                // on both sockets" (~60 GB/s).
                sum.min(Bandwidth::from_gib_s(60.0))
            }
            (_, AccessKind::Write) => sum.min(Bandwidth::from_gib_s(30.0)),
        }
    }
}

/// Contended caps ramp in with thread count so 1-thread cases stay sane.
fn contention_ramp(threads: u32) -> f64 {
    (threads as f64 / 4.0).clamp(0.25, 1.0)
}

/// Effective demanded bandwidth of `threads` threads each able to issue
/// `per_thread`, where threads beyond the physical core count contribute at
/// `ht_weight` (hyperthread siblings share a port-limited physical core).
pub(crate) fn thread_demand(
    per_thread: Bandwidth,
    threads: u32,
    physical_cores: u32,
    ht_weight: f64,
) -> Bandwidth {
    let phys = threads.min(physical_cores) as f64;
    let ht = threads.saturating_sub(physical_cores) as f64;
    per_thread.scale(phys + ht * ht_weight)
}

/// Layout-aware demand: `thread_demand` against the machine's physical core
/// count. Scheduling overhead is applied to the *achieved* bandwidth by the
/// per-operation models (it costs even when the device is saturated).
pub(crate) fn layout_demand(
    params: &SystemParams,
    per_thread: Bandwidth,
    threads: u32,
    _layout: &ThreadLayout,
    ht_weight: f64,
) -> Bandwidth {
    let phys = params.machine.cores_per_socket as u32;
    thread_demand(per_thread, threads, phys, ht_weight)
}

/// Effective bandwidth in **Memory Mode** (§2.1): DRAM becomes an
/// inaccessible "L4" cache in front of PMEM. Accesses to a working set that
/// fits the DRAM cache run at DRAM speed; beyond it, the miss fraction runs
/// at PMEM speed (writes additionally pay the write-back of evicted dirty
/// lines). Persistence is *not* guaranteed in this mode.
pub fn memory_mode_bandwidth(
    model: &BandwidthModel,
    spec: &WorkloadSpec,
    working_set_bytes: u64,
) -> Bandwidth {
    let params = model.params();
    let dram_cache = params.machine.channels_per_socket() as u64
        * params.machine.dram_dimm_capacity
        * spec.placement.issuing_sockets() as u64;
    let hit = (dram_cache as f64 / working_set_bytes.max(1) as f64).min(1.0);

    let dram_spec = WorkloadSpec {
        device: DeviceClass::Dram,
        ..spec.clone()
    };
    let pmem_spec = WorkloadSpec {
        device: DeviceClass::Pmem,
        ..spec.clone()
    };
    let dram_bw = model.bandwidth(&dram_spec, CoherenceView::WARM);
    let mut pmem_bw = model.bandwidth(&pmem_spec, CoherenceView::WARM);
    if spec.kind == AccessKind::Write {
        // A missed write evicts a dirty cache line: one PMEM write-back plus
        // the demand fill — roughly halving the miss-path bandwidth.
        pmem_bw = pmem_bw.scale(0.5);
    }
    // Harmonic blend: time per byte is hit/dram + miss/pmem.
    let time_per_byte = hit / dram_bw.bytes_per_sec() + (1.0 - hit) / pmem_bw.bytes_per_sec();
    Bandwidth::from_bytes_per_sec(1.0 / time_per_byte)
}

/// Estimated internal write amplification for far (cross-UPI) PMEM writes —
/// the ntstore read-modify-write effect of §4.4 (up to ~10×).
pub fn far_write_amplification_estimate(params: &SystemParams, threads: u32) -> f64 {
    write::far_write_amplification(params, threads)
}

/// Estimated internal write amplification for near PMEM writes (partial
/// XPLine flushes under buffer pressure).
pub fn near_write_amplification_estimate(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    write::near_write_amplification(params, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn model() -> BandwidthModel {
        BandwidthModel::paper_default()
    }

    #[test]
    fn near_read_peak_is_about_40() {
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
        let bw = model().bandwidth(&spec, CoherenceView::WARM).gib_s();
        assert!((37.0..43.0).contains(&bw), "near read peak {bw}");
    }

    #[test]
    fn both_near_reads_scale_linearly() {
        // §3.5: "a linear speedup with the number of sockets, resulting in a
        // bandwidth of ~80 GB/s (PMEM)".
        let one = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
        let two = one.clone().placement(Placement::BothNear);
        let m = model();
        let b1 = m.bandwidth(&one, CoherenceView::WARM).gib_s();
        let b2 = m.bandwidth(&two, CoherenceView::WARM).gib_s();
        assert!((b2 / b1 - 2.0).abs() < 0.05, "speedup {b1} -> {b2}");
        assert!((75.0..86.0).contains(&b2));
    }

    #[test]
    fn both_far_reads_flatten_at_upi() {
        // §3.5: far access from both sockets peaks at only ~50 GB/s on PMEM
        // and ~60 GB/s on DRAM.
        let m = model();
        let pmem =
            WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).placement(Placement::BothFar);
        let dram =
            WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18).placement(Placement::BothFar);
        let p = m.bandwidth(&pmem, CoherenceView::WARM).gib_s();
        let d = m.bandwidth(&dram, CoherenceView::WARM).gib_s();
        assert!((45.0..55.0).contains(&p), "pmem both-far {p}");
        assert!((55.0..66.0).contains(&d), "dram both-far {d}");
    }

    #[test]
    fn contended_pmem_reads_collapse_but_dram_does_not() {
        let m = model();
        let pmem =
            WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).placement(Placement::Contended);
        let dram =
            WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18).placement(Placement::Contended);
        let p = m.bandwidth(&pmem, CoherenceView::WARM).gib_s();
        let d = m.bandwidth(&dram, CoherenceView::WARM).gib_s();
        assert!(p < 15.0, "contended PMEM reads should collapse: {p}");
        assert!(d > 45.0, "contended DRAM reads stay near both-far: {d}");
    }

    #[test]
    fn contended_pmem_writes_peak_near_8() {
        let m = model();
        let spec =
            WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 18).placement(Placement::Contended);
        let b = m.bandwidth(&spec, CoherenceView::WARM).gib_s();
        assert!((5.0..9.0).contains(&b), "contended writes {b}");
    }

    #[test]
    fn thread_demand_counts_hyperthreads_at_reduced_weight() {
        let d = thread_demand(Bandwidth::from_gib_s(1.0), 20, 18, 0.5);
        assert!((d.gib_s() - 19.0).abs() < 1e-9);
    }

    #[test]
    fn single_socket_machines_degrade_every_placement_to_near() {
        let mut params = SystemParams::paper_default();
        params.machine.sockets = 1;
        let m = BandwidthModel::new(params);
        let near = m
            .bandwidth(
                &WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18),
                CoherenceView::WARM,
            )
            .gib_s();
        for placement in [
            Placement::FAR,
            Placement::BothNear,
            Placement::BothFar,
            Placement::Contended,
        ] {
            let b = m
                .bandwidth(
                    &WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).placement(placement),
                    CoherenceView::WARM,
                )
                .gib_s();
            assert!((b - near).abs() < 1e-9, "{placement:?} {b} vs near {near}");
        }
    }

    #[test]
    fn memory_mode_interpolates_between_dram_and_pmem() {
        let m = model();
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
        // Working set far below the 96 GB DRAM cache: DRAM speed.
        let cached = memory_mode_bandwidth(&m, &spec, 1 << 30).gib_s();
        assert!((92.0..108.0).contains(&cached), "cached {cached}");
        // Working set far above: approaches PMEM speed.
        let spilled = memory_mode_bandwidth(&m, &spec, 768 << 30).gib_s();
        assert!((38.0..55.0).contains(&spilled), "spilled {spilled}");
        // Monotone in working-set size.
        let mid = memory_mode_bandwidth(&m, &spec, 192 << 30).gib_s();
        assert!(
            cached > mid && mid > spilled,
            "{cached} > {mid} > {spilled}"
        );
    }

    #[test]
    fn memory_mode_writes_pay_dirty_evictions() {
        let m = model();
        let spec = WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 6);
        let spilled = memory_mode_bandwidth(&m, &spec, 768 << 30).gib_s();
        let pmem_direct = m.bandwidth(&spec, CoherenceView::WARM).gib_s();
        assert!(
            spilled < pmem_direct,
            "Memory-Mode write spill ({spilled}) must trail App Direct ({pmem_direct})"
        );
    }
}

//! Sequential write bandwidth (paper §4, Figures 7–10).
//!
//! PMEM writes behave fundamentally differently from reads: the per-DIMM
//! write-combining buffer ("XPBuffer") merges 64 B stores into 256 B
//! XPLines, and its limited capacity makes bandwidth degrade when *both*
//! thread count and access size grow — the Figure 8 boomerang. Four to six
//! threads already saturate the media.

use crate::bandwidth::Bandwidth;
use crate::coherence::MappingState;
use crate::params::{DeviceClass, SystemParams};
use crate::sched::{Pinning, ThreadLayout};
use crate::workload::{Pattern, WorkloadSpec};

use super::layout_demand;

/// Sequential write bandwidth for one socket's worth of threads writing one
/// socket's memory.
pub(crate) fn sequential(
    params: &SystemParams,
    spec: &WorkloadSpec,
    layout: &ThreadLayout,
    far: bool,
    _mapping: MappingState,
) -> Bandwidth {
    match spec.device {
        DeviceClass::Ssd => ssd(params, spec.threads),
        DeviceClass::Dram => {
            if layout.migrating {
                return unpinned(spec, /*dram=*/ true);
            }
            let near = dram_near(params, spec, layout);
            if far {
                // DRAM far writes are latency/UPI-bound; the paper reports
                // NUMA effects on DRAM "albeit slightly weaker".
                near.min(Bandwidth::from_gib_s(25.0))
            } else {
                near
            }
        }
        DeviceClass::Pmem => {
            if layout.migrating {
                return unpinned(spec, /*dram=*/ false);
            }
            if far {
                far_curve(params, spec.threads)
            } else {
                pmem_near(params, spec, layout)
            }
        }
    }
}

/// Near-socket PMEM writes: demand, DIMM coverage, sub-XPLine combining and
/// the write-combining-buffer pressure model.
fn pmem_near(params: &SystemParams, spec: &WorkloadSpec, layout: &ThreadLayout) -> Bandwidth {
    let socket_peak = params
        .optane
        .media_write_per_dimm
        .scale(params.machine.channels_per_socket() as f64);
    // Writes are posted into the WPQs, so hyperthread siblings add demand
    // almost like physical threads — but demand rarely matters past 4
    // threads anyway.
    let demand = layout_demand(
        params,
        params.optane.per_thread_seq_write,
        spec.threads,
        layout,
        0.6,
    );

    let coverage = coverage_fraction(params, spec);
    let combine = sub_xpline_efficiency(params, spec);
    let pressure = buffer_pressure_efficiency(params, spec);
    let numa_split = numa_split_efficiency(params, spec);

    demand
        .min(socket_peak.scale(coverage * combine * pressure))
        .scale(layout.sched_efficiency * numa_split)
}

/// DIMM coverage for writes. The WPQ lets writes run far ahead of the
/// issuing thread, so grouped streams carry a large in-flight slack and the
/// interleave map spreads them quickly; individual streams distribute
/// naturally (§4.1).
fn coverage_fraction(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    let il = params.machine.interleave_map();
    let dimms = il.dimms as f64;
    match spec.pattern {
        Pattern::SequentialGrouped => {
            let window = spec.threads as u64 * spec.access_size * 3 + 32 * 1024;
            ((window as f64 / il.stripe as f64) / dimms).clamp(1.0 / dimms, 1.0)
        }
        Pattern::SequentialIndividual => {
            let window = spec.access_size + 2 * params.optane.write_window_bytes.max(4096);
            il.expected_coverage(spec.threads, window) / dimms
        }
        Pattern::Random { .. } => 1.0,
    }
}

/// Sub-256 B writes force the buffer to assemble XPLines from multiple CPU
/// stores. Per-thread sequential streams combine well; a grouped stream
/// interleaved across many threads arrives out of order at the buffer and
/// degenerates into read-modify-write per XPLine (§4.1: 64 B × 36 threads —
/// grouped 2.6 GB/s vs individual 9.6 GB/s).
fn sub_xpline_efficiency(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    let xp = params.optane.xpline_bytes;
    if spec.access_size >= xp {
        return 1.0;
    }
    let frac = spec.access_size as f64 / xp as f64;
    match spec.pattern {
        Pattern::SequentialGrouped => {
            // Worst case: every partial XPLine costs a read-modify-write
            // (efficiency = A/256); combining across threads only helps at
            // trivially small thread counts.
            let interleave_chaos = 1.0 / (1.0 + 0.1 * spec.threads as f64 * (1.0 / frac - 1.0));
            frac.max(interleave_chaos)
        }
        _ => {
            // Per-thread streams let the buffer merge neighbouring stores;
            // some partial flushes still occur on stream boundaries.
            0.6 + 0.4 * frac
        }
    }
}

/// The Figure 8 boomerang: the write-combining buffer thrashes when the
/// combined in-flight footprint (threads × access size) outgrows it. Up to
/// ~6 threads there is no pressure at any size; small accesses stay cheap at
/// any thread count; scaling both collapses towards the partial-flush floor.
fn buffer_pressure_efficiency(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    let t = spec.threads as f64;
    let saturating = 6.0; // threads that saturate the media (§4.2)
    let over = ((t - saturating) / saturating).max(0.0);
    let size_factor = spec.access_size as f64 / params.machine.interleave_bytes as f64;
    // A larger write-combining buffer tolerates proportionally more
    // in-flight footprint before thrashing (ablation knob; Optane ships
    // 16 KB per DIMM).
    let buffer_factor = 16.0 * 1024.0 / params.optane.wc_buffer_bytes.max(1) as f64;
    let pressure = over * size_factor * buffer_factor;
    // The floor is higher for few threads (less interleaving chaos in the
    // buffer) and bottoms out at the sustained partial-flush rate.
    let floor = 0.42 + 0.35 * (-((t - saturating).max(0.0)) / saturating).exp();
    floor + (1.0 - floor) / (1.0 + pressure)
}

/// NUMA-region (as opposed to explicit core) pinning above the physical
/// core count lets the scheduler split threads across the region's two NUMA
/// nodes, whose separate iMCs combine writes less effectively (§4.3).
fn numa_split_efficiency(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    if spec.pinning == Pinning::NumaRegion && spec.threads > params.machine.cores_per_socket as u32
    {
        0.93
    } else {
        1.0
    }
}

/// Far writes (§4.4): every store crosses the UPI and ntstore degrades into
/// read-modify-write; peak ≈7 GB/s needs ≥6 threads, and more threads
/// *reduce* data bandwidth through write amplification.
fn far_curve(params: &SystemParams, threads: u32) -> Bandwidth {
    let cap = params.far_write.far_write_cap;
    let ramp = Bandwidth::from_gib_s(1.15 * threads as f64).min(cap);
    let over = threads.saturating_sub(8) as f64;
    ramp.scale(1.0 / (1.0 + 0.02 * over))
}

/// Estimate of the media-vs-app write ratio for near writes: the inverse of
/// the combining and pressure efficiencies, bounded by the sustained
/// partial-flush worst case.
pub(crate) fn near_write_amplification(params: &SystemParams, spec: &WorkloadSpec) -> f64 {
    let combine = sub_xpline_efficiency(params, spec);
    let pressure = buffer_pressure_efficiency(params, spec);
    (1.0 / (combine * pressure)).clamp(1.0, 8.0)
}

/// Internal write amplification of far writes (§4.4: up to ~10×). Used by
/// the stats accounting.
pub(crate) fn far_write_amplification(params: &SystemParams, threads: u32) -> f64 {
    let max = params.far_write.max_amplification;
    let ramp = ((threads as f64 - 4.0) / 14.0).clamp(0.0, 1.0);
    1.0 + (max - 1.0) * ramp
}

/// DRAM writes: scale with threads, no combining pathologies (§4.2: "In
/// DRAM, more threads result in higher bandwidth and we do not observe any
/// decrease in performance for larger access sizes").
fn dram_near(params: &SystemParams, spec: &WorkloadSpec, layout: &ThreadLayout) -> Bandwidth {
    let demand = layout_demand(
        params,
        params.dram.per_thread_seq_write,
        spec.threads,
        layout,
        0.8,
    );
    demand
        .min(params.dram.socket_seq_write)
        .scale(layout.sched_efficiency)
}

/// Unpinned writes: scheduler migration across sockets caps at ~7 GB/s on
/// PMEM (Figure 9 "None").
fn unpinned(spec: &WorkloadSpec, dram: bool) -> Bandwidth {
    let (peak, per_thread) = if dram { (30.0, 5.0) } else { (7.0, 1.4) };
    let ramp =
        Bandwidth::from_gib_s(per_thread * spec.threads as f64).min(Bandwidth::from_gib_s(peak));
    let over = spec.threads.saturating_sub(8) as f64;
    ramp.scale(1.0 / (1.0 + 0.015 * over))
}

/// SSD sequential writes.
fn ssd(params: &SystemParams, threads: u32) -> Bandwidth {
    Bandwidth::from_gib_s(0.6 * threads as f64).min(params.ssd.seq_write)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{BandwidthModel, CoherenceView};
    use crate::params::DeviceClass;
    use crate::sched::Pinning;
    use crate::workload::{Pattern, Placement, WorkloadSpec};

    fn bw(spec: &WorkloadSpec) -> f64 {
        BandwidthModel::paper_default()
            .bandwidth(spec, CoherenceView::WARM)
            .gib_s()
    }

    fn grouped(access: u64, threads: u32) -> WorkloadSpec {
        WorkloadSpec::seq_write(DeviceClass::Pmem, access, threads)
            .pattern(Pattern::SequentialGrouped)
    }

    fn individual(access: u64, threads: u32) -> WorkloadSpec {
        WorkloadSpec::seq_write(DeviceClass::Pmem, access, threads)
    }

    // ---- Figure 7: access size × thread count ----

    #[test]
    fn global_maximum_is_grouped_4k_with_few_threads() {
        // §4.1: "Writes larger than 1 KB achieve the highest overall
        // bandwidth with a global maximum of 12.6 GB/s for grouped 4 KB".
        let peak = bw(&grouped(4096, 6));
        assert!((11.5..13.5).contains(&peak), "write peak {peak}");
    }

    #[test]
    fn four_threads_saturate_the_write_bandwidth() {
        // §4.2: "4 threads are sufficient to fully saturate".
        let b4 = bw(&grouped(4096, 4));
        let best = [1u32, 2, 4, 6, 8, 18, 24, 36]
            .iter()
            .map(|t| bw(&grouped(4096, *t)))
            .fold(0.0, f64::max);
        assert!(b4 >= 0.93 * best, "4 threads ({b4}) ≈ best ({best})");
    }

    #[test]
    fn grouped_64b_36_threads_collapses_but_individual_does_not() {
        // §4.1: "2.6 GB/s compared to 9.6 GB/s with 64 Byte and 36 threads".
        let g = bw(&grouped(64, 36));
        let i = bw(&individual(64, 36));
        assert!((2.0..4.5).contains(&g), "grouped 64B/36T {g}");
        assert!((7.5..10.5).contains(&i), "individual 64B/36T {i}");
        assert!(i / g > 2.0, "individual must be ≥2× grouped at 64 B");
    }

    #[test]
    fn high_thread_counts_peak_at_256b() {
        // §4.2: "A second peak is visible around 256 Byte, where all thread
        // counts above 18 achieve ~10 GB/s".
        let b256 = bw(&grouped(256, 36));
        assert!((9.0..12.5).contains(&b256), "256B/36T {b256}");
        assert!(
            b256 > bw(&grouped(4096, 36)),
            "256 B beats 4 KB at 36 threads"
        );
        assert!(
            b256 > bw(&grouped(65536, 36)),
            "256 B beats 64 KB at 36 threads"
        );
    }

    #[test]
    fn large_access_high_threads_stabilizes_at_5_to_6() {
        for t in [18u32, 24, 36] {
            let b = bw(&grouped(65536, t));
            assert!((4.5..7.0).contains(&b), "64K/{t}T {b}");
        }
    }

    #[test]
    fn more_threads_harm_large_writes() {
        // §4.2: "adding threads beyond 8 harms the bandwidth".
        let b6 = bw(&individual(65536, 6));
        let b18 = bw(&individual(65536, 18));
        let b36 = bw(&individual(65536, 36));
        assert!(
            b6 > b18 && b18 > b36,
            "decline expected: {b6} > {b18} > {b36}"
        );
    }

    #[test]
    fn four_to_six_threads_sustain_bandwidth_at_any_size() {
        // Figure 8: "the bandwidth does not drop when increasing the access
        // size but keeping the number of threads constant at around 4 to 8".
        for t in [4u32, 6] {
            let at_4k = bw(&individual(4096, t));
            let at_32m = bw(&individual(32 << 20, t));
            assert!(
                at_32m > 0.85 * at_4k,
                "{t} threads should sustain large writes: {at_4k} vs {at_32m}"
            );
        }
    }

    #[test]
    fn small_access_survives_thread_scaling() {
        // Figure 8: constant access size of 256 B–1 KB tolerates threads.
        let b6 = bw(&individual(256, 6));
        let b36 = bw(&individual(256, 36));
        assert!(
            b36 > 0.75 * b6.max(bw(&individual(256, 18))),
            "256 B at 36T {b36} vs 6T {b6}"
        );
    }

    #[test]
    fn boomerang_scaling_both_collapses() {
        let small = bw(&individual(4096, 4));
        let both = bw(&individual(65536, 36));
        assert!(
            both < 0.6 * small,
            "scaling both must collapse: {small} -> {both}"
        );
    }

    // ---- Figure 9: pinning ----

    #[test]
    fn write_pinning_ordering() {
        let cores = bw(&individual(4096, 24).pinning(Pinning::Cores));
        let numa = bw(&individual(4096, 24).pinning(Pinning::NumaRegion));
        let none = bw(&individual(4096, 24).pinning(Pinning::None));
        assert!(none < numa, "None ({none}) < NUMA ({numa})");
        assert!(
            numa < cores,
            "NUMA ({numa}) < Cores ({cores}) beyond 18 threads"
        );
    }

    #[test]
    fn unpinned_writes_peak_near_7() {
        let peak = [1u32, 4, 8, 18, 24, 36]
            .iter()
            .map(|t| bw(&individual(4096, *t).pinning(Pinning::None)))
            .fold(0.0, f64::max);
        assert!((5.5..8.0).contains(&peak), "None write peak {peak}");
    }

    #[test]
    fn no_pinning_hurts_writes_2x_but_reads_4x() {
        // §4.3: "No pinning is 2x worse for writing ... 4x worse for reading".
        let w_pin = [4u32, 6, 8, 18]
            .iter()
            .map(|t| bw(&individual(4096, *t).pinning(Pinning::Cores)))
            .fold(0.0, f64::max);
        let w_none = [4u32, 8, 18, 36]
            .iter()
            .map(|t| bw(&individual(4096, *t).pinning(Pinning::None)))
            .fold(0.0, f64::max);
        let w_ratio = w_pin / w_none;
        assert!(
            (1.5..2.8).contains(&w_ratio),
            "write pin/none ratio {w_ratio}"
        );
        let r_pin = bw(&WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18));
        let r_none = [4u32, 8, 18, 36]
            .iter()
            .map(
                |t| bw(&WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, *t).pinning(Pinning::None)),
            )
            .fold(0.0, f64::max);
        let r_ratio = r_pin / r_none;
        assert!(
            (3.2..5.5).contains(&r_ratio),
            "read pin/none ratio {r_ratio}"
        );
    }

    // ---- Figure 10: NUMA / multi-socket ----

    #[test]
    fn far_writes_peak_near_7_and_need_more_threads() {
        let far = |t: u32| bw(&individual(4096, t).placement(Placement::FAR));
        let near = |t: u32| bw(&individual(4096, t));
        let far_peak = [1u32, 4, 6, 8, 18, 36]
            .iter()
            .map(|t| far(*t))
            .fold(0.0, f64::max);
        assert!((6.0..8.0).contains(&far_peak), "far write peak {far_peak}");
        // §4.4: near peaks with 4 threads, far needs ≥6.
        assert!(near(4) > 0.93 * near(18).max(near(8)));
        assert!(
            far(4) < 0.93 * far(8),
            "far needs more threads: {} vs {}",
            far(4),
            far(8)
        );
    }

    #[test]
    fn both_near_writes_double() {
        let one = bw(&individual(4096, 4));
        let two = bw(&individual(4096, 4).placement(Placement::BothNear));
        assert!(
            (two / one - 2.0).abs() < 0.05,
            "2-near writes {one} -> {two}"
        );
        assert!((23.0..28.0).contains(&two));
    }

    #[test]
    fn both_far_writes_total_about_13() {
        let b = bw(&individual(4096, 8).placement(Placement::BothFar));
        assert!((11.0..15.0).contains(&b), "2-far writes {b}");
    }

    #[test]
    fn far_write_amplification_reaches_about_10x() {
        let p = SystemParams::paper_default();
        assert!((far_write_amplification(&p, 18) - 10.0).abs() < 0.5);
        assert!(far_write_amplification(&p, 4) < 1.5);
    }

    // ---- DRAM / SSD ----

    #[test]
    fn dram_writes_scale_with_threads() {
        let b4 = bw(&WorkloadSpec::seq_write(DeviceClass::Dram, 4096, 4));
        let b18 = bw(&WorkloadSpec::seq_write(DeviceClass::Dram, 4096, 18));
        assert!(b18 > b4, "DRAM writes must scale: {b4} -> {b18}");
        assert!((45.0..52.0).contains(&b18), "DRAM write peak {b18}");
    }

    #[test]
    fn dram_writes_tolerate_large_access_sizes() {
        let b4k = bw(&WorkloadSpec::seq_write(DeviceClass::Dram, 4096, 18));
        let b32m = bw(&WorkloadSpec::seq_write(DeviceClass::Dram, 32 << 20, 18));
        assert!(
            (b4k - b32m).abs() < 1.0,
            "no DRAM size penalty: {b4k} vs {b32m}"
        );
    }

    #[test]
    fn ssd_write_caps_at_rated() {
        let b = bw(&WorkloadSpec::seq_write(DeviceClass::Ssd, 4096, 18));
        assert!((2.0..2.2).contains(&b), "SSD write {b}");
    }
}

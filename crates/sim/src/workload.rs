//! Workload vocabulary: what the paper's microbenchmarks vary.
//!
//! A [`WorkloadSpec`] captures one cell of one figure: device, operation,
//! access pattern, access size, thread count, socket placement, and pinning.

use serde::{Deserialize, Serialize};

use crate::params::DeviceClass;
use crate::sched::Pinning;
use crate::topology::SocketId;

/// Read, write, or a concurrent mix (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Loads (`vmovntdqa` in the paper's kernels).
    Read,
    /// Non-temporal stores followed by `sfence`.
    Write,
}

/// Spatial access pattern (§3.1/§4.1/§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// One global sequential stream interleaved across all threads: thread 1
    /// takes bytes `0..A`, thread 2 takes `A..2A`, … ("Grouped Access").
    SequentialGrouped,
    /// Each thread streams over its own disjoint region ("Individual
    /// Access").
    SequentialIndividual,
    /// Uniformly random offsets within a region of the given size (hash
    /// probing / point lookups, §5.2). The region size matters for DRAM: a
    /// 2 GB region lives on one NUMA node and uses only half the channels.
    Random {
        /// Size of the randomly-accessed region in bytes.
        region_bytes: u64,
    },
}

impl Pattern {
    /// `true` for either sequential variant.
    pub fn is_sequential(self) -> bool {
        !matches!(self, Pattern::Random { .. })
    }
}

/// Where threads run and which socket's memory they target (§3.4–3.5,
/// §4.4–4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Threads on socket `cpu` access memory of socket `mem`. `cpu == mem`
    /// is "Near", otherwise "Far". `threads` in the spec is the total count.
    Single {
        /// Socket running the threads.
        cpu: SocketId,
        /// Socket owning the target memory.
        mem: SocketId,
    },
    /// Both sockets run `threads` threads each, every socket accessing its
    /// own near memory ("2 Near" — the linear-speedup case).
    BothNear,
    /// Both sockets run `threads` threads each, every socket accessing the
    /// *other* socket's memory ("2 Far" — UPI-bound in both directions).
    BothFar,
    /// Socket 0 accesses its near memory while socket 1 accesses the *same*
    /// memory (far for it) — the contended "1 Near 1 Far" case that is
    /// disastrous on PMEM.
    Contended,
}

impl Placement {
    /// Near single-socket placement on socket 0.
    pub const NEAR: Placement = Placement::Single {
        cpu: SocketId(0),
        mem: SocketId(0),
    };

    /// Far single-socket placement (socket 0 CPUs, socket 1 memory).
    pub const FAR: Placement = Placement::Single {
        cpu: SocketId(0),
        mem: SocketId(1),
    };

    /// Does any access cross the UPI?
    pub fn crosses_upi(self) -> bool {
        match self {
            Placement::Single { cpu, mem } => cpu != mem,
            Placement::BothNear => false,
            Placement::BothFar | Placement::Contended => true,
        }
    }

    /// Number of sockets issuing requests.
    pub fn issuing_sockets(self) -> u8 {
        match self {
            Placement::Single { .. } => 1,
            _ => 2,
        }
    }
}

/// A fully specified microbenchmark configuration — one cell of one figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Target device.
    pub device: DeviceClass,
    /// Read or write. Mixed workloads use [`MixedSpec`] instead.
    pub kind: AccessKind,
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Consecutive bytes accessed by one thread in one operation.
    pub access_size: u64,
    /// Thread count. For `Placement::Single` this is the total; for the
    /// dual-socket placements it is *per socket* (matching the paper's
    /// "Threads per Socket" x-axes of Figures 6 and 10).
    pub threads: u32,
    /// Socket placement.
    pub placement: Placement,
    /// Thread-to-core assignment strategy.
    pub pinning: Pinning,
    /// Total bytes moved (70 GB in most paper benchmarks; scale-invariant in
    /// the analytic model, but the DES and warm-up semantics use it).
    pub total_bytes: u64,
}

impl WorkloadSpec {
    /// Default volume used by the paper's read/write sweeps.
    pub const PAPER_VOLUME: u64 = 70 << 30;

    /// A near-socket sequential-read spec with paper-style defaults
    /// (individual pattern, Cores pinning); customize with the builder
    /// methods.
    pub fn seq_read(device: DeviceClass, access_size: u64, threads: u32) -> Self {
        WorkloadSpec {
            device,
            kind: AccessKind::Read,
            pattern: Pattern::SequentialIndividual,
            access_size,
            threads,
            placement: Placement::NEAR,
            pinning: Pinning::Cores,
            total_bytes: Self::PAPER_VOLUME,
        }
    }

    /// A near-socket sequential-write spec with paper-style defaults.
    pub fn seq_write(device: DeviceClass, access_size: u64, threads: u32) -> Self {
        WorkloadSpec {
            kind: AccessKind::Write,
            ..Self::seq_read(device, access_size, threads)
        }
    }

    /// A random-access spec over `region_bytes` (2 GB in Figure 12/13).
    pub fn random(
        device: DeviceClass,
        kind: AccessKind,
        access_size: u64,
        threads: u32,
        region_bytes: u64,
    ) -> Self {
        WorkloadSpec {
            kind,
            pattern: Pattern::Random { region_bytes },
            ..Self::seq_read(device, access_size, threads)
        }
    }

    /// Set the pattern.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Set the placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Set the pinning strategy.
    pub fn pinning(mut self, pinning: Pinning) -> Self {
        self.pinning = pinning;
        self
    }

    /// Set the total volume.
    pub fn total_bytes(mut self, total: u64) -> Self {
        self.total_bytes = total;
        self
    }

    /// Total threads across all issuing sockets.
    pub fn total_threads(&self) -> u32 {
        self.threads * self.placement.issuing_sockets() as u32
    }
}

/// A concurrent read+write workload (Figure 11): `x` write threads and `y`
/// read threads on the same socket targeting the same PMEM DIMMs, each side
/// using 4 KB individual access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedSpec {
    /// Target device.
    pub device: DeviceClass,
    /// Number of writer threads.
    pub write_threads: u32,
    /// Number of reader threads.
    pub read_threads: u32,
    /// Access size for both sides (4 KB in the paper).
    pub access_size: u64,
    /// Pinning (NUMA-region in the paper's Figure 11).
    pub pinning: Pinning,
}

impl MixedSpec {
    /// Paper-style mixed spec: 4 KB individual access, NUMA-region pinning.
    pub fn paper(device: DeviceClass, write_threads: u32, read_threads: u32) -> Self {
        MixedSpec {
            device,
            write_threads,
            read_threads,
            access_size: 4096,
            pinning: Pinning::NumaRegion,
        }
    }

    /// Total thread count.
    pub fn total_threads(&self) -> u32 {
        self.write_threads + self.read_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_conventions() {
        let s = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
        assert_eq!(s.pattern, Pattern::SequentialIndividual);
        assert_eq!(s.pinning, Pinning::Cores);
        assert_eq!(s.placement, Placement::NEAR);
        assert_eq!(s.total_bytes, 70 << 30);
        assert_eq!(s.total_threads(), 18);
    }

    #[test]
    fn dual_socket_placements_double_threads() {
        let s = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).placement(Placement::BothNear);
        assert_eq!(s.total_threads(), 36);
    }

    #[test]
    fn crosses_upi() {
        assert!(!Placement::NEAR.crosses_upi());
        assert!(Placement::FAR.crosses_upi());
        assert!(!Placement::BothNear.crosses_upi());
        assert!(Placement::BothFar.crosses_upi());
        assert!(Placement::Contended.crosses_upi());
    }

    #[test]
    fn random_pattern_is_not_sequential() {
        assert!(Pattern::SequentialGrouped.is_sequential());
        assert!(Pattern::SequentialIndividual.is_sequential());
        assert!(!Pattern::Random {
            region_bytes: 2 << 30
        }
        .is_sequential());
    }

    #[test]
    fn mixed_spec_paper_defaults() {
        let m = MixedSpec::paper(DeviceClass::Pmem, 4, 18);
        assert_eq!(m.access_size, 4096);
        assert_eq!(m.pinning, Pinning::NumaRegion);
        assert_eq!(m.total_threads(), 22);
    }
}

//! Calibration parameters for the device models.
//!
//! Every constant is anchored to a measurement published in the paper (or in
//! the prior characterization work it builds on — Yang et al., FAST '20).
//! The analytic model and the discrete-event engine share this single source
//! of truth, so tuning a parameter moves both consistently.

use serde::{Deserialize, Serialize};

use crate::bandwidth::Bandwidth;
use crate::topology::Machine;

/// Which memory device a workload targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Intel Optane DC Persistent Memory (App Direct).
    Pmem,
    /// DDR4 DRAM.
    Dram,
    /// NVMe SSD (the "traditional" baseline of §6.2).
    Ssd,
}

impl DeviceClass {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Pmem => "pmem",
            DeviceClass::Dram => "dram",
            DeviceClass::Ssd => "ssd",
        }
    }
}

/// Optane DIMM and socket-level PMEM parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptaneParams {
    /// Optane's internal media granularity ("XPLine"): 256 B. CPU cache
    /// lines are 64 B, so sub-256 B traffic causes read/write amplification
    /// (§2.1, §4.1).
    pub xpline_bytes: u64,
    /// Media read bandwidth of one DIMM. Six DIMMs per socket give the
    /// paper's ≈40 GB/s socket sequential-read peak (Figure 3).
    pub media_read_per_dimm: Bandwidth,
    /// Media write bandwidth of one DIMM. Six DIMMs per socket give the
    /// paper's ≈13 GB/s socket sequential-write peak (Figure 7: 12.6 GB/s
    /// global maximum for grouped 4 KB).
    pub media_write_per_dimm: Bandwidth,
    /// Per-thread sequential read issue rate (latency × memory-level
    /// parallelism bound). Calibrated so 8 threads reach ≈85 % of the socket
    /// peak ("as few as 8 threads achieves nearly as much bandwidth as 36,
    /// ~15 % difference", §3.2) and a single thread lands in the 4–5 GB/s
    /// range reported by Yang et al.
    pub per_thread_seq_read: Bandwidth,
    /// Per-thread sequential write issue rate with ntstore. Calibrated so 4
    /// threads saturate the ≈12.6 GB/s socket write peak (§4.2: "4 threads
    /// are sufficient to fully saturate the PMEM bandwidth").
    pub per_thread_seq_write: Bandwidth,
    /// Per-DIMM write-combining buffer ("XPBuffer") capacity. Intra-buffer
    /// merging of 64 B stores into 256 B lines is what makes 256 B and 4 KB
    /// writes fast and large-footprint writes slow (§4.1–4.2).
    pub wc_buffer_bytes: u64,
    /// In-flight bytes per thread (requests the core keeps outstanding).
    /// This is the "window" that determines how many DIMMs one thread keeps
    /// busy at once via the interleave map.
    pub read_window_bytes: u64,
    /// In-flight bytes per write thread.
    pub write_window_bytes: u64,
    /// Fraction of the sequential peak reachable by random reads of ≥4 KB
    /// (§5.2: "reaching only up to ~2/3 of the maximum for larger access
    /// sizes above 4 KB").
    pub random_read_large_frac: f64,
    /// Fraction of the sequential peak for 256 B random reads. §5.2 states
    /// both "~50 % of sequential performance" for 256/512 B and a "4×
    /// bandwidth over PMEM for 512 Byte" advantage for large-region DRAM;
    /// the two anchors only reconcile if the 50 % is read against the
    /// *random-access* maximum (2/3 of sequential), i.e. ~0.38 of the
    /// sequential peak in absolute terms. We calibrate to the ratio anchor.
    pub random_read_small_frac: f64,
    /// Fraction of the sequential write peak reachable by large random
    /// writes (§5.2: "about 2/3").
    pub random_write_large_frac: f64,
}

impl Default for OptaneParams {
    fn default() -> Self {
        OptaneParams {
            xpline_bytes: 256,
            media_read_per_dimm: Bandwidth::from_gib_s(40.5 / 6.0),
            media_write_per_dimm: Bandwidth::from_gib_s(13.2 / 6.0),
            per_thread_seq_read: Bandwidth::from_gib_s(4.5),
            per_thread_seq_write: Bandwidth::from_gib_s(3.4),
            wc_buffer_bytes: 16 * 1024,
            read_window_bytes: 4096,
            write_window_bytes: 2048,
            random_read_large_frac: 2.0 / 3.0,
            random_read_small_frac: 0.38,
            random_write_large_frac: 2.0 / 3.0,
        }
    }
}

/// DRAM parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramParams {
    /// Socket sequential read peak: ≈100 GB/s near (Figure 6b: "peak
    /// bandwidth for near DRAM (~100 GB/s)", 2 sockets 185 GB/s).
    pub socket_seq_read: Bandwidth,
    /// Socket sequential write peak. The paper does not publish an absolute
    /// DRAM write figure; ≈49 GB/s matches 6 DDR4-2666 channels with
    /// non-temporal stores and keeps the paper's qualitative claim that DRAM
    /// writes scale with threads where PMEM writes do not (§4.2).
    pub socket_seq_write: Bandwidth,
    /// Per-thread sequential read issue rate.
    pub per_thread_seq_read: Bandwidth,
    /// Per-thread sequential write issue rate.
    pub per_thread_seq_write: Bandwidth,
    /// Far (cross-socket) read cap: ≈33 GB/s (Figure 6b "a stark difference
    /// in far access, achieving only ~33 GB/s") — UPI-payload-bound.
    pub far_read_cap: Bandwidth,
    /// Random-access fraction of sequential peak for a small (2 GB) region,
    /// which lands on a single NUMA node = 3 of 6 channels (§5.2).
    pub small_region_channel_frac: f64,
    /// Fraction of sequential peak random access reaches once the region
    /// spans all channels (§5.2: "reaches 90 % of DRAM's sequential
    /// performance").
    pub random_large_region_frac: f64,
    /// Region size above which a DRAM allocation spreads over both NUMA
    /// nodes of the socket (the paper observed a 2 GB allocation on one
    /// node; ~90 GB = all DRAM of a socket used all 6 channels).
    pub node_spread_threshold: u64,
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams {
            socket_seq_read: Bandwidth::from_gib_s(100.0),
            socket_seq_write: Bandwidth::from_gib_s(49.0),
            per_thread_seq_read: Bandwidth::from_gib_s(12.0),
            per_thread_seq_write: Bandwidth::from_gib_s(9.0),
            far_read_cap: Bandwidth::from_gib_s(33.0),
            small_region_channel_frac: 0.5,
            random_large_region_frac: 0.9,
            node_spread_threshold: 8 << 30,
        }
    }
}

/// NVMe SSD parameters (Intel SSD DC P4610, §6.2 footnote).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdParams {
    /// Sequential read bandwidth: 3.20 GB/s.
    pub seq_read: Bandwidth,
    /// Sequential write bandwidth: 2.08 GB/s.
    pub seq_write: Bandwidth,
    /// 4 KB random read bandwidth (derived from the device's ~640 K IOPS).
    pub rand_read_4k: Bandwidth,
}

impl Default for SsdParams {
    fn default() -> Self {
        SsdParams {
            seq_read: Bandwidth::from_gib_s(3.20),
            seq_write: Bandwidth::from_gib_s(2.08),
            rand_read_4k: Bandwidth::from_gib_s(2.5),
        }
    }
}

/// UPI cross-socket interconnect parameters (§3.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpiParams {
    /// Raw link bandwidth per direction: "The UPI achieves ~40 GB/s per
    /// direction".
    pub raw_per_direction: Bandwidth,
    /// Fraction of raw bandwidth consumed by metadata: "about 25 % of this
    /// is required for metadata transfer, i.e., allowing for ~30 GB/s data
    /// per direction".
    pub metadata_fraction: f64,
    /// Additional one-way latency for crossing the link, in seconds.
    pub extra_latency: f64,
}

impl UpiParams {
    /// Payload bandwidth available per direction (~30 GB/s).
    pub fn payload_per_direction(&self) -> Bandwidth {
        self.raw_per_direction.scale(1.0 - self.metadata_fraction)
    }
}

impl Default for UpiParams {
    fn default() -> Self {
        UpiParams {
            raw_per_direction: Bandwidth::from_gib_s(40.0),
            metadata_fraction: 0.25,
            extra_latency: 60e-9,
        }
    }
}

/// CPU-side parameters: prefetcher, hyperthreading, scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Whether the L2 hardware prefetcher is enabled (it is by default, and
    /// the paper recommends leaving it on, §3.1).
    pub l2_prefetcher: bool,
    /// Efficiency multiplier for grouped reads at the pathological 1–2 KB
    /// access sizes with the prefetcher enabled (§3.1: "the L2 hardware
    /// prefetcher performs poorly for 1 and 2 KB access" — also observed on
    /// DRAM, so it is CPU- not PMEM-specific).
    pub prefetch_pathology_eff: f64,
    /// Read-efficiency multiplier once hyperthread siblings share L2 with
    /// the prefetcher polluting it (§3.2: thread counts >18 "perform worse
    /// than 18 threads").
    pub hyperthread_read_eff: f64,
    /// With the prefetcher *disabled*, low thread counts lose prefetch
    /// benefit (§3.2: "lower thread counts (<8) perform worse").
    pub no_prefetch_low_thread_eff: f64,
    /// Scheduling-overhead multiplier when more software threads than
    /// physical cores must be juggled inside a NUMA region instead of being
    /// pinned to explicit cores (§3.3/§4.3: Cores pinning slightly
    /// outperforms NUMA-region pinning above 18 threads).
    pub numa_region_oversub_eff: f64,
    /// Cache-line size in bytes.
    pub cacheline_bytes: u64,
    /// Idle sequential-read latency to near PMEM, seconds (used by the DES).
    pub pmem_read_latency: f64,
    /// Idle read latency to near DRAM, seconds.
    pub dram_read_latency: f64,
    /// Outstanding cache-line fills one core sustains (MLP).
    pub mlp: u32,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            l2_prefetcher: true,
            prefetch_pathology_eff: 0.55,
            hyperthread_read_eff: 0.88,
            no_prefetch_low_thread_eff: 0.80,
            numa_region_oversub_eff: 0.97,
            cacheline_bytes: 64,
            pmem_read_latency: 170e-9,
            dram_read_latency: 85e-9,
            mlp: 10,
        }
    }
}

/// Parameters of the NUMA coherence-remapping warm-up effect (§3.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoherenceParams {
    /// Bandwidth fraction achieved on the *first* multi-threaded far read of
    /// a region ("a very low bandwidth of ~8 GB/s, being worse by a factor
    /// of 5" vs the ~40 GB/s near peak).
    pub cold_far_read_frac: f64,
    /// Warm far read cap (≈33 GB/s: "the performance nearly matches ... ~33
    /// GB/s when accessing far PMEM in the second and consecutive runs").
    pub warm_far_read_cap: Bandwidth,
    /// Thread count at which the *cold* far read peaks (§3.4: "the optimal
    /// thread count for far PMEM access also shifts from 18 threads to only
    /// 4 threads").
    pub cold_peak_threads: u32,
}

impl Default for CoherenceParams {
    fn default() -> Self {
        CoherenceParams {
            cold_far_read_frac: 0.20,
            warm_far_read_cap: Bandwidth::from_gib_s(33.0),
            cold_peak_threads: 4,
        }
    }
}

/// Far-write behaviour (§4.4–4.5): ntstore across the UPI degrades into
/// read-modify-write, with up to ~10× internal write amplification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarWriteParams {
    /// Peak data bandwidth for single-socket far writes (≈7 GB/s at 8
    /// threads, Figure 10).
    pub far_write_cap: Bandwidth,
    /// Threads needed to reach the far-write peak (≥6, §4.4).
    pub peak_threads: u32,
    /// Internal write amplification at high far-thread counts (the paper
    /// observed ~10× at 18 threads: "~500 MB/s actual data ... but an
    /// internal write bandwidth consumption of 5 GB/s").
    pub max_amplification: f64,
}

impl Default for FarWriteParams {
    fn default() -> Self {
        FarWriteParams {
            far_write_cap: Bandwidth::from_gib_s(7.0),
            peak_threads: 6,
            max_amplification: 10.0,
        }
    }
}

/// Mixed read/write interference (§5.1): writes occupy the iMC/media for
/// much longer than reads, so capacity is shared in *utilization* units with
/// an efficiency that degrades as write threads are added.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedParams {
    /// Shared-capacity efficiency with zero interference.
    pub base_efficiency: f64,
    /// Efficiency lost per contending write thread (writes block the iMC
    /// far longer than reads — §5.1 reason ii).
    pub per_write_thread_penalty: f64,
    /// Efficiency lost per contending read thread.
    pub per_read_thread_penalty: f64,
    /// Efficiency a *second read location* costs readers when the L2
    /// prefetcher has to fetch from two streams (§5.1 reason i).
    pub second_read_stream_eff: f64,
    /// Floor for the shared-capacity efficiency.
    pub min_efficiency: f64,
}

impl Default for MixedParams {
    fn default() -> Self {
        MixedParams {
            base_efficiency: 1.0,
            per_write_thread_penalty: 0.01,
            per_read_thread_penalty: 0.006,
            second_read_stream_eff: 0.94,
            min_efficiency: 0.45,
        }
    }
}

/// The full parameter set shared by the analytic model and the DES.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SystemParams {
    /// Topology of the machine.
    #[serde(default = "Machine::paper_default")]
    pub machine: Machine,
    /// Optane device model.
    pub optane: OptaneParams,
    /// DRAM device model.
    pub dram: DramParams,
    /// SSD device model.
    pub ssd: SsdParams,
    /// UPI link model.
    pub upi: UpiParams,
    /// CPU-side model.
    pub cpu: CpuParams,
    /// Coherence warm-up model.
    pub coherence: CoherenceParams,
    /// Far-write model.
    pub far_write: FarWriteParams,
    /// Mixed-workload model.
    pub mixed: MixedParams,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::paper_default()
    }
}

impl SystemParams {
    /// Parameters calibrated to the paper's server (§2.3).
    pub fn paper_default() -> Self {
        SystemParams::default()
    }

    /// Socket-level PMEM sequential read peak (≈40 GB/s).
    pub fn pmem_socket_read_peak(&self) -> Bandwidth {
        self.optane
            .media_read_per_dimm
            .scale(self.machine.channels_per_socket() as f64)
    }

    /// Socket-level PMEM sequential write peak (≈13 GB/s).
    pub fn pmem_socket_write_peak(&self) -> Bandwidth {
        self.optane
            .media_write_per_dimm
            .scale(self.machine.channels_per_socket() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_peaks_match_paper() {
        let p = SystemParams::paper_default();
        let read = p.pmem_socket_read_peak().gib_s();
        let write = p.pmem_socket_write_peak().gib_s();
        assert!((39.0..42.0).contains(&read), "read peak {read}");
        assert!((12.5..13.5).contains(&write), "write peak {write}");
    }

    #[test]
    fn upi_payload_is_30_gib() {
        let upi = UpiParams::default();
        let payload = upi.payload_per_direction().gib_s();
        assert!((29.5..30.5).contains(&payload), "payload {payload}");
    }

    #[test]
    fn dram_read_dwarfs_pmem_by_about_2_5x() {
        // §2.1: "Reading from PMEM yields approx. a third ... of the
        // bandwidth of DRAM"; our socket peaks give 100/40.5 ≈ 2.5×.
        let p = SystemParams::paper_default();
        let ratio = p.dram.socket_seq_read.gib_s() / p.pmem_socket_read_peak().gib_s();
        assert!((2.0..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pmem_write_is_about_a_seventh_of_dram_read() {
        // §2.1: "writing a seventh of the bandwidth of DRAM".
        let p = SystemParams::paper_default();
        let ratio = p.dram.socket_seq_read.gib_s() / p.pmem_socket_write_peak().gib_s();
        assert!((6.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ssd_is_an_order_of_magnitude_below_pmem() {
        let p = SystemParams::paper_default();
        assert!(p.pmem_socket_read_peak().gib_s() / p.ssd.seq_read.gib_s() > 10.0);
    }

    #[test]
    fn device_names() {
        assert_eq!(DeviceClass::Pmem.name(), "pmem");
        assert_eq!(DeviceClass::Dram.name(), "dram");
        assert_eq!(DeviceClass::Ssd.name(), "ssd");
    }
}

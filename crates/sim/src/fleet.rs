//! Fleet-level modeling: per-machine fault plans and inter-machine
//! transfer pricing for a cluster of simulated PMEM boxes.
//!
//! The single-machine model ([`crate::analytic`], [`crate::faults`])
//! calibrates one dual-socket Optane server. Scale-out serving shards
//! data across N such machines, which introduces two things the
//! single-box model cannot express:
//!
//! * **Independent failure domains.** Each machine degrades on its own
//!   timeline. [`FleetFaultPlans`] derives one [`FaultPlan`] per machine
//!   from a single fleet seed (splitmix64 sub-seeding, the same scheme
//!   the arrival processes use), so a cluster experiment replays
//!   exactly from one number. A whole-machine *blackout* — the failure
//!   unit motivated by the DIMM-loss caveats in the early Optane
//!   evaluations — is composed from existing fault kinds: every channel
//!   of both sockets drops out, the residual channel is write-throttled
//!   to a trickle, and the iMC queues stall for the window. Bandwidth
//!   never reaches exactly zero (the simulator keeps completion times
//!   finite), but the machine is effectively dead to its deadline-
//!   carrying work.
//! * **A priced interconnect.** Replication, failover re-routing and
//!   re-replication move bytes between machines over a network that is
//!   an order of magnitude slower than the local memory bus.
//!   [`Interconnect`] prices a transfer with a latency + bandwidth
//!   model so cluster reports charge remote repairs honestly.

use serde::{Deserialize, Serialize};

use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultScheduleConfig};
use crate::topology::SocketId;

/// Write-throttle factor applied to a blacked-out socket: the WPQ drain
/// trickles but never fully stops, keeping simulated times finite.
pub const BLACKOUT_THROTTLE: f64 = 1e-3;

use crate::rng::splitmix64;

/// Derive machine `m`'s seed from the fleet seed. Deterministic, and
/// distinct machines get uncorrelated streams.
pub fn machine_seed(fleet_seed: u64, machine: usize) -> u64 {
    splitmix64(fleet_seed ^ splitmix64(machine as u64 ^ 0xf1ee_7000_0000_0000))
}

/// Latency + bandwidth pricing for the network between machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Sustained point-to-point bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-transfer latency floor in seconds (propagation + stack).
    pub latency_seconds: f64,
}

impl Interconnect {
    /// A 100 GbE datacenter link: ~12.5 GB/s sustained, ~10 µs latency.
    /// An order of magnitude below even a degraded socket's PMEM
    /// bandwidth, which is why replication traffic must be priced.
    pub fn paper_default() -> Self {
        Interconnect {
            bandwidth_bytes_per_sec: 12.5e9,
            latency_seconds: 10e-6,
        }
    }

    /// Seconds to move `bytes` from one machine to another.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_seconds + bytes as f64 / self.bandwidth_bytes_per_sec.max(1.0)
    }
}

/// The blackout window of a lost machine, if the fleet schedules one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blackout {
    /// Machine index that goes dark.
    pub machine: usize,
    /// Virtual time the machine drops.
    pub at: f64,
    /// Virtual time the window closes (usually past the run horizon:
    /// the machine stays dead for the whole experiment).
    pub until: f64,
}

/// One seeded [`FaultPlan`] per machine of a simulated fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetFaultPlans {
    plans: Vec<FaultPlan>,
    blackout: Option<Blackout>,
}

impl FleetFaultPlans {
    /// A healthy fleet: every machine gets the empty plan.
    pub fn healthy(machines: usize) -> Self {
        FleetFaultPlans {
            plans: vec![FaultPlan::none(); machines],
            blackout: None,
        }
    }

    /// Seed-derived background fault schedules: machine `m` runs
    /// `FaultPlan::generate(machine_seed(seed, m), config)`. Identical
    /// `(seed, machines, config)` triples produce identical fleets.
    pub fn generate(seed: u64, machines: usize, config: &FaultScheduleConfig) -> Self {
        FleetFaultPlans {
            plans: (0..machines)
                .map(|m| FaultPlan::generate(machine_seed(seed, m), config))
                .collect(),
            blackout: None,
        }
    }

    /// Overlay a whole-machine blackout on machine `victim` over
    /// `[at, until)`: both sockets lose every interleaved channel the
    /// dropout clamp allows, the surviving channel is throttled to
    /// [`BLACKOUT_THROTTLE`], and the iMC queues stall. The machine's
    /// effective bandwidth collapses by >10³ — dead for any deadline-
    /// carrying job — while virtual time still advances.
    pub fn with_lost_machine(mut self, victim: usize, at: f64, until: f64) -> Self {
        if let Some(plan) = self.plans.get_mut(victim) {
            let mut events = plan.events().to_vec();
            events.extend(blackout_events(at, until));
            *plan = FaultPlan::from_events(events);
            self.blackout = Some(Blackout {
                machine: victim,
                at,
                until,
            });
        }
        self
    }

    /// Machine `m`'s plan. Out-of-range machines are healthy.
    pub fn plan(&self, machine: usize) -> FaultPlan {
        self.plans.get(machine).cloned().unwrap_or_default()
    }

    /// Number of machines in the fleet.
    pub fn machines(&self) -> usize {
        self.plans.len()
    }

    /// The scheduled blackout, if [`Self::with_lost_machine`] installed one.
    pub fn blackout(&self) -> Option<Blackout> {
        self.blackout
    }
}

/// The event stack that kills one whole machine over `[at, until)`.
pub fn blackout_events(at: f64, until: f64) -> Vec<FaultEvent> {
    let mut events = Vec::with_capacity(6);
    for socket in [SocketId(0), SocketId(1)] {
        events.push(FaultEvent {
            start: at,
            end: until,
            kind: FaultKind::DimmDropout { socket, dimms: 255 },
        });
        events.push(FaultEvent {
            start: at,
            end: until,
            kind: FaultKind::WriteThrottle {
                socket,
                factor: BLACKOUT_THROTTLE,
            },
        });
        events.push(FaultEvent {
            start: at,
            end: until,
            kind: FaultKind::QueueStall { socket },
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::STALL_SCALE;
    use crate::topology::Machine;

    #[test]
    fn machine_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..16).map(|m| machine_seed(7, m)).collect();
        let b: Vec<u64> = (0..16).map(|m| machine_seed(7, m)).collect();
        assert_eq!(a, b, "same fleet seed, same per-machine seeds");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "machines get distinct seeds");
        assert_ne!(machine_seed(7, 0), machine_seed(8, 0), "seed matters");
    }

    #[test]
    fn generated_fleet_is_reproducible_and_per_machine_distinct() {
        let cfg = FaultScheduleConfig::over(1.0);
        let a = FleetFaultPlans::generate(42, 4, &cfg);
        let b = FleetFaultPlans::generate(42, 4, &cfg);
        for m in 0..4 {
            assert_eq!(a.plan(m), b.plan(m), "machine {m} replays exactly");
        }
        assert_ne!(a.plan(0), a.plan(1), "machines fail independently");
    }

    #[test]
    fn blackout_collapses_both_sockets_for_the_window() {
        let fleet = FleetFaultPlans::healthy(3).with_lost_machine(1, 0.2, 1.0);
        let machine = Machine::paper_default();
        let dead = fleet.plan(1);
        for socket in [SocketId(0), SocketId(1)] {
            let s = dead.state_at(&machine, 0.5).socket(socket);
            // Dropout leaves 1/channels, the stall multiplies STALL_SCALE
            // on top, and writes also carry the throttle factor.
            assert!(
                s.read_scale <= STALL_SCALE / 2.0,
                "reads dead: {}",
                s.read_scale
            );
            assert!(
                s.write_scale <= BLACKOUT_THROTTLE,
                "writes dead: {}",
                s.write_scale
            );
            assert!(
                s.read_scale > 0.0 && s.write_scale > 0.0,
                "never exactly zero"
            );
        }
        // Before the window and on healthy peers nothing degrades.
        assert!(!dead.state_at(&machine, 0.1).is_degraded());
        assert!(!fleet.plan(0).state_at(&machine, 0.5).is_degraded());
        assert_eq!(
            fleet.blackout(),
            Some(Blackout {
                machine: 1,
                at: 0.2,
                until: 1.0
            })
        );
    }

    #[test]
    fn interconnect_prices_latency_plus_bytes() {
        let net = Interconnect::paper_default();
        let small = net.transfer_seconds(0);
        assert!((small - 10e-6).abs() < 1e-12, "latency floor");
        let gib = net.transfer_seconds(1 << 30);
        assert!(
            gib > 0.08 && gib < 0.09,
            "1 GiB over 100 GbE ~ 86 ms: {gib}"
        );
        assert!(
            net.transfer_seconds(2 << 30) > 2.0 * gib - 10e-6,
            "bytes dominate large transfers"
        );
    }

    #[test]
    fn out_of_range_machines_are_healthy() {
        let fleet = FleetFaultPlans::healthy(2);
        assert!(fleet.plan(9).is_empty());
        assert_eq!(fleet.machines(), 2);
    }
}

//! Fleet-level modeling: per-machine fault plans and inter-machine
//! transfer pricing for a cluster of simulated PMEM boxes.
//!
//! The single-machine model ([`crate::analytic`], [`crate::faults`])
//! calibrates one dual-socket Optane server. Scale-out serving shards
//! data across N such machines, which introduces two things the
//! single-box model cannot express:
//!
//! * **Independent failure domains.** Each machine degrades on its own
//!   timeline. [`FleetFaultPlans`] derives one [`FaultPlan`] per machine
//!   from a single fleet seed (splitmix64 sub-seeding, the same scheme
//!   the arrival processes use), so a cluster experiment replays
//!   exactly from one number. A whole-machine *blackout* — the failure
//!   unit motivated by the DIMM-loss caveats in the early Optane
//!   evaluations — is composed from existing fault kinds: every channel
//!   of both sockets drops out, the residual channel is write-throttled
//!   to a trickle, and the iMC queues stall for the window. Bandwidth
//!   never reaches exactly zero (the simulator keeps completion times
//!   finite), but the machine is effectively dead to its deadline-
//!   carrying work.
//! * **A priced interconnect.** Replication, failover re-routing and
//!   re-replication move bytes between machines over a network that is
//!   an order of magnitude slower than the local memory bus.
//!   [`Interconnect`] prices a transfer with a latency + bandwidth
//!   model so cluster reports charge remote repairs honestly.

use serde::{Deserialize, Serialize};

use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultScheduleConfig};
use crate::topology::SocketId;

/// Write-throttle factor applied to a blacked-out socket: the WPQ drain
/// trickles but never fully stops, keeping simulated times finite.
pub const BLACKOUT_THROTTLE: f64 = 1e-3;

use crate::rng::{splitmix64, SplitMix64};

/// Derive machine `m`'s seed from the fleet seed. Deterministic, and
/// distinct machines get uncorrelated streams.
pub fn machine_seed(fleet_seed: u64, machine: usize) -> u64 {
    splitmix64(fleet_seed ^ splitmix64(machine as u64 ^ 0xf1ee_7000_0000_0000))
}

/// Latency + bandwidth pricing for the network between machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Sustained point-to-point bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-transfer latency floor in seconds (propagation + stack).
    pub latency_seconds: f64,
}

impl Interconnect {
    /// A 100 GbE datacenter link: ~12.5 GB/s sustained, ~10 µs latency.
    /// An order of magnitude below even a degraded socket's PMEM
    /// bandwidth, which is why replication traffic must be priced.
    pub fn paper_default() -> Self {
        Interconnect {
            bandwidth_bytes_per_sec: 12.5e9,
            latency_seconds: 10e-6,
        }
    }

    /// Seconds to move `bytes` from one machine to another over a
    /// healthy link.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.transfer_seconds_at(bytes, 0.0, &LinkPlan::none())
    }

    /// Seconds to move `bytes` at virtual time `t` under `plan`'s link
    /// degradation: active windows inflate the latency floor and shrink
    /// the usable bandwidth. With the empty plan this is exactly
    /// [`Self::transfer_seconds`].
    pub fn transfer_seconds_at(&self, bytes: u64, t: f64, plan: &LinkPlan) -> f64 {
        let (latency_scale, bandwidth_scale) = plan.scales_at(t);
        self.latency_seconds * latency_scale
            + bytes as f64 / (self.bandwidth_bytes_per_sec * bandwidth_scale).max(1.0)
    }

    /// One-way message latency at time `t` under `plan` (tiny payloads:
    /// requests, partial aggregates, cancels — the bandwidth term is
    /// noise for these, the jittered floor is not).
    pub fn latency_seconds_at(&self, t: f64, plan: &LinkPlan) -> f64 {
        let (latency_scale, _) = plan.scales_at(t);
        self.latency_seconds * latency_scale
    }
}

/// One link-degradation window: while active, the interconnect's latency
/// floor is multiplied by `latency_scale` (≥ 1 for degradation) and its
/// bandwidth by `bandwidth_scale` (≤ 1). Overlapping windows compound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Virtual time the degradation begins.
    pub start: f64,
    /// Virtual time the link recovers (half-open window).
    pub end: f64,
    /// Multiplier on the latency floor while active.
    pub latency_scale: f64,
    /// Multiplier on the sustained bandwidth while active.
    pub bandwidth_scale: f64,
}

impl LinkEvent {
    /// Whether the window covers time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// A seeded, deterministic schedule of interconnect jitter — the
/// `LinkDegrade` fault plane. The same `(seed, config)` always prices
/// the same transfer the same way, so hedged scatter-gather runs that
/// cross a flaky link replay bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkPlan {
    events: Vec<LinkEvent>,
}

impl LinkPlan {
    /// A healthy link forever.
    pub fn none() -> Self {
        LinkPlan { events: Vec::new() }
    }

    /// Build a plan from explicit windows (sorted by start time).
    pub fn from_events(mut events: Vec<LinkEvent>) -> Self {
        events.sort_by(|a, b| a.start.total_cmp(&b.start));
        LinkPlan { events }
    }

    /// Draw `windows` degradation windows over `[0, horizon)` from a
    /// splitmix64 stream: latency scale uniform in `latency_scale`,
    /// bandwidth scale uniform in `bandwidth_scale`, window length
    /// 10–30% of the horizon. Identical arguments replay identically.
    pub fn generate(
        seed: u64,
        horizon: f64,
        windows: u32,
        latency_scale: (f64, f64),
        bandwidth_scale: (f64, f64),
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let horizon = horizon.max(1e-6);
        let mut draw = |(lo, hi): (f64, f64)| {
            if hi > lo {
                lo + (hi - lo) * rng.next_f64()
            } else {
                lo
            }
        };
        let mut events = Vec::with_capacity(windows as usize);
        for _ in 0..windows {
            let latency_scale = draw(latency_scale);
            let bandwidth_scale = draw(bandwidth_scale);
            let start = draw((0.0, horizon * 0.9));
            let len = draw((horizon * 0.1, horizon * 0.3));
            events.push(LinkEvent {
                start,
                end: (start + len).min(horizon),
                latency_scale,
                bandwidth_scale,
            });
        }
        Self::from_events(events)
    }

    /// Whether the plan degrades nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled windows, sorted by start time.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// The `(latency_scale, bandwidth_scale)` product of the windows
    /// active at `t`. Latency never improves below the healthy floor
    /// and bandwidth never collapses to exactly zero (transfers stay
    /// finite), mirroring the blackout-throttle convention.
    pub fn scales_at(&self, t: f64) -> (f64, f64) {
        let mut latency = 1.0;
        let mut bandwidth = 1.0;
        for event in &self.events {
            if event.active_at(t) {
                latency *= event.latency_scale.max(0.0);
                bandwidth *= event.bandwidth_scale.max(0.0);
            }
        }
        (latency.max(1.0), bandwidth.clamp(1e-6, 1.0))
    }
}

/// The blackout window of a lost machine, if the fleet schedules one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blackout {
    /// Machine index that goes dark.
    pub machine: usize,
    /// Virtual time the machine drops.
    pub at: f64,
    /// Virtual time the window closes (usually past the run horizon:
    /// the machine stays dead for the whole experiment).
    pub until: f64,
}

/// The fail-slow window of a gray-degraded machine, if one is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailSlowWindow {
    /// Machine index that degrades.
    pub machine: usize,
    /// Virtual time the degradation begins.
    pub at: f64,
    /// Virtual time the machine recovers (half-open window).
    pub until: f64,
    /// Remaining fraction of the machine's service rate.
    pub factor: f64,
}

/// One seeded [`FaultPlan`] per machine of a simulated fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetFaultPlans {
    plans: Vec<FaultPlan>,
    blackout: Option<Blackout>,
    fail_slow: Option<FailSlowWindow>,
}

impl FleetFaultPlans {
    /// A healthy fleet: every machine gets the empty plan.
    pub fn healthy(machines: usize) -> Self {
        FleetFaultPlans {
            plans: vec![FaultPlan::none(); machines],
            blackout: None,
            fail_slow: None,
        }
    }

    /// Seed-derived background fault schedules: machine `m` runs
    /// `FaultPlan::generate(machine_seed(seed, m), config)`. Identical
    /// `(seed, machines, config)` triples produce identical fleets.
    pub fn generate(seed: u64, machines: usize, config: &FaultScheduleConfig) -> Self {
        FleetFaultPlans {
            plans: (0..machines)
                .map(|m| FaultPlan::generate(machine_seed(seed, m), config))
                .collect(),
            blackout: None,
            fail_slow: None,
        }
    }

    /// Overlay a whole-machine blackout on machine `victim` over
    /// `[at, until)`: both sockets lose every interleaved channel the
    /// dropout clamp allows, the surviving channel is throttled to
    /// [`BLACKOUT_THROTTLE`], and the iMC queues stall. The machine's
    /// effective bandwidth collapses by >10³ — dead for any deadline-
    /// carrying job — while virtual time still advances.
    pub fn with_lost_machine(mut self, victim: usize, at: f64, until: f64) -> Self {
        if let Some(plan) = self.plans.get_mut(victim) {
            let mut events = plan.events().to_vec();
            events.extend(blackout_events(at, until));
            *plan = FaultPlan::from_events(events);
            self.blackout = Some(Blackout {
                machine: victim,
                at,
                until,
            });
        }
        self
    }

    /// Overlay a sustained fail-slow window on machine `victim` over
    /// `[at, until)`: the whole machine serves at `factor` of its rate —
    /// alive, answering, and slow. Unlike a blackout nothing binary ever
    /// trips; only latency-sensitive detection can see it. Composable
    /// with [`Self::with_lost_machine`] on a different (or the same)
    /// machine.
    pub fn with_fail_slow(mut self, victim: usize, at: f64, until: f64, factor: f64) -> Self {
        if let Some(plan) = self.plans.get_mut(victim) {
            let mut events = plan.events().to_vec();
            events.push(FaultEvent {
                start: at,
                end: until,
                kind: FaultKind::FailSlow { factor },
            });
            *plan = FaultPlan::from_events(events);
            self.fail_slow = Some(FailSlowWindow {
                machine: victim,
                at,
                until,
                factor,
            });
        }
        self
    }

    /// Overlay one extra fault event on machine `victim`'s plan — the
    /// composition hook the chaos scheduler uses to stack power losses
    /// and media errors onto blackout/fail-slow fleets. A no-op for
    /// out-of-range machines, like the other overlays.
    pub fn with_machine_event(mut self, victim: usize, event: FaultEvent) -> Self {
        if let Some(plan) = self.plans.get_mut(victim) {
            let mut events = plan.events().to_vec();
            events.push(event);
            *plan = FaultPlan::from_events(events);
        }
        self
    }

    /// Machine `m`'s plan. Out-of-range machines are healthy.
    pub fn plan(&self, machine: usize) -> FaultPlan {
        self.plans.get(machine).cloned().unwrap_or_default()
    }

    /// Number of machines in the fleet.
    pub fn machines(&self) -> usize {
        self.plans.len()
    }

    /// The scheduled blackout, if [`Self::with_lost_machine`] installed one.
    pub fn blackout(&self) -> Option<Blackout> {
        self.blackout
    }

    /// The scheduled fail-slow window, if [`Self::with_fail_slow`]
    /// installed one.
    pub fn fail_slow(&self) -> Option<FailSlowWindow> {
        self.fail_slow
    }
}

/// The event stack that kills one whole machine over `[at, until)`.
pub fn blackout_events(at: f64, until: f64) -> Vec<FaultEvent> {
    let mut events = Vec::with_capacity(6);
    for socket in [SocketId(0), SocketId(1)] {
        events.push(FaultEvent {
            start: at,
            end: until,
            kind: FaultKind::DimmDropout { socket, dimms: 255 },
        });
        events.push(FaultEvent {
            start: at,
            end: until,
            kind: FaultKind::WriteThrottle {
                socket,
                factor: BLACKOUT_THROTTLE,
            },
        });
        events.push(FaultEvent {
            start: at,
            end: until,
            kind: FaultKind::QueueStall { socket },
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::STALL_SCALE;
    use crate::topology::Machine;

    #[test]
    fn machine_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..16).map(|m| machine_seed(7, m)).collect();
        let b: Vec<u64> = (0..16).map(|m| machine_seed(7, m)).collect();
        assert_eq!(a, b, "same fleet seed, same per-machine seeds");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "machines get distinct seeds");
        assert_ne!(machine_seed(7, 0), machine_seed(8, 0), "seed matters");
    }

    #[test]
    fn generated_fleet_is_reproducible_and_per_machine_distinct() {
        let cfg = FaultScheduleConfig::over(1.0);
        let a = FleetFaultPlans::generate(42, 4, &cfg);
        let b = FleetFaultPlans::generate(42, 4, &cfg);
        for m in 0..4 {
            assert_eq!(a.plan(m), b.plan(m), "machine {m} replays exactly");
        }
        assert_ne!(a.plan(0), a.plan(1), "machines fail independently");
    }

    #[test]
    fn blackout_stack_constants_are_pinned() {
        // The blackout stack is built in exactly one place
        // (`blackout_events`); `with_lost_machine` and every test and
        // rejoin window must route through it. Pin the constants so a
        // drift in either direction (stack composition or rejoin window
        // interpretation) fails loudly here.
        assert_eq!(BLACKOUT_THROTTLE, 1e-3, "pinned: >10^3 collapse");
        let stack = blackout_events(0.2, 1.0);
        assert_eq!(stack.len(), 6, "3 kinds x 2 sockets");
        for socket in [SocketId(0), SocketId(1)] {
            let expect = [
                FaultKind::DimmDropout { socket, dimms: 255 },
                FaultKind::WriteThrottle {
                    socket,
                    factor: BLACKOUT_THROTTLE,
                },
                FaultKind::QueueStall { socket },
            ];
            for kind in expect {
                assert!(
                    stack
                        .iter()
                        .any(|e| e.start == 0.2 && e.end == 1.0 && e.kind == kind),
                    "stack carries {kind:?} over the exact window"
                );
            }
        }
        // `with_lost_machine` is the same stack, event for event: the
        // overlaid plan equals `from_events(blackout_events(..))`.
        let fleet = FleetFaultPlans::healthy(2).with_lost_machine(1, 0.2, 1.0);
        assert_eq!(fleet.plan(1), FaultPlan::from_events(stack));
    }

    #[test]
    fn extra_machine_events_compose_with_the_blackout_stack() {
        let fleet = FleetFaultPlans::healthy(2)
            .with_lost_machine(0, 0.2, 0.4)
            .with_machine_event(
                0,
                FaultEvent {
                    start: 0.25,
                    end: 0.25,
                    kind: FaultKind::PowerLoss {
                        socket: SocketId(0),
                    },
                },
            );
        assert_eq!(fleet.plan(0).power_losses_in(0.0, 1.0).len(), 1);
        let machine = Machine::paper_default();
        assert!(fleet.plan(0).state_at(&machine, 0.3).is_degraded());
        // Out-of-range machines stay healthy, like the other overlays.
        let noop = FleetFaultPlans::healthy(1).with_machine_event(
            5,
            FaultEvent {
                start: 0.1,
                end: 0.1,
                kind: FaultKind::PowerLoss {
                    socket: SocketId(0),
                },
            },
        );
        assert!(noop.plan(5).is_empty());
    }

    #[test]
    fn blackout_collapses_both_sockets_for_the_window() {
        let fleet = FleetFaultPlans::healthy(3).with_lost_machine(1, 0.2, 1.0);
        let machine = Machine::paper_default();
        let dead = fleet.plan(1);
        for socket in [SocketId(0), SocketId(1)] {
            let s = dead.state_at(&machine, 0.5).socket(socket);
            // Dropout leaves 1/channels, the stall multiplies STALL_SCALE
            // on top, and writes also carry the throttle factor.
            assert!(
                s.read_scale <= STALL_SCALE / 2.0,
                "reads dead: {}",
                s.read_scale
            );
            assert!(
                s.write_scale <= BLACKOUT_THROTTLE,
                "writes dead: {}",
                s.write_scale
            );
            assert!(
                s.read_scale > 0.0 && s.write_scale > 0.0,
                "never exactly zero"
            );
        }
        // Before the window and on healthy peers nothing degrades.
        assert!(!dead.state_at(&machine, 0.1).is_degraded());
        assert!(!fleet.plan(0).state_at(&machine, 0.5).is_degraded());
        assert_eq!(
            fleet.blackout(),
            Some(Blackout {
                machine: 1,
                at: 0.2,
                until: 1.0
            })
        );
    }

    #[test]
    fn interconnect_prices_latency_plus_bytes() {
        let net = Interconnect::paper_default();
        let small = net.transfer_seconds(0);
        assert!((small - 10e-6).abs() < 1e-12, "latency floor");
        let gib = net.transfer_seconds(1 << 30);
        assert!(
            gib > 0.08 && gib < 0.09,
            "1 GiB over 100 GbE ~ 86 ms: {gib}"
        );
        assert!(
            net.transfer_seconds(2 << 30) > 2.0 * gib - 10e-6,
            "bytes dominate large transfers"
        );
    }

    #[test]
    fn out_of_range_machines_are_healthy() {
        let fleet = FleetFaultPlans::healthy(2);
        assert!(fleet.plan(9).is_empty());
        assert_eq!(fleet.machines(), 2);
        assert_eq!(
            fleet.clone().with_fail_slow(9, 0.0, 1.0, 0.1).fail_slow(),
            None,
            "fail-slow on a machine that is not there is a no-op"
        );
    }

    #[test]
    fn fail_slow_degrades_one_machine_and_composes_with_blackout() {
        let fleet = FleetFaultPlans::healthy(4)
            .with_fail_slow(2, 0.1, 0.5, 0.1)
            .with_lost_machine(1, 0.3, 1.0);
        let machine = Machine::paper_default();
        let gray = fleet.plan(2);
        let state = gray.state_at(&machine, 0.2);
        assert!((state.service_scale() - 0.1).abs() < 1e-12, "10x slower");
        assert!(
            state.service_scale() > BLACKOUT_THROTTLE * 10.0,
            "gray is alive — orders of magnitude above a blackout"
        );
        assert!(!gray.state_at(&machine, 0.6).is_degraded(), "recovers");
        // The blackout on machine 1 coexists with the gray window on 2.
        let dead = fleet.plan(1).state_at(&machine, 0.5);
        assert!(dead.service_scale() < STALL_SCALE);
        assert!(!fleet.plan(0).state_at(&machine, 0.2).is_degraded());
        assert_eq!(
            fleet.fail_slow(),
            Some(FailSlowWindow {
                machine: 2,
                at: 0.1,
                until: 0.5,
                factor: 0.1
            })
        );
        assert!(fleet.blackout().is_some());
    }

    #[test]
    fn fail_slow_stacks_onto_a_blackout_of_the_same_machine() {
        // A machine can fail slow *and then* die: the windows multiply
        // where they overlap, and the record-keeping keeps both.
        let fleet = FleetFaultPlans::healthy(2)
            .with_fail_slow(0, 0.1, 1.0, 0.5)
            .with_lost_machine(0, 0.5, 1.0);
        let machine = Machine::paper_default();
        let plan = fleet.plan(0);
        assert!((plan.state_at(&machine, 0.2).service_scale() - 0.5).abs() < 1e-12);
        let both = plan.state_at(&machine, 0.7).service_scale();
        let dead_only = FleetFaultPlans::healthy(2)
            .with_lost_machine(0, 0.5, 1.0)
            .plan(0)
            .state_at(&machine, 0.7)
            .service_scale();
        assert!((both - dead_only * 0.5).abs() < 1e-15, "scales multiply");
    }

    #[test]
    fn transfer_seconds_zero_bytes_is_exactly_the_latency_floor() {
        let net = Interconnect::paper_default();
        assert_eq!(
            net.transfer_seconds(0).to_bits(),
            net.latency_seconds.to_bits(),
            "zero bytes pay latency and nothing else"
        );
        // The degraded-link path agrees on a healthy plan, bit for bit.
        assert_eq!(
            net.transfer_seconds_at(0, 0.5, &LinkPlan::none()).to_bits(),
            net.transfer_seconds(0).to_bits()
        );
        assert_eq!(
            net.latency_seconds_at(0.5, &LinkPlan::none()).to_bits(),
            net.latency_seconds.to_bits()
        );
    }

    #[test]
    fn degraded_link_inflates_latency_and_shrinks_bandwidth() {
        let net = Interconnect::paper_default();
        let plan = LinkPlan::from_events(vec![LinkEvent {
            start: 0.1,
            end: 0.4,
            latency_scale: 5.0,
            bandwidth_scale: 0.25,
        }]);
        let bytes = 1u64 << 30;
        let healthy = net.transfer_seconds_at(bytes, 0.05, &plan);
        assert_eq!(
            healthy.to_bits(),
            net.transfer_seconds(bytes).to_bits(),
            "outside the window the plan prices nothing"
        );
        let degraded = net.transfer_seconds_at(bytes, 0.2, &plan);
        let expect =
            net.latency_seconds * 5.0 + bytes as f64 / (net.bandwidth_bytes_per_sec * 0.25);
        assert!((degraded - expect).abs() < 1e-12);
        assert!(degraded > 3.9 * healthy, "a quartered link ~4x slower");
        assert!((net.latency_seconds_at(0.2, &plan) - 5.0 * net.latency_seconds).abs() < 1e-15);
        // Half-open window: recovery instant prices healthy again.
        assert_eq!(
            net.transfer_seconds_at(bytes, 0.4, &plan).to_bits(),
            net.transfer_seconds(bytes).to_bits()
        );
    }

    #[test]
    fn degraded_link_extremes_stay_finite_and_bounded() {
        let net = Interconnect::paper_default();
        // A pathological plan: bandwidth scaled to zero, latency scaled
        // below one, both at once. Scales clamp — bandwidth to a floor
        // that keeps transfers finite, latency to never beat healthy.
        let broken = LinkPlan::from_events(vec![LinkEvent {
            start: 0.0,
            end: 1.0,
            latency_scale: 0.01,
            bandwidth_scale: 0.0,
        }]);
        let (latency_scale, bandwidth_scale) = broken.scales_at(0.5);
        assert_eq!(latency_scale, 1.0, "latency never improves under faults");
        assert_eq!(bandwidth_scale, 1e-6, "bandwidth floor keeps time finite");
        let t = net.transfer_seconds_at(64 << 20, 0.5, &broken);
        assert!(t.is_finite() && t > 0.0);
        // Overlapping windows compound, and still clamp.
        let stacked = LinkPlan::from_events(vec![
            LinkEvent {
                start: 0.0,
                end: 1.0,
                latency_scale: 4.0,
                bandwidth_scale: 0.1,
            },
            LinkEvent {
                start: 0.0,
                end: 1.0,
                latency_scale: 3.0,
                bandwidth_scale: 0.001,
            },
        ]);
        let (latency_scale, bandwidth_scale) = stacked.scales_at(0.5);
        assert!((latency_scale - 12.0).abs() < 1e-12);
        assert!((bandwidth_scale - 1e-4).abs() < 1e-16);
        assert!(net.transfer_seconds_at(u64::MAX, 0.5, &stacked).is_finite());
        // Zero bytes under an extreme plan still pays only (scaled) latency.
        let zero = net.transfer_seconds_at(0, 0.5, &stacked);
        assert!((zero - 12.0 * net.latency_seconds).abs() < 1e-15);
    }

    #[test]
    fn link_plans_replay_from_their_seed() {
        let gen = || LinkPlan::generate(9, 0.2, 3, (1.5, 6.0), (0.2, 0.9));
        let a = gen();
        assert_eq!(a, gen(), "same seed, same jitter");
        assert_eq!(a.events().len(), 3);
        for e in a.events() {
            assert!(e.start >= 0.0 && e.end <= 0.2 && e.end > e.start);
            assert!((1.5..6.0).contains(&e.latency_scale));
            assert!((0.2..0.9).contains(&e.bandwidth_scale));
        }
        assert_ne!(
            a,
            LinkPlan::generate(10, 0.2, 3, (1.5, 6.0), (0.2, 0.9)),
            "seed matters"
        );
        assert!(LinkPlan::none().is_empty());
        assert_eq!(LinkPlan::none().scales_at(0.1), (1.0, 1.0));
    }
}

//! Cross-socket address-space mapping state (§3.4).
//!
//! Xeon processors manage the address space of multiple sockets through a
//! coherency protocol whose mapping entries must be *reassigned* when memory
//! is first accessed by cores of another socket. The paper observes:
//!
//! * the **first** multi-threaded far read of a region runs at ~8 GB/s,
//! * the **second and later** runs at ~33 GB/s (UPI-payload-bound),
//! * touching the region with a **single thread first** eliminates the
//!   warm-up entirely (it is a NUMA-region, not a per-core effect),
//! * if access keeps **switching between sockets**, remapping is constant
//!   and bandwidth stays poor — the unpinned-scheduler disaster of Fig. 4.
//!
//! [`CoherenceDirectory`] tracks, per (memory region, accessing socket),
//! whether the mapping is already established.

use std::collections::HashMap;

use crate::topology::SocketId;

/// Opaque identifier of a memory region (the simulation assigns one per
/// allocated region / benchmark buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Mapping temperature of a (region, socket) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingState {
    /// No mapping entries for this socket yet: the next multi-threaded
    /// access pays the remapping penalty.
    Cold,
    /// Mapping established; far access runs at the warm UPI-bound rate.
    Warm,
}

/// Tracks which sockets have established coherence mappings for which
/// regions, and detects mapping churn.
#[derive(Debug, Default, Clone)]
pub struct CoherenceDirectory {
    warm: HashMap<(RegionId, SocketId), ()>,
    /// Last socket to access each region — used to detect ping-ponging.
    last_accessor: HashMap<RegionId, SocketId>,
    next_region: u64,
}

impl CoherenceDirectory {
    /// New, fully cold directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh region id.
    pub fn new_region(&mut self) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        id
    }

    /// Current mapping state for `socket` accessing `region`.
    pub fn state(&self, region: RegionId, socket: SocketId) -> MappingState {
        if self.warm.contains_key(&(region, socket)) {
            MappingState::Warm
        } else {
            MappingState::Cold
        }
    }

    /// Record a multi-threaded access and return the state that applied to
    /// *this* access (cold on first touch, warm afterwards). Also records
    /// the accessing socket for churn detection.
    pub fn touch(&mut self, region: RegionId, socket: SocketId) -> MappingState {
        let state = self.state(region, socket);
        self.warm.insert((region, socket), ());
        self.last_accessor.insert(region, socket);
        state
    }

    /// Pre-fault / pre-touch with a single thread (the paper's trick that
    /// "eliminates the warm-up behavior"): establishes the mapping without a
    /// bandwidth-relevant access.
    pub fn prewarm(&mut self, region: RegionId, socket: SocketId) {
        self.warm.insert((region, socket), ());
    }

    /// Invalidate the mapping of `region` for every socket except
    /// `new_owner` — what constant socket switching effectively does. The
    /// paper recommends changing "the assignment of address spaces to NUMA
    /// regions as rarely as possible" precisely because of this.
    pub fn reassign(&mut self, region: RegionId, new_owner: SocketId) {
        self.warm
            .retain(|(r, s), _| *r != region || *s == new_owner);
        self.warm.insert((region, new_owner), ());
        self.last_accessor.insert(region, new_owner);
    }

    /// Whether the previous accessor of `region` was a different socket
    /// (ping-pong pattern).
    pub fn switching(&self, region: RegionId, socket: SocketId) -> bool {
        self.last_accessor
            .get(&region)
            .is_some_and(|prev| *prev != socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_cold_second_is_warm() {
        let mut dir = CoherenceDirectory::new();
        let r = dir.new_region();
        assert_eq!(dir.touch(r, SocketId(0)), MappingState::Cold);
        assert_eq!(dir.touch(r, SocketId(0)), MappingState::Warm);
        // The other socket still pays its own warm-up.
        assert_eq!(dir.touch(r, SocketId(1)), MappingState::Cold);
        assert_eq!(dir.touch(r, SocketId(1)), MappingState::Warm);
    }

    #[test]
    fn prewarm_eliminates_warmup() {
        // §3.4: "reading with a single thread on far memory before reading
        // with multiple threads ... eliminates the warm-up behavior".
        let mut dir = CoherenceDirectory::new();
        let r = dir.new_region();
        dir.prewarm(r, SocketId(1));
        assert_eq!(dir.touch(r, SocketId(1)), MappingState::Warm);
    }

    #[test]
    fn reassignment_invalidates_other_sockets() {
        let mut dir = CoherenceDirectory::new();
        let r = dir.new_region();
        dir.touch(r, SocketId(0));
        dir.touch(r, SocketId(1));
        dir.reassign(r, SocketId(1));
        assert_eq!(dir.state(r, SocketId(0)), MappingState::Cold);
        assert_eq!(dir.state(r, SocketId(1)), MappingState::Warm);
    }

    #[test]
    fn switching_detects_ping_pong() {
        let mut dir = CoherenceDirectory::new();
        let r = dir.new_region();
        dir.touch(r, SocketId(0));
        assert!(dir.switching(r, SocketId(1)));
        assert!(!dir.switching(r, SocketId(0)));
    }

    #[test]
    fn regions_are_independent() {
        let mut dir = CoherenceDirectory::new();
        let a = dir.new_region();
        let b = dir.new_region();
        assert_ne!(a, b);
        dir.touch(a, SocketId(0));
        assert_eq!(dir.state(b, SocketId(0)), MappingState::Cold);
    }
}

//! # pmem-sim — a simulated dual-socket Optane/DRAM memory system
//!
//! This crate is the hardware substrate for the `pmem-olap` workspace, which
//! reproduces *"Maximizing Persistent Memory Bandwidth Utilization for OLAP
//! Workloads"* (Daase, Bollmeier, Benson, Rabl — SIGMOD 2021). The paper
//! characterizes Intel Optane DC Persistent Memory on a dual-socket Xeon
//! server; that hardware is modeled here so the paper's experiments can run
//! anywhere.
//!
//! The crate provides:
//!
//! * [`topology`] — the machine: 2 sockets × 2 iMCs × 3 channels, one Optane
//!   DIMM and one DRAM DIMM per channel, 4 NUMA nodes, a UPI link, 18
//!   hyperthreaded cores per socket, and the 4 KB DIMM interleaving map.
//! * [`params`] — every calibration constant of the device models, each
//!   documented with the paper anchor it reproduces.
//! * [`workload`] — the vocabulary of the paper's microbenchmarks: access
//!   kind, grouped/individual/random patterns, placements, pinning.
//! * [`analytic`] — a closed-form steady-state bandwidth model built from the
//!   mechanisms the paper identifies (DIMM coverage, the L2 prefetcher, the
//!   Optane 256 B read buffer, the per-DIMM write-combining buffer, iMC
//!   queues, UPI capacity, coherence warm-up, ntstore read-modify-write).
//! * [`des`] — a discrete-event engine that pushes individual cache-line
//!   requests through core → iMC queue → channel → DIMM with virtual time;
//!   used for latency distributions and to validate the analytic curves.
//! * [`sched`] — the OS scheduler / thread-pinning model (`None`,
//!   `NumaRegion`, `Cores`).
//! * [`coherence`] — the cross-socket address-space remapping state that
//!   produces the paper's far-read warm-up effect.
//!
//! ## Quick example
//!
//! ```
//! use pmem_sim::prelude::*;
//!
//! let machine = Machine::paper_default();
//! let mut sim = Simulation::new(machine);
//! let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18)
//!     .pattern(Pattern::SequentialIndividual)
//!     .pinning(Pinning::Cores);
//! let eval = sim.evaluate(&spec);
//! // Near-socket sequential reads with all physical cores saturate PMEM at
//! // roughly 40 GB/s (paper Figure 3).
//! assert!(eval.total_bandwidth.gib_s() > 35.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(clippy::unwrap_used)]

pub mod analytic;
pub mod bandwidth;
pub mod chaos;
pub mod coherence;
pub mod des;
pub mod faults;
pub mod fleet;
pub mod params;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod topology;
pub mod workload;

mod simulation;

pub use bandwidth::{tiered_rate, Bandwidth};
pub use rng::{splitmix64, SplitMix64};
pub use simulation::{Evaluation, Simulation};

/// Convenient re-exports of the types needed for typical use.
pub mod prelude {
    pub use crate::analytic::BandwidthModel;
    pub use crate::bandwidth::Bandwidth;
    pub use crate::des::arrivals::ArrivalProcess;
    pub use crate::faults::{
        FaultEvent, FaultKind, FaultPlan, FaultScheduleConfig, MachineFaultState, MediaHit,
        SocketFaultState, XPLINE_BYTES,
    };
    pub use crate::fleet::{Blackout, FleetFaultPlans, Interconnect};
    pub use crate::params::{DeviceClass, SystemParams};
    pub use crate::sched::Pinning;
    pub use crate::simulation::{Evaluation, Simulation};
    pub use crate::topology::{Machine, SocketId};
    pub use crate::workload::{AccessKind, Pattern, Placement, WorkloadSpec};
}

//! Stateful simulation wrapper: couples the analytic [`BandwidthModel`] with
//! the [`CoherenceDirectory`] so repeated runs reproduce the paper's far-read
//! warm-up behaviour, and derives per-run statistics (the VTune stand-ins).

use crate::analytic::{BandwidthModel, CoherenceView, MixedEvaluation};
use crate::bandwidth::Bandwidth;
use crate::coherence::{CoherenceDirectory, MappingState, RegionId};
use crate::params::{DeviceClass, SystemParams};
use crate::stats::SimStats;
use crate::topology::{Machine, SocketId};
use crate::workload::{AccessKind, MixedSpec, Pattern, Placement, WorkloadSpec};

/// Result of evaluating one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Aggregate achieved bandwidth across all threads and sockets.
    pub total_bandwidth: Bandwidth,
    /// Simulated wall-clock time to move the spec's `total_bytes`.
    pub elapsed_seconds: f64,
    /// Derived device counters.
    pub stats: SimStats,
}

/// A stateful simulation of the paper's dual-socket server.
///
/// Holds the coherence directory so that, e.g., the first far read of a
/// socket's PMEM runs cold (~8 GB/s) and later runs warm (~33 GB/s), exactly
/// as in Figure 5. Use [`Simulation::evaluate_steady`] for the stateless
/// steady-state number.
#[derive(Debug, Clone)]
pub struct Simulation {
    model: BandwidthModel,
    directory: CoherenceDirectory,
    /// One default memory region per socket's interleave set.
    socket_regions: [RegionId; 2],
}

impl Simulation {
    /// Simulation of the given machine with paper-default device parameters.
    pub fn new(machine: Machine) -> Self {
        let params = SystemParams {
            machine,
            ..SystemParams::paper_default()
        };
        Self::with_params(params)
    }

    /// Simulation with explicit parameters.
    pub fn with_params(params: SystemParams) -> Self {
        let mut directory = CoherenceDirectory::new();
        let r0 = directory.new_region();
        let r1 = directory.new_region();
        // Each socket's own cores are always warm for their near memory.
        directory.prewarm(r0, SocketId(0));
        directory.prewarm(r1, SocketId(1));
        Simulation {
            model: BandwidthModel::new(params),
            directory,
            socket_regions: [r0, r1],
        }
    }

    /// Paper-default simulation.
    pub fn paper_default() -> Self {
        Self::new(Machine::paper_default())
    }

    /// The parameter set in use.
    pub fn params(&self) -> &SystemParams {
        self.model.params()
    }

    /// The underlying analytic model.
    pub fn model(&self) -> &BandwidthModel {
        &self.model
    }

    /// Mutable access to the coherence directory (for scripted experiments
    /// such as the single-thread pre-touch trick of §3.4).
    pub fn coherence_mut(&mut self) -> &mut CoherenceDirectory {
        &mut self.directory
    }

    /// The default region id of a socket's PMEM interleave set.
    pub fn socket_region(&self, socket: SocketId) -> RegionId {
        self.socket_regions[socket.0 as usize]
    }

    /// Pre-touch `mem` socket's region from `cpu` socket with a single
    /// thread, establishing the coherence mapping without a cold run.
    pub fn prewarm(&mut self, cpu: SocketId, mem: SocketId) {
        let region = self.socket_region(mem);
        self.directory.prewarm(region, cpu);
    }

    /// Forget all cross-socket mappings (e.g. between benchmark series).
    pub fn reset_coherence(&mut self) {
        let mut directory = CoherenceDirectory::new();
        let r0 = directory.new_region();
        let r1 = directory.new_region();
        directory.prewarm(r0, SocketId(0));
        directory.prewarm(r1, SocketId(1));
        self.directory = directory;
        self.socket_regions = [r0, r1];
    }

    /// Evaluate a workload *statefully*: far accesses consult and update the
    /// coherence directory, so the first far run is cold and later runs are
    /// warm.
    pub fn evaluate(&mut self, spec: &WorkloadSpec) -> Evaluation {
        let view = self.touch_for(spec);
        self.finish(spec, view)
    }

    /// Evaluate the steady-state (all mappings warm) without mutating state.
    pub fn evaluate_steady(&self, spec: &WorkloadSpec) -> Evaluation {
        self.finish(spec, CoherenceView::WARM)
    }

    /// Evaluate a mixed read/write workload (Figure 11).
    pub fn evaluate_mixed(&self, spec: &MixedSpec) -> MixedEvaluation {
        self.model.mixed(spec)
    }

    /// Evaluate a mixed workload on a socket degraded per an injected fault
    /// state: the healthy Figure-11 surface is computed first, then each
    /// direction is scaled by the fault's remaining-bandwidth share (DIMM
    /// dropout and queue stalls hit both directions; thermal write
    /// throttling only the WPQ drain rate).
    pub fn evaluate_mixed_degraded(
        &self,
        spec: &MixedSpec,
        fault: &crate::faults::SocketFaultState,
    ) -> MixedEvaluation {
        let healthy = self.model.mixed(spec);
        MixedEvaluation {
            read: healthy.read.degrade(fault.read_scale),
            write: healthy.write.degrade(fault.write_scale),
        }
    }

    /// Update the directory for the sockets this spec makes cross, and
    /// return the view that applied *during* this run.
    fn touch_for(&mut self, spec: &WorkloadSpec) -> CoherenceView {
        let mut view = CoherenceView::WARM;
        match spec.placement {
            Placement::Single { cpu, mem } if cpu != mem => {
                let state = self.directory.touch(self.socket_region(mem), cpu);
                if cpu.0 == 0 {
                    view.socket0 = state;
                } else {
                    view.socket1 = state;
                }
            }
            Placement::BothFar => {
                view.socket0 = self
                    .directory
                    .touch(self.socket_region(SocketId(1)), SocketId(0));
                view.socket1 = self
                    .directory
                    .touch(self.socket_region(SocketId(0)), SocketId(1));
            }
            Placement::Contended => {
                view.socket1 = self
                    .directory
                    .touch(self.socket_region(SocketId(0)), SocketId(1));
            }
            _ => {}
        }
        view
    }

    fn finish(&self, spec: &WorkloadSpec, view: CoherenceView) -> Evaluation {
        let bw = self.model.bandwidth(spec, view);
        let elapsed = bw.time_for_bytes(spec.total_bytes);
        let stats = self.derive_stats(spec, view);
        Evaluation {
            total_bandwidth: bw,
            elapsed_seconds: elapsed,
            stats,
        }
    }

    /// Derive device counters from the workload shape — the simulator-native
    /// equivalent of the paper's VTune observations.
    fn derive_stats(&self, spec: &WorkloadSpec, view: CoherenceView) -> SimStats {
        let params = self.model.params();
        let mut stats = SimStats::default();
        let app = spec.total_bytes;
        let xp = params.optane.xpline_bytes;
        let pmem = spec.device == DeviceClass::Pmem;

        match spec.kind {
            AccessKind::Read => {
                stats.app_read_bytes = app;
                let ampl = if pmem && spec.access_size < xp {
                    match spec.pattern {
                        // Sequential sub-XPLine reads are served from the
                        // controller's 256 B buffer — no amplification.
                        Pattern::SequentialGrouped | Pattern::SequentialIndividual => {
                            stats.read_buffer_hits = app / spec.access_size.max(1) - app / xp;
                            1.0
                        }
                        Pattern::Random { .. } => xp as f64 / spec.access_size as f64,
                    }
                } else {
                    1.0
                };
                stats.media_read_bytes = (app as f64 * ampl) as u64;
            }
            AccessKind::Write => {
                stats.app_write_bytes = app;
                let ampl = if !pmem {
                    1.0
                } else if spec.placement.crosses_upi() {
                    crate::analytic::far_write_amplification_estimate(params, spec.threads)
                } else {
                    crate::analytic::near_write_amplification_estimate(params, spec)
                };
                stats.media_write_bytes = (app as f64 * ampl) as u64;
                if ampl > 1.05 {
                    let lines = app / xp.max(1);
                    let partial = ((ampl - 1.0) / ampl * lines as f64) as u64;
                    stats.partial_flushes = partial;
                    stats.full_flushes = lines - partial.min(lines);
                } else {
                    stats.full_flushes = app / xp.max(1);
                }
            }
        }

        if spec.placement.crosses_upi() {
            // Raw UPI traffic includes the ~25 % metadata share.
            let payload = match spec.placement {
                Placement::Single { .. } | Placement::Contended => app,
                _ => app * 2,
            };
            stats.upi_bytes = (payload as f64 / (1.0 - params.upi.metadata_fraction)) as u64;
        }

        let cold = |s: MappingState| s == MappingState::Cold;
        if cold(view.socket0) || cold(view.socket1) {
            stats.remap_events = 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn far_read(threads: u32) -> WorkloadSpec {
        WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, threads).placement(Placement::FAR)
    }

    #[test]
    fn first_far_run_is_cold_second_is_warm() {
        // Figure 5: Far ≈8 GB/s, 2nd Far ≈33 GB/s.
        let mut sim = Simulation::paper_default();
        let first = sim.evaluate(&far_read(18));
        let second = sim.evaluate(&far_read(18));
        let b1 = first.total_bandwidth.gib_s();
        let b2 = second.total_bandwidth.gib_s();
        assert!((5.0..9.5).contains(&b1), "cold far {b1}");
        assert!((30.0..35.0).contains(&b2), "warm far {b2}");
        assert_eq!(first.stats.remap_events, 1);
        assert_eq!(second.stats.remap_events, 0);
    }

    #[test]
    fn single_thread_pretouch_eliminates_warmup() {
        let mut sim = Simulation::paper_default();
        sim.prewarm(SocketId(0), SocketId(1));
        let first = sim.evaluate(&far_read(18));
        assert!(first.total_bandwidth.gib_s() > 30.0);
    }

    #[test]
    fn reset_coherence_makes_far_cold_again() {
        let mut sim = Simulation::paper_default();
        sim.evaluate(&far_read(18));
        sim.reset_coherence();
        let again = sim.evaluate(&far_read(18));
        assert!(again.total_bandwidth.gib_s() < 9.5);
    }

    #[test]
    fn near_reads_never_pay_warmup() {
        let mut sim = Simulation::paper_default();
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18);
        let e = sim.evaluate(&spec);
        assert!(e.total_bandwidth.gib_s() > 35.0);
        assert_eq!(e.stats.remap_events, 0);
    }

    #[test]
    fn elapsed_time_matches_bandwidth() {
        let sim = Simulation::paper_default();
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18).total_bytes(70 << 30);
        let e = sim.evaluate_steady(&spec);
        let expected = (70u64 << 30) as f64 / e.total_bandwidth.bytes_per_sec();
        assert!((e.elapsed_seconds - expected).abs() < 1e-9);
        // 70 GB at ~40 GB/s ≈ 1.7 s.
        assert!(
            (1.5..2.1).contains(&e.elapsed_seconds),
            "{}",
            e.elapsed_seconds
        );
    }

    #[test]
    fn far_write_stats_show_amplification() {
        let sim = Simulation::paper_default();
        let spec = WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 18).placement(Placement::FAR);
        let e = sim.evaluate_steady(&spec);
        assert!(
            e.stats.write_amplification() > 5.0,
            "far write amplification {}",
            e.stats.write_amplification()
        );
        assert!(e.stats.upi_bytes > spec.total_bytes);
    }

    #[test]
    fn near_large_write_with_few_threads_has_no_amplification() {
        let sim = Simulation::paper_default();
        let spec = WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 4);
        let e = sim.evaluate_steady(&spec);
        assert!(e.stats.write_amplification() < 1.2);
        assert_eq!(e.stats.upi_bytes, 0);
    }

    #[test]
    fn random_small_reads_amplify() {
        let sim = Simulation::paper_default();
        let spec = WorkloadSpec::random(DeviceClass::Pmem, AccessKind::Read, 64, 18, 2 << 30);
        let e = sim.evaluate_steady(&spec);
        assert!((e.stats.read_amplification() - 4.0).abs() < 0.1);
    }

    #[test]
    fn sequential_small_reads_hit_the_controller_buffer() {
        let sim = Simulation::paper_default();
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 64, 18);
        let e = sim.evaluate_steady(&spec);
        assert!(e.stats.read_amplification() < 1.01);
        assert!(e.stats.read_buffer_hits > 0);
    }

    #[test]
    fn mixed_evaluation_is_reachable_through_simulation() {
        let sim = Simulation::paper_default();
        let e = sim.evaluate_mixed(&MixedSpec::paper(DeviceClass::Pmem, 1, 30));
        assert!(e.read.gib_s() > e.write.gib_s());
    }
}

//! Bandwidth and byte-volume units.
//!
//! All simulator math is done in bytes and seconds (`f64`); this module wraps
//! the results in small newtypes so call sites cannot mix up units and so the
//! paper's GB/s figures can be displayed directly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// 2^30 bytes. The paper (and most memory literature) reports "GB/s" as
/// GiB/s; we follow that convention in [`Bandwidth::gib_s`].
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// 2^20 bytes.
pub const MIB: f64 = 1024.0 * 1024.0;

/// 2^10 bytes.
pub const KIB: f64 = 1024.0;

/// A data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Construct from raw bytes per second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        debug_assert!(
            bps.is_finite() && bps >= 0.0,
            "bandwidth must be finite and non-negative: {bps}"
        );
        Bandwidth(bps.max(0.0))
    }

    /// Construct from GiB/s (the unit the paper plots).
    #[inline]
    pub fn from_gib_s(gib_s: f64) -> Self {
        Self::from_bytes_per_sec(gib_s * GIB)
    }

    /// Raw bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// GiB per second — directly comparable to the paper's y-axes.
    #[inline]
    pub fn gib_s(self) -> f64 {
        self.0 / GIB
    }

    /// Time to move `bytes` at this rate. Returns `f64::INFINITY` for zero
    /// bandwidth so callers can treat an unusable path as "never completes".
    #[inline]
    pub fn time_for_bytes(self, bytes: u64) -> f64 {
        if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / self.0
        }
    }

    /// The smaller of two rates (e.g. demand limited by capacity).
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of two rates.
    #[inline]
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Scale by a dimensionless efficiency factor.
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 * factor)
    }

    /// Apply a fault-injection degradation factor. Unlike [`scale`], the
    /// factor is clamped to `[0, 1]`: a fault can only take bandwidth away,
    /// never create it.
    ///
    /// [`scale`]: Bandwidth::scale
    #[inline]
    pub fn degrade(self, factor: f64) -> Bandwidth {
        self.scale(factor.clamp(0.0, 1.0))
    }
}

/// Effective rate of a stream whose bytes split between two lanes: a
/// fraction `hit` is served at `fast` (the DRAM hot tier) and the rest at
/// `slow` (PMEM). Time adds, so rates combine harmonically:
/// `1 / ((1 - hit) / slow + hit / fast)`.
///
/// Degenerate lanes fall back sensibly: with `hit == 0` the result is
/// `slow`, with `hit == 1` it is `fast`, and a zero-rate lane that still
/// carries bytes yields zero.
pub fn tiered_rate(slow: Bandwidth, fast: Bandwidth, hit: f64) -> Bandwidth {
    let hit = hit.clamp(0.0, 1.0);
    let miss = 1.0 - hit;
    let mut denom = 0.0;
    if miss > 0.0 {
        if slow.bytes_per_sec() <= 0.0 {
            return Bandwidth::ZERO;
        }
        denom += miss / slow.bytes_per_sec();
    }
    if hit > 0.0 {
        if fast.bytes_per_sec() <= 0.0 {
            return Bandwidth::ZERO;
        }
        denom += hit / fast.bytes_per_sec();
    }
    if denom <= 0.0 {
        return slow;
    }
    Bandwidth::from_bytes_per_sec(1.0 / denom)
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.gib_s())
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        self.scale(rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let bw = Bandwidth::from_gib_s(40.0);
        assert!((bw.gib_s() - 40.0).abs() < 1e-12);
        assert!((bw.bytes_per_sec() - 40.0 * GIB).abs() < 1.0);
    }

    #[test]
    fn time_for_bytes_is_inverse_of_rate() {
        let bw = Bandwidth::from_gib_s(10.0);
        let t = bw.time_for_bytes((10.0 * GIB) as u64);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert!(Bandwidth::ZERO.time_for_bytes(1).is_infinite());
    }

    #[test]
    fn arithmetic_saturates_at_zero() {
        let a = Bandwidth::from_gib_s(1.0);
        let b = Bandwidth::from_gib_s(2.0);
        assert_eq!(a - b, Bandwidth::ZERO);
    }

    #[test]
    fn min_max_and_scale() {
        let a = Bandwidth::from_gib_s(1.0);
        let b = Bandwidth::from_gib_s(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!((a.scale(2.0).gib_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_rates() {
        let total: Bandwidth = [1.0, 2.0, 3.0]
            .iter()
            .map(|g| Bandwidth::from_gib_s(*g))
            .sum();
        assert!((total.gib_s() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_gib() {
        assert_eq!(format!("{}", Bandwidth::from_gib_s(12.5)), "12.50 GB/s");
    }

    #[test]
    fn tiered_rate_mixes_harmonically() {
        let pmem = Bandwidth::from_gib_s(10.0);
        let dram = Bandwidth::from_gib_s(40.0);
        assert_eq!(tiered_rate(pmem, dram, 0.0), pmem);
        assert_eq!(tiered_rate(pmem, dram, 1.0), dram);
        // 50/50 split: 1 / (0.5/10 + 0.5/40) = 16 GiB/s.
        let half = tiered_rate(pmem, dram, 0.5);
        assert!((half.gib_s() - 16.0).abs() < 1e-9, "got {}", half.gib_s());
        // Monotone in the hit rate.
        assert!(tiered_rate(pmem, dram, 0.7) > half);
        // Zero-rate lanes that carry bytes stall the stream.
        assert_eq!(tiered_rate(Bandwidth::ZERO, dram, 0.5), Bandwidth::ZERO);
        assert_eq!(tiered_rate(pmem, Bandwidth::ZERO, 0.5), Bandwidth::ZERO);
        assert_eq!(tiered_rate(pmem, Bandwidth::ZERO, 0.0), pmem);
    }
}

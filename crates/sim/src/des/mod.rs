//! Discrete-event engine (DES).
//!
//! Where the [`analytic`](crate::analytic) model computes closed-form
//! steady-state bandwidth, the DES pushes individual 64 B cache-line
//! requests through `thread → (UPI) → DIMM queue → media` with virtual
//! time, yielding:
//!
//! * request **latency distributions** (mean/percentiles),
//! * emergent **queueing and coverage** effects (e.g. one thread cannot
//!   saturate six DIMMs; sequential sub-256 B reads hit the controller's
//!   XPLine buffer),
//! * per-run [`crate::stats::SimStats`] counters.
//!
//! Two deliberate simplifications, documented for honesty:
//!
//! 1. The **write-combining efficiency** under buffer pressure is taken from
//!    the same calibrated occupancy model the analytic engine uses (the
//!    paper's §4.2 explanation), then applied per-flush — the DES still
//!    plays out ordering and queueing event by event.
//! 2. The **L2 prefetcher pathology** (grouped 1–2 KB dip) is a CPU-side
//!    artifact that is out of scope for a memory-device DES; the analytic
//!    model covers it.
//!
//! The engine simulates one socket's workload (near or far, read or write,
//! all three patterns, PMEM or DRAM). Multi-socket composition and mixed
//! read/write sharing live in the analytic model.

pub mod arrivals;
mod engine;
mod latency;

pub use arrivals::ArrivalProcess;
pub use latency::LatencyStats;

use crate::bandwidth::Bandwidth;
use crate::params::SystemParams;
use crate::stats::SimStats;
use crate::workload::{Placement, WorkloadSpec};

/// Configuration of one DES run.
#[derive(Debug, Clone)]
pub struct DesConfig {
    /// Device/calibration parameters (shared with the analytic model).
    pub params: SystemParams,
    /// The workload. `placement` decides near vs far; dual-socket
    /// placements are rejected (compose two runs instead).
    pub spec: WorkloadSpec,
    /// Bytes to actually simulate. Bandwidth is volume-invariant in steady
    /// state, so runs use a scaled-down volume (default 8 MiB) instead of
    /// the paper's 70 GB.
    pub volume_bytes: u64,
    /// Whether this access crosses the UPI (derived from the spec).
    pub far: bool,
    /// Whether the coherence mapping is cold (first far touch, §3.4).
    pub cold_far: bool,
    /// Per-page remap cost applied when `cold_far` (seconds).
    pub remap_cost: f64,
    /// Read pending-queue depth per DIMM.
    pub rpq_depth: u32,
    /// Write pending-queue depth per DIMM.
    pub wpq_depth: u32,
    /// RNG seed (random pattern); runs are deterministic given the seed.
    pub seed: u64,
    /// For mixed runs: the first `write_threads` of `spec.threads` issue
    /// writes while the rest read (Figure 11's x writers / y readers).
    /// Zero = all threads follow `spec.kind`.
    pub write_threads: u32,
    /// Replay mode: when set, threads pull these recorded accesses from a
    /// shared cursor instead of generating a synthetic pattern. Offsets are
    /// interpreted on the socket's interleave set.
    pub trace: Option<std::sync::Arc<Vec<ReplayOp>>>,
}

/// One access of a replayed trace (see `pmem_store::trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOp {
    /// Device byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Write vs read.
    pub write: bool,
}

impl DesConfig {
    /// Default-scaled configuration for a workload spec.
    pub fn new(spec: WorkloadSpec) -> Self {
        let far = spec.placement.crosses_upi();
        assert!(
            matches!(spec.placement, Placement::Single { .. }),
            "the DES simulates one socket at a time; compose dual-socket \
             placements from two runs"
        );
        DesConfig {
            params: SystemParams::paper_default(),
            spec,
            volume_bytes: 8 << 20,
            far,
            cold_far: false,
            remap_cost: 390e-9,
            rpq_depth: 24,
            wpq_depth: 24,
            seed: 0xD5_AA5E,
            write_threads: 0,
            trace: None,
        }
    }

    /// Replay a recorded access trace with `threads` workers sharing the
    /// stream (each worker claims the next op from a common cursor —
    /// the closed-loop equivalent of the recorded concurrency).
    pub fn replay(params: SystemParams, ops: Vec<ReplayOp>, threads: u32) -> Self {
        let volume: u64 = ops.iter().map(|o| o.len).sum();
        let spec = WorkloadSpec::seq_read(crate::params::DeviceClass::Pmem, 4096, threads.max(1));
        let mut cfg = DesConfig::new(spec);
        cfg.params = params;
        cfg.volume_bytes = volume.max(64);
        cfg.trace = Some(std::sync::Arc::new(ops));
        cfg
    }

    /// A mixed run: `write_threads` writers and `read_threads` readers on
    /// the same socket and DIMMs, each side streaming 4 KB individually —
    /// the Figure 11 workload, played out through the queues.
    pub fn mixed(params: SystemParams, write_threads: u32, read_threads: u32) -> Self {
        let spec = WorkloadSpec::seq_read(
            crate::params::DeviceClass::Pmem,
            4096,
            write_threads + read_threads,
        );
        let mut cfg = DesConfig::new(spec);
        cfg.params = params;
        cfg.write_threads = write_threads;
        cfg
    }

    /// Override the simulated volume.
    pub fn volume(mut self, bytes: u64) -> Self {
        self.volume_bytes = bytes;
        self
    }

    /// Mark the far mapping cold (first-touch run).
    pub fn cold(mut self) -> Self {
        self.cold_far = true;
        self
    }

    /// Override the parameter set.
    pub fn params(mut self, params: SystemParams) -> Self {
        self.params = params;
        self
    }
}

/// Result of a DES run.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Virtual seconds from first issue to last completion.
    pub elapsed_seconds: f64,
    /// Application bytes moved per virtual second.
    pub bandwidth: Bandwidth,
    /// Read-side bandwidth (equals `bandwidth` for pure reads).
    pub read_bandwidth: Bandwidth,
    /// Write-side bandwidth (zero for pure reads).
    pub write_bandwidth: Bandwidth,
    /// Device counters observed during the run.
    pub stats: SimStats,
    /// Latency distribution of read requests (empty for writes).
    pub read_latency: LatencyStats,
}

/// Run the discrete-event simulation.
pub fn run(config: &DesConfig) -> DesResult {
    engine::Engine::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{BandwidthModel, CoherenceView};
    use crate::params::DeviceClass;
    use crate::workload::{AccessKind, Pattern, WorkloadSpec};

    fn des_bw(spec: WorkloadSpec) -> f64 {
        run(&DesConfig::new(spec)).bandwidth.gib_s()
    }

    fn analytic_bw(spec: &WorkloadSpec) -> f64 {
        BandwidthModel::paper_default()
            .bandwidth(spec, CoherenceView::WARM)
            .gib_s()
    }

    /// Anchor agreement between the DES and the analytic model — generous
    /// tolerance, the DES is mechanism- not curve-fitted.
    fn assert_agree(spec: WorkloadSpec, rel_tol: f64) {
        let a = analytic_bw(&spec);
        let d = des_bw(spec.clone());
        let rel = (d - a).abs() / a;
        assert!(
            rel < rel_tol,
            "DES {d:.1} vs analytic {a:.1} GB/s for {spec:?} (rel {rel:.2})"
        );
    }

    #[test]
    fn near_read_peak_matches_analytic() {
        assert_agree(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18), 0.35);
    }

    #[test]
    fn single_thread_read_matches_analytic() {
        assert_agree(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 1), 0.45);
    }

    #[test]
    fn read_bandwidth_grows_with_threads() {
        let b1 = des_bw(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 1));
        let b4 = des_bw(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 4));
        let b18 = des_bw(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18));
        assert!(b1 < b4 && b4 < b18, "{b1} < {b4} < {b18}");
    }

    #[test]
    fn four_write_threads_saturate_the_media() {
        let spec = WorkloadSpec::seq_write(DeviceClass::Pmem, 4096, 4);
        let b = des_bw(spec);
        assert!((9.0..15.0).contains(&b), "write 4T {b}");
    }

    #[test]
    fn sequential_sub_xpline_reads_hit_the_buffer() {
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 64, 8).total_bytes(1 << 20);
        let r = run(&DesConfig::new(spec).volume(1 << 20));
        assert!(r.stats.read_buffer_hits > 0, "expected buffer hits");
        // 3 of every 4 lines hit the buffer.
        let hit_rate = r.stats.read_buffer_hits as f64 / (r.stats.app_read_bytes / 64) as f64;
        assert!((0.6..0.8).contains(&hit_rate), "hit rate {hit_rate}");
        assert!(
            r.stats.read_amplification() < 1.45,
            "{}",
            r.stats.read_amplification()
        );
    }

    #[test]
    fn random_sub_xpline_reads_amplify() {
        let spec = WorkloadSpec::random(DeviceClass::Pmem, AccessKind::Read, 64, 8, 1 << 30);
        let r = run(&DesConfig::new(spec).volume(1 << 20));
        assert!(
            r.stats.read_amplification() > 3.0,
            "random 64B amplification {}",
            r.stats.read_amplification()
        );
    }

    #[test]
    fn far_reads_are_slower_than_near_and_cold_slower_than_warm() {
        let near = des_bw(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18));
        let far_spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18)
            .placement(crate::workload::Placement::FAR);
        let warm = run(&DesConfig::new(far_spec.clone())).bandwidth.gib_s();
        let cold = run(&DesConfig::new(far_spec).cold()).bandwidth.gib_s();
        assert!(warm < near, "far warm {warm} < near {near}");
        assert!(cold < warm * 0.55, "cold {cold} well below warm {warm}");
        assert!((4.0..13.0).contains(&cold), "cold far {cold}");
    }

    #[test]
    fn write_latencies_do_not_pollute_read_histogram() {
        let r = run(&DesConfig::new(WorkloadSpec::seq_write(
            DeviceClass::Pmem,
            4096,
            4,
        )));
        assert_eq!(r.read_latency.count(), 0);
    }

    #[test]
    fn read_latency_distribution_is_plausible() {
        let r = run(&DesConfig::new(WorkloadSpec::seq_read(
            DeviceClass::Pmem,
            4096,
            18,
        )));
        let mean = r.read_latency.mean();
        // Idle latency is ~170 ns; loaded mean should sit above it but below
        // a few microseconds.
        assert!((170e-9..5e-6).contains(&mean), "mean latency {mean}");
        assert!(r.read_latency.quantile(0.99) >= r.read_latency.quantile(0.5));
    }

    #[test]
    fn dram_reads_are_faster_than_pmem() {
        let p = des_bw(WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18));
        let d = des_bw(WorkloadSpec::seq_read(DeviceClass::Dram, 4096, 18));
        assert!(d > 1.5 * p, "DRAM {d} vs PMEM {p}");
    }

    #[test]
    fn grouped_small_writes_underperform_individual() {
        let g = des_bw(
            WorkloadSpec::seq_write(DeviceClass::Pmem, 64, 36).pattern(Pattern::SequentialGrouped),
        );
        let i = des_bw(WorkloadSpec::seq_write(DeviceClass::Pmem, 64, 36));
        assert!(g < i, "grouped {g} < individual {i}");
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = WorkloadSpec::random(DeviceClass::Pmem, AccessKind::Read, 256, 8, 1 << 28);
        let a = run(&DesConfig::new(spec.clone()).volume(1 << 20));
        let b = run(&DesConfig::new(spec).volume(1 << 20));
        assert_eq!(a.elapsed_seconds, b.elapsed_seconds);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn mixed_runs_reproduce_the_read_write_interference() {
        // Figure 11's core effect, from queueing alone: adding writers to a
        // read stream costs read bandwidth, and the combined total stays
        // below the read-only throughput.
        let params = SystemParams::paper_default();
        let solo = run(&DesConfig::mixed(params.clone(), 0, 24));
        let mixed = run(&DesConfig::mixed(params.clone(), 4, 24));
        assert!(solo.write_bandwidth.gib_s() < 0.01);
        assert!(
            mixed.read_bandwidth.gib_s() < solo.read_bandwidth.gib_s(),
            "writers must cost readers: {} vs {}",
            mixed.read_bandwidth.gib_s(),
            solo.read_bandwidth.gib_s()
        );
        assert!(mixed.write_bandwidth.gib_s() > 1.0, "writers make progress");
        assert!(
            mixed.bandwidth.gib_s() <= solo.bandwidth.gib_s() * 1.05,
            "combined {} must not beat read-only {}",
            mixed.bandwidth.gib_s(),
            solo.bandwidth.gib_s()
        );
    }

    #[test]
    fn mixed_runs_trend_with_the_analytic_model() {
        let params = SystemParams::paper_default();
        let des = run(&DesConfig::mixed(params.clone(), 4, 18));
        let analytic = BandwidthModel::new(params).mixed(&crate::workload::MixedSpec::paper(
            DeviceClass::Pmem,
            4,
            18,
        ));
        // Loose agreement: same order of magnitude, same read>write shape.
        assert!(des.read_bandwidth.gib_s() > des.write_bandwidth.gib_s());
        assert!(analytic.read.gib_s() > analytic.write.gib_s());
        let ratio = des.read_bandwidth.gib_s() / analytic.read.gib_s();
        assert!(
            (0.4..2.5).contains(&ratio),
            "read-side DES/analytic {ratio}"
        );
    }

    #[test]
    fn replay_reproduces_synthetic_pattern_bandwidth() {
        // A hand-built trace of 4 KB sequential reads must behave like the
        // equivalent synthetic individual-read workload.
        let params = SystemParams::paper_default();
        let per_thread = 1u64 << 20;
        let mut ops = Vec::new();
        for t in 0..8u64 {
            for i in 0..(per_thread / 4096) {
                ops.push(ReplayOp {
                    offset: t * per_thread + i * 4096,
                    len: 4096,
                    write: false,
                });
            }
        }
        // Interleave the per-thread streams the way 8 workers would issue
        // them (round-robin), so the shared cursor hands them out faithfully.
        let streams = 8;
        let per = ops.len() / streams;
        let mut interleaved = Vec::with_capacity(ops.len());
        for i in 0..per {
            for s in 0..streams {
                interleaved.push(ops[s * per + i]);
            }
        }
        let replayed = run(&DesConfig::replay(params.clone(), interleaved, 8));
        let synthetic = run(&DesConfig::new(WorkloadSpec::seq_read(
            DeviceClass::Pmem,
            4096,
            8,
        )));
        let rel = (replayed.bandwidth.gib_s() - synthetic.bandwidth.gib_s()).abs()
            / synthetic.bandwidth.gib_s();
        assert!(
            rel < 0.3,
            "replay {} vs synthetic {} (rel {rel:.2})",
            replayed.bandwidth.gib_s(),
            synthetic.bandwidth.gib_s()
        );
    }

    #[test]
    fn replay_handles_mixed_kinds_and_odd_sizes() {
        let params = SystemParams::paper_default();
        let ops = vec![
            ReplayOp {
                offset: 0,
                len: 100,
                write: false,
            },
            ReplayOp {
                offset: 4096,
                len: 256,
                write: true,
            },
            ReplayOp {
                offset: 1 << 20,
                len: 64,
                write: false,
            },
        ];
        let r = run(&DesConfig::replay(params, ops, 2));
        assert!(r.stats.app_read_bytes >= 164, "reads counted");
        assert!(r.stats.app_write_bytes >= 256, "writes counted");
        assert!(r.elapsed_seconds > 0.0);
    }

    #[test]
    #[should_panic(expected = "one socket at a time")]
    fn dual_socket_placements_are_rejected() {
        let spec = WorkloadSpec::seq_read(DeviceClass::Pmem, 4096, 18)
            .placement(crate::workload::Placement::BothNear);
        let _ = DesConfig::new(spec);
    }
}

//! Open-loop arrival processes for serving experiments.
//!
//! The serving layer's closed-form job loop replays a fixed submission
//! list; an *open-loop* workload instead draws arrival instants from a
//! stochastic process whose offered rate is independent of how fast the
//! server drains — exactly the regime where overload control matters,
//! because a server past its knee cannot slow the arrivals down.
//!
//! Two processes cover the surge experiments:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a constant
//!   rate, the standard open-loop reference load.
//! * [`ArrivalProcess::OnOff`] — a bursty on/off (interrupted Poisson)
//!   process: arrivals stream at the burst rate during fixed-length ON
//!   windows and pause during OFF windows, modelling tenants that slam
//!   the server in waves.
//!
//! Like [`crate::faults`], sampling is seeded and deterministic: the same
//! seed always yields the same arrival timeline, so serving reports built
//! on top of these processes are exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An open-loop arrival process over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_hz` per virtual second.
    Poisson {
        /// Mean arrivals per virtual second.
        rate_hz: f64,
    },
    /// Interrupted Poisson: arrivals at `rate_hz` during ON windows of
    /// `on_seconds`, silence during OFF windows of `off_seconds`, the
    /// cycle repeating from time zero (ON first).
    OnOff {
        /// Arrival rate *inside* an ON window.
        rate_hz: f64,
        /// Length of each ON window in virtual seconds.
        on_seconds: f64,
        /// Length of each OFF window in virtual seconds.
        off_seconds: f64,
    },
}

impl ArrivalProcess {
    /// A Poisson process at `rate_hz` arrivals per second.
    pub fn poisson(rate_hz: f64) -> Self {
        ArrivalProcess::Poisson {
            rate_hz: rate_hz.max(0.0),
        }
    }

    /// A bursty on/off process: `rate_hz` inside ON windows.
    pub fn bursty(rate_hz: f64, on_seconds: f64, off_seconds: f64) -> Self {
        ArrivalProcess::OnOff {
            rate_hz: rate_hz.max(0.0),
            on_seconds: on_seconds.max(0.0),
            off_seconds: off_seconds.max(0.0),
        }
    }

    /// Long-run mean arrival rate (per virtual second).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::OnOff {
                rate_hz,
                on_seconds,
                off_seconds,
            } => {
                let cycle = on_seconds + off_seconds;
                if cycle <= 0.0 {
                    0.0
                } else {
                    rate_hz * on_seconds / cycle
                }
            }
        }
    }

    /// Sample every arrival instant in `[0, horizon)`, sorted ascending.
    /// Deterministic: identical `(self, seed, horizon)` yield identical
    /// timelines.
    pub fn sample(&self, seed: u64, horizon: f64) -> Vec<f64> {
        let (rate, on, off) = match *self {
            ArrivalProcess::Poisson { rate_hz } => (rate_hz, f64::INFINITY, 0.0),
            ArrivalProcess::OnOff {
                rate_hz,
                on_seconds,
                off_seconds,
            } => (rate_hz, on_seconds, off_seconds),
        };
        if rate <= 0.0 || on <= 0.0 || horizon <= 0.0 {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        // Draw exponential gaps in *active* (ON) time, then map each active
        // instant onto wall-clock time by re-inserting the OFF windows. The
        // draw order is fixed, so the timeline is a pure function of the
        // seed.
        let mut active = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            active += -(1.0 - u).ln() / rate;
            let wall = if on.is_finite() {
                let cycle = on + off;
                (active / on).floor() * cycle + active % on
            } else {
                active
            };
            if wall >= horizon {
                break;
            }
            arrivals.push(wall);
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_reproduce_identical_timelines() {
        let p = ArrivalProcess::poisson(500.0);
        assert_eq!(p.sample(42, 1.0), p.sample(42, 1.0));
        let b = ArrivalProcess::bursty(1000.0, 0.05, 0.15);
        assert_eq!(b.sample(7, 2.0), b.sample(7, 2.0));
        assert_ne!(p.sample(42, 1.0), p.sample(43, 1.0), "seeds matter");
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        let p = ArrivalProcess::poisson(800.0);
        let arrivals = p.sample(11, 4.0);
        let rate = arrivals.len() as f64 / 4.0;
        assert!(
            (rate - 800.0).abs() / 800.0 < 0.10,
            "observed {rate} vs 800"
        );
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(arrivals.iter().all(|&t| (0.0..4.0).contains(&t)));
    }

    #[test]
    fn on_off_bursts_stay_inside_the_on_windows() {
        let b = ArrivalProcess::bursty(2000.0, 0.05, 0.15);
        let arrivals = b.sample(3, 2.0);
        assert!(!arrivals.is_empty());
        for &t in &arrivals {
            let phase = t % 0.20;
            assert!(phase < 0.05 + 1e-9, "arrival {t} lands in an OFF window");
        }
        // Long-run rate matches the duty-cycled mean, not the burst rate.
        let mean = b.mean_rate();
        assert!((mean - 500.0).abs() < 1e-9);
        let rate = arrivals.len() as f64 / 2.0;
        assert!(
            (rate - mean).abs() / mean < 0.20,
            "observed {rate} vs {mean}"
        );
    }

    #[test]
    fn degenerate_processes_yield_no_arrivals() {
        assert!(ArrivalProcess::poisson(0.0).sample(1, 1.0).is_empty());
        assert!(ArrivalProcess::poisson(100.0).sample(1, 0.0).is_empty());
        assert!(ArrivalProcess::bursty(100.0, 0.0, 0.1)
            .sample(1, 1.0)
            .is_empty());
        assert_eq!(ArrivalProcess::bursty(100.0, 0.1, 0.0).mean_rate(), 100.0);
    }
}

//! Latency bookkeeping for the discrete-event engine.

/// Online latency statistics with a fixed log-scale histogram (10 ns – 100 µs).
#[derive(Debug, Clone)]
pub struct LatencyStats {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 80;
const LO: f64 = 1e-8; // 10 ns
const HI: f64 = 1e-4; // 100 µs

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }
}

impl LatencyStats {
    /// Record one request latency in seconds.
    pub fn record(&mut self, latency: f64) {
        debug_assert!(latency >= 0.0);
        let idx = if latency <= LO {
            0
        } else if latency >= HI {
            BUCKETS - 1
        } else {
            let t = (latency / LO).log10() / (HI / LO).log10();
            ((t * (BUCKETS - 1) as f64) as usize).min(BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded latency.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (`q` in 0..=1) from the histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                let t = i as f64 / (BUCKETS - 1) as f64;
                return LO * (HI / LO).powf(t);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn mean_and_extremes() {
        let mut s = LatencyStats::default();
        s.record(100e-9);
        s.record(300e-9);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 200e-9).abs() < 1e-12);
        assert!((s.min() - 100e-9).abs() < 1e-15);
        assert!((s.max() - 300e-9).abs() < 1e-15);
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_the_data() {
        let mut s = LatencyStats::default();
        for i in 1..=1000 {
            s.record(i as f64 * 1e-9); // 1 ns .. 1 µs
        }
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= 2e-6, "p99 {p99}");
        // The median of 1..1000 ns should land in the hundreds of ns.
        assert!((1e-7..1.2e-6).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn out_of_range_samples_clamp_to_edge_buckets() {
        let mut s = LatencyStats::default();
        s.record(1e-9); // below LO
        s.record(1e-3); // above HI
        assert_eq!(s.count(), 2);
        assert!(s.quantile(0.01) <= s.quantile(0.99));
    }
}
